//! Determinism contract of the parallel GED execution layer: every
//! rayon-parallel phase (vantage build, NB-Tree clustering, candidate
//! verification, π̂ batch updates) must produce bitwise-identical results at
//! any thread count. RNG-driven decisions stay on the sequential control
//! path; only pure distance evaluations fan out.

use graphrep::core::{NbIndex, NbIndexConfig};
use graphrep::datagen::{DatasetKind, DatasetSpec};
use graphrep::ged::GedConfig;
use rayon::ThreadPoolBuilder;

fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    ThreadPoolBuilder::new()
        .num_threads(n)
        .build()
        .unwrap()
        .install(f)
}

/// Builds the index and answers one query entirely under an `n`-thread pool,
/// returning the serialized index plus the exact answer.
fn build_and_query(
    n_threads: usize,
    kind: DatasetKind,
) -> (String, graphrep::core::AnswerSet, Vec<f64>) {
    with_threads(n_threads, || {
        let data = DatasetSpec::new(kind, 120, 90125).generate();
        let oracle = data.db.oracle(GedConfig::default());
        let index = NbIndex::build(
            oracle,
            NbIndexConfig {
                num_vps: 6,
                ladder: data.default_ladder.clone(),
                seed: 0xabcd,
                ..NbIndexConfig::default()
            },
        );
        let relevant = data.default_query().relevant_set(&data.db);
        let session = index.start_session(relevant);
        let (answer, _) = session.run(data.default_theta, 6);
        // A second run at a refined θ exercises the fresh-bounds path too.
        let (refined, _) = session.run(data.default_theta * 0.8, 6);
        let mut pis = answer.pi_trajectory.clone();
        pis.extend(&refined.pi_trajectory);
        (index.save_json(), answer, pis)
    })
}

#[test]
fn index_and_answers_identical_at_any_thread_count() {
    let (json1, answer1, pis1) = build_and_query(1, DatasetKind::DudLike);
    for threads in [2, 4, 8] {
        let (json_n, answer_n, pis_n) = build_and_query(threads, DatasetKind::DudLike);
        assert_eq!(
            json_n, json1,
            "serialized index diverged at {threads} threads"
        );
        assert_eq!(
            answer_n, answer1,
            "answer set diverged at {threads} threads"
        );
        // π values must be bitwise equal, not merely close.
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
        assert_eq!(bits(&pis_n), bits(&pis1), "π diverged at {threads} threads");
    }
}

#[test]
fn baseline_greedy_thread_independent() {
    use graphrep::core::{baseline_greedy, lazy_greedy, BruteForceProvider};
    let data = DatasetSpec::new(DatasetKind::DblpLike, 90, 7).generate();
    let oracle = data.db.oracle(GedConfig::default());
    let relevant = data.default_query().relevant_set(&data.db);
    let theta = data.default_theta;
    let provider = BruteForceProvider::new(&oracle, &relevant);
    let eager1 = with_threads(1, || baseline_greedy(&provider, &relevant, theta, 5));
    let (lazy1, _) = with_threads(1, || lazy_greedy(&provider, &relevant, theta, 5));
    for threads in [4, 8] {
        let eager_n = with_threads(threads, || baseline_greedy(&provider, &relevant, theta, 5));
        let (lazy_n, _) = with_threads(threads, || lazy_greedy(&provider, &relevant, theta, 5));
        assert_eq!(eager_n, eager1);
        assert_eq!(lazy_n, lazy1);
    }
}

#[test]
fn run_stats_distance_accounting_consistent_across_threads() {
    // The *number of engine calls* for a fresh cache is also deterministic:
    // candidate verification is pure, and each unique pair computes once.
    let counts: Vec<u64> = [1usize, 4]
        .iter()
        .map(|&threads| {
            with_threads(threads, || {
                let data = DatasetSpec::new(DatasetKind::AmazonLike, 100, 11).generate();
                let oracle = data.db.oracle(GedConfig::default());
                let index = NbIndex::build(
                    oracle.clone(),
                    NbIndexConfig {
                        num_vps: 5,
                        ladder: data.default_ladder.clone(),
                        ..NbIndexConfig::default()
                    },
                );
                oracle.clear();
                let relevant = data.default_query().relevant_set(&data.db);
                let (_, stats) = index.query(relevant, data.default_theta, 5);
                let s = oracle.stats();
                assert_eq!(
                    stats.distance_calls,
                    s.distance_computations + s.within_rejections,
                    "RunStats must equal the oracle's engine-call count"
                );
                stats.distance_calls
            })
        })
        .collect();
    assert_eq!(
        counts[0], counts[1],
        "engine-call count diverged across thread counts"
    );
}
