//! Concurrency stress tests for the caching layer's counters: eight
//! threads hammering a deliberately tiny [`ViewStore`] and [`AnswerCache`]
//! — with an invalidator thread wiping both mid-flight — must keep the
//! conservation identities **exact**, not approximate:
//!
//! * `lookups == hits + misses`, and equal to the number of lookup calls
//!   the threads actually made;
//! * `evictions <= insertions` (TTL expiry and capacity replacement both
//!   count as evictions, and nothing can be evicted twice);
//! * every counter is monotone non-decreasing across any snapshot
//!   sequence, including across `invalidate_all` wipes.

use graphrep::core::{
    AnswerCache, AnswerKey, AnswerSet, CacheConfig, MaterializedView, ViewScope, ViewStore,
};
use graphrep::graph::GraphId;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

const THREADS: usize = 8;
const OPS_PER_THREAD: usize = 4_000;

/// Tiny capacity so the LRU evicts constantly under the racing threads.
fn tiny() -> CacheConfig {
    CacheConfig {
        capacity: 8,
        promote_after: 1,
        ..CacheConfig::default()
    }
}

/// SplitMix64: a per-thread deterministic op stream.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn check_monotone(label: &str, samples: &[[u64; 5]]) {
    for w in samples.windows(2) {
        for i in 0..5 {
            assert!(
                w[1][i] >= w[0][i],
                "{label}: counter {i} went backwards: {:?} -> {:?}",
                w[0],
                w[1]
            );
        }
    }
}

fn snapshot(c: &graphrep::core::CacheCounters) -> [u64; 5] {
    [c.lookups, c.hits, c.misses, c.insertions, c.invalidated]
}

/// The stress proper: racing lookups / records / gets / inserts against an
/// invalidator, then exact accounting once every thread has joined.
#[test]
fn racing_threads_keep_cache_counters_exactly_conserved() {
    let views = Arc::new(ViewStore::new(tiny()));
    let answers = Arc::new(AnswerCache::new(tiny()));
    let view_lookups = Arc::new(AtomicU64::new(0));
    let answer_lookups = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));

    let invalidator = {
        let views = Arc::clone(&views);
        let answers = Arc::clone(&answers);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut wipes = 0u64;
            // Relaxed: the flag is a plain stop signal; the joins below
            // order everything that matters.
            while !stop.load(Ordering::Relaxed) {
                views.invalidate_all();
                answers.invalidate_all();
                wipes += 1;
                thread::yield_now();
            }
            wipes
        })
    };

    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let views = Arc::clone(&views);
            let answers = Arc::clone(&answers);
            let view_lookups = Arc::clone(&view_lookups);
            let answer_lookups = Arc::clone(&answer_lookups);
            thread::spawn(move || {
                let mut view_samples: Vec<[u64; 5]> = Vec::new();
                let mut answer_samples: Vec<[u64; 5]> = Vec::new();
                for i in 0..OPS_PER_THREAD {
                    let h = mix((t as u64) << 32 | i as u64);
                    // A small key space so threads collide and evict.
                    let scope = ViewScope {
                        epoch: h % 3,
                        fingerprint: (h >> 8) % 4,
                    };
                    let theta = 1.0 + ((h >> 16) % 4) as f64;
                    let graph = ((h >> 24) % 8) as GraphId;
                    match h % 4 {
                        0 => {
                            views.note_query(scope, theta);
                            let members: Vec<GraphId> = (0..(h % 5) as GraphId).collect();
                            let distances = vec![None; members.len()];
                            views.record(scope, theta, graph, &members, &distances);
                        }
                        1 => {
                            // Relaxed: op tally only; read after the joins.
                            view_lookups.fetch_add(1, Ordering::Relaxed);
                            if let Some(v) = views.lookup(scope, theta, graph) {
                                let _: &MaterializedView = &v;
                                assert_eq!(v.members.len(), v.distances.len());
                            }
                        }
                        2 => {
                            let key = AnswerKey {
                                epoch: h % 3,
                                theta_bits: theta.to_bits(),
                                k: (h % 5) as usize,
                                fingerprint: (h >> 8) % 4,
                            };
                            answers.insert(key, Arc::new(AnswerSet::default()));
                        }
                        _ => {
                            let key = AnswerKey {
                                epoch: h % 3,
                                theta_bits: theta.to_bits(),
                                k: (h % 5) as usize,
                                fingerprint: (h >> 8) % 4,
                            };
                            // Relaxed: op tally only; read after the joins.
                            answer_lookups.fetch_add(1, Ordering::Relaxed);
                            let _ = answers.get(&key);
                        }
                    }
                    if i % 512 == 0 {
                        view_samples.push(snapshot(&views.counters()));
                        answer_samples.push(snapshot(&answers.counters()));
                    }
                }
                (view_samples, answer_samples)
            })
        })
        .collect();

    for w in workers {
        let (vs, as_) = w.join().expect("worker panicked");
        check_monotone("view_store", &vs);
        check_monotone("answer_cache", &as_);
    }
    stop.store(true, Ordering::Relaxed);
    let wipes = invalidator.join().expect("invalidator panicked");
    assert!(wipes > 0, "the invalidator never ran");

    for (label, c, calls) in [
        (
            "view_store",
            views.counters(),
            view_lookups.load(Ordering::Relaxed),
        ),
        (
            "answer_cache",
            answers.counters(),
            answer_lookups.load(Ordering::Relaxed),
        ),
    ] {
        assert_eq!(
            c.lookups,
            c.hits + c.misses,
            "{label}: lookups != hits + misses: {c:?}"
        );
        assert_eq!(
            c.lookups, calls,
            "{label}: counted lookups != issued lookup calls: {c:?}"
        );
        assert!(
            c.evictions <= c.insertions,
            "{label}: more evictions than insertions: {c:?}"
        );
        assert!(
            c.invalidated <= c.insertions,
            "{label}: more invalidated than ever inserted: {c:?}"
        );
        assert!(
            c.entries <= tiny().capacity,
            "{label}: over capacity: {c:?}"
        );
    }
    // The racing threads must actually have exercised both paths.
    let v = views.counters();
    let a = answers.counters();
    assert!(v.insertions > 0, "no view was ever recorded: {v:?}");
    assert!(a.insertions > 0, "no answer was ever inserted: {a:?}");
    assert!(a.hits > 0, "the small key space must produce hits: {a:?}");
}

/// Counter history survives `invalidate_all`: wiping a warm cache keeps
/// every counter, bumps `invalidated`, and later traffic keeps growing the
/// same monotone series.
#[test]
fn invalidation_preserves_counter_history_under_load() {
    let answers = AnswerCache::new(tiny());
    let key = |k: usize| AnswerKey {
        epoch: 0,
        theta_bits: 2.0f64.to_bits(),
        k,
        fingerprint: 1,
    };
    for k in 0..4 {
        answers.insert(key(k), Arc::new(AnswerSet::default()));
        assert!(answers.get(&key(k)).is_some());
    }
    let warm = answers.counters();
    assert_eq!(warm.hits, 4, "{warm:?}");

    let dropped = answers.invalidate_all();
    assert_eq!(dropped, 4, "all four entries wiped");
    let wiped = answers.counters();
    assert_eq!(wiped.hits, warm.hits, "history lost: {wiped:?}");
    assert_eq!(wiped.invalidated, warm.invalidated + 4, "{wiped:?}");
    assert_eq!(wiped.entries, 0, "{wiped:?}");
    assert_eq!(wiped.memory_bytes, 0, "{wiped:?}");

    assert!(answers.get(&key(0)).is_none(), "wiped entry served");
    let after = answers.counters();
    assert_eq!(after.misses, wiped.misses + 1, "{after:?}");
    assert_eq!(after.lookups, after.hits + after.misses, "{after:?}");
}
