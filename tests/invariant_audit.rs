//! Runtime verification of the paper-derived invariants, compiled only with
//! `--features invariant-audit`.
//!
//! Two halves:
//! 1. End-to-end queries over every dataset kind with the audits live — every
//!    `audit_invariant!` along the build/query path (NB-Tree containment,
//!    Thm 4/5 bound admissibility, π̂ monotonicity, greedy submodularity,
//!    oracle counter conservation) must hold.
//! 2. A non-vacuity proof: deliberately corrupting one π̂ entry must make the
//!    audit fire, demonstrating the checks actually observe the structures.
#![cfg(feature = "invariant-audit")]

use graphrep::core::{NbIndex, NbIndexConfig, PiHatVectors};
use graphrep::datagen::{DatasetKind, DatasetSpec};
use graphrep::ged::GedConfig;
use graphrep::metric::Bitset;

fn kinds() -> [DatasetKind; 3] {
    [
        DatasetKind::DudLike,
        DatasetKind::DblpLike,
        DatasetKind::AmazonLike,
    ]
}

fn build_index(data: &graphrep::datagen::Dataset) -> NbIndex {
    let oracle = data.db.oracle(GedConfig::default());
    NbIndex::build(
        oracle,
        NbIndexConfig {
            num_vps: 6,
            ladder: data.default_ladder.clone(),
            ..Default::default()
        },
    )
}

/// Every dataset kind runs build + query with all audits enabled; reaching
/// the assertions means no `audit_invariant!` fired anywhere on the path.
#[test]
fn audited_end_to_end_query_per_dataset_kind() {
    for kind in kinds() {
        let data = DatasetSpec::new(kind, 100, 901).generate();
        let index = build_index(&data);
        let relevant = data.default_query().relevant_set(&data.db);
        let k = 5.min(relevant.len());
        let (answer, stats) = index.query(relevant.clone(), data.default_theta, k);
        assert!(answer.len() <= k, "{}", kind.name());
        assert!(!relevant.is_empty(), "{}", kind.name());
        assert!(
            stats.verified_graphs >= answer.len() as u64,
            "{}",
            kind.name()
        );
    }
}

/// Repeated queries against one index keep the oracle's conservation
/// invariant across a growing cache (hits + computations + rejections must
/// track requests over multiple sessions).
#[test]
fn audited_repeated_queries_share_an_oracle() {
    let data = DatasetSpec::new(DatasetKind::DudLike, 80, 902).generate();
    let index = build_index(&data);
    let relevant = data.default_query().relevant_set(&data.db);
    for theta in [
        data.default_theta * 0.5,
        data.default_theta,
        data.default_theta * 1.5,
    ] {
        let (answer, _) = index.query(relevant.clone(), theta, 4);
        assert!(answer.len() <= 4);
    }
}

/// Non-vacuity: corrupting a single π̂ entry must trip the audit. This
/// proves the green runs above are meaningful — the checks can fail.
#[test]
fn corrupted_pihat_trips_the_audit() {
    let data = DatasetSpec::new(DatasetKind::DudLike, 60, 903).generate();
    let index = build_index(&data);
    let relevant = data.default_query().relevant_set(&data.db);
    assert!(!relevant.is_empty());
    let tree = index.tree();
    let rel_by_id = Bitset::from_indices(tree.len(), relevant.iter().map(|&g| g as usize));
    let pihat =
        PiHatVectors::initialize(index.vantage(), tree, &relevant, &rel_by_id, index.ladder());
    let rel_pos = Bitset::from_indices(
        tree.len(),
        relevant.iter().map(|&g| tree.pos_of(g) as usize),
    );
    // The uncorrupted vectors pass (initialize already audited once).
    pihat.audit(tree, &rel_pos);

    let mut corrupted = pihat.clone();
    corrupted.audit_corrupt_graph_count(tree.pos_of(relevant[0]), 0, u32::MAX);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        corrupted.audit(tree, &rel_pos);
    }));
    let payload = result.expect_err("corrupted π̂ must fail the audit");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(
        msg.contains("invariant-audit violation"),
        "unexpected panic payload: {msg:?}"
    );
}
