//! Invariants of the NB-Index internals on real edit-distance spaces:
//! NB-Tree structure, π̂ upper-bound soundness, and exactness of the batch
//! update theorems' preconditions.

use graphrep::core::{NbIndex, NbIndexConfig, PiHatVectors, ThresholdLadder};
use graphrep::datagen::{DatasetKind, DatasetSpec};
use graphrep::ged::GedConfig;
use graphrep::metric::Bitset;

#[test]
fn nbtree_validates_on_all_dataset_kinds() {
    for (kind, seed) in [
        (DatasetKind::DudLike, 701u64),
        (DatasetKind::DblpLike, 702),
        (DatasetKind::AmazonLike, 703),
    ] {
        let data = DatasetSpec::new(kind, 100, seed).generate();
        let oracle = data.db.oracle(GedConfig::default());
        let index = NbIndex::build(
            oracle.clone(),
            NbIndexConfig {
                num_vps: 6,
                ladder: data.default_ladder.clone(),
                ..Default::default()
            },
        );
        index.tree().validate(&oracle).unwrap_or_else(|e| {
            panic!("{}: {e}", kind.name());
        });
    }
}

#[test]
fn node_diameter_bounds_pairwise_member_distances() {
    let data = DatasetSpec::new(DatasetKind::DudLike, 80, 704).generate();
    let oracle = data.db.oracle(GedConfig::default());
    let index = NbIndex::build(
        oracle.clone(),
        NbIndexConfig {
            num_vps: 6,
            ladder: data.default_ladder.clone(),
            ..Default::default()
        },
    );
    let tree = index.tree();
    for node in tree.nodes().iter().skip(1) {
        if node.size() > 12 {
            continue; // keep the quadratic check cheap
        }
        for p in node.start..node.end {
            for q in (p + 1)..node.end {
                let d = oracle.distance(tree.graph_at(p), tree.graph_at(q));
                assert!(
                    d <= node.diameter + 1e-6,
                    "pair within node exceeds diameter bound: {d} > {}",
                    node.diameter
                );
            }
        }
    }
}

#[test]
fn pihat_upper_bounds_true_representative_power() {
    let data = DatasetSpec::new(DatasetKind::DblpLike, 100, 705).generate();
    let oracle = data.db.oracle(GedConfig::default());
    let index = NbIndex::build(
        oracle.clone(),
        NbIndexConfig {
            num_vps: 6,
            ladder: data.default_ladder.clone(),
            ..Default::default()
        },
    );
    let relevant = data.default_query().relevant_set(&data.db);
    let relevant_by_id = Bitset::from_indices(oracle.len(), relevant.iter().map(|&g| g as usize));
    let ladder = ThresholdLadder::new(data.default_ladder.clone());
    let pihat = PiHatVectors::initialize(
        index.vantage(),
        index.tree(),
        &relevant,
        &relevant_by_id,
        &ladder,
    );
    for &g in relevant.iter().step_by(5) {
        let pos = index.tree().pos_of(g);
        for (slot, &theta) in ladder.thetas().iter().enumerate() {
            let true_count = relevant
                .iter()
                .filter(|&&r| oracle.within(g, r, theta).is_some())
                .count() as u32;
            let bound = pihat.graph_count(pos, slot);
            assert!(
                bound >= true_count,
                "π̂ violated for graph {g} at θ={theta}: bound {bound} < true {true_count}"
            );
        }
    }
}

#[test]
fn node_pihat_is_ceiling_of_descendants() {
    let data = DatasetSpec::new(DatasetKind::DudLike, 90, 706).generate();
    let oracle = data.db.oracle(GedConfig::default());
    let index = NbIndex::build(
        oracle,
        NbIndexConfig {
            num_vps: 6,
            ladder: data.default_ladder.clone(),
            ..Default::default()
        },
    );
    let relevant = data.default_query().relevant_set(&data.db);
    let relevant_by_id =
        Bitset::from_indices(index.tree().len(), relevant.iter().map(|&g| g as usize));
    let ladder = ThresholdLadder::new(data.default_ladder.clone());
    let pihat = PiHatVectors::initialize(
        index.vantage(),
        index.tree(),
        &relevant,
        &relevant_by_id,
        &ladder,
    );
    let rel_pos = Bitset::from_indices(
        index.tree().len(),
        relevant.iter().map(|&g| index.tree().pos_of(g) as usize),
    );
    for (ni, node) in index.tree().nodes().iter().enumerate() {
        for slot in 0..ladder.len() {
            let node_bound = pihat.node_count(ni as u32, slot);
            for pos in node.start..node.end {
                if rel_pos.contains(pos as usize) {
                    assert!(
                        pihat.graph_count(pos, slot) <= node_bound,
                        "node {ni} slot {slot}: ceiling property violated"
                    );
                }
            }
        }
    }
}

#[test]
fn session_memory_and_build_stats_populated() {
    let data = DatasetSpec::new(DatasetKind::AmazonLike, 70, 707).generate();
    let oracle = data.db.oracle(GedConfig::default());
    let index = NbIndex::build(
        oracle,
        NbIndexConfig {
            num_vps: 4,
            ladder: data.default_ladder.clone(),
            ..Default::default()
        },
    );
    assert!(index.build_stats().distance_calls > 0);
    assert!(index.memory_bytes() > 0);
    let relevant = data.default_query().relevant_set(&data.db);
    let session = index.start_session(relevant);
    assert!(session.memory_bytes() > 0);
}
