//! End-to-end tests for the `graphrep-serve` subsystem over real TCP
//! sockets: determinism against the offline engine at several pool sizes,
//! explicit admission-control rejections, deadline aborts that leave the
//! session usable, idle-session expiry, and graceful drain-then-exit
//! shutdown.

use graphrep::datagen::{DatasetKind, DatasetSpec};
use graphrep_serve::{
    codes, offline_reference, registry, run_load, verify_against_offline, Client, LoadMode,
    LoadSpec, Response, ServeConfig,
};
use std::time::Duration;

/// Dataset generator shared by the tests; `Dataset` is not `Clone`, but the
/// generator is deterministic, so every `generate()` yields identical data.
fn dud(size: usize) -> DatasetSpec {
    DatasetSpec::new(DatasetKind::DudLike, size, 20140622)
}

/// The tentpole acceptance criterion: answers served over TCP are
/// byte-identical to offline `QuerySession::run`, at 1, 4, and 8 server
/// worker threads, and identical across the pool sizes themselves.
#[test]
fn server_answers_match_offline_at_every_pool_size() {
    let gen = dud(60);
    let data = gen.generate();
    let spec = LoadSpec {
        dataset: "e2e".into(),
        connections: 3,
        requests_per_conn: 5,
        thetas: vec![
            data.default_theta * 0.8,
            data.default_theta,
            data.default_theta * 1.2,
        ],
        ks: vec![2, 4],
        quantile: 0.75,
        seed: 7,
        skew: 0.0,
        mode: LoadMode::Blocking,
    };
    let reference = offline_reference(&registry::load_in_memory("e2e", data), &spec);

    let mut baseline: Option<Vec<String>> = None;
    for workers in [1usize, 4, 8] {
        let cfg = ServeConfig {
            workers,
            ..ServeConfig::default()
        };
        let handle =
            graphrep_serve::start_in_memory(cfg, "e2e", gen.generate()).expect("server start");
        let report = run_load(&handle.addr().to_string(), &spec).expect("load run");
        handle.shutdown();

        assert!(
            report.errors.is_empty(),
            "errors at {workers} workers: {:?}",
            report.errors
        );
        let verified = verify_against_offline(&report, &reference)
            .unwrap_or_else(|e| panic!("at {workers} workers: {e}"));
        assert_eq!(verified, spec.connections * spec.requests_per_conn);

        let fps: Vec<String> = report
            .answers
            .iter()
            .map(|a| a.body.fingerprint())
            .collect();
        match &baseline {
            None => baseline = Some(fps),
            Some(base) => assert_eq!(&fps, base, "answers diverged at {workers} workers"),
        }
    }
}

/// Driving the queue past the admission limit yields an explicit
/// `overloaded` rejection — not a hang, not a dropped connection — and the
/// stats counters account for every request.
#[test]
fn saturated_queue_rejects_with_overloaded_and_counts_it() {
    let cfg = ServeConfig {
        workers: 1,
        max_queue: 1,
        ..ServeConfig::default()
    };
    let handle = graphrep_serve::start_in_memory(cfg, "ovl", dud(30).generate()).expect("start");
    let addr = handle.addr().to_string();

    // First ping occupies the single worker for 700 ms...
    let in_flight = {
        let addr = addr.clone();
        std::thread::spawn(move || Client::connect(&addr).expect("conn 1").ping(700))
    };
    std::thread::sleep(Duration::from_millis(150));
    // ...the second fills the one queue slot...
    let queued = {
        let addr = addr.clone();
        std::thread::spawn(move || Client::connect(&addr).expect("conn 2").ping(700))
    };
    std::thread::sleep(Duration::from_millis(150));
    // ...so the third must be rejected immediately.
    let mut probe = Client::connect(&addr).expect("conn 3");
    let resp = probe.ping(0).expect("transport");
    assert_eq!(resp.error_code(), Some(codes::OVERLOADED), "{resp:?}");

    // The admitted requests still complete normally.
    assert!(matches!(
        in_flight.join().expect("join 1"),
        Ok(Response::Pong)
    ));
    assert!(matches!(queued.join().expect("join 2"), Ok(Response::Pong)));

    let stats = probe.stats().expect("stats");
    let ping = stats
        .endpoints
        .iter()
        .find(|e| e.endpoint == "ping")
        .expect("ping endpoint row");
    assert_eq!(ping.requests, 3, "{ping:?}");
    assert_eq!(ping.ok, 2, "{ping:?}");
    assert_eq!(ping.overloaded, 1, "{ping:?}");
    handle.shutdown();
}

/// A ~0 deadline aborts the greedy search with `deadline_exceeded`, the
/// session survives, and its next run still matches the offline engine.
#[test]
fn zero_deadline_aborts_but_session_survives() {
    let gen = dud(60);
    let data = gen.generate();
    let theta = data.default_theta;

    let ds = registry::load_in_memory("dl", data);
    let offline = {
        let session = ds.index_arc().start_session_shared(ds.relevant_for(0.75));
        format!("{:?}", session.run(theta, 3).0)
    };

    let handle = graphrep_serve::start_in_memory(ServeConfig::default(), "dl", gen.generate())
        .expect("start");
    let mut c = Client::connect(&handle.addr().to_string()).expect("connect");
    let opened = c.open("dl", 0.75).expect("open");

    let resp = c.run(opened.session, theta, 3, Some(0)).expect("transport");
    assert_eq!(
        resp.error_code(),
        Some(codes::DEADLINE_EXCEEDED),
        "{resp:?}"
    );

    let body = c.run_answer(opened.session, theta, 3).expect("second run");
    assert_eq!(
        body.fingerprint(),
        offline,
        "session corrupted by the abort"
    );

    let stats = c.stats().expect("stats");
    let run = stats
        .endpoints
        .iter()
        .find(|e| e.endpoint == "run")
        .expect("run endpoint row");
    assert_eq!(run.deadline_exceeded, 1, "{run:?}");
    assert_eq!(run.ok, 1, "{run:?}");
    handle.shutdown();
}

/// With a zero idle TTL every session expires before its first run; the
/// server reports `not_found` and counts the expiry.
#[test]
fn idle_sessions_expire_and_report_not_found() {
    let cfg = ServeConfig {
        idle_session_ttl: Duration::ZERO,
        ..ServeConfig::default()
    };
    let handle = graphrep_serve::start_in_memory(cfg, "idle", dud(30).generate()).expect("start");
    let mut c = Client::connect(&handle.addr().to_string()).expect("connect");
    let opened = c.open("idle", 0.75).expect("open");

    let resp = c.run(opened.session, 2.0, 2, None).expect("transport");
    assert_eq!(resp.error_code(), Some(codes::NOT_FOUND), "{resp:?}");

    let stats = c.stats().expect("stats");
    assert_eq!(stats.sessions_open, 0, "{stats:?}");
    assert!(stats.sessions_expired >= 1, "{stats:?}");
    handle.shutdown();
}

/// `shutdown` over the wire acks, drains in-flight work, and joins every
/// thread well inside the timeout; the listener is gone afterwards.
#[test]
fn shutdown_request_drains_and_joins_within_timeout() {
    let gen = dud(40);
    let theta = gen.generate().default_theta;
    let handle = graphrep_serve::start_in_memory(ServeConfig::default(), "sd", gen.generate())
        .expect("start");
    let addr = handle.addr().to_string();

    let mut c = Client::connect(&addr).expect("connect");
    let opened = c.open("sd", 0.75).expect("open");
    c.run_answer(opened.session, theta, 2).expect("warm run");
    c.shutdown().expect("shutdown ack");

    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        handle.wait();
        let _ = tx.send(());
    });
    rx.recv_timeout(Duration::from_secs(10))
        .expect("server failed to drain and join within 10 s");
    assert!(
        Client::connect(&addr).is_err(),
        "listener still accepting after shutdown"
    );
}
