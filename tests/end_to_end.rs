//! Cross-crate end-to-end tests: dataset generation → distance oracle →
//! NB-Index → query → answer quality, compared against every baseline.

use graphrep::baselines::{div_topk, greedy_disc, traditional_topk, DivVariant};
use graphrep::core::{evaluate_answer, BruteForceProvider, NeighborhoodProvider};
use graphrep::datagen::{DatasetKind, DatasetSpec};
use graphrep::ged::GedConfig;

fn kinds() -> [DatasetKind; 3] {
    [
        DatasetKind::DudLike,
        DatasetKind::DblpLike,
        DatasetKind::AmazonLike,
    ]
}

#[test]
fn rep_beats_div_on_representative_power() {
    for kind in kinds() {
        let data = DatasetSpec::new(kind, 150, 501).generate();
        let oracle = data.db.oracle(GedConfig::default());
        let relevant = data.default_query().relevant_set(&data.db);
        let theta = data.default_theta;
        let k = 8.min(relevant.len());
        let provider = BruteForceProvider::new(&oracle, &relevant);

        let index = graphrep::core::NbIndex::build(
            oracle.clone(),
            graphrep::core::NbIndexConfig {
                num_vps: 8,
                ladder: data.default_ladder.clone(),
                ..Default::default()
            },
        );
        let (rep, _) = index.query(relevant.clone(), theta, k);

        for variant in [DivVariant::Theta, DivVariant::TwoTheta] {
            let div = div_topk(&provider, &relevant, theta, k, variant);
            let div_eval =
                evaluate_answer(&div.ids, &relevant, |g| provider.neighborhood(g, theta));
            assert!(
                rep.pi() >= div_eval.pi() - 1e-9,
                "{}: REP π {} < DIV π {} ({variant:?})",
                kind.name(),
                rep.pi(),
                div_eval.pi()
            );
        }
    }
}

#[test]
fn rep_beats_traditional_topk_on_coverage() {
    let data = DatasetSpec::new(DatasetKind::DudLike, 200, 502).generate();
    let oracle = data.db.oracle(GedConfig::default());
    let query = data.default_query();
    let relevant = query.relevant_set(&data.db);
    let theta = data.default_theta;
    let provider = BruteForceProvider::new(&oracle, &relevant);

    let index = graphrep::core::NbIndex::build(
        oracle.clone(),
        graphrep::core::NbIndexConfig {
            num_vps: 8,
            ladder: data.default_ladder.clone(),
            ..Default::default()
        },
    );
    let k = 5;
    let (rep, _) = index.query(relevant.clone(), theta, k);
    let trad = traditional_topk(&data.db, &query, k);
    let trad_eval = evaluate_answer(&trad, &relevant, |g| provider.neighborhood(g, theta));
    assert!(
        rep.pi() >= trad_eval.pi(),
        "REP π {} < traditional π {}",
        rep.pi(),
        trad_eval.pi()
    );
}

#[test]
fn disc_covers_everything_but_needs_more_answers() {
    let data = DatasetSpec::new(DatasetKind::DudLike, 150, 503).generate();
    let oracle = data.db.oracle(GedConfig::default());
    let relevant = data.default_query().relevant_set(&data.db);
    let theta = data.default_theta;
    let provider = BruteForceProvider::new(&oracle, &relevant);
    let disc = greedy_disc(&provider, &relevant, theta, None);
    assert_eq!(disc.covered, relevant.len(), "DisC must cover all relevant");
    // The budgeted REP answer at k = |DisC|/2 should still cover most of
    // what DisC needs its full answer for (the compression argument).
    let k = (disc.ids.len() / 2).max(1);
    let index = graphrep::core::NbIndex::build(
        oracle.clone(),
        graphrep::core::NbIndexConfig {
            num_vps: 8,
            ladder: data.default_ladder.clone(),
            ..Default::default()
        },
    );
    let (rep, _) = index.query(relevant.clone(), theta, k);
    // Greedy picks the biggest clusters first, so half of DisC's budget
    // covers disproportionately more than the tail half would (the family
    // sizes are heavily skewed; the exact share varies with the seed).
    assert!(
        rep.pi() > 0.4,
        "half of DisC's budget should cover well over |A|/2 singletons (got {})",
        rep.pi()
    );
}

#[test]
fn answer_members_are_relevant_and_distinct() {
    for kind in kinds() {
        let data = DatasetSpec::new(kind, 120, 504).generate();
        let oracle = data.db.oracle(GedConfig::default());
        let relevant = data.default_query().relevant_set(&data.db);
        let index = graphrep::core::NbIndex::build(
            oracle,
            graphrep::core::NbIndexConfig {
                num_vps: 6,
                ladder: data.default_ladder.clone(),
                ..Default::default()
            },
        );
        let (answer, _) = index.query(relevant.clone(), data.default_theta, 6);
        let mut seen = std::collections::HashSet::new();
        for &g in &answer.ids {
            assert!(relevant.contains(&g), "{}: {g} not relevant", kind.name());
            assert!(seen.insert(g), "{}: duplicate answer {g}", kind.name());
        }
        // Trajectory is monotone and consistent with the final π.
        for w in answer.pi_trajectory.windows(2) {
            assert!(w[1] >= w[0] - 1e-12);
        }
        if let Some(&last) = answer.pi_trajectory.last() {
            assert!((last - answer.pi()).abs() < 1e-12);
        }
    }
}

#[test]
fn network_extracted_egonets_work_end_to_end() {
    // The paper's actual DBLP pipeline: one big community network → 2-hop
    // ego-nets → top-k representative query. Ego sizes vary, so the hybrid
    // engine guards against occasional large egos.
    use graphrep::datagen::network::{self, NetworkParams};
    use graphrep::ged::{GedConfig, GedMode};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let mut rng = SmallRng::seed_from_u64(77);
    let set = network::generate(
        &mut rng,
        NetworkParams {
            size: 80,
            network_nodes: 900,
            communities: 15,
            ..Default::default()
        },
    );
    let db = graphrep::core::GraphDatabase::new(set.graphs, set.features, set.labels);
    let oracle = db.oracle(GedConfig {
        mode: GedMode::Hybrid {
            exact_max_nodes: 12,
        },
        ..GedConfig::default()
    });
    let index = graphrep::core::NbIndex::build(
        oracle,
        graphrep::core::NbIndexConfig {
            num_vps: 6,
            ladder: vec![2.0, 4.0, 6.0, 10.0, 16.0],
            ..Default::default()
        },
    );
    let relevant: Vec<u32> = (0..80).collect();
    let (answer, _) = index.query(relevant, 4.0, 6);
    assert!(!answer.is_empty());
    assert!(answer.pi() > 0.0);
}

#[test]
fn text_io_round_trips_generated_datasets() {
    let data = DatasetSpec::new(DatasetKind::AmazonLike, 50, 505).generate();
    let text = graphrep::graph::io::write_graphs(data.db.graphs());
    let back = graphrep::graph::io::read_graphs(&text).unwrap();
    assert_eq!(back.as_slice(), data.db.graphs());
}
