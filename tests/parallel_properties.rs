//! Property-based tests of the vantage-embedding theorems *through the
//! parallel execution path*: the rayon-built [`VantageTable`] must satisfy
//! Thm 4 (the Lipschitz lower bound never exceeds the exact GED) and Thm 5
//! (`N̂_θ(g) ⊇ N_θ(g)`), and the rayon-verified NB-Index query must return
//! exactly the sequential brute-force greedy answer.

use graphrep::core::{baseline_greedy, BruteForceProvider, NbIndex, NbIndexConfig};
use graphrep::ged::{DistanceOracle, GedConfig, GedEngine};
use graphrep::graph::{Graph, GraphBuilder};
use graphrep::metric::VantageTable;
use proptest::prelude::*;
use std::sync::Arc;

/// Strategy: a small random connected labeled graph (spanning-tree skeleton
/// plus a few extra edges).
fn arb_graph(max_nodes: usize) -> impl Strategy<Value = Graph> {
    (1..=max_nodes).prop_flat_map(|n| {
        let labels = proptest::collection::vec(0u32..3, n);
        let parents = proptest::collection::vec(0usize..n.max(1), n.saturating_sub(1));
        let extra = proptest::collection::vec((0usize..n, 0usize..n, 0u32..2), 0..3);
        (labels, parents, extra).prop_map(move |(labels, parents, extra)| {
            let mut b = GraphBuilder::new();
            for &l in &labels {
                b.add_node(l);
            }
            for (i, &p) in parents.iter().enumerate() {
                let child = (i + 1) as u16;
                let parent = (p % (i + 1)) as u16;
                b.add_edge(child, parent, 5).unwrap();
            }
            for &(u, v, l) in &extra {
                let (u, v) = (u as u16, v as u16);
                if u != v && !b.has_edge(u, v) {
                    b.add_edge(u, v, l).unwrap();
                }
            }
            b.build()
        })
    })
}

/// Strategy: a small random graph database behind a caching oracle.
fn arb_db() -> impl Strategy<Value = Arc<DistanceOracle>> {
    proptest::collection::vec(arb_graph(5), 4..10).prop_map(|graphs| {
        Arc::new(DistanceOracle::new(
            Arc::new(graphs),
            GedEngine::new(GedConfig::default()),
        ))
    })
}

/// The parallel vantage build over the first `vps` graphs as vantage points.
fn par_table(oracle: &DistanceOracle, vps: usize) -> VantageTable {
    let n = oracle.len();
    let vp_ids: Vec<u32> = (0..vps.min(n) as u32).collect();
    VantageTable::build_with_vps_par(n, vp_ids, &|a, b| oracle.distance(a, b))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn vantage_lower_bound_is_admissible(oracle in arb_db(), vps in 1usize..4) {
        // Thm 4: max_v |d(v,i) − d(v,j)| ≤ d(i,j) for every pair, when the
        // table's |V| × n matrix was evaluated across rayon workers.
        let t = par_table(&oracle, vps);
        let n = oracle.len() as u32;
        for i in 0..n {
            for j in 0..n {
                let exact = oracle.distance(i, j);
                prop_assert!(
                    t.lower_bound(i, j) <= exact + 1e-6,
                    "lb {} > exact {} for ({i},{j})", t.lower_bound(i, j), exact
                );
            }
        }
    }

    #[test]
    fn candidate_superset_contains_true_neighborhood(
        oracle in arb_db(),
        vps in 1usize..4,
        theta in 0.5f64..6.0,
    ) {
        // Thm 5: N̂_θ(g) ⊇ N_θ(g) — band filtering may overshoot but never
        // drops a true neighbor.
        let t = par_table(&oracle, vps);
        let n = oracle.len() as u32;
        for g in 0..n {
            let cands = t.candidates(g, theta);
            for j in 0..n {
                if oracle.distance(g, j) <= theta {
                    prop_assert!(
                        cands.contains(&j),
                        "true neighbor {j} of {g} missing at θ={theta}"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_index_query_equals_brute_force_greedy(
        oracle in arb_db(),
        theta in 1.0f64..5.0,
        k in 1usize..4,
    ) {
        // End-to-end: the NB-Index (rayon-parallel build and candidate
        // verification) must return exactly the Alg 1 greedy answer over the
        // brute-force provider.
        let relevant: Vec<u32> = (0..oracle.len() as u32).collect();
        let index = NbIndex::build(
            Arc::clone(&oracle),
            NbIndexConfig {
                num_vps: 3,
                ladder: vec![theta],
                ..NbIndexConfig::default()
            },
        );
        let (answer, _) = index.query(relevant.clone(), theta, k);
        let brute = baseline_greedy(
            &BruteForceProvider::new(&oracle, &relevant),
            &relevant,
            theta,
            k,
        );
        prop_assert_eq!(answer.ids, brute.ids);
        prop_assert_eq!(answer.covered, brute.covered);
    }
}
