//! The shared-session contract: one `QuerySession` (paper Sec 7's
//! interactive model — initialize once, then many `(θ, k)` runs) used from
//! eight OS threads concurrently must return exactly what a single-threaded
//! replay returns, for every query, and must stay consistent afterwards.

use graphrep::core::{NbIndex, NbIndexConfig};
use graphrep::datagen::{DatasetKind, DatasetSpec};
use graphrep::ged::GedConfig;
use std::sync::Arc;

#[test]
fn eight_threads_share_one_session_and_agree_with_single_threaded() {
    let data = DatasetSpec::new(DatasetKind::DudLike, 80, 4242).generate();
    let oracle = data.db.oracle(GedConfig::default());
    let index = Arc::new(NbIndex::build(
        oracle,
        NbIndexConfig {
            num_vps: 8,
            ladder: data.default_ladder.clone(),
            seed: 0xfeed,
            ..NbIndexConfig::default()
        },
    ));
    let relevant = data.default_query().relevant_set(&data.db);

    // Mixed workload: 4 θ values × 2 k values = 8 distinct queries.
    let mixes: Vec<(f64, usize)> = [0.8, 1.0, 1.2, 1.4]
        .iter()
        .flat_map(|&m| [2usize, 4].map(|k| (data.default_theta * m, k)))
        .collect();

    // Ground truth from a fresh session, strictly single-threaded.
    let expected: Vec<String> = {
        let session = Arc::clone(&index).start_session_shared(relevant.clone());
        mixes
            .iter()
            .map(|&(t, k)| format!("{:?}", session.run(t, k).0))
            .collect()
    };

    // Eight threads hammer ONE shared session; each walks the full mix in a
    // different rotation so identical and distinct queries overlap in time.
    let shared = Arc::new(Arc::clone(&index).start_session_shared(relevant));
    let mut handles = Vec::new();
    for offset in 0..8 {
        let s = Arc::clone(&shared);
        let mixes = mixes.clone();
        handles.push(std::thread::spawn(move || {
            let mut got = Vec::new();
            for i in 0..mixes.len() {
                let idx = (offset + i) % mixes.len();
                let (t, k) = mixes[idx];
                got.push((idx, format!("{:?}", s.run(t, k).0)));
            }
            got
        }));
    }
    for (thread, h) in handles.into_iter().enumerate() {
        for (idx, got) in h.join().expect("worker thread panicked") {
            assert_eq!(
                got, expected[idx],
                "thread {thread} diverged on query {idx} {:?}",
                mixes[idx]
            );
        }
    }

    // After the concurrent storm, the same session still answers cleanly.
    for (idx, &(t, k)) in mixes.iter().enumerate() {
        assert_eq!(
            format!("{:?}", shared.run(t, k).0),
            expected[idx],
            "post-storm rerun diverged on query {idx}"
        );
    }
}
