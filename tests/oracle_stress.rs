//! Concurrency stress tests for the sharded [`DistanceOracle`] cache: many
//! threads hammering overlapping pairs must agree on every distance, run the
//! engine exactly once per unique `distance()` pair and once per unique
//! uncached `within()` `(pair, τ)` request, and keep the
//! [`OracleStats`] counters exact — every non-self request increments
//! exactly one of computations / rejections / hits / ub-accepts.
//!
//! The tiered `within_verdict` ladder gets the same treatment: under
//! 8-thread racing its verdicts must equal the engine-only oracle's on every
//! `(pair, τ)`, and the counters must still conserve.

use graphrep::ged::{DistanceOracle, GedConfig, GedEngine, MetricHints};
use graphrep::graph::generate::random_connected;
use graphrep::graph::Graph;
use graphrep::graph::GraphId;
use std::sync::Arc;

const THREADS: usize = 8;

fn oracle(n: usize, seed: u64) -> Arc<DistanceOracle> {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let mut rng = SmallRng::seed_from_u64(seed);
    let graphs: Vec<Graph> = (0..n)
        .map(|_| random_connected(&mut rng, 6, 2, &[0, 1, 2], &[3, 4]))
        .collect();
    Arc::new(DistanceOracle::new(
        Arc::new(graphs),
        GedEngine::new(GedConfig::default()),
    ))
}

/// One thread's observations: the pair queried and the verdict's bit
/// pattern (`None` = rejected).
type Observations = Vec<((u32, u32), Option<u64>)>;

/// All unordered non-self pairs over `n` graphs.
fn pairs(n: u32) -> Vec<(u32, u32)> {
    (0..n)
        .flat_map(|i| (i + 1..n).map(move |j| (i, j)))
        .collect()
}

#[test]
fn concurrent_distance_computes_each_pair_exactly_once() {
    let o = oracle(16, 1);
    let pairs = pairs(16);
    let rounds = 3;
    let reference: Vec<f64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let o = Arc::clone(&o);
                let pairs = pairs.clone();
                s.spawn(move || {
                    let mut seen = Vec::new();
                    for r in 0..rounds {
                        // Different traversal order per thread and round
                        // maximizes same-pair races.
                        let mut order = pairs.clone();
                        if (t + r) % 2 == 1 {
                            order.reverse();
                        }
                        let shift = (t * 17) % order.len();
                        order.rotate_left(shift);
                        for &(i, j) in &order {
                            // Mix argument orders: (i,j) and (j,i) share a key.
                            let d = if t % 2 == 0 {
                                o.distance(i, j)
                            } else {
                                o.distance(j, i)
                            };
                            seen.push(((i, j), d));
                        }
                    }
                    seen
                })
            })
            .collect();
        let all: Vec<Vec<((u32, u32), f64)>> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Every thread observed the same value for every pair.
        let mut reference = vec![f64::NAN; pairs.len()];
        for obs in &all {
            for &((i, j), d) in obs {
                let idx = pairs.iter().position(|&p| p == (i, j)).unwrap();
                if reference[idx].is_nan() {
                    reference[idx] = d;
                }
                assert_eq!(
                    d.to_bits(),
                    reference[idx].to_bits(),
                    "pair ({i},{j}) disagreed"
                );
            }
        }
        reference
    });
    assert!(reference.iter().all(|d| !d.is_nan()));

    let s = o.stats();
    let total_requests = (THREADS * rounds * pairs.len()) as u64;
    // Exactly one engine run per unique pair, no lost counter updates.
    assert_eq!(s.distance_computations, pairs.len() as u64);
    assert_eq!(s.within_rejections, 0);
    assert_eq!(s.cache_hits, total_requests - pairs.len() as u64);
    assert_eq!(o.engine_calls(), pairs.len() as u64);
}

#[test]
fn concurrent_within_cold_pairs_run_engine_once() {
    // The racy path: every thread hammers within() on the SAME uncached
    // pairs at the same τ, in different orders. The per-(pair, τ) rendezvous
    // must let exactly one racer run the engine per pair — at quiescence the
    // engine-call counters equal the number of unique pairs, independent of
    // thread count, and every other request is a cache hit.
    // Larger graphs than the other tests and a τ above the cheap
    // label-count lower bound: each engine call must reach the expensive
    // search, so it is slow enough (≫ thread wake-up skew) that
    // barrier-released threads really overlap on uncached pairs instead of
    // trailing a warm cache. Several fresh-oracle repetitions amplify the
    // chance of catching a lost race.
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let tau = 8.0;
    let rounds = 2;
    let pairs = pairs(10);
    for seed in [7, 8, 9] {
        let mut rng = SmallRng::seed_from_u64(seed);
        let graphs: Vec<Graph> = (0..10)
            .map(|_| random_connected(&mut rng, 9, 4, &[0, 1, 2], &[3, 4]))
            .collect();
        let o = Arc::new(DistanceOracle::new(
            Arc::new(graphs),
            GedEngine::new(GedConfig::default()),
        ));
        // All threads release from a barrier and walk the pairs in the SAME
        // order (half forward, half reverse), so every uncached pair is
        // reached by several threads at once — without the rendezvous each
        // racer would run the engine and the equality assertions below fail.
        let barrier = Arc::new(std::sync::Barrier::new(THREADS));
        let verdicts: Vec<Observations> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..THREADS)
                .map(|t| {
                    let o = Arc::clone(&o);
                    let pairs = pairs.clone();
                    let barrier = Arc::clone(&barrier);
                    s.spawn(move || {
                        let mut seen = Vec::new();
                        for r in 0..rounds {
                            let mut order = pairs.clone();
                            if (t + r) % 2 == 1 {
                                order.reverse();
                            }
                            barrier.wait();
                            for &(i, j) in &order {
                                let v = if t % 2 == 0 {
                                    o.within(i, j, tau)
                                } else {
                                    o.within(j, i, tau)
                                };
                                seen.push(((i, j), v.map(f64::to_bits)));
                            }
                        }
                        seen
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Every thread observed the same verdict for every pair.
        let mut reference: Vec<Option<Option<u64>>> = vec![None; pairs.len()];
        for obs in &verdicts {
            for &((i, j), v) in obs {
                let idx = pairs.iter().position(|&p| p == (i, j)).unwrap();
                match reference[idx] {
                    None => reference[idx] = Some(v),
                    Some(r) => assert_eq!(v, r, "seed {seed} pair ({i},{j}) disagreed"),
                }
            }
        }

        let s = o.stats();
        let total_requests = (THREADS * rounds * pairs.len()) as u64;
        // Exactly one engine call per unique pair — accepted pairs count a
        // computation, rejected pairs a rejection — and nothing
        // double-counted.
        assert_eq!(
            s.distance_computations + s.within_rejections,
            pairs.len() as u64,
            "seed {seed}: engine calls must equal unique pairs \
             (computations {} + rejections {})",
            s.distance_computations,
            s.within_rejections
        );
        assert_eq!(s.cache_hits, total_requests - pairs.len() as u64);
        assert_eq!(o.engine_calls(), pairs.len() as u64);
    }
}

#[test]
fn concurrent_within_counters_sum_exactly() {
    let o = oracle(12, 2);
    let pairs = pairs(12);
    // Pre-resolve every pair so the within() calls below are all answerable
    // from the exact cache: with a warm cache the counter invariant is exact
    // even under arbitrary interleaving.
    for &(i, j) in &pairs {
        o.distance(i, j);
    }
    o.reset_stats();
    let taus = [0.5, 2.0, 8.0];
    let per_thread = pairs.len() * taus.len();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let o = Arc::clone(&o);
            let pairs = pairs.clone();
            s.spawn(move || {
                for &(i, j) in &pairs {
                    for &tau in &taus {
                        let verdict = o.within(i, j, tau);
                        // Warm cache: the verdict must equal the exact test.
                        let d = o.distance(i, j);
                        assert_eq!(
                            verdict.is_some(),
                            d <= tau + 1e-9,
                            "pair ({i},{j}) τ={tau} t={t}"
                        );
                    }
                }
            });
        }
    });
    let s = o.stats();
    // Every request hit the exact cache: within() + the re-check distance().
    assert_eq!(s.distance_computations, 0);
    assert_eq!(s.within_rejections, 0);
    assert_eq!(s.cache_hits, (THREADS * per_thread * 2) as u64);
}

#[test]
fn mixed_distance_within_requests_account_every_call() {
    // Cold-cache mixed workload: each thread works a disjoint pair slice, so
    // no two threads race on one pair and the per-request accounting is
    // exact: every non-self request increments exactly one counter.
    let o = oracle(14, 3);
    let pairs = pairs(14);
    let chunk = pairs.len().div_ceil(THREADS);
    let issued: u64 = std::thread::scope(|s| {
        let handles: Vec<_> = pairs
            .chunks(chunk)
            .map(|slice| {
                let o = Arc::clone(&o);
                let slice = slice.to_vec();
                s.spawn(move || {
                    let mut n = 0u64;
                    for &(i, j) in &slice {
                        if (i + j) % 2 == 0 {
                            o.distance(i, j);
                        } else {
                            o.within(i, j, 2.0);
                        }
                        n += 1;
                        // A self-request must stay free of charge.
                        assert_eq!(o.distance(i, i), 0.0);
                    }
                    n
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    let s = o.stats();
    assert_eq!(
        s.distance_computations + s.within_rejections + s.cache_hits,
        issued,
        "counters must sum to the number of non-self requests"
    );
}

/// Hints built from precomputed true distances with multiplicative slack:
/// sound (`0.9·d ≤ d ≤ 1.1·d` for non-negative `d`) but loose enough that
/// requests spread across the ub-accept, lb-reject, and engine tiers.
#[derive(Debug)]
struct SlackHints(Vec<Vec<f64>>);

impl MetricHints for SlackHints {
    fn lower_bound(&self, i: GraphId, j: GraphId) -> f64 {
        self.0[i as usize][j as usize] * 0.9
    }
    fn upper_bound(&self, i: GraphId, j: GraphId) -> f64 {
        self.0[i as usize][j as usize] * 1.1
    }
}

#[test]
fn tiered_verdicts_agree_with_engine_only_under_racing() {
    // Property test for the filter ladder: a tiered oracle (cheap bounds +
    // metric hints + engine) must return the SAME verdict as an engine-only
    // oracle for every (pair, τ), even while 8 threads race overlapping
    // pairs in different orders — and at quiescence its counters must still
    // conserve: hits + computations + rejections + ub_accepts == issued
    // non-self requests.
    let n = 12u32;
    let taus = [0.5, 2.0, 4.0, 8.0];
    let pairs = pairs(n);

    // Engine-only reference: tiers disabled, no hints. Pre-resolve every
    // pair so the in-thread re-checks below are warm reads.
    let reference = oracle(n as usize, 4);
    reference.set_tiers_enabled(false);
    let mut dist = vec![vec![0.0_f64; n as usize]; n as usize];
    for &(i, j) in &pairs {
        let d = reference.distance(i, j);
        dist[i as usize][j as usize] = d;
        dist[j as usize][i as usize] = d;
    }

    // Tiered oracle over the same graphs (same seed), hints installed.
    let tiered = oracle(n as usize, 4);
    tiered.set_hints(Arc::new(SlackHints(dist)));

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let tiered = Arc::clone(&tiered);
            let reference = Arc::clone(&reference);
            let pairs = pairs.clone();
            s.spawn(move || {
                // Different traversal order per thread maximizes same-pair
                // races inside the verdict cells.
                let mut order = pairs.clone();
                if t % 2 == 1 {
                    order.reverse();
                }
                let shift = (t * 13) % order.len();
                order.rotate_left(shift);
                for &(i, j) in &order {
                    for &tau in &taus {
                        // Mix argument orders: (i,j) and (j,i) share a key.
                        let v = if t % 2 == 0 {
                            tiered.within_verdict(i, j, tau)
                        } else {
                            tiered.within_verdict(j, i, tau)
                        };
                        assert_eq!(
                            v,
                            reference.within(i, j, tau).is_some(),
                            "tiered verdict diverged on pair ({i},{j}) τ={tau}"
                        );
                        // Self-verdicts stay free of charge and true.
                        assert!(tiered.within_verdict(i, i, tau));
                    }
                }
            });
        }
    });

    let s = tiered.stats();
    let issued = (THREADS * pairs.len() * taus.len()) as u64;
    assert_eq!(
        s.cache_hits + s.distance_computations + s.within_rejections + s.ub_accepts,
        issued,
        "tiered counters must conserve: hits {} + computations {} + \
         rejections {} + ub_accepts {}",
        s.cache_hits,
        s.distance_computations,
        s.within_rejections,
        s.ub_accepts
    );
    // The slack hints are tight enough that at least one request is settled
    // by the triangle upper bound alone; the breakdown must attribute no
    // more rejections to tiers than were counted in total.
    let tier = tiered.tier_stats();
    assert!(s.ub_accepts > 0, "expected at least one ub-accept");
    assert_eq!(tier.vantage_ub_accepts, s.ub_accepts);
    assert!(
        tier.size_rejects + tier.label_rejects + tier.degree_rejects + tier.vantage_lb_rejects
            <= s.within_rejections
    );
    #[cfg(feature = "invariant-audit")]
    tiered.audit_counter_conservation();
}

#[test]
fn tiers_never_change_cold_racing_verdicts() {
    // Same racing workload on two fresh oracles over identical graphs — one
    // tiered (without hints: size/label/degree bounds only), one engine-only
    // — both COLD, so the ladder itself races concurrent misses. Collected
    // verdicts must be identical maps.
    let taus = [1.0, 3.0, 6.0];
    let pairs = pairs(10);
    // One observed verdict: pair, τ, accept/reject.
    type Verdict = ((u32, u32), f64, bool);
    let run = |tiers: bool| -> Vec<Verdict> {
        let o = oracle(10, 5);
        o.set_tiers_enabled(tiers);
        let barrier = Arc::new(std::sync::Barrier::new(THREADS));
        let all: Vec<Vec<Verdict>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..THREADS)
                .map(|t| {
                    let o = Arc::clone(&o);
                    let pairs = pairs.clone();
                    let barrier = Arc::clone(&barrier);
                    s.spawn(move || {
                        let mut order = pairs.clone();
                        if t % 2 == 1 {
                            order.reverse();
                        }
                        barrier.wait();
                        let mut seen = Vec::new();
                        for &(i, j) in &order {
                            for &tau in &taus {
                                seen.push(((i, j), tau, o.within_verdict(i, j, tau)));
                            }
                        }
                        seen
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        #[cfg(feature = "invariant-audit")]
        o.audit_counter_conservation();
        let mut verdicts: Vec<_> = all.into_iter().flatten().collect();
        verdicts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        verdicts.dedup();
        verdicts
    };
    assert_eq!(
        run(true),
        run(false),
        "tiered and engine-only oracles disagreed on some (pair, τ)"
    );
}
