//! Concurrency stress tests for the sharded [`DistanceOracle`] cache: many
//! threads hammering overlapping pairs must agree on every distance, run the
//! engine exactly once per unique `distance()` pair, and keep the
//! [`OracleStats`] counters exact — every non-self request increments
//! exactly one of computations / rejections / hits.

use graphrep::ged::{DistanceOracle, GedConfig, GedEngine};
use graphrep::graph::generate::random_connected;
use graphrep::graph::Graph;
use std::sync::Arc;

const THREADS: usize = 8;

fn oracle(n: usize, seed: u64) -> Arc<DistanceOracle> {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let mut rng = SmallRng::seed_from_u64(seed);
    let graphs: Vec<Graph> = (0..n)
        .map(|_| random_connected(&mut rng, 6, 2, &[0, 1, 2], &[3, 4]))
        .collect();
    Arc::new(DistanceOracle::new(
        Arc::new(graphs),
        GedEngine::new(GedConfig::default()),
    ))
}

/// All unordered non-self pairs over `n` graphs.
fn pairs(n: u32) -> Vec<(u32, u32)> {
    (0..n)
        .flat_map(|i| (i + 1..n).map(move |j| (i, j)))
        .collect()
}

#[test]
fn concurrent_distance_computes_each_pair_exactly_once() {
    let o = oracle(16, 1);
    let pairs = pairs(16);
    let rounds = 3;
    let reference: Vec<f64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let o = Arc::clone(&o);
                let pairs = pairs.clone();
                s.spawn(move || {
                    let mut seen = Vec::new();
                    for r in 0..rounds {
                        // Different traversal order per thread and round
                        // maximizes same-pair races.
                        let mut order = pairs.clone();
                        if (t + r) % 2 == 1 {
                            order.reverse();
                        }
                        let shift = (t * 17) % order.len();
                        order.rotate_left(shift);
                        for &(i, j) in &order {
                            // Mix argument orders: (i,j) and (j,i) share a key.
                            let d = if t % 2 == 0 {
                                o.distance(i, j)
                            } else {
                                o.distance(j, i)
                            };
                            seen.push(((i, j), d));
                        }
                    }
                    seen
                })
            })
            .collect();
        let all: Vec<Vec<((u32, u32), f64)>> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Every thread observed the same value for every pair.
        let mut reference = vec![f64::NAN; pairs.len()];
        for obs in &all {
            for &((i, j), d) in obs {
                let idx = pairs.iter().position(|&p| p == (i, j)).unwrap();
                if reference[idx].is_nan() {
                    reference[idx] = d;
                }
                assert_eq!(
                    d.to_bits(),
                    reference[idx].to_bits(),
                    "pair ({i},{j}) disagreed"
                );
            }
        }
        reference
    });
    assert!(reference.iter().all(|d| !d.is_nan()));

    let s = o.stats();
    let total_requests = (THREADS * rounds * pairs.len()) as u64;
    // Exactly one engine run per unique pair, no lost counter updates.
    assert_eq!(s.distance_computations, pairs.len() as u64);
    assert_eq!(s.within_rejections, 0);
    assert_eq!(s.cache_hits, total_requests - pairs.len() as u64);
    assert_eq!(o.engine_calls(), pairs.len() as u64);
}

#[test]
fn concurrent_within_counters_sum_exactly() {
    let o = oracle(12, 2);
    let pairs = pairs(12);
    // Pre-resolve every pair so the within() calls below are all answerable
    // from the exact cache: with a warm cache the counter invariant is exact
    // even under arbitrary interleaving.
    for &(i, j) in &pairs {
        o.distance(i, j);
    }
    o.reset_stats();
    let taus = [0.5, 2.0, 8.0];
    let per_thread = pairs.len() * taus.len();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let o = Arc::clone(&o);
            let pairs = pairs.clone();
            s.spawn(move || {
                for &(i, j) in &pairs {
                    for &tau in &taus {
                        let verdict = o.within(i, j, tau);
                        // Warm cache: the verdict must equal the exact test.
                        let d = o.distance(i, j);
                        assert_eq!(
                            verdict.is_some(),
                            d <= tau + 1e-9,
                            "pair ({i},{j}) τ={tau} t={t}"
                        );
                    }
                }
            });
        }
    });
    let s = o.stats();
    // Every request hit the exact cache: within() + the re-check distance().
    assert_eq!(s.distance_computations, 0);
    assert_eq!(s.within_rejections, 0);
    assert_eq!(s.cache_hits, (THREADS * per_thread * 2) as u64);
}

#[test]
fn mixed_distance_within_requests_account_every_call() {
    // Cold-cache mixed workload: each thread works a disjoint pair slice, so
    // no two threads race on one pair and the per-request accounting is
    // exact: every non-self request increments exactly one counter.
    let o = oracle(14, 3);
    let pairs = pairs(14);
    let chunk = pairs.len().div_ceil(THREADS);
    let issued: u64 = std::thread::scope(|s| {
        let handles: Vec<_> = pairs
            .chunks(chunk)
            .map(|slice| {
                let o = Arc::clone(&o);
                let slice = slice.to_vec();
                s.spawn(move || {
                    let mut n = 0u64;
                    for &(i, j) in &slice {
                        if (i + j) % 2 == 0 {
                            o.distance(i, j);
                        } else {
                            o.within(i, j, 2.0);
                        }
                        n += 1;
                        // A self-request must stay free of charge.
                        assert_eq!(o.distance(i, i), 0.0);
                    }
                    n
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    let s = o.stats();
    assert_eq!(
        s.distance_computations + s.within_rejections + s.cache_hits,
        issued,
        "counters must sum to the number of non-self requests"
    );
}
