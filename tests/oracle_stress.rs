//! Concurrency stress tests for the sharded [`DistanceOracle`] cache: many
//! threads hammering overlapping pairs must agree on every distance, run the
//! engine exactly once per unique `distance()` pair and once per unique
//! uncached `within()` `(pair, τ)` request, and keep the
//! [`OracleStats`] counters exact — every non-self request increments
//! exactly one of computations / rejections / hits.

use graphrep::ged::{DistanceOracle, GedConfig, GedEngine};
use graphrep::graph::generate::random_connected;
use graphrep::graph::Graph;
use std::sync::Arc;

const THREADS: usize = 8;

fn oracle(n: usize, seed: u64) -> Arc<DistanceOracle> {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let mut rng = SmallRng::seed_from_u64(seed);
    let graphs: Vec<Graph> = (0..n)
        .map(|_| random_connected(&mut rng, 6, 2, &[0, 1, 2], &[3, 4]))
        .collect();
    Arc::new(DistanceOracle::new(
        Arc::new(graphs),
        GedEngine::new(GedConfig::default()),
    ))
}

/// One thread's observations: the pair queried and the verdict's bit
/// pattern (`None` = rejected).
type Observations = Vec<((u32, u32), Option<u64>)>;

/// All unordered non-self pairs over `n` graphs.
fn pairs(n: u32) -> Vec<(u32, u32)> {
    (0..n)
        .flat_map(|i| (i + 1..n).map(move |j| (i, j)))
        .collect()
}

#[test]
fn concurrent_distance_computes_each_pair_exactly_once() {
    let o = oracle(16, 1);
    let pairs = pairs(16);
    let rounds = 3;
    let reference: Vec<f64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let o = Arc::clone(&o);
                let pairs = pairs.clone();
                s.spawn(move || {
                    let mut seen = Vec::new();
                    for r in 0..rounds {
                        // Different traversal order per thread and round
                        // maximizes same-pair races.
                        let mut order = pairs.clone();
                        if (t + r) % 2 == 1 {
                            order.reverse();
                        }
                        let shift = (t * 17) % order.len();
                        order.rotate_left(shift);
                        for &(i, j) in &order {
                            // Mix argument orders: (i,j) and (j,i) share a key.
                            let d = if t % 2 == 0 {
                                o.distance(i, j)
                            } else {
                                o.distance(j, i)
                            };
                            seen.push(((i, j), d));
                        }
                    }
                    seen
                })
            })
            .collect();
        let all: Vec<Vec<((u32, u32), f64)>> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Every thread observed the same value for every pair.
        let mut reference = vec![f64::NAN; pairs.len()];
        for obs in &all {
            for &((i, j), d) in obs {
                let idx = pairs.iter().position(|&p| p == (i, j)).unwrap();
                if reference[idx].is_nan() {
                    reference[idx] = d;
                }
                assert_eq!(
                    d.to_bits(),
                    reference[idx].to_bits(),
                    "pair ({i},{j}) disagreed"
                );
            }
        }
        reference
    });
    assert!(reference.iter().all(|d| !d.is_nan()));

    let s = o.stats();
    let total_requests = (THREADS * rounds * pairs.len()) as u64;
    // Exactly one engine run per unique pair, no lost counter updates.
    assert_eq!(s.distance_computations, pairs.len() as u64);
    assert_eq!(s.within_rejections, 0);
    assert_eq!(s.cache_hits, total_requests - pairs.len() as u64);
    assert_eq!(o.engine_calls(), pairs.len() as u64);
}

#[test]
fn concurrent_within_cold_pairs_run_engine_once() {
    // The racy path: every thread hammers within() on the SAME uncached
    // pairs at the same τ, in different orders. The per-(pair, τ) rendezvous
    // must let exactly one racer run the engine per pair — at quiescence the
    // engine-call counters equal the number of unique pairs, independent of
    // thread count, and every other request is a cache hit.
    // Larger graphs than the other tests and a τ above the cheap
    // label-count lower bound: each engine call must reach the expensive
    // search, so it is slow enough (≫ thread wake-up skew) that
    // barrier-released threads really overlap on uncached pairs instead of
    // trailing a warm cache. Several fresh-oracle repetitions amplify the
    // chance of catching a lost race.
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let tau = 8.0;
    let rounds = 2;
    let pairs = pairs(10);
    for seed in [7, 8, 9] {
        let mut rng = SmallRng::seed_from_u64(seed);
        let graphs: Vec<Graph> = (0..10)
            .map(|_| random_connected(&mut rng, 9, 4, &[0, 1, 2], &[3, 4]))
            .collect();
        let o = Arc::new(DistanceOracle::new(
            Arc::new(graphs),
            GedEngine::new(GedConfig::default()),
        ));
        // All threads release from a barrier and walk the pairs in the SAME
        // order (half forward, half reverse), so every uncached pair is
        // reached by several threads at once — without the rendezvous each
        // racer would run the engine and the equality assertions below fail.
        let barrier = Arc::new(std::sync::Barrier::new(THREADS));
        let verdicts: Vec<Observations> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..THREADS)
                .map(|t| {
                    let o = Arc::clone(&o);
                    let pairs = pairs.clone();
                    let barrier = Arc::clone(&barrier);
                    s.spawn(move || {
                        let mut seen = Vec::new();
                        for r in 0..rounds {
                            let mut order = pairs.clone();
                            if (t + r) % 2 == 1 {
                                order.reverse();
                            }
                            barrier.wait();
                            for &(i, j) in &order {
                                let v = if t % 2 == 0 {
                                    o.within(i, j, tau)
                                } else {
                                    o.within(j, i, tau)
                                };
                                seen.push(((i, j), v.map(f64::to_bits)));
                            }
                        }
                        seen
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Every thread observed the same verdict for every pair.
        let mut reference: Vec<Option<Option<u64>>> = vec![None; pairs.len()];
        for obs in &verdicts {
            for &((i, j), v) in obs {
                let idx = pairs.iter().position(|&p| p == (i, j)).unwrap();
                match reference[idx] {
                    None => reference[idx] = Some(v),
                    Some(r) => assert_eq!(v, r, "seed {seed} pair ({i},{j}) disagreed"),
                }
            }
        }

        let s = o.stats();
        let total_requests = (THREADS * rounds * pairs.len()) as u64;
        // Exactly one engine call per unique pair — accepted pairs count a
        // computation, rejected pairs a rejection — and nothing
        // double-counted.
        assert_eq!(
            s.distance_computations + s.within_rejections,
            pairs.len() as u64,
            "seed {seed}: engine calls must equal unique pairs \
             (computations {} + rejections {})",
            s.distance_computations,
            s.within_rejections
        );
        assert_eq!(s.cache_hits, total_requests - pairs.len() as u64);
        assert_eq!(o.engine_calls(), pairs.len() as u64);
    }
}

#[test]
fn concurrent_within_counters_sum_exactly() {
    let o = oracle(12, 2);
    let pairs = pairs(12);
    // Pre-resolve every pair so the within() calls below are all answerable
    // from the exact cache: with a warm cache the counter invariant is exact
    // even under arbitrary interleaving.
    for &(i, j) in &pairs {
        o.distance(i, j);
    }
    o.reset_stats();
    let taus = [0.5, 2.0, 8.0];
    let per_thread = pairs.len() * taus.len();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let o = Arc::clone(&o);
            let pairs = pairs.clone();
            s.spawn(move || {
                for &(i, j) in &pairs {
                    for &tau in &taus {
                        let verdict = o.within(i, j, tau);
                        // Warm cache: the verdict must equal the exact test.
                        let d = o.distance(i, j);
                        assert_eq!(
                            verdict.is_some(),
                            d <= tau + 1e-9,
                            "pair ({i},{j}) τ={tau} t={t}"
                        );
                    }
                }
            });
        }
    });
    let s = o.stats();
    // Every request hit the exact cache: within() + the re-check distance().
    assert_eq!(s.distance_computations, 0);
    assert_eq!(s.within_rejections, 0);
    assert_eq!(s.cache_hits, (THREADS * per_thread * 2) as u64);
}

#[test]
fn mixed_distance_within_requests_account_every_call() {
    // Cold-cache mixed workload: each thread works a disjoint pair slice, so
    // no two threads race on one pair and the per-request accounting is
    // exact: every non-self request increments exactly one counter.
    let o = oracle(14, 3);
    let pairs = pairs(14);
    let chunk = pairs.len().div_ceil(THREADS);
    let issued: u64 = std::thread::scope(|s| {
        let handles: Vec<_> = pairs
            .chunks(chunk)
            .map(|slice| {
                let o = Arc::clone(&o);
                let slice = slice.to_vec();
                s.spawn(move || {
                    let mut n = 0u64;
                    for &(i, j) in &slice {
                        if (i + j) % 2 == 0 {
                            o.distance(i, j);
                        } else {
                            o.within(i, j, 2.0);
                        }
                        n += 1;
                        // A self-request must stay free of charge.
                        assert_eq!(o.distance(i, i), 0.0);
                    }
                    n
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    let s = o.stats();
    assert_eq!(
        s.distance_computations + s.within_rejections + s.cache_hits,
        issued,
        "counters must sum to the number of non-self requests"
    );
}
