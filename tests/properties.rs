//! Property-based tests (proptest) over the core invariants the paper's
//! theorems rely on: metric axioms of the edit distance, admissibility of
//! every bound, Lipschitz embedding guarantees, and submodularity of π.

use graphrep::ged::{bipartite, bounds, ged_exact_full, CostModel};
use graphrep::graph::{Graph, GraphBuilder};
use graphrep::metric::Bitset;
use proptest::prelude::*;

/// Strategy: a small random connected labeled graph.
fn arb_graph(max_nodes: usize) -> impl Strategy<Value = Graph> {
    (1..=max_nodes).prop_flat_map(|n| {
        let labels = proptest::collection::vec(0u32..3, n);
        let parents = proptest::collection::vec(0usize..n.max(1), n.saturating_sub(1));
        let extra = proptest::collection::vec((0usize..n, 0usize..n, 0u32..2), 0..3);
        (labels, parents, extra).prop_map(move |(labels, parents, extra)| {
            let mut b = GraphBuilder::new();
            for &l in &labels {
                b.add_node(l);
            }
            for (i, &p) in parents.iter().enumerate() {
                let child = (i + 1) as u16;
                let parent = (p % (i + 1)) as u16;
                b.add_edge(child, parent, 5).unwrap();
            }
            for &(u, v, l) in &extra {
                let (u, v) = (u as u16, v as u16);
                if u != v && !b.has_edge(u, v) {
                    b.add_edge(u, v, l).unwrap();
                }
            }
            b.build()
        })
    })
}

fn d(a: &Graph, b: &Graph) -> f64 {
    ged_exact_full(a, b, &CostModel::uniform(), 3_000_000)
        .expect("budget")
        .0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ged_identity(g in arb_graph(6)) {
        prop_assert_eq!(d(&g, &g), 0.0);
    }

    #[test]
    fn ged_symmetry(a in arb_graph(5), b in arb_graph(6)) {
        prop_assert_eq!(d(&a, &b), d(&b, &a));
    }

    #[test]
    fn ged_triangle_inequality(a in arb_graph(4), b in arb_graph(5), c in arb_graph(4)) {
        let (ab, bc, ac) = (d(&a, &b), d(&b, &c), d(&a, &c));
        prop_assert!(ac <= ab + bc + 1e-9, "{} > {} + {}", ac, ab, bc);
    }

    #[test]
    fn bounds_sandwich_exact(a in arb_graph(5), b in arb_graph(6)) {
        let cost = CostModel::uniform();
        let exact = d(&a, &b);
        let lb = bounds::label_lower_bound(&a, &b, &cost);
        let ub = bipartite::bp_upper_bound(&a, &b, &cost);
        prop_assert!(lb <= exact + 1e-9, "lb {} > exact {}", lb, exact);
        prop_assert!(ub >= exact - 1e-9, "ub {} < exact {}", ub, exact);
    }

    #[test]
    fn within_is_consistent_with_distance(a in arb_graph(5), b in arb_graph(5), tau in 0.0f64..8.0) {
        use graphrep::ged::{GedConfig, GedEngine};
        let e = GedEngine::new(GedConfig::default());
        let exact = e.distance(&a, &b);
        match e.distance_within(&a, &b, tau) {
            Some(v) => {
                prop_assert!((v - exact).abs() < 1e-9);
                prop_assert!(exact <= tau + 1e-9);
            }
            None => prop_assert!(exact > tau - 1e-9),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bitset_union_intersection_counts(
        xs in proptest::collection::hash_set(0usize..256, 0..40),
        ys in proptest::collection::hash_set(0usize..256, 0..40),
    ) {
        let a = Bitset::from_indices(256, xs.iter().copied());
        let b = Bitset::from_indices(256, ys.iter().copied());
        let inter = xs.intersection(&ys).count();
        let diff = xs.difference(&ys).count();
        prop_assert_eq!(a.intersection_count(&b), inter);
        prop_assert_eq!(a.difference_count(&b), diff);
        let mut u = a.clone();
        u.union_with(&b);
        prop_assert_eq!(u.count(), xs.union(&ys).count());
    }

    #[test]
    fn pi_is_submodular_on_random_cover_instances(
        sets in proptest::collection::vec(
            proptest::collection::hash_set(0usize..60, 0..12), 3..10),
        pick in 0usize..10,
    ) {
        // π(S) = |∪ N(g)| is submodular: adding `o` to a subset gains at
        // least as much as adding it to a superset (Thm 2).
        // S ⊆ T with S = the first half of the sets and T = all of them.
        let o = &sets[pick % sets.len()];
        let half = sets.len() / 2;
        let unite = |range: &[std::collections::HashSet<usize>]| {
            let mut u = std::collections::HashSet::new();
            for s in range {
                u.extend(s.iter().copied());
            }
            u
        };
        let s_u = unite(&sets[..half]);
        let t_u = unite(&sets);
        let gain_s = o.difference(&s_u).count();
        let gain_t = o.difference(&t_u).count();
        prop_assert!(gain_s >= gain_t, "submodularity violated");
    }
}

/// Vantage-table candidate sets are supersets of true θ-neighborhoods on a
/// real edit-distance space (Thm 5), and the Lipschitz bounds sandwich the
/// true distance (Thm 4 / triangle inequality).
#[test]
fn vantage_bounds_hold_on_real_ged_space() {
    use graphrep::datagen::{DatasetKind, DatasetSpec};
    use graphrep::ged::GedConfig;
    use graphrep::metric::VantageTable;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    let data = DatasetSpec::new(DatasetKind::DudLike, 60, 601).generate();
    let oracle = data.db.oracle(GedConfig::default());
    let mut rng = SmallRng::seed_from_u64(1);
    let vt = VantageTable::build(oracle.len(), 5, &mut rng, |a, b| oracle.distance(a, b));
    for i in (0..60u32).step_by(9) {
        for j in (0..60u32).step_by(13) {
            let d = oracle.distance(i, j);
            assert!(vt.lower_bound(i, j) <= d + 1e-6);
            assert!(vt.upper_bound(i, j) >= d - 1e-6);
        }
        let theta = data.default_theta;
        let cands = vt.candidates(i, theta);
        for j in 0..60u32 {
            if oracle.within(i, j, theta).is_some() {
                assert!(
                    cands.contains(&j),
                    "true neighbor {j} of {i} missing from N̂"
                );
            }
        }
    }
}
