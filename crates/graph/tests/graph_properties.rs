//! Property-based tests of the graph data model and its I/O.

use graphrep_graph::{generate, io, Graph, GraphBuilder};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (1usize..12).prop_flat_map(|n| {
        let labels = proptest::collection::vec(0u32..5, n);
        let parents = proptest::collection::vec(0usize..n.max(1), n.saturating_sub(1));
        let extra = proptest::collection::vec((0usize..n, 0usize..n, 0u32..4), 0..6);
        (labels, parents, extra).prop_map(move |(labels, parents, extra)| {
            let mut b = GraphBuilder::new();
            for &l in &labels {
                b.add_node(l);
            }
            for (i, &p) in parents.iter().enumerate() {
                b.add_edge((i + 1) as u16, (p % (i + 1)) as u16, 9).unwrap();
            }
            for &(u, v, l) in &extra {
                let (u, v) = (u as u16, v as u16);
                if u != v && !b.has_edge(u, v) {
                    b.add_edge(u, v, l).unwrap();
                }
            }
            b.build()
        })
    })
}

proptest! {
    #[test]
    fn adjacency_is_symmetric(g in arb_graph()) {
        for u in g.node_ids() {
            for &(v, l) in g.neighbors(u) {
                prop_assert_eq!(g.edge_label(v, u), Some(l));
            }
        }
    }

    #[test]
    fn degree_sums_to_twice_edges(g in arb_graph()) {
        let total: usize = g.node_ids().map(|u| g.degree(u)).sum();
        prop_assert_eq!(total, 2 * g.edge_count());
    }

    #[test]
    fn neighbor_lists_are_sorted_and_loop_free(g in arb_graph()) {
        for u in g.node_ids() {
            let nbrs = g.neighbors(u);
            for w in nbrs.windows(2) {
                prop_assert!(w[0].0 < w[1].0, "unsorted or duplicate neighbor");
            }
            prop_assert!(nbrs.iter().all(|&(v, _)| v != u), "self loop");
        }
    }

    #[test]
    fn text_io_round_trips(g in arb_graph()) {
        let mut s = String::new();
        io::write_graph(&g, &mut s);
        let back = io::read_graphs(&s).unwrap();
        prop_assert_eq!(back.len(), 1);
        prop_assert_eq!(&back[0], &g);
    }

    #[test]
    fn label_multisets_have_right_cardinality(g in arb_graph()) {
        prop_assert_eq!(g.sorted_node_labels().len(), g.node_count());
        prop_assert_eq!(g.sorted_edge_labels().len(), g.edge_count());
    }

    #[test]
    fn spanning_tree_construction_is_connected(
        n in 1usize..25, extra in 0usize..8, seed in 0u64..1000
    ) {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = generate::random_connected(&mut rng, n, extra, &[0, 1], &[2, 3]);
        prop_assert!(g.is_connected());
        prop_assert_eq!(g.node_count(), n);
    }

    #[test]
    fn mutate_never_disconnects(
        n in 2usize..12, edits in 0usize..6, seed in 0u64..500
    ) {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(seed);
        let base = generate::random_connected(&mut rng, n, 2, &[0, 1, 2], &[5]);
        let m = generate::mutate(&mut rng, &base, edits, &[0, 1, 2], &[5]);
        prop_assert!(m.is_connected());
    }
}
