//! Structural statistics over graph collections (paper Table 3).

use crate::graph::Graph;
use serde::{Deserialize, Serialize};

/// Summary statistics of a graph database.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Number of graphs.
    pub graphs: usize,
    /// Mean node count.
    pub avg_nodes: f64,
    /// Mean edge count.
    pub avg_edges: f64,
    /// Largest node count.
    pub max_nodes: usize,
    /// Largest edge count.
    pub max_edges: usize,
    /// Number of distinct node labels observed.
    pub node_label_count: usize,
    /// Number of distinct edge labels observed.
    pub edge_label_count: usize,
}

impl DatasetStats {
    /// Computes statistics over `graphs`.
    pub fn compute(graphs: &[Graph]) -> Self {
        let n = graphs.len();
        let mut nodes = 0usize;
        let mut edges = 0usize;
        let mut max_nodes = 0usize;
        let mut max_edges = 0usize;
        let mut node_labels = std::collections::HashSet::new();
        let mut edge_labels = std::collections::HashSet::new();
        for g in graphs {
            nodes += g.node_count();
            edges += g.edge_count();
            max_nodes = max_nodes.max(g.node_count());
            max_edges = max_edges.max(g.edge_count());
            node_labels.extend(g.node_labels().iter().copied());
            edge_labels.extend(g.edges().iter().map(|e| e.label));
        }
        let denom = n.max(1) as f64;
        Self {
            graphs: n,
            avg_nodes: nodes as f64 / denom,
            avg_edges: edges as f64 / denom,
            max_nodes,
            max_edges,
            node_label_count: node_labels.len(),
            edge_label_count: edge_labels.len(),
        }
    }
}

impl std::fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} graphs, avg nodes {:.1}, avg edges {:.1}, {} node labels, {} edge labels",
            self.graphs,
            self.avg_nodes,
            self.avg_edges,
            self.node_label_count,
            self.edge_label_count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn g(nodes: &[u32], edges: &[(u16, u16, u32)]) -> Graph {
        let mut b = GraphBuilder::new();
        for &l in nodes {
            b.add_node(l);
        }
        for &(u, v, l) in edges {
            b.add_edge(u, v, l).unwrap();
        }
        b.build()
    }

    #[test]
    fn empty_database() {
        let s = DatasetStats::compute(&[]);
        assert_eq!(s.graphs, 0);
        assert_eq!(s.avg_nodes, 0.0);
    }

    #[test]
    fn averages_and_labels() {
        let a = g(&[0, 1], &[(0, 1, 9)]);
        let b = g(&[0, 0, 2, 3], &[(0, 1, 9), (1, 2, 8), (2, 3, 9)]);
        let s = DatasetStats::compute(&[a, b]);
        assert_eq!(s.graphs, 2);
        assert!((s.avg_nodes - 3.0).abs() < 1e-12);
        assert!((s.avg_edges - 2.0).abs() < 1e-12);
        assert_eq!(s.max_nodes, 4);
        assert_eq!(s.max_edges, 3);
        assert_eq!(s.node_label_count, 4); // {0,1,2,3}
        assert_eq!(s.edge_label_count, 2); // {8,9}
        assert!(s.to_string().contains("2 graphs"));
    }
}
