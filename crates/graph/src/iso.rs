//! Label-preserving graph isomorphism (VF2-style backtracking).
//!
//! Used by tests and dataset tooling (e.g. deduplicating generated graphs,
//! asserting that GED = 0 coincides with isomorphism). Graphs in this
//! workspace are small, so a straightforward backtracking matcher with
//! degree/label pruning is entirely adequate.

use crate::graph::{Graph, NodeId};

/// Whether `a` and `b` are isomorphic, respecting node and edge labels.
pub fn isomorphic(a: &Graph, b: &Graph) -> bool {
    if a.node_count() != b.node_count() || a.edge_count() != b.edge_count() {
        return false;
    }
    if a.sorted_node_labels() != b.sorted_node_labels()
        || a.sorted_edge_labels() != b.sorted_edge_labels()
    {
        return false;
    }
    // Degree sequences must match too.
    let mut da: Vec<usize> = a.node_ids().map(|u| a.degree(u)).collect();
    let mut db: Vec<usize> = b.node_ids().map(|u| b.degree(u)).collect();
    da.sort_unstable();
    db.sort_unstable();
    if da != db {
        return false;
    }
    let n = a.node_count();
    if n == 0 {
        return true;
    }
    // Match a's nodes in degree-descending order (most constrained first).
    let mut order: Vec<NodeId> = (0..n as NodeId).collect();
    order.sort_by_key(|&u| std::cmp::Reverse(a.degree(u)));
    let mut map = vec![u16::MAX; n]; // a node -> b node
    let mut used = vec![false; n];
    backtrack(a, b, &order, 0, &mut map, &mut used)
}

fn feasible(
    a: &Graph,
    b: &Graph,
    order: &[NodeId],
    depth: usize,
    map: &[u16],
    u: NodeId,
    v: NodeId,
) -> bool {
    if a.node_label(u) != b.node_label(v) || a.degree(u) != b.degree(v) {
        return false;
    }
    // Edges between u and already-mapped nodes must exist identically in b.
    for &p in &order[..depth] {
        let e1 = a.edge_label(u, p);
        let e2 = b.edge_label(v, map[p as usize] as NodeId);
        if e1 != e2 {
            return false;
        }
    }
    true
}

fn backtrack(
    a: &Graph,
    b: &Graph,
    order: &[NodeId],
    depth: usize,
    map: &mut Vec<u16>,
    used: &mut Vec<bool>,
) -> bool {
    if depth == order.len() {
        return true;
    }
    let u = order[depth];
    for v in 0..b.node_count() as NodeId {
        if used[v as usize] || !feasible(a, b, order, depth, map, u, v) {
            continue;
        }
        map[u as usize] = v;
        used[v as usize] = true;
        if backtrack(a, b, order, depth + 1, map, used) {
            return true;
        }
        used[v as usize] = false;
        map[u as usize] = u16::MAX;
    }
    false
}

/// Deduplicates a collection up to isomorphism, keeping first occurrences.
/// Quadratic — intended for dataset tooling, not hot paths.
pub fn dedup_isomorphic(graphs: &[Graph]) -> Vec<usize> {
    let mut keep: Vec<usize> = Vec::new();
    for (i, g) in graphs.iter().enumerate() {
        if !keep.iter().any(|&j| isomorphic(g, &graphs[j])) {
            keep.push(i);
        }
    }
    keep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::generate::random_connected;
    use rand::rngs::SmallRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    fn build(nodes: &[u32], edges: &[(u16, u16, u32)]) -> Graph {
        let mut b = GraphBuilder::new();
        for &l in nodes {
            b.add_node(l);
        }
        for &(u, v, l) in edges {
            b.add_edge(u, v, l).unwrap();
        }
        b.build()
    }

    /// Relabels node ids by a random permutation — isomorphic by
    /// construction.
    fn permute(g: &Graph, seed: u64) -> Graph {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = g.node_count();
        let mut perm: Vec<u16> = (0..n as u16).collect();
        perm.shuffle(&mut rng);
        let mut b = GraphBuilder::new();
        let mut labels = vec![0u32; n];
        for u in g.node_ids() {
            labels[perm[u as usize] as usize] = g.node_label(u);
        }
        for &l in &labels {
            b.add_node(l);
        }
        for e in g.edges() {
            b.add_edge(perm[e.u as usize], perm[e.v as usize], e.label)
                .unwrap();
        }
        b.build()
    }

    #[test]
    fn permutations_are_isomorphic() {
        let mut rng = SmallRng::seed_from_u64(1);
        for trial in 0..20 {
            let g = random_connected(&mut rng, 8, 3, &[0, 1, 2], &[5, 6]);
            let h = permute(&g, trial);
            assert!(isomorphic(&g, &h), "trial {trial}");
        }
    }

    #[test]
    fn label_differences_break_isomorphism() {
        let g = build(&[0, 1], &[(0, 1, 5)]);
        let h = build(&[0, 2], &[(0, 1, 5)]);
        assert!(!isomorphic(&g, &h));
        let h = build(&[0, 1], &[(0, 1, 6)]);
        assert!(!isomorphic(&g, &h));
    }

    #[test]
    fn same_multiset_different_structure() {
        // A path and a star share label multisets and degree sums but not
        // degree sequences / structure.
        let path = build(&[0, 0, 0, 0], &[(0, 1, 1), (1, 2, 1), (2, 3, 1)]);
        let star = build(&[0, 0, 0, 0], &[(0, 1, 1), (0, 2, 1), (0, 3, 1)]);
        assert!(!isomorphic(&path, &star));
    }

    #[test]
    fn structure_beyond_degrees() {
        // 6-cycle vs two triangles: identical degree sequences and labels.
        let cycle = build(
            &[0; 6],
            &[
                (0, 1, 1),
                (1, 2, 1),
                (2, 3, 1),
                (3, 4, 1),
                (4, 5, 1),
                (0, 5, 1),
            ],
        );
        let triangles = build(
            &[0; 6],
            &[
                (0, 1, 1),
                (1, 2, 1),
                (0, 2, 1),
                (3, 4, 1),
                (4, 5, 1),
                (3, 5, 1),
            ],
        );
        assert!(!isomorphic(&cycle, &triangles));
    }

    #[test]
    fn empty_graphs_isomorphic() {
        let e1 = GraphBuilder::new().build();
        let e2 = GraphBuilder::new().build();
        assert!(isomorphic(&e1, &e2));
    }

    #[test]
    fn dedup_keeps_one_per_class() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = random_connected(&mut rng, 6, 2, &[0, 1], &[5]);
        let h = random_connected(&mut rng, 7, 2, &[0, 1], &[5]);
        let graphs = vec![
            g.clone(),
            permute(&g, 9),
            h.clone(),
            permute(&h, 10),
            g.clone(),
        ];
        assert_eq!(dedup_isomorphic(&graphs), vec![0, 2]);
    }
}
