//! Random graph primitives used by the dataset generators.
//!
//! These are deliberately low level: `graphrep-datagen` composes them into
//! domain-shaped families (molecule scaffolds, ego-nets, …).

use crate::builder::GraphBuilder;
use crate::graph::{Graph, NodeId};
use crate::labels::Label;
use rand::seq::SliceRandom;
use rand::Rng;

/// Uniform draw from an alphabet. Emptiness is rejected at the public API
/// boundary, so indexing here is total.
fn pick<R: Rng + ?Sized>(rng: &mut R, alphabet: &[Label]) -> Label {
    alphabet[rng.gen_range(0..alphabet.len())]
}

/// Generates a random connected graph with `n` nodes.
///
/// A random spanning tree guarantees connectivity; `extra_edges` additional
/// non-tree edges are then inserted where capacity allows. Node and edge
/// labels are drawn uniformly from the provided alphabets.
pub fn random_connected<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    extra_edges: usize,
    node_alphabet: &[Label],
    edge_alphabet: &[Label],
) -> Graph {
    assert!(n > 0, "graph must have at least one node");
    assert!(!node_alphabet.is_empty() && !edge_alphabet.is_empty());
    let mut b = GraphBuilder::with_capacity(n, n - 1 + extra_edges);
    for _ in 0..n {
        b.add_node(pick(rng, node_alphabet));
    }
    // Random spanning tree: attach node i to a uniformly random earlier node.
    for i in 1..n {
        let j = rng.gen_range(0..i);
        let fresh = b
            .add_edge(i as NodeId, j as NodeId, pick(rng, edge_alphabet))
            .is_ok();
        debug_assert!(fresh, "tree edge connects node {i} to an earlier node");
    }
    let max_edges = n * (n - 1) / 2;
    let budget = extra_edges.min(max_edges - (n - 1));
    let mut added = 0;
    let mut attempts = 0;
    while added < budget && attempts < budget * 20 + 64 {
        attempts += 1;
        let u = rng.gen_range(0..n) as NodeId;
        let v = rng.gen_range(0..n) as NodeId;
        if u == v || b.has_edge(u, v) {
            continue;
        }
        let fresh = b.add_edge(u, v, pick(rng, edge_alphabet)).is_ok();
        debug_assert!(fresh, "has_edge was checked above");
        added += 1;
    }
    b.build()
}

/// Kinds of local edits applied by [`mutate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EditKind {
    /// Relabel a random node.
    RelabelNode,
    /// Relabel a random edge.
    RelabelEdge,
    /// Attach a fresh leaf node to a random node.
    AddLeaf,
    /// Remove a random leaf node (degree 1), if any.
    RemoveLeaf,
    /// Add a random non-tree edge, if capacity allows.
    AddEdge,
}

/// Applies `edits` random local edits to `g`, preserving connectivity.
///
/// This is how dataset generators produce *families*: a scaffold plus a small
/// number of edits yields graphs within a controlled edit distance of the
/// scaffold, giving the clustered metric structure the paper's evaluation
/// depends on.
pub fn mutate<R: Rng + ?Sized>(
    rng: &mut R,
    g: &Graph,
    edits: usize,
    node_alphabet: &[Label],
    edge_alphabet: &[Label],
) -> Graph {
    assert!(!node_alphabet.is_empty() && !edge_alphabet.is_empty());
    let mut node_labels: Vec<Label> = g.node_labels().to_vec();
    let mut edges: Vec<(NodeId, NodeId, Label)> =
        g.edges().iter().map(|e| (e.u, e.v, e.label)).collect();
    for _ in 0..edits {
        let kind = match rng.gen_range(0..5) {
            0 => EditKind::RelabelNode,
            1 => EditKind::RelabelEdge,
            2 => EditKind::AddLeaf,
            3 => EditKind::RemoveLeaf,
            _ => EditKind::AddEdge,
        };
        apply_edit(
            rng,
            kind,
            &mut node_labels,
            &mut edges,
            node_alphabet,
            edge_alphabet,
        );
    }
    let mut b = GraphBuilder::with_capacity(node_labels.len(), edges.len());
    for &l in &node_labels {
        b.add_node(l);
    }
    for &(u, v, l) in &edges {
        let consistent = b.add_edge(u, v, l).is_ok();
        debug_assert!(consistent, "edit list stays duplicate-free and in range");
    }
    b.build()
}

fn apply_edit<R: Rng + ?Sized>(
    rng: &mut R,
    kind: EditKind,
    node_labels: &mut Vec<Label>,
    edges: &mut Vec<(NodeId, NodeId, Label)>,
    node_alphabet: &[Label],
    edge_alphabet: &[Label],
) {
    let n = node_labels.len();
    match kind {
        EditKind::RelabelNode => {
            if n > 0 {
                let u = rng.gen_range(0..n);
                node_labels[u] = pick(rng, node_alphabet);
            }
        }
        EditKind::RelabelEdge => {
            if !edges.is_empty() {
                let i = rng.gen_range(0..edges.len());
                edges[i].2 = pick(rng, edge_alphabet);
            }
        }
        EditKind::AddLeaf => {
            if n > 0 && n < NodeId::MAX as usize {
                let anchor = rng.gen_range(0..n) as NodeId;
                let id = n as NodeId;
                node_labels.push(pick(rng, node_alphabet));
                edges.push((anchor.min(id), anchor.max(id), pick(rng, edge_alphabet)));
            }
        }
        EditKind::RemoveLeaf => {
            if n > 2 {
                let mut deg = vec![0usize; n];
                for &(u, v, _) in edges.iter() {
                    deg[u as usize] += 1;
                    deg[v as usize] += 1;
                }
                let leaves: Vec<usize> = (0..n).filter(|&u| deg[u] == 1).collect();
                if let Some(&leaf) = leaves.as_slice().choose(rng) {
                    let last = n - 1;
                    // Swap-remove the leaf, rewiring ids that pointed at `last`.
                    node_labels.swap_remove(leaf);
                    edges.retain(|&(u, v, _)| u as usize != leaf && v as usize != leaf);
                    if leaf != last {
                        for e in edges.iter_mut() {
                            if e.0 as usize == last {
                                e.0 = leaf as NodeId;
                            }
                            if e.1 as usize == last {
                                e.1 = leaf as NodeId;
                            }
                            if e.0 > e.1 {
                                std::mem::swap(&mut e.0, &mut e.1);
                            }
                        }
                    }
                }
            }
        }
        EditKind::AddEdge => {
            if n >= 2 {
                for _ in 0..8 {
                    let u = rng.gen_range(0..n) as NodeId;
                    let v = rng.gen_range(0..n) as NodeId;
                    if u == v {
                        continue;
                    }
                    let key = (u.min(v), u.max(v));
                    if edges.iter().any(|&(a, b, _)| (a, b) == key) {
                        continue;
                    }
                    edges.push((key.0, key.1, pick(rng, edge_alphabet)));
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    const NODES: &[Label] = &[0, 1, 2, 3];
    const EDGES: &[Label] = &[10, 11];

    #[test]
    fn random_connected_is_connected() {
        let mut rng = SmallRng::seed_from_u64(7);
        for n in [1usize, 2, 5, 12, 30] {
            let g = random_connected(&mut rng, n, 4, NODES, EDGES);
            assert_eq!(g.node_count(), n);
            assert!(g.is_connected(), "n={n}");
            assert!(g.edge_count() >= n.saturating_sub(1));
        }
    }

    #[test]
    fn extra_edges_respect_capacity() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = random_connected(&mut rng, 3, 100, NODES, EDGES);
        assert!(g.edge_count() <= 3);
    }

    #[test]
    fn mutate_preserves_connectivity() {
        let mut rng = SmallRng::seed_from_u64(11);
        let base = random_connected(&mut rng, 10, 3, NODES, EDGES);
        for edits in [0usize, 1, 3, 8] {
            let m = mutate(&mut rng, &base, edits, NODES, EDGES);
            assert!(m.is_connected(), "edits={edits}");
            assert!(m.node_count() >= 2);
        }
    }

    #[test]
    fn mutate_zero_edits_is_identity() {
        let mut rng = SmallRng::seed_from_u64(5);
        let base = random_connected(&mut rng, 8, 2, NODES, EDGES);
        let m = mutate(&mut rng, &base, 0, NODES, EDGES);
        assert_eq!(base, m);
    }

    #[test]
    fn mutate_changes_graphs_eventually() {
        let mut rng = SmallRng::seed_from_u64(9);
        let base = random_connected(&mut rng, 8, 2, NODES, EDGES);
        let changed = (0..16).any(|_| mutate(&mut rng, &base, 4, NODES, EDGES) != base);
        assert!(changed);
    }
}
