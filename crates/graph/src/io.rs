//! Text serialization for graphs and graph collections.
//!
//! The format is a minimal line-oriented exchange format (one graph per
//! block), chosen over JSON for the hot path of persisting large synthetic
//! databases. Serde (JSON etc.) also works on [`Graph`] directly for
//! interoperability; this module is the compact native format:
//!
//! ```text
//! t <node_count> <edge_count>
//! v <node_id> <label>
//! e <u> <v> <label>
//! ```

use crate::builder::GraphBuilder;
use crate::graph::{Graph, NodeId};
use std::fmt::Write as _;
use std::path::Path;

/// Errors raised while reading or parsing the text format.
///
/// Every variant carries enough context (1-based line numbers, offending
/// content, expected-vs-found counts, file paths) for the CLI to print an
/// actionable message without additional lookups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphIoError {
    /// A line did not match any of `t`/`v`/`e`, or its fields were malformed.
    BadLine {
        /// 1-based line number within the input.
        line: usize,
        /// The offending line, verbatim (trimmed).
        content: String,
    },
    /// Counts in the `t` header disagreed with the body.
    CountMismatch {
        /// 1-based line number of the `t` header.
        line: usize,
        /// Node count the header promised.
        expected_nodes: usize,
        /// Edge count the header promised.
        expected_edges: usize,
        /// Nodes actually present in the block.
        found_nodes: usize,
        /// Edges actually present in the block.
        found_edges: usize,
    },
    /// The structural validation of the builder failed (e.g. a duplicate or
    /// out-of-range edge).
    Structure {
        /// 1-based line number of the offending record.
        line: usize,
        /// Builder-level description of the violation.
        detail: String,
    },
    /// A filesystem read or write failed.
    Io {
        /// The path involved.
        path: String,
        /// Stringified OS error.
        detail: String,
    },
}

impl std::fmt::Display for GraphIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphIoError::BadLine { line, content } => {
                write!(f, "line {line}: unparseable record `{content}`")
            }
            GraphIoError::CountMismatch {
                line,
                expected_nodes,
                expected_edges,
                found_nodes,
                found_edges,
            } => write!(
                f,
                "line {line}: header promised {expected_nodes} nodes / {expected_edges} edges \
                 but the block has {found_nodes} nodes / {found_edges} edges"
            ),
            GraphIoError::Structure { line, detail } => {
                write!(f, "line {line}: invalid structure: {detail}")
            }
            GraphIoError::Io { path, detail } => write!(f, "{path}: {detail}"),
        }
    }
}

impl std::error::Error for GraphIoError {}

/// Serializes one graph into the text format, appending to `out`.
pub fn write_graph(g: &Graph, out: &mut String) {
    let _ = writeln!(out, "t {} {}", g.node_count(), g.edge_count());
    for u in g.node_ids() {
        let _ = writeln!(out, "v {} {}", u, g.node_label(u));
    }
    for e in g.edges() {
        let _ = writeln!(out, "e {} {} {}", e.u, e.v, e.label);
    }
}

/// Serializes a collection of graphs.
pub fn write_graphs(gs: &[Graph]) -> String {
    let mut out = String::new();
    for g in gs {
        write_graph(g, &mut out);
    }
    out
}

/// Writes a collection of graphs to `path` in the text format.
pub fn write_graphs_path(path: &Path, gs: &[Graph]) -> Result<(), GraphIoError> {
    std::fs::write(path, write_graphs(gs)).map_err(|e| GraphIoError::Io {
        path: path.display().to_string(),
        detail: e.to_string(),
    })
}

/// Reads a collection of graphs from the text file at `path`.
pub fn read_graphs_path(path: &Path) -> Result<Vec<Graph>, GraphIoError> {
    let text = std::fs::read_to_string(path).map_err(|e| GraphIoError::Io {
        path: path.display().to_string(),
        detail: e.to_string(),
    })?;
    read_graphs(&text)
}

/// One in-progress block: builder plus the `t` header's promises.
struct Block {
    builder: GraphBuilder,
    header_line: usize,
    nodes: usize,
    edges: usize,
}

/// Parses a collection of graphs from the text format.
///
/// Line numbers in errors are 1-based; blank lines and `#` comments are
/// skipped.
pub fn read_graphs(text: &str) -> Result<Vec<Graph>, GraphIoError> {
    let mut graphs = Vec::new();
    let mut block: Option<Block> = None;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let bad = || GraphIoError::BadLine {
            line: lineno,
            content: line.to_string(),
        };
        let mut parts = line.split_ascii_whitespace();
        let tag = parts.next().ok_or_else(bad)?;
        let nums: Vec<u64> = parts
            .map(|p| p.parse::<u64>().map_err(|_| bad()))
            .collect::<Result<_, _>>()?;
        match (tag, nums.as_slice()) {
            ("t", [n, m]) => {
                if let Some(b) = block.take() {
                    graphs.push(finish(b)?);
                }
                block = Some(Block {
                    builder: GraphBuilder::with_capacity(*n as usize, *m as usize),
                    header_line: lineno,
                    nodes: *n as usize,
                    edges: *m as usize,
                });
            }
            ("v", [id, label]) => {
                let b = block.as_mut().ok_or_else(bad)?;
                let got = b.builder.add_node(*label as u32);
                if got as u64 != *id {
                    return Err(bad());
                }
            }
            ("e", [u, v, label]) => {
                let b = block.as_mut().ok_or_else(bad)?;
                b.builder
                    .add_edge(*u as NodeId, *v as NodeId, *label as u32)
                    .map_err(|e| GraphIoError::Structure {
                        line: lineno,
                        detail: e.to_string(),
                    })?;
            }
            _ => return Err(bad()),
        }
    }
    if let Some(b) = block.take() {
        graphs.push(finish(b)?);
    }
    Ok(graphs)
}

fn finish(b: Block) -> Result<Graph, GraphIoError> {
    if b.builder.node_count() != b.nodes || b.builder.edge_count() != b.edges {
        return Err(GraphIoError::CountMismatch {
            line: b.header_line,
            expected_nodes: b.nodes,
            expected_edges: b.edges,
            found_nodes: b.builder.node_count(),
            found_edges: b.builder.edge_count(),
        });
    }
    Ok(b.builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::random_connected;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn round_trip_many() {
        let mut rng = SmallRng::seed_from_u64(42);
        let gs: Vec<Graph> = (0..10)
            .map(|i| random_connected(&mut rng, 3 + i, 2, &[0, 1, 2], &[5, 6]))
            .collect();
        let text = write_graphs(&gs);
        let back = read_graphs(&text).unwrap();
        assert_eq!(gs, back);
    }

    #[test]
    fn empty_input_is_empty() {
        assert_eq!(read_graphs("").unwrap(), vec![]);
        assert_eq!(read_graphs("\n# comment\n").unwrap(), vec![]);
    }

    #[test]
    fn bad_line_reports_position_and_content() {
        let err = read_graphs("t 1 0\nv 0 0\nx 1 2\n").unwrap_err();
        assert_eq!(
            err,
            GraphIoError::BadLine {
                line: 3,
                content: "x 1 2".into()
            }
        );
        assert!(err.to_string().contains("line 3"));
        assert!(err.to_string().contains("x 1 2"));
    }

    #[test]
    fn count_mismatch_reports_expected_and_found() {
        let err = read_graphs("t 2 0\nv 0 0\n").unwrap_err();
        assert_eq!(
            err,
            GraphIoError::CountMismatch {
                line: 1,
                expected_nodes: 2,
                expected_edges: 0,
                found_nodes: 1,
                found_edges: 0,
            }
        );
        assert!(err.to_string().contains("promised 2 nodes"));
    }

    #[test]
    fn structural_error_detected_with_line() {
        let err = read_graphs("t 2 2\nv 0 0\nv 1 0\ne 0 1 0\ne 1 0 0\n").unwrap_err();
        assert!(matches!(err, GraphIoError::Structure { line: 5, .. }));
    }

    #[test]
    fn path_helpers_round_trip_and_report_paths() {
        let mut rng = SmallRng::seed_from_u64(3);
        let gs: Vec<Graph> = (0..3)
            .map(|_| random_connected(&mut rng, 4, 1, &[0, 1], &[2]))
            .collect();
        let dir = std::env::temp_dir().join(format!("graphrep-io-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let file = dir.join("gs.txt");
        write_graphs_path(&file, &gs).unwrap();
        assert_eq!(read_graphs_path(&file).unwrap(), gs);
        let missing = dir.join("nope.txt");
        let err = read_graphs_path(&missing).unwrap_err();
        assert!(matches!(err, GraphIoError::Io { .. }));
        assert!(err.to_string().contains("nope.txt"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serde_json_round_trip() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = random_connected(&mut rng, 6, 3, &[0, 1], &[2]);
        let json = serde_json::to_string(&g).unwrap();
        let back: Graph = serde_json::from_str(&json).unwrap();
        assert_eq!(g, back);
    }
}
