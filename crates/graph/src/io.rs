//! Text serialization for graphs and graph collections.
//!
//! The format is a minimal line-oriented exchange format (one graph per
//! block), chosen over JSON for the hot path of persisting large synthetic
//! databases. Serde (JSON etc.) also works on [`Graph`] directly for
//! interoperability; this module is the compact native format:
//!
//! ```text
//! t <node_count> <edge_count>
//! v <node_id> <label>
//! e <u> <v> <label>
//! ```

use crate::builder::GraphBuilder;
use crate::graph::{Graph, NodeId};
use std::fmt::Write as _;

/// Errors raised while parsing the text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// A line did not match any of `t`/`v`/`e`.
    BadLine(usize),
    /// Counts in the `t` header disagreed with the body.
    CountMismatch,
    /// The structural validation of the builder failed.
    Structure(String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadLine(n) => write!(f, "unparseable line {n}"),
            ParseError::CountMismatch => write!(f, "header counts disagree with body"),
            ParseError::Structure(s) => write!(f, "invalid structure: {s}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Serializes one graph into the text format, appending to `out`.
pub fn write_graph(g: &Graph, out: &mut String) {
    let _ = writeln!(out, "t {} {}", g.node_count(), g.edge_count());
    for u in g.node_ids() {
        let _ = writeln!(out, "v {} {}", u, g.node_label(u));
    }
    for e in g.edges() {
        let _ = writeln!(out, "e {} {} {}", e.u, e.v, e.label);
    }
}

/// Serializes a collection of graphs.
pub fn write_graphs(gs: &[Graph]) -> String {
    let mut out = String::new();
    for g in gs {
        write_graph(g, &mut out);
    }
    out
}

/// Parses a collection of graphs from the text format.
pub fn read_graphs(text: &str) -> Result<Vec<Graph>, ParseError> {
    let mut graphs = Vec::new();
    let mut builder: Option<(GraphBuilder, usize, usize)> = None;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_ascii_whitespace();
        let tag = parts.next().ok_or(ParseError::BadLine(lineno))?;
        let nums: Vec<u64> = parts
            .map(|p| p.parse::<u64>().map_err(|_| ParseError::BadLine(lineno)))
            .collect::<Result<_, _>>()?;
        match (tag, nums.as_slice()) {
            ("t", [n, m]) => {
                if let Some(b) = builder.take() {
                    graphs.push(finish(b)?);
                }
                builder = Some((
                    GraphBuilder::with_capacity(*n as usize, *m as usize),
                    *n as usize,
                    *m as usize,
                ));
            }
            ("v", [id, label]) => {
                let (b, ..) = builder.as_mut().ok_or(ParseError::BadLine(lineno))?;
                let got = b.add_node(*label as u32);
                if got as u64 != *id {
                    return Err(ParseError::BadLine(lineno));
                }
            }
            ("e", [u, v, label]) => {
                let (b, ..) = builder.as_mut().ok_or(ParseError::BadLine(lineno))?;
                b.add_edge(*u as NodeId, *v as NodeId, *label as u32)
                    .map_err(|e| ParseError::Structure(e.to_string()))?;
            }
            _ => return Err(ParseError::BadLine(lineno)),
        }
    }
    if let Some(b) = builder.take() {
        graphs.push(finish(b)?);
    }
    Ok(graphs)
}

fn finish((b, n, m): (GraphBuilder, usize, usize)) -> Result<Graph, ParseError> {
    if b.node_count() != n || b.edge_count() != m {
        return Err(ParseError::CountMismatch);
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::random_connected;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn round_trip_many() {
        let mut rng = SmallRng::seed_from_u64(42);
        let gs: Vec<Graph> = (0..10)
            .map(|i| random_connected(&mut rng, 3 + i, 2, &[0, 1, 2], &[5, 6]))
            .collect();
        let text = write_graphs(&gs);
        let back = read_graphs(&text).unwrap();
        assert_eq!(gs, back);
    }

    #[test]
    fn empty_input_is_empty() {
        assert_eq!(read_graphs("").unwrap(), vec![]);
        assert_eq!(read_graphs("\n# comment\n").unwrap(), vec![]);
    }

    #[test]
    fn bad_line_reports_position() {
        let err = read_graphs("t 1 0\nv 0 0\nx 1 2\n").unwrap_err();
        assert_eq!(err, ParseError::BadLine(2));
    }

    #[test]
    fn count_mismatch_detected() {
        let err = read_graphs("t 2 0\nv 0 0\n").unwrap_err();
        assert_eq!(err, ParseError::CountMismatch);
    }

    #[test]
    fn structural_error_detected() {
        let err = read_graphs("t 2 2\nv 0 0\nv 1 0\ne 0 1 0\ne 1 0 0\n").unwrap_err();
        assert!(matches!(err, ParseError::Structure(_)));
    }

    #[test]
    fn serde_json_round_trip() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = random_connected(&mut rng, 6, 3, &[0, 1], &[2]);
        let json = serde_json::to_string(&g).unwrap();
        let back: Graph = serde_json::from_str(&json).unwrap();
        assert_eq!(g, back);
    }
}
