//! The immutable labeled graph.

use crate::labels::Label;
use serde::{Deserialize, Serialize};

/// Index of a graph within a database.
pub type GraphId = u32;

/// Index of a node within one graph.
pub type NodeId = u16;

/// A reference to one undirected edge: `(u, v, label)` with `u < v`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EdgeRef {
    /// Smaller endpoint.
    pub u: NodeId,
    /// Larger endpoint.
    pub v: NodeId,
    /// Interned edge label.
    pub label: Label,
}

/// An immutable undirected graph with labeled vertices and edges.
///
/// Invariants (enforced by [`crate::GraphBuilder`]):
/// * no self loops, no parallel edges;
/// * edges are stored with `u < v` and sorted lexicographically;
/// * per-node neighbor lists are sorted by neighbor id.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    node_labels: Vec<Label>,
    edges: Vec<EdgeRef>,
    /// CSR-style adjacency: `adj[adj_off[u]..adj_off[u+1]]` are `(neighbor, edge label)`.
    adj_off: Vec<u32>,
    adj: Vec<(NodeId, Label)>,
}

impl Graph {
    /// Builds a graph from parts. Callers must uphold the invariants above;
    /// [`crate::GraphBuilder`] is the safe front door.
    pub(crate) fn from_parts(node_labels: Vec<Label>, mut edges: Vec<EdgeRef>) -> Self {
        edges.sort_unstable_by_key(|e| (e.u, e.v));
        let n = node_labels.len();
        let mut deg = vec![0u32; n + 1];
        for e in &edges {
            deg[e.u as usize + 1] += 1;
            deg[e.v as usize + 1] += 1;
        }
        for i in 0..n {
            deg[i + 1] += deg[i];
        }
        let adj_off = deg.clone();
        let mut cursor = deg;
        let mut adj = vec![(0 as NodeId, 0 as Label); edges.len() * 2];
        for e in &edges {
            adj[cursor[e.u as usize] as usize] = (e.v, e.label);
            cursor[e.u as usize] += 1;
            adj[cursor[e.v as usize] as usize] = (e.u, e.label);
            cursor[e.v as usize] += 1;
        }
        for u in 0..n {
            adj[adj_off[u] as usize..adj_off[u + 1] as usize].sort_unstable();
        }
        Self {
            node_labels,
            edges,
            adj_off,
            adj,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.node_labels.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Label of node `u`.
    #[inline]
    pub fn node_label(&self, u: NodeId) -> Label {
        self.node_labels[u as usize]
    }

    /// All node labels, indexed by node id.
    #[inline]
    pub fn node_labels(&self) -> &[Label] {
        &self.node_labels
    }

    /// All edges, sorted by `(u, v)` with `u < v`.
    #[inline]
    pub fn edges(&self) -> &[EdgeRef] {
        &self.edges
    }

    /// Degree of node `u`.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        let u = u as usize;
        (self.adj_off[u + 1] - self.adj_off[u]) as usize
    }

    /// Sorted `(neighbor, edge label)` pairs of node `u`.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[(NodeId, Label)] {
        let u = u as usize;
        &self.adj[self.adj_off[u] as usize..self.adj_off[u + 1] as usize]
    }

    /// Label of the edge `{u, v}` if present.
    pub fn edge_label(&self, u: NodeId, v: NodeId) -> Option<Label> {
        let nbrs = self.neighbors(u);
        nbrs.binary_search_by_key(&v, |&(w, _)| w)
            .ok()
            .map(|i| nbrs[i].1)
    }

    /// Whether `{u, v}` is an edge.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edge_label(u, v).is_some()
    }

    /// Iterates node ids `0..n`.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + 'static {
        (0..self.node_labels.len() as NodeId).map(|u| u as NodeId)
    }

    /// Multiset of node labels as a sorted vector (used by distance bounds).
    pub fn sorted_node_labels(&self) -> Vec<Label> {
        let mut v = self.node_labels.clone();
        v.sort_unstable();
        v
    }

    /// Multiset of edge labels as a sorted vector (used by distance bounds).
    pub fn sorted_edge_labels(&self) -> Vec<Label> {
        let mut v: Vec<Label> = self.edges.iter().map(|e| e.label).collect();
        v.sort_unstable();
        v
    }

    /// Whether the graph is connected (true for the empty graph).
    pub fn is_connected(&self) -> bool {
        let n = self.node_count();
        if n <= 1 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0 as NodeId];
        seen[0] = true;
        let mut cnt = 1;
        while let Some(u) = stack.pop() {
            for &(v, _) in self.neighbors(u) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    cnt += 1;
                    stack.push(v);
                }
            }
        }
        cnt == n
    }

    /// Approximate heap footprint in bytes (used by the Fig 6(l) experiment).
    pub fn memory_bytes(&self) -> usize {
        self.node_labels.len() * std::mem::size_of::<Label>()
            + self.edges.len() * std::mem::size_of::<EdgeRef>()
            + self.adj_off.len() * std::mem::size_of::<u32>()
            + self.adj.len() * std::mem::size_of::<(NodeId, Label)>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn path3() -> Graph {
        let mut b = GraphBuilder::new();
        let a = b.add_node(0);
        let c = b.add_node(1);
        let d = b.add_node(2);
        b.add_edge(a, c, 7).unwrap();
        b.add_edge(c, d, 8).unwrap();
        b.build()
    }

    #[test]
    fn counts_and_labels() {
        let g = path3();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.node_label(1), 1);
        assert_eq!(g.node_labels(), &[0, 1, 2]);
    }

    #[test]
    fn adjacency_is_sorted_and_symmetric() {
        let g = path3();
        assert_eq!(g.neighbors(1), &[(0, 7), (2, 8)]);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.edge_label(2, 1), Some(8));
    }

    #[test]
    fn connectivity() {
        let g = path3();
        assert!(g.is_connected());
        let mut b = GraphBuilder::new();
        b.add_node(0);
        b.add_node(0);
        assert!(!b.build().is_connected());
        assert!(GraphBuilder::new().build().is_connected());
    }

    #[test]
    fn sorted_label_multisets() {
        let mut b = GraphBuilder::new();
        let n0 = b.add_node(5);
        let n1 = b.add_node(3);
        let n2 = b.add_node(5);
        b.add_edge(n0, n1, 9).unwrap();
        b.add_edge(n1, n2, 2).unwrap();
        let g = b.build();
        assert_eq!(g.sorted_node_labels(), vec![3, 5, 5]);
        assert_eq!(g.sorted_edge_labels(), vec![2, 9]);
    }

    #[test]
    fn memory_bytes_positive() {
        assert!(path3().memory_bytes() > 0);
    }
}
