#![warn(missing_docs)]
#![deny(unsafe_code)]
#![deny(missing_debug_implementations)]

//! Labeled graph data model for `graphrep`.
//!
//! Graphs in this workspace are small, undirected, vertex- and edge-labeled
//! structures (molecules, ego-networks, call graphs, cascades). The model is
//! deliberately compact: labels are interned `u32` ids, adjacency is a sorted
//! neighbor list per vertex, and every graph is immutable once built.
//!
//! The crate provides:
//! * [`Graph`] — the immutable labeled graph,
//! * [`GraphBuilder`] — incremental construction with validation,
//! * [`LabelInterner`] — string↔id label mapping shared across a database,
//! * [`generate`] — random graph primitives used by the dataset generators,
//! * [`stats`] — per-database structural statistics (Table 3 of the paper).

pub mod builder;
pub mod ego;
pub mod generate;
pub mod graph;
pub mod io;
pub mod iso;
pub mod labels;
pub mod stats;

pub use builder::GraphBuilder;
pub use graph::{EdgeRef, Graph, GraphId, NodeId};
pub use labels::{Label, LabelInterner};
