//! k-hop ego-network extraction from a large graph.
//!
//! The paper builds its DBLP and Amazon databases by extracting "the
//! complete 2-hop neighborhood subgraph around each node" of one large
//! network. This module implements that preprocessing step.

use crate::builder::GraphBuilder;
use crate::graph::{Graph, NodeId};

/// Extracts the `hops`-hop ego network around `center`: the induced
/// subgraph on all nodes within `hops` edges of `center`, with node ids
/// compacted (the center becomes node 0; BFS order after that).
pub fn ego_subgraph(g: &Graph, center: NodeId, hops: usize) -> Graph {
    let n = g.node_count();
    assert!((center as usize) < n, "center out of range");
    let mut dist = vec![usize::MAX; n];
    let mut order: Vec<NodeId> = vec![center];
    dist[center as usize] = 0;
    let mut head = 0;
    while head < order.len() {
        let u = order[head];
        head += 1;
        if dist[u as usize] == hops {
            continue;
        }
        for &(v, _) in g.neighbors(u) {
            if dist[v as usize] == usize::MAX {
                dist[v as usize] = dist[u as usize] + 1;
                order.push(v);
            }
        }
    }
    let mut new_id = vec![u16::MAX; n];
    for (i, &u) in order.iter().enumerate() {
        new_id[u as usize] = i as u16;
    }
    let mut b = GraphBuilder::with_capacity(order.len(), order.len() * 2);
    for &u in &order {
        b.add_node(g.node_label(u));
    }
    for &u in &order {
        for &(v, l) in g.neighbors(u) {
            let (nu, nv) = (new_id[u as usize], new_id[v as usize]);
            if nv != u16::MAX && nu < nv {
                let fresh = b.add_edge(nu, nv, l).is_ok();
                debug_assert!(fresh, "nu < nv visits each induced edge once");
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Graph {
        let mut b = GraphBuilder::new();
        for i in 0..n {
            b.add_node(i as u32);
        }
        for i in 1..n {
            b.add_edge((i - 1) as u16, i as u16, 0).unwrap();
        }
        b.build()
    }

    #[test]
    fn zero_hops_is_just_the_center() {
        let g = path(5);
        let e = ego_subgraph(&g, 2, 0);
        assert_eq!(e.node_count(), 1);
        assert_eq!(e.edge_count(), 0);
        assert_eq!(e.node_label(0), 2);
    }

    #[test]
    fn one_hop_on_a_path() {
        let g = path(5);
        let e = ego_subgraph(&g, 2, 1);
        assert_eq!(e.node_count(), 3); // 1, 2, 3
        assert_eq!(e.edge_count(), 2);
        assert_eq!(e.node_label(0), 2); // center first
    }

    #[test]
    fn two_hops_cover_the_whole_small_path() {
        let g = path(5);
        let e = ego_subgraph(&g, 2, 2);
        assert_eq!(e.node_count(), 5);
        assert_eq!(e.edge_count(), 4);
        assert!(e.is_connected());
    }

    #[test]
    fn induced_edges_between_ring_nodes_are_kept() {
        // Triangle 0-1-2 plus a pendant 3 on node 0: 1-hop ego of 0 must
        // include the 1–2 edge (both are 1-hop neighbors).
        let mut b = GraphBuilder::new();
        for i in 0..4 {
            b.add_node(i);
        }
        b.add_edge(0, 1, 9).unwrap();
        b.add_edge(1, 2, 9).unwrap();
        b.add_edge(0, 2, 9).unwrap();
        b.add_edge(0, 3, 9).unwrap();
        let g = b.build();
        let e = ego_subgraph(&g, 0, 1);
        assert_eq!(e.node_count(), 4);
        assert_eq!(e.edge_count(), 4);
    }

    #[test]
    fn ego_preserves_labels() {
        let g = path(4);
        let e = ego_subgraph(&g, 3, 1);
        let mut labels = e.sorted_node_labels();
        labels.sort_unstable();
        assert_eq!(labels, vec![2, 3]);
    }
}
