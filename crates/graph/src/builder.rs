//! Validated incremental graph construction.

use crate::graph::{EdgeRef, Graph, NodeId};
use crate::labels::Label;
use std::collections::HashSet;

/// Errors raised while building a graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildError {
    /// An edge endpoint refers to a node that does not exist.
    UnknownNode(NodeId),
    /// Self loops are not allowed.
    SelfLoop(NodeId),
    /// The edge `{u, v}` was added twice.
    DuplicateEdge(NodeId, NodeId),
    /// More nodes than `NodeId` can address.
    TooManyNodes,
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::UnknownNode(u) => write!(f, "edge endpoint {u} does not exist"),
            BuildError::SelfLoop(u) => write!(f, "self loop on node {u}"),
            BuildError::DuplicateEdge(u, v) => write!(f, "duplicate edge {{{u}, {v}}}"),
            BuildError::TooManyNodes => write!(f, "node count exceeds NodeId range"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Incrementally builds a [`Graph`], validating structure as it goes.
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    node_labels: Vec<Label>,
    edges: Vec<EdgeRef>,
    seen: HashSet<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder pre-sized for `nodes` vertices and `edges` edges.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        Self {
            node_labels: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
            seen: HashSet::with_capacity(edges),
        }
    }

    /// Adds a node with `label`, returning its id.
    ///
    /// # Panics
    /// Panics if more than `NodeId::MAX` nodes are added; graphs in this
    /// workspace are small by construction.
    pub fn add_node(&mut self, label: Label) -> NodeId {
        let id = self.node_labels.len();
        assert!(id <= NodeId::MAX as usize, "{}", BuildError::TooManyNodes);
        self.node_labels.push(label);
        id as NodeId
    }

    /// Adds the undirected edge `{u, v}` with `label`.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, label: Label) -> Result<(), BuildError> {
        let n = self.node_labels.len();
        if (u as usize) >= n {
            return Err(BuildError::UnknownNode(u));
        }
        if (v as usize) >= n {
            return Err(BuildError::UnknownNode(v));
        }
        if u == v {
            return Err(BuildError::SelfLoop(u));
        }
        let key = (u.min(v), u.max(v));
        if !self.seen.insert(key) {
            return Err(BuildError::DuplicateEdge(key.0, key.1));
        }
        self.edges.push(EdgeRef {
            u: key.0,
            v: key.1,
            label,
        });
        Ok(())
    }

    /// Whether the edge `{u, v}` has already been added.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.seen.contains(&(u.min(v), u.max(v)))
    }

    /// Current node count.
    pub fn node_count(&self) -> usize {
        self.node_labels.len()
    }

    /// Current edge count.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes the graph.
    pub fn build(self) -> Graph {
        Graph::from_parts(self.node_labels, self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_self_loop() {
        let mut b = GraphBuilder::new();
        let u = b.add_node(0);
        assert_eq!(b.add_edge(u, u, 0), Err(BuildError::SelfLoop(u)));
    }

    #[test]
    fn rejects_unknown_endpoint() {
        let mut b = GraphBuilder::new();
        let u = b.add_node(0);
        assert_eq!(b.add_edge(u, 5, 0), Err(BuildError::UnknownNode(5)));
        assert_eq!(b.add_edge(9, u, 0), Err(BuildError::UnknownNode(9)));
    }

    #[test]
    fn rejects_duplicate_in_either_direction() {
        let mut b = GraphBuilder::new();
        let u = b.add_node(0);
        let v = b.add_node(1);
        b.add_edge(u, v, 0).unwrap();
        assert_eq!(b.add_edge(v, u, 3), Err(BuildError::DuplicateEdge(u, v)));
        assert!(b.has_edge(v, u));
    }

    #[test]
    fn builds_normalized_edges() {
        let mut b = GraphBuilder::new();
        let u = b.add_node(0);
        let v = b.add_node(1);
        b.add_edge(v, u, 4).unwrap();
        let g = b.build();
        assert_eq!(g.edges()[0].u, u);
        assert_eq!(g.edges()[0].v, v);
        assert_eq!(g.edges()[0].label, 4);
    }

    #[test]
    fn with_capacity_counts() {
        let mut b = GraphBuilder::with_capacity(4, 2);
        assert_eq!(b.node_count(), 0);
        b.add_node(0);
        b.add_node(0);
        b.add_edge(0, 1, 0).unwrap();
        assert_eq!(b.node_count(), 2);
        assert_eq!(b.edge_count(), 1);
    }

    #[test]
    fn error_messages_render() {
        assert!(BuildError::SelfLoop(3).to_string().contains("3"));
        assert!(BuildError::DuplicateEdge(1, 2).to_string().contains("1"));
        assert!(BuildError::UnknownNode(7).to_string().contains("7"));
    }
}
