//! Interned labels shared across a graph database.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// An interned label id. Vertex and edge labels share one namespace.
pub type Label = u32;

/// Bidirectional mapping between label strings and compact [`Label`] ids.
///
/// A database owns one interner so that identical atom symbols, community
/// names, or bond orders compare as integer equality in the edit-distance
/// inner loops.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct LabelInterner {
    names: Vec<String>,
    #[serde(skip)]
    index: HashMap<String, Label>,
}

impl LabelInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its id (existing or fresh).
    pub fn intern(&mut self, name: &str) -> Label {
        if self.index.is_empty() && !self.names.is_empty() {
            self.rebuild_index();
        }
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = self.names.len() as Label;
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), id);
        id
    }

    /// Looks up the id of `name` without interning it.
    pub fn get(&self, name: &str) -> Option<Label> {
        if !self.index.is_empty() || self.names.is_empty() {
            self.index.get(name).copied()
        } else {
            // Deserialized interner: the index is skipped by serde.
            self.names
                .iter()
                .position(|n| n == name)
                .map(|p| p as Label)
        }
    }

    /// Returns the string for label id `id`, if in range.
    pub fn name(&self, id: Label) -> Option<&str> {
        self.names.get(id as usize).map(String::as_str)
    }

    /// Number of distinct labels interned so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no labels have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Rebuilds the lookup index (needed after deserialization).
    pub fn rebuild_index(&mut self) {
        self.index = self
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i as Label))
            .collect();
    }

    /// Iterates over `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (Label, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (i as Label, n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut it = LabelInterner::new();
        let c = it.intern("C");
        let n = it.intern("N");
        assert_ne!(c, n);
        assert_eq!(it.intern("C"), c);
        assert_eq!(it.len(), 2);
    }

    #[test]
    fn name_round_trips() {
        let mut it = LabelInterner::new();
        let id = it.intern("benzene-ring");
        assert_eq!(it.name(id), Some("benzene-ring"));
        assert_eq!(it.get("benzene-ring"), Some(id));
        assert_eq!(it.get("missing"), None);
    }

    #[test]
    fn iter_in_id_order() {
        let mut it = LabelInterner::new();
        for s in ["a", "b", "c"] {
            it.intern(s);
        }
        let got: Vec<_> = it.iter().map(|(_, n)| n.to_owned()).collect();
        assert_eq!(got, ["a", "b", "c"]);
    }

    #[test]
    fn rebuild_index_restores_lookup() {
        let mut it = LabelInterner::new();
        it.intern("x");
        it.intern("y");
        let mut copy = LabelInterner {
            names: it.names.clone(),
            index: HashMap::new(),
        };
        assert_eq!(copy.get("y"), Some(1));
        copy.rebuild_index();
        assert_eq!(copy.get("y"), Some(1));
        assert_eq!(copy.intern("z"), 2);
    }
}
