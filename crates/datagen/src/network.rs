//! Network-derived ego-net datasets — the paper's actual DBLP/Amazon
//! preprocessing, end to end.
//!
//! Instead of sampling family templates directly ([`crate::egonet`]), this
//! generator builds **one large community-structured network** (a planted
//! partition: dense within communities, sparse across) and then extracts
//! the complete 2-hop neighborhood subgraph around sampled nodes, replacing
//! node identities with community labels — exactly the pipeline described in
//! Sec 8.1 for DBLP and Amazon. Activity features are the (normalized)
//! degree of the ego, so feature space correlates with structure.

use crate::egonet::EgonetSet;
use graphrep_graph::ego::ego_subgraph;
use graphrep_graph::{Graph, GraphBuilder, LabelInterner, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;

/// Tuning knobs for [`generate`].
#[derive(Debug, Clone, Copy)]
pub struct NetworkParams {
    /// Number of ego-nets to extract (the dataset size).
    pub size: usize,
    /// Nodes in the underlying network.
    pub network_nodes: usize,
    /// Number of communities.
    pub communities: usize,
    /// Expected within-community degree per node.
    pub internal_degree: f64,
    /// Expected cross-community degree per node.
    pub external_degree: f64,
    /// Ego-net hop radius (paper: 2).
    pub hops: usize,
}

impl Default for NetworkParams {
    fn default() -> Self {
        Self {
            size: 500,
            network_nodes: 3000,
            communities: 24,
            internal_degree: 2.2,
            external_degree: 0.4,
            hops: 2,
        }
    }
}

/// Builds the planted-partition network with community node labels.
fn planted_partition<R: Rng + ?Sized>(
    rng: &mut R,
    p: &NetworkParams,
    community_labels: &[u32],
    tie: u32,
) -> (Graph, Vec<usize>) {
    let n = p.network_nodes;
    let mut b = GraphBuilder::with_capacity(n, n * 3);
    let mut comm_of = Vec::with_capacity(n);
    for i in 0..n {
        let c = i * p.communities / n; // contiguous equal-size communities
        comm_of.push(c);
        b.add_node(community_labels[c]);
    }
    // Within-community edges: expected `internal_degree` per node.
    let per_comm = n / p.communities;
    let internal_edges = (n as f64 * p.internal_degree / 2.0) as usize;
    let mut placed = 0;
    let mut guard = 0;
    while placed < internal_edges && guard < internal_edges * 30 {
        guard += 1;
        let c = rng.gen_range(0..p.communities);
        let base = c * per_comm;
        let top = if c == p.communities - 1 {
            n
        } else {
            base + per_comm
        };
        if top - base < 2 {
            continue;
        }
        let u = rng.gen_range(base..top) as NodeId;
        let v = rng.gen_range(base..top) as NodeId;
        if u != v && !b.has_edge(u, v) {
            b.add_edge(u, v, tie).expect("checked fresh");
            placed += 1;
        }
    }
    // Cross-community edges.
    let external_edges = (n as f64 * p.external_degree / 2.0) as usize;
    let mut placed = 0;
    let mut guard = 0;
    while placed < external_edges && guard < external_edges * 30 {
        guard += 1;
        let u = rng.gen_range(0..n) as NodeId;
        let v = rng.gen_range(0..n) as NodeId;
        if u != v && comm_of[u as usize] != comm_of[v as usize] && !b.has_edge(u, v) {
            b.add_edge(u, v, tie).expect("checked fresh");
            placed += 1;
        }
    }
    (b.build(), comm_of)
}

/// Generates a dataset by extracting `size` ego-nets from one network.
///
/// Returns the standard [`EgonetSet`]; `family` is the community of the ego
/// center.
pub fn generate<R: Rng + ?Sized>(rng: &mut R, p: NetworkParams) -> EgonetSet {
    let mut labels = LabelInterner::new();
    let community_labels: Vec<u32> = (0..p.communities)
        .map(|c| labels.intern(&format!("community-{c}")))
        .collect();
    let tie = labels.intern("tie");
    let (network, comm_of) = planted_partition(rng, &p, &community_labels, tie);
    // Sample centers with at least one neighbor (an isolated ego-net carries
    // no structure).
    let mut candidates: Vec<NodeId> = (0..p.network_nodes as NodeId)
        .filter(|&u| network.degree(u) > 0)
        .collect();
    candidates.shuffle(rng);
    candidates.truncate(p.size);
    assert!(
        candidates.len() == p.size,
        "network too sparse to extract {} ego-nets",
        p.size
    );
    let mut graphs = Vec::with_capacity(p.size);
    let mut feats = Vec::with_capacity(p.size);
    let mut family = Vec::with_capacity(p.size);
    let max_possible = (p.internal_degree + p.external_degree) * 8.0;
    for &c in &candidates {
        let ego = ego_subgraph(&network, c, p.hops);
        // Activity = ego size, normalized — busy groups are big groups.
        feats.push(vec![(ego.node_count() as f64 / max_possible).min(1.0)]);
        graphs.push(ego);
        family.push(comm_of[c as usize] as u32);
    }
    EgonetSet {
        graphs,
        features: feats,
        family,
        labels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn small() -> NetworkParams {
        NetworkParams {
            size: 60,
            network_nodes: 600,
            communities: 12,
            ..Default::default()
        }
    }

    #[test]
    fn generates_connected_ego_nets() {
        let mut rng = SmallRng::seed_from_u64(1);
        let s = generate(&mut rng, small());
        assert_eq!(s.graphs.len(), 60);
        for g in &s.graphs {
            assert!(g.is_connected(), "ego-nets are connected by construction");
            assert!(g.node_count() >= 2);
        }
    }

    #[test]
    fn ego_labels_reflect_community_mixing() {
        let mut rng = SmallRng::seed_from_u64(2);
        let s = generate(&mut rng, small());
        // Most egos should be dominated by their own community's label.
        let mut dominated = 0;
        for (g, &fam) in s.graphs.iter().zip(&s.family) {
            let own = s
                .labels
                .get(&format!("community-{fam}"))
                .expect("community label exists");
            let own_count = g.node_labels().iter().filter(|&&l| l == own).count();
            if own_count * 2 >= g.node_count() {
                dominated += 1;
            }
        }
        assert!(dominated * 3 >= 60 * 2, "{dominated}/60 dominated");
    }

    #[test]
    fn features_track_ego_size() {
        let mut rng = SmallRng::seed_from_u64(3);
        let s = generate(&mut rng, small());
        for (g, f) in s.graphs.iter().zip(&s.features) {
            assert_eq!(f.len(), 1);
            assert!(f[0] > 0.0 && f[0] <= 1.0);
            let _ = g;
        }
        // Bigger egos must not get smaller features (monotone mapping).
        let mut pairs: Vec<(usize, f64)> = s
            .graphs
            .iter()
            .zip(&s.features)
            .map(|(g, f)| (g.node_count(), f[0]))
            .collect();
        pairs.sort_by_key(|p| p.0);
        for w in pairs.windows(2) {
            if w[0].0 < w[1].0 {
                assert!(w[0].1 <= w[1].1 + 1e-9);
            }
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = generate(&mut SmallRng::seed_from_u64(4), small());
        let b = generate(&mut SmallRng::seed_from_u64(4), small());
        assert_eq!(a.graphs, b.graphs);
        assert_eq!(a.family, b.family);
    }
}
