//! DUD-like molecular library generator.
//!
//! The DUD repository contains molecules assayed against 10 protein targets;
//! structurally it decomposes into scaffold families (a core ring system
//! with varying decorations), and binding affinity correlates with the
//! scaffold. We reproduce that regime: each family is a random connected
//! scaffold over an atom alphabet weighted toward carbon; members are the
//! scaffold plus a few random local edits; the 10-dimensional feature vector
//! is a family base affinity plus member noise.

use crate::features;
use graphrep_graph::generate::{mutate, random_connected};
use graphrep_graph::{Graph, LabelInterner};
use rand::Rng;

/// Atom symbols, most-common first (weights applied below).
const ATOMS: &[&str] = &["C", "N", "O", "S", "P", "F", "Cl", "Br"];
/// Bond labels.
const BONDS: &[&str] = &["single", "double", "aromatic"];

/// Output of the molecule generator.
#[derive(Debug)]
pub struct MoleculeSet {
    /// The molecules.
    pub graphs: Vec<Graph>,
    /// 10-dimensional binding-affinity vectors.
    pub features: Vec<Vec<f64>>,
    /// Ground-truth family of each molecule.
    pub family: Vec<u32>,
    /// The label interner (atoms + bonds).
    pub labels: LabelInterner,
}

/// Tuning knobs for [`generate`].
#[derive(Debug, Clone, Copy)]
pub struct MoleculeParams {
    /// Number of molecules.
    pub size: usize,
    /// Size of the largest scaffold family; subsequent families shrink
    /// harmonically down to singleton outliers (see
    /// [`crate::features::family_sizes`]).
    pub largest_family: usize,
    /// Family-size skew exponent (1.0 = harmonic).
    pub skew: f64,
    /// Scaffold node count range (inclusive).
    pub scaffold_nodes: (usize, usize),
    /// Local edits applied to each member (max; uniform in `0..=max`).
    pub member_edits: usize,
    /// Feature dimensionality (paper: 10 protein targets).
    pub dims: usize,
    /// Member feature noise σ around the family base affinity.
    pub feature_noise: f64,
    /// Probability that a family's scaffold *drifts* from the previous one
    /// (a homologous series) instead of being drawn fresh. Drifted scaffolds
    /// sit 1–2·θ apart, so their θ-neighborhoods overlap — the regime where
    /// representative-aware selection beats diversity-only selection
    /// (paper Fig 1(b), Sec 3.2).
    pub chain_prob: f64,
    /// Edits applied when drifting a scaffold.
    pub drift_edits: usize,
}

impl Default for MoleculeParams {
    fn default() -> Self {
        Self {
            size: 1000,
            largest_family: 60,
            skew: 1.0,
            scaffold_nodes: (6, 8),
            member_edits: 2,
            dims: 10,
            feature_noise: 0.06,
            chain_prob: 0.7,
            drift_edits: 4,
        }
    }
}

/// Weighted atom label sampling pool: carbon-dominated like real molecules.
fn atom_pool(labels: &mut LabelInterner) -> Vec<u32> {
    let mut pool = Vec::new();
    for (i, a) in ATOMS.iter().enumerate() {
        let id = labels.intern(a);
        // C appears 12×, N/O 4×, the rest once.
        let w = match i {
            0 => 12,
            1 | 2 => 4,
            _ => 1,
        };
        pool.extend(std::iter::repeat_n(id, w));
    }
    pool
}

fn bond_pool(labels: &mut LabelInterner) -> Vec<u32> {
    let mut pool = Vec::new();
    for (i, b) in BONDS.iter().enumerate() {
        let id = labels.intern(b);
        let w = match i {
            0 => 6,
            1 => 2,
            _ => 2,
        };
        pool.extend(std::iter::repeat_n(id, w));
    }
    pool
}

/// Generates a DUD-like molecule set.
pub fn generate<R: Rng + ?Sized>(rng: &mut R, p: MoleculeParams) -> MoleculeSet {
    let mut labels = LabelInterner::new();
    let atoms = atom_pool(&mut labels);
    let bonds = bond_pool(&mut labels);
    let sizes = features::family_sizes(p.size, p.largest_family.max(1), p.skew);
    let mut graphs = Vec::with_capacity(p.size);
    let mut feats = Vec::with_capacity(p.size);
    let mut family = Vec::with_capacity(p.size);
    let mut prev_scaffold: Option<Graph> = None;
    for (f, &members) in sizes.iter().enumerate() {
        let scaffold = match &prev_scaffold {
            Some(prev) if rng.gen_bool(p.chain_prob) => {
                mutate(rng, prev, p.drift_edits, &atoms, &bonds)
            }
            _ => {
                let n = rng.gen_range(p.scaffold_nodes.0..=p.scaffold_nodes.1);
                let extra = rng.gen_range(0..=2);
                random_connected(rng, n, extra, &atoms, &bonds)
            }
        };
        let base = features::base_vector(rng, p.dims);
        for _ in 0..members {
            let edits = rng.gen_range(0..=p.member_edits);
            graphs.push(mutate(rng, &scaffold, edits, &atoms, &bonds));
            feats.push(features::jitter(rng, &base, p.feature_noise));
            family.push(f as u32);
        }
        prev_scaffold = Some(scaffold);
    }
    MoleculeSet {
        graphs,
        features: feats,
        family,
        labels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn generates_requested_size() {
        let mut rng = SmallRng::seed_from_u64(1);
        let p = MoleculeParams {
            size: 123,
            ..Default::default()
        };
        let m = generate(&mut rng, p);
        assert_eq!(m.graphs.len(), 123);
        assert_eq!(m.features.len(), 123);
        assert_eq!(m.family.len(), 123);
        assert!(m.features.iter().all(|f| f.len() == 10));
    }

    #[test]
    fn graphs_are_connected_and_small() {
        let mut rng = SmallRng::seed_from_u64(2);
        let m = generate(
            &mut rng,
            MoleculeParams {
                size: 60,
                ..Default::default()
            },
        );
        for g in &m.graphs {
            assert!(g.is_connected());
            assert!(
                g.node_count() >= 4 && g.node_count() <= 16,
                "{}",
                g.node_count()
            );
        }
    }

    #[test]
    fn family_members_structurally_close() {
        use graphrep_ged::{ged_exact_full, CostModel};
        let c = CostModel::uniform();
        // Same-family pairs should average a much smaller distance than
        // cross-family pairs. One RNG stream can produce an unlucky margin
        // (a drifted scaffold sits close to its predecessor by design), so
        // pool the distances over several seeds and check the aggregate:
        // this tests the generator property, not one lucky stream.
        let mut same = vec![];
        let mut cross = vec![];
        for seed in [3, 4, 5] {
            let mut rng = SmallRng::seed_from_u64(seed);
            let m = generate(
                &mut rng,
                MoleculeParams {
                    size: 80,
                    largest_family: 30,
                    ..Default::default()
                },
            );
            // The first family occupies the first `largest_family` slots.
            let fam0: Vec<usize> = (0..80).filter(|&i| m.family[i] == 0).take(10).collect();
            let other: Vec<usize> = (0..80).filter(|&i| m.family[i] != 0).take(10).collect();
            for (ai, &i) in fam0.iter().enumerate() {
                for &j in fam0.iter().skip(ai + 1) {
                    same.push(
                        ged_exact_full(&m.graphs[i], &m.graphs[j], &c, 2_000_000)
                            .unwrap()
                            .0,
                    );
                }
                for &j in &other {
                    cross.push(
                        ged_exact_full(&m.graphs[i], &m.graphs[j], &c, 2_000_000)
                            .unwrap()
                            .0,
                    );
                }
            }
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            avg(&same) + 1.5 < avg(&cross),
            "same {} cross {}",
            avg(&same),
            avg(&cross)
        );
    }

    #[test]
    fn features_correlate_with_family() {
        let mut rng = SmallRng::seed_from_u64(4);
        let m = generate(
            &mut rng,
            MoleculeParams {
                size: 120,
                largest_family: 30,
                ..Default::default()
            },
        );
        // Within-family feature distance < cross-family feature distance.
        let l2 = |a: &[f64], b: &[f64]| {
            a.iter()
                .zip(b)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt()
        };
        let same = l2(&m.features[0], &m.features[1]);
        let cross_ids: Vec<usize> = (0..120).filter(|&i| m.family[i] != 0).take(30).collect();
        let cross_sum: f64 = cross_ids
            .iter()
            .map(|&j| l2(&m.features[0], &m.features[j]))
            .sum();
        assert!(same < cross_sum / cross_ids.len() as f64 + 0.5);
    }

    #[test]
    fn family_sizes_are_skewed_with_outliers() {
        let mut rng = SmallRng::seed_from_u64(8);
        let m = generate(
            &mut rng,
            MoleculeParams {
                size: 300,
                ..Default::default()
            },
        );
        let max_fam = *m.family.iter().max().unwrap() as usize + 1;
        let mut counts = vec![0usize; max_fam];
        for &f in &m.family {
            counts[f as usize] += 1;
        }
        assert!(counts[0] >= 40, "largest family should dominate");
        assert!(
            counts.iter().filter(|&&c| c <= 2).count() >= 10,
            "need a tail of outliers"
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let p = MoleculeParams {
            size: 40,
            ..Default::default()
        };
        let a = generate(&mut SmallRng::seed_from_u64(9), p);
        let b = generate(&mut SmallRng::seed_from_u64(9), p);
        assert_eq!(a.graphs, b.graphs);
        assert_eq!(a.features, b.features);
    }
}
