//! Function-call-graph generator (paper Table 1, Example 3: bug analysis).
//!
//! Each graph is a crashing execution's call graph; bugs cluster around a
//! shared core subgraph (the bug-inducing call pattern) with per-crash
//! variation. The feature vector is a count frequency over `m` days, scored
//! by a weighted query `wᵀ·g` (recent days weighted up). Used by the
//! `bug_triage` example.

use crate::features;
use graphrep_graph::generate::mutate;
use graphrep_graph::{Graph, GraphBuilder, LabelInterner, NodeId};
use rand::Rng;

/// Output of the call-graph generator.
#[derive(Debug)]
pub struct CallGraphSet {
    /// Call graphs of crashing executions.
    pub graphs: Vec<Graph>,
    /// Crash-frequency-per-day vectors (dimension = `days`).
    pub features: Vec<Vec<f64>>,
    /// Ground-truth bug id of each crash.
    pub family: Vec<u32>,
    /// Function-name labels.
    pub labels: LabelInterner,
}

/// Tuning knobs for [`generate`].
#[derive(Debug, Clone, Copy)]
pub struct CallGraphParams {
    /// Number of crash graphs.
    pub size: usize,
    /// Number of distinct bugs (families).
    pub bugs: usize,
    /// Number of function names in the program.
    pub functions: usize,
    /// Core bug subgraph size range.
    pub core_nodes: (usize, usize),
    /// Extra per-crash frames attached around the core (max).
    pub extra_frames: usize,
    /// Days of crash history in the feature vector.
    pub days: usize,
}

impl Default for CallGraphParams {
    fn default() -> Self {
        Self {
            size: 500,
            bugs: 10,
            functions: 30,
            core_nodes: (4, 6),
            extra_frames: 3,
            days: 7,
        }
    }
}

/// Generates a call-graph set.
pub fn generate<R: Rng + ?Sized>(rng: &mut R, p: CallGraphParams) -> CallGraphSet {
    let mut labels = LabelInterner::new();
    let funcs: Vec<u32> = (0..p.functions)
        .map(|i| labels.intern(&format!("fn_{i}")))
        .collect();
    let call = labels.intern("calls");
    let mut graphs = Vec::with_capacity(p.size);
    let mut feats = Vec::with_capacity(p.size);
    let mut family = Vec::with_capacity(p.size);
    // Each bug: a core call chain + a daily frequency signature.
    let mut cores = Vec::new();
    let mut freq_base = Vec::new();
    for _ in 0..p.bugs {
        let n = rng.gen_range(p.core_nodes.0..=p.core_nodes.1);
        let mut b = GraphBuilder::with_capacity(n, n);
        for _ in 0..n {
            let f = funcs[rng.gen_range(0..funcs.len())];
            b.add_node(f);
        }
        for i in 1..n {
            b.add_edge((i - 1) as NodeId, i as NodeId, call)
                .expect("chain");
        }
        // One back edge (recursion / callback) sometimes.
        if n > 3 && rng.gen_bool(0.5) {
            let _ = b.add_edge(0, (n - 1) as NodeId, call);
        }
        cores.push(b.build());
        // A bug is "hot" on some days.
        let day_profile: Vec<f64> = (0..p.days)
            .map(|_| {
                if rng.gen_bool(0.4) {
                    rng.gen_range(0.4..1.0)
                } else {
                    rng.gen_range(0.0..0.15)
                }
            })
            .collect();
        freq_base.push(day_profile);
    }
    for _ in 0..p.size {
        let bug = rng.gen_range(0..p.bugs);
        let mut g = cores[bug].clone();
        // Attach caller frames around the core.
        let extra = rng.gen_range(0..=p.extra_frames);
        g = mutate(rng, &g, extra, &funcs, &[call]);
        graphs.push(g);
        feats.push(features::jitter(rng, &freq_base[bug], 0.05));
        family.push(bug as u32);
    }
    CallGraphSet {
        graphs,
        features: feats,
        family,
        labels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn generates_connected_call_graphs() {
        let mut rng = SmallRng::seed_from_u64(1);
        let s = generate(
            &mut rng,
            CallGraphParams {
                size: 40,
                ..Default::default()
            },
        );
        assert_eq!(s.graphs.len(), 40);
        assert!(s.graphs.iter().all(|g| g.is_connected()));
        assert!(s.features.iter().all(|f| f.len() == 7));
    }

    #[test]
    fn bug_ids_within_range() {
        let mut rng = SmallRng::seed_from_u64(2);
        let p = CallGraphParams {
            size: 60,
            bugs: 5,
            ..Default::default()
        };
        let s = generate(&mut rng, p);
        assert!(s.family.iter().all(|&b| b < 5));
    }

    #[test]
    fn same_bug_crashes_share_structure() {
        use graphrep_ged::{ged_exact_full, CostModel};
        let mut rng = SmallRng::seed_from_u64(3);
        let p = CallGraphParams {
            size: 60,
            bugs: 3,
            ..Default::default()
        };
        let s = generate(&mut rng, p);
        let c = CostModel::uniform();
        let by_bug: Vec<Vec<usize>> = (0..3)
            .map(|b| (0..60).filter(|&i| s.family[i] == b).collect())
            .collect();
        if by_bug[0].len() >= 2 && !by_bug[1].is_empty() {
            let d_same = ged_exact_full(
                &s.graphs[by_bug[0][0]],
                &s.graphs[by_bug[0][1]],
                &c,
                2_000_000,
            )
            .unwrap()
            .0;
            // Same-bug distance should be small (bounded by 2×extra edits).
            assert!(d_same <= 14.0, "same-bug distance {d_same}");
        }
    }
}
