//! DBLP-like and Amazon-like ego-network generators.
//!
//! The paper's DBLP/Amazon databases are 2-hop neighborhood subgraphs around
//! each node, with node labels replaced by community (DBLP) or product
//! category (Amazon) and a 1-dimensional activity/popularity feature. We
//! reproduce the regime: each *family* is a hub-and-spokes ego-net template
//! over a small community-label profile; members perturb it. The Amazon-like
//! preset uses more label diversity and heavier perturbation, which spreads
//! the distance distribution out — the property that drives the paper's
//! larger θ (75 vs 10) and lower vantage-point FPR on Amazon.

use crate::features;
use graphrep_graph::generate::mutate;
use graphrep_graph::{Graph, GraphBuilder, LabelInterner, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;

/// Output of the ego-net generator.
#[derive(Debug)]
pub struct EgonetSet {
    /// The ego-net graphs.
    pub graphs: Vec<Graph>,
    /// 1-dimensional activity features.
    pub features: Vec<Vec<f64>>,
    /// Ground-truth family of each graph.
    pub family: Vec<u32>,
    /// Community/category labels.
    pub labels: LabelInterner,
}

/// Tuning knobs for [`generate`].
#[derive(Debug, Clone, Copy)]
pub struct EgonetParams {
    /// Number of graphs.
    pub size: usize,
    /// Size of the largest family; subsequent families shrink harmonically
    /// down to singleton outliers ([`crate::features::family_sizes`]).
    pub largest_family: usize,
    /// Family-size skew exponent (1.0 = harmonic).
    pub skew: f64,
    /// Number of community/category labels in the universe.
    pub label_universe: usize,
    /// Distinct labels per family profile.
    pub labels_per_family: usize,
    /// Spoke count range (ego-net size = spokes + 1).
    pub spokes: (usize, usize),
    /// Probability of an edge between two spokes (density).
    pub spoke_edge_prob: f64,
    /// Local edits applied per member (max).
    pub member_edits: usize,
    /// Feature noise around the family activity level.
    pub feature_noise: f64,
    /// Probability a family's template drifts from the previous family's
    /// (overlapping communities — neighborhood overlap regime).
    pub chain_prob: f64,
    /// Edits applied when drifting a template.
    pub drift_edits: usize,
}

impl EgonetParams {
    /// DBLP-like: few communities, dense collaboration, tight families.
    pub fn dblp(size: usize) -> Self {
        Self {
            size,
            largest_family: 60,
            skew: 1.0,
            label_universe: 8,
            labels_per_family: 3,
            spokes: (5, 7),
            spoke_edge_prob: 0.35,
            member_edits: 2,
            feature_noise: 0.06,
            chain_prob: 0.7,
            drift_edits: 4,
        }
    }

    /// Amazon-like: many categories, heavier perturbation — graphs sit much
    /// farther apart (paper Fig 5(b)).
    pub fn amazon(size: usize) -> Self {
        Self {
            size,
            largest_family: 45,
            skew: 1.0,
            label_universe: 20,
            labels_per_family: 6,
            spokes: (6, 8),
            spoke_edge_prob: 0.30,
            member_edits: 4,
            feature_noise: 0.08,
            chain_prob: 0.35,
            drift_edits: 5,
        }
    }
}

/// Builds a hub-and-spokes template over the family's label profile.
fn template<R: Rng + ?Sized>(
    rng: &mut R,
    profile: &[u32],
    edge_label: u32,
    p: &EgonetParams,
) -> Graph {
    let spokes = rng.gen_range(p.spokes.0..=p.spokes.1);
    let mut b = GraphBuilder::with_capacity(spokes + 1, spokes * 2);
    let hub = b.add_node(*profile.choose(rng).expect("non-empty profile"));
    let ids: Vec<NodeId> = (0..spokes)
        .map(|_| b.add_node(*profile.choose(rng).expect("non-empty profile")))
        .collect();
    for &s in &ids {
        b.add_edge(hub, s, edge_label).expect("fresh spoke edge");
    }
    for i in 0..ids.len() {
        for j in (i + 1)..ids.len() {
            if rng.gen_bool(p.spoke_edge_prob) {
                let _ = b.add_edge(ids[i], ids[j], edge_label);
            }
        }
    }
    b.build()
}

/// Generates an ego-net set under `p`.
pub fn generate<R: Rng + ?Sized>(rng: &mut R, p: EgonetParams) -> EgonetSet {
    let mut labels = LabelInterner::new();
    let universe: Vec<u32> = (0..p.label_universe)
        .map(|i| labels.intern(&format!("community-{i}")))
        .collect();
    let edge_label = labels.intern("tie");
    let sizes = features::family_sizes(p.size, p.largest_family.max(1), p.skew);
    let mut graphs = Vec::with_capacity(p.size);
    let mut feats = Vec::with_capacity(p.size);
    let mut family = Vec::with_capacity(p.size);
    let mut prev: Option<(Graph, Vec<u32>)> = None;
    for (f, &members) in sizes.iter().enumerate() {
        let (base, profile) = match &prev {
            Some((tpl, prof)) if rng.gen_bool(p.chain_prob) => (
                mutate(rng, tpl, p.drift_edits, prof, &[edge_label]),
                prof.clone(),
            ),
            _ => {
                let mut profile = universe.clone();
                profile.shuffle(rng);
                profile.truncate(p.labels_per_family.min(universe.len()).max(1));
                (template(rng, &profile, edge_label, &p), profile)
            }
        };
        let activity = rng.gen_range(0.0..1.0);
        for _ in 0..members {
            let edits = rng.gen_range(0..=p.member_edits);
            graphs.push(mutate(rng, &base, edits, &profile, &[edge_label]));
            feats.push(vec![(activity
                + features::gaussian(rng, 0.0, p.feature_noise))
            .clamp(0.0, 1.0)]);
            family.push(f as u32);
        }
        prev = Some((base, profile));
    }
    EgonetSet {
        graphs,
        features: feats,
        family,
        labels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn dblp_preset_generates() {
        let mut rng = SmallRng::seed_from_u64(1);
        let s = generate(&mut rng, EgonetParams::dblp(90));
        assert_eq!(s.graphs.len(), 90);
        assert!(s.graphs.iter().all(|g| g.is_connected()));
        assert!(s.features.iter().all(|f| f.len() == 1));
    }

    #[test]
    fn amazon_preset_spreads_distances_more_than_dblp() {
        use graphrep_ged::{ged_exact_full, CostModel};
        let c = CostModel::uniform();
        let mut rng = SmallRng::seed_from_u64(2);
        let dblp = generate(&mut rng, EgonetParams::dblp(60));
        let amzn = generate(&mut rng, EgonetParams::amazon(60));
        let mean_cross = |graphs: &[Graph]| {
            let mut tot = 0.0;
            let mut cnt = 0.0;
            for i in (0..30).step_by(5) {
                for j in (30..60).step_by(5) {
                    tot += ged_exact_full(&graphs[i], &graphs[j], &c, 3_000_000)
                        .map(|r| r.0)
                        .unwrap_or(20.0);
                    cnt += 1.0;
                }
            }
            tot / cnt
        };
        let d_dblp = mean_cross(&dblp.graphs);
        let d_amzn = mean_cross(&amzn.graphs);
        assert!(
            d_amzn > d_dblp,
            "amazon cross-family distances ({d_amzn}) should exceed dblp ({d_dblp})"
        );
    }

    #[test]
    fn families_partition_the_set() {
        let mut rng = SmallRng::seed_from_u64(3);
        let s = generate(&mut rng, EgonetParams::dblp(85));
        assert_eq!(s.family.len(), 85);
        let max_f = *s.family.iter().max().unwrap();
        assert!(max_f >= 1);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = generate(&mut SmallRng::seed_from_u64(7), EgonetParams::amazon(40));
        let b = generate(&mut SmallRng::seed_from_u64(7), EgonetParams::amazon(40));
        assert_eq!(a.graphs, b.graphs);
    }
}
