//! Information-cascade generator (paper Table 1, Example 2).
//!
//! Cascades are tree-shaped propagation structures whose nodes carry the
//! community of the participating user; the feature vector is a binary topic
//! incidence vector, so the Jaccard relevance function of Table 1 applies
//! directly. Used by the `cascade_explorer` example application.

use graphrep_graph::{Graph, GraphBuilder, LabelInterner, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;

/// Output of the cascade generator.
#[derive(Debug)]
pub struct CascadeSet {
    /// Tree-shaped cascade graphs.
    pub graphs: Vec<Graph>,
    /// Binary topic incidence vectors (dimension = `topics`).
    pub features: Vec<Vec<f64>>,
    /// Ground-truth community of each cascade.
    pub family: Vec<u32>,
    /// Community labels.
    pub labels: LabelInterner,
}

/// Tuning knobs for [`generate`].
#[derive(Debug, Clone, Copy)]
pub struct CascadeParams {
    /// Number of cascades.
    pub size: usize,
    /// Number of user communities (families).
    pub communities: usize,
    /// Number of topics in the universe.
    pub topics: usize,
    /// Topics per community profile.
    pub topics_per_community: usize,
    /// Cascade node count range.
    pub nodes: (usize, usize),
    /// Preferential-attachment skew: higher → more star-like cascades.
    pub hub_bias: f64,
}

impl Default for CascadeParams {
    fn default() -> Self {
        Self {
            size: 600,
            communities: 12,
            topics: 16,
            topics_per_community: 4,
            nodes: (5, 9),
            hub_bias: 1.0,
        }
    }
}

/// Generates a cascade set.
pub fn generate<R: Rng + ?Sized>(rng: &mut R, p: CascadeParams) -> CascadeSet {
    let mut labels = LabelInterner::new();
    let communities: Vec<u32> = (0..p.communities)
        .map(|i| labels.intern(&format!("community-{i}")))
        .collect();
    let spread = labels.intern("spread");
    // Each community prefers a subset of topics and a reshare style.
    let profiles: Vec<Vec<usize>> = (0..p.communities)
        .map(|_| {
            let mut t: Vec<usize> = (0..p.topics).collect();
            t.shuffle(rng);
            t.truncate(p.topics_per_community);
            t
        })
        .collect();
    let mut graphs = Vec::with_capacity(p.size);
    let mut feats = Vec::with_capacity(p.size);
    let mut family = Vec::with_capacity(p.size);
    for _ in 0..p.size {
        let comm = rng.gen_range(0..p.communities);
        let n = rng.gen_range(p.nodes.0..=p.nodes.1);
        let mut b = GraphBuilder::with_capacity(n, n - 1);
        let mut degree = vec![0usize; n];
        b.add_node(communities[comm]);
        for i in 1..n {
            // Preferential attachment biased by hub_bias.
            let mut weights: Vec<f64> = (0..i)
                .map(|j| 1.0 + p.hub_bias * degree[j] as f64)
                .collect();
            let total: f64 = weights.iter().sum();
            let mut pick = rng.gen_range(0.0..total);
            let mut parent = 0usize;
            for (j, w) in weights.iter_mut().enumerate() {
                if pick < *w {
                    parent = j;
                    break;
                }
                pick -= *w;
            }
            // Mostly same community, occasionally a cross-community reshare.
            let c = if rng.gen_bool(0.85) {
                communities[comm]
            } else {
                *communities.choose(rng).expect("non-empty")
            };
            b.add_node(c);
            b.add_edge(parent as NodeId, i as NodeId, spread)
                .expect("tree edge");
            degree[parent] += 1;
            degree[i] += 1;
        }
        graphs.push(b.build());
        let mut f = vec![0.0; p.topics];
        for &t in &profiles[comm] {
            if rng.gen_bool(0.8) {
                f[t] = 1.0;
            }
        }
        // Occasional off-profile topic.
        if rng.gen_bool(0.3) {
            f[rng.gen_range(0..p.topics)] = 1.0;
        }
        feats.push(f);
        family.push(comm as u32);
    }
    CascadeSet {
        graphs,
        features: feats,
        family,
        labels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn cascades_are_trees() {
        let mut rng = SmallRng::seed_from_u64(1);
        let s = generate(
            &mut rng,
            CascadeParams {
                size: 50,
                ..Default::default()
            },
        );
        for g in &s.graphs {
            assert!(g.is_connected());
            assert_eq!(g.edge_count(), g.node_count() - 1, "a cascade is a tree");
        }
    }

    #[test]
    fn features_are_binary_topic_vectors() {
        let mut rng = SmallRng::seed_from_u64(2);
        let s = generate(
            &mut rng,
            CascadeParams {
                size: 40,
                ..Default::default()
            },
        );
        for f in &s.features {
            assert_eq!(f.len(), 16);
            assert!(f.iter().all(|&v| v == 0.0 || v == 1.0));
        }
    }

    #[test]
    fn same_community_shares_topics() {
        let mut rng = SmallRng::seed_from_u64(3);
        let s = generate(
            &mut rng,
            CascadeParams {
                size: 300,
                communities: 4,
                ..Default::default()
            },
        );
        // Average within-community topic overlap should beat cross-community.
        let jac = |a: &[f64], b: &[f64]| {
            let inter = a
                .iter()
                .zip(b)
                .filter(|(x, y)| **x > 0.5 && **y > 0.5)
                .count() as f64;
            let uni = a
                .iter()
                .zip(b)
                .filter(|(x, y)| **x > 0.5 || **y > 0.5)
                .count() as f64;
            if uni == 0.0 {
                0.0
            } else {
                inter / uni
            }
        };
        let mut same = (0.0, 0.0);
        let mut cross = (0.0, 0.0);
        for i in 0..100 {
            for j in (i + 1)..100 {
                let v = jac(&s.features[i], &s.features[j]);
                if s.family[i] == s.family[j] {
                    same = (same.0 + v, same.1 + 1.0);
                } else {
                    cross = (cross.0 + v, cross.1 + 1.0);
                }
            }
        }
        assert!(same.0 / same.1 > cross.0 / cross.1);
    }
}
