//! Feature-vector helpers shared by the generators.

use rand::Rng;
use rand_distr_shim::normal;

/// A tiny Box–Muller normal sampler so we don't pull in `rand_distr`.
mod rand_distr_shim {
    use rand::Rng;

    /// One sample from `N(0, 1)`.
    pub fn normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

/// Samples `N(mu, sigma²)`.
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    mu + sigma * normal(rng)
}

/// A family base vector in `[0, 1]^dims`.
pub fn base_vector<R: Rng + ?Sized>(rng: &mut R, dims: usize) -> Vec<f64> {
    (0..dims).map(|_| rng.gen_range(0.0..1.0)).collect()
}

/// A member's features: the family base plus Gaussian noise, clamped to
/// `[0, 1]`. The shared base is what correlates feature and structural
/// space — members of one structural family score alike.
pub fn jitter<R: Rng + ?Sized>(rng: &mut R, base: &[f64], sigma: f64) -> Vec<f64> {
    base.iter()
        .map(|&b| (b + gaussian(rng, 0.0, sigma)).clamp(0.0, 1.0))
        .collect()
}

/// A skewed (harmonic / Zipf-like) family-size schedule summing to `total`:
/// `size_i ∝ largest / i^skew`, floored at 1.
///
/// Real graph repositories are not uniformly clustered — a few scaffold
/// families dominate and a long tail of rare structures (the paper's
/// "relevant outliers", Fig 1(b)) trails off. This schedule reproduces that
/// regime, which drives both DisC's linear answer growth (Fig 2a) and the
/// sub-linear growth of π with k (Table 4).
pub fn family_sizes(total: usize, largest: usize, skew: f64) -> Vec<usize> {
    assert!(largest >= 1);
    let mut sizes = Vec::new();
    let mut remaining = total;
    let mut i = 1u32;
    while remaining > 0 {
        let s = ((largest as f64 / (i as f64).powf(skew)).floor() as usize).clamp(1, remaining);
        sizes.push(s);
        remaining -= s;
        i += 1;
    }
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn gaussian_moments() {
        let mut rng = SmallRng::seed_from_u64(1);
        let samples: Vec<f64> = (0..20_000).map(|_| gaussian(&mut rng, 5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / samples.len() as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn jitter_stays_in_unit_box_and_close_to_base() {
        let mut rng = SmallRng::seed_from_u64(2);
        let base = base_vector(&mut rng, 10);
        for _ in 0..100 {
            let f = jitter(&mut rng, &base, 0.05);
            assert_eq!(f.len(), 10);
            for (a, b) in f.iter().zip(&base) {
                assert!((0.0..=1.0).contains(a));
                assert!((a - b).abs() < 0.5);
            }
        }
    }

    #[test]
    fn base_vectors_differ() {
        let mut rng = SmallRng::seed_from_u64(3);
        let a = base_vector(&mut rng, 8);
        let b = base_vector(&mut rng, 8);
        assert_ne!(a, b);
    }

    #[test]
    fn family_sizes_sum_and_skew() {
        let s = family_sizes(400, 50, 1.0);
        assert_eq!(s.iter().sum::<usize>(), 400);
        assert_eq!(s[0], 50);
        assert!(s[1] <= 25 + 1);
        // Long tail of singletons.
        assert!(s.iter().filter(|&&x| x <= 2).count() > 5);
        // Non-increasing until the final remainder-capped entry.
        for w in s.windows(2).take(s.len().saturating_sub(2)) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn family_sizes_edge_cases() {
        assert_eq!(family_sizes(0, 10, 1.0), Vec::<usize>::new());
        assert_eq!(family_sizes(5, 1, 1.0), vec![1; 5]);
        assert_eq!(family_sizes(3, 100, 1.0), vec![3]);
    }
}
