#![warn(missing_docs)]
#![deny(unsafe_code)]
#![deny(missing_debug_implementations)]

//! Synthetic dataset generators for `graphrep`.
//!
//! The paper evaluates on DUD (molecules), DBLP (2-hop collaboration
//! ego-nets) and Amazon (2-hop co-purchase ego-nets), none of which are
//! available offline. Each generator here reproduces the *structural regime*
//! the evaluation depends on — a family/cluster structure in edit-distance
//! space with feature vectors correlated to structure — at node counts where
//! the exact A\* edit distance stays computable (see DESIGN.md §3 for the
//! substitution argument).
//!
//! All generators are deterministic in their seed.

pub mod callgraphs;
pub mod cascades;
pub mod egonet;
pub mod features;
pub mod molecules;
pub mod network;
pub mod spec;
pub mod store;

pub use spec::{Dataset, DatasetKind, DatasetSpec};
