//! Dataset persistence: write a generated dataset to a directory and read
//! it back. Used by the `graphrep` CLI so expensive index builds and
//! experiments can run against a fixed on-disk database.
//!
//! Layout:
//! ```text
//! <dir>/graphs.txt     # the compact text format of graphrep-graph::io
//! <dir>/features.csv   # one row per graph
//! <dir>/meta.json      # labels, family ids, defaults
//! ```

use crate::spec::{Dataset, DatasetKind, DatasetSpec};
use graphrep_core::GraphDatabase;
use graphrep_graph::{io as gio, LabelInterner};
use serde::{Deserialize, Serialize};
use std::fs;
use std::path::Path;

/// Errors raised by dataset load/save.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// graphs.txt could not be parsed.
    Graphs(gio::GraphIoError),
    /// features.csv malformed.
    Features(String),
    /// meta.json malformed.
    Meta(serde_json::Error),
    /// Component lengths disagree.
    Inconsistent(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "io: {e}"),
            StoreError::Graphs(e) => write!(f, "graphs.txt: {e}"),
            StoreError::Features(e) => write!(f, "features.csv: {e}"),
            StoreError::Meta(e) => write!(f, "meta.json: {e}"),
            StoreError::Inconsistent(e) => write!(f, "inconsistent dataset: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

#[derive(Serialize, Deserialize)]
struct Meta {
    kind: String,
    seed: u64,
    labels: LabelInterner,
    family: Vec<u32>,
    default_theta: f64,
    default_ladder: Vec<f64>,
}

fn kind_to_str(kind: DatasetKind) -> &'static str {
    match kind {
        DatasetKind::DudLike => "dud",
        DatasetKind::DblpLike => "dblp",
        DatasetKind::AmazonLike => "amazon",
    }
}

/// Parses a dataset kind name (`dud`, `dblp`, `amazon`).
pub fn kind_from_str(s: &str) -> Option<DatasetKind> {
    match s {
        "dud" => Some(DatasetKind::DudLike),
        "dblp" => Some(DatasetKind::DblpLike),
        "amazon" => Some(DatasetKind::AmazonLike),
        _ => None,
    }
}

/// Writes `data` under `dir` (created if missing).
pub fn save(data: &Dataset, dir: &Path) -> Result<(), StoreError> {
    fs::create_dir_all(dir)?;
    fs::write(dir.join("graphs.txt"), gio::write_graphs(data.db.graphs()))?;
    let mut csv = String::new();
    for f in data.db.all_features() {
        let row: Vec<String> = f.iter().map(|v| format!("{v}")).collect();
        csv.push_str(&row.join(","));
        csv.push('\n');
    }
    fs::write(dir.join("features.csv"), csv)?;
    let meta = Meta {
        kind: kind_to_str(data.spec.kind).to_owned(),
        seed: data.spec.seed,
        labels: data.db.labels().clone(),
        family: data.family.clone(),
        default_theta: data.default_theta,
        default_ladder: data.default_ladder.clone(),
    };
    let json = serde_json::to_string_pretty(&meta).map_err(StoreError::Meta)?;
    fs::write(dir.join("meta.json"), json)?;
    Ok(())
}

/// Reads a dataset previously written by [`save`].
pub fn load(dir: &Path) -> Result<Dataset, StoreError> {
    let graphs = gio::read_graphs(&fs::read_to_string(dir.join("graphs.txt"))?)
        .map_err(StoreError::Graphs)?;
    let mut features = Vec::new();
    for (lineno, line) in fs::read_to_string(dir.join("features.csv"))?
        .lines()
        .enumerate()
    {
        if line.trim().is_empty() {
            continue;
        }
        let row: Result<Vec<f64>, _> = line.split(',').map(str::parse::<f64>).collect();
        features.push(row.map_err(|e| StoreError::Features(format!("line {lineno}: {e}")))?);
    }
    let meta: Meta = serde_json::from_str(&fs::read_to_string(dir.join("meta.json"))?)
        .map_err(StoreError::Meta)?;
    if graphs.len() != features.len() || graphs.len() != meta.family.len() {
        return Err(StoreError::Inconsistent(format!(
            "{} graphs, {} feature rows, {} family ids",
            graphs.len(),
            features.len(),
            meta.family.len()
        )));
    }
    let kind = kind_from_str(&meta.kind)
        .ok_or_else(|| StoreError::Inconsistent(format!("unknown kind {}", meta.kind)))?;
    let mut labels = meta.labels;
    labels.rebuild_index();
    let size = graphs.len();
    Ok(Dataset {
        db: GraphDatabase::new(graphs, features, labels),
        family: meta.family,
        spec: DatasetSpec::new(kind, size, meta.seed),
        default_theta: meta.default_theta,
        default_ladder: meta.default_ladder,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("graphrep-store-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn save_load_round_trip() {
        let data = DatasetSpec::new(DatasetKind::DudLike, 40, 11).generate();
        let dir = tmpdir("rt");
        save(&data, &dir).unwrap();
        let back = load(&dir).unwrap();
        assert_eq!(back.db.graphs(), data.db.graphs());
        assert_eq!(back.db.all_features(), data.db.all_features());
        assert_eq!(back.family, data.family);
        assert_eq!(back.default_theta, data.default_theta);
        assert_eq!(back.default_ladder, data.default_ladder);
        assert_eq!(back.spec.kind, data.spec.kind);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_dir_errors() {
        assert!(matches!(
            load(Path::new("/nonexistent/graphrep-nowhere")),
            Err(StoreError::Io(_))
        ));
    }

    #[test]
    fn inconsistent_lengths_detected() {
        let data = DatasetSpec::new(DatasetKind::DblpLike, 10, 12).generate();
        let dir = tmpdir("bad");
        save(&data, &dir).unwrap();
        fs::write(dir.join("features.csv"), "1.0\n2.0\n").unwrap();
        assert!(matches!(load(&dir), Err(StoreError::Inconsistent(_))));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in [
            DatasetKind::DudLike,
            DatasetKind::DblpLike,
            DatasetKind::AmazonLike,
        ] {
            assert_eq!(kind_from_str(kind_to_str(kind)), Some(kind));
        }
        assert_eq!(kind_from_str("bogus"), None);
    }
}
