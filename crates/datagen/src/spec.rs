//! Dataset assembly: generators → [`GraphDatabase`] plus evaluation presets.
//!
//! Each preset mirrors one of the paper's three benchmark datasets (Table 3)
//! at a scaled-down node count, and carries the matching default query
//! arguments of Sec 8.2.1: the distance threshold θ (scaled with graph
//! size), the π̂-vector threshold ladder (Sec 8.2.2), and the relevance
//! scorer shape.

use crate::egonet::{self, EgonetParams};
use crate::molecules::{self, MoleculeParams};
use graphrep_core::{GraphDatabase, RelevanceQuery, Scorer};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Which paper dataset a spec stands in for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    /// DUD-like molecule library (10-dim binding affinities).
    DudLike,
    /// DBLP-like collaboration ego-nets (1-dim activity).
    DblpLike,
    /// Amazon-like co-purchase ego-nets (1-dim popularity).
    AmazonLike,
}

impl DatasetKind {
    /// Display name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::DudLike => "DUD-like",
            DatasetKind::DblpLike => "DBLP-like",
            DatasetKind::AmazonLike => "Amazon-like",
        }
    }
}

/// A reproducible dataset specification.
#[derive(Debug, Clone, Copy)]
pub struct DatasetSpec {
    /// Which regime to generate.
    pub kind: DatasetKind,
    /// Number of graphs.
    pub size: usize,
    /// RNG seed.
    pub seed: u64,
}

/// A generated dataset with its evaluation defaults.
#[derive(Debug)]
pub struct Dataset {
    /// The database (graphs + features).
    pub db: GraphDatabase,
    /// Ground-truth family of each graph (generator-internal, used only for
    /// sanity checks — the algorithms never see it).
    pub family: Vec<u32>,
    /// The spec that produced this dataset.
    pub spec: DatasetSpec,
    /// Default distance threshold θ (paper Sec 8.2.1, scaled).
    pub default_theta: f64,
    /// Default π̂-vector threshold ladder (paper Sec 8.2.2, scaled).
    pub default_ladder: Vec<f64>,
}

impl DatasetSpec {
    /// Creates a spec.
    pub fn new(kind: DatasetKind, size: usize, seed: u64) -> Self {
        Self { kind, size, seed }
    }

    /// Generates the dataset.
    pub fn generate(&self) -> Dataset {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        match self.kind {
            DatasetKind::DudLike => {
                let m = molecules::generate(
                    &mut rng,
                    MoleculeParams {
                        size: self.size,
                        ..Default::default()
                    },
                );
                Dataset {
                    db: GraphDatabase::new(m.graphs, m.features, m.labels),
                    family: m.family,
                    spec: *self,
                    // Paper: θ = 10 at 26-node molecules; ours average ~7
                    // nodes, so θ = 4 covers the same within-family band.
                    default_theta: 4.0,
                    // Paper ladder 5..100 compressed to our distance range.
                    default_ladder: vec![2.0, 4.0, 5.0, 6.0, 7.0, 8.0, 10.0, 12.0, 16.0, 24.0],
                }
            }
            DatasetKind::DblpLike => {
                let s = egonet::generate(&mut rng, EgonetParams::dblp(self.size));
                Dataset {
                    db: GraphDatabase::new(s.graphs, s.features, s.labels),
                    family: s.family,
                    spec: *self,
                    default_theta: 4.0,
                    default_ladder: vec![2.0, 4.0, 5.0, 6.0, 7.0, 8.0, 10.0, 12.0, 16.0, 24.0],
                }
            }
            DatasetKind::AmazonLike => {
                let s = egonet::generate(&mut rng, EgonetParams::amazon(self.size));
                Dataset {
                    db: GraphDatabase::new(s.graphs, s.features, s.labels),
                    family: s.family,
                    spec: *self,
                    // Amazon distances sit much farther out (paper θ = 75 of
                    // a ~500 diameter; ours scale to ~8 of a ~30 diameter).
                    default_theta: 8.0,
                    default_ladder: vec![3.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0, 20.0, 26.0, 36.0],
                }
            }
        }
    }
}

impl Dataset {
    /// The paper's default relevance query for this dataset: score in the
    /// top quartile (Sec 8.2.1) under the dataset's natural scorer.
    pub fn default_query(&self) -> RelevanceQuery {
        let scorer = match self.spec.kind {
            // DUD: random d-dim subset; default = all 10 dims.
            DatasetKind::DudLike => Scorer::MeanOfDims((0..self.db.dims()).collect()),
            DatasetKind::DblpLike | DatasetKind::AmazonLike => Scorer::MeanOfDims(vec![0]),
        };
        RelevanceQuery::top_quantile(&self.db, scorer, 0.75)
    }

    /// A DUD-style query over a random `d`-dimensional subset (Fig 6(h)).
    pub fn query_with_dims(&self, dims: usize, seed: u64) -> RelevanceQuery {
        use rand::seq::SliceRandom;
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut all: Vec<usize> = (0..self.db.dims()).collect();
        all.shuffle(&mut rng);
        all.truncate(dims.max(1).min(self.db.dims()));
        RelevanceQuery::top_quantile(&self.db, Scorer::MeanOfDims(all), 0.75)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_generate() {
        for kind in [
            DatasetKind::DudLike,
            DatasetKind::DblpLike,
            DatasetKind::AmazonLike,
        ] {
            let d = DatasetSpec::new(kind, 60, 1).generate();
            assert_eq!(d.db.len(), 60, "{:?}", kind);
            assert_eq!(d.family.len(), 60);
            assert!(d.default_theta > 0.0);
            assert!(!d.default_ladder.is_empty());
            assert!(d.default_ladder.iter().any(|&t| t >= d.default_theta));
        }
    }

    #[test]
    fn default_query_marks_top_quartile() {
        let d = DatasetSpec::new(DatasetKind::DudLike, 100, 2).generate();
        let q = d.default_query();
        let rel = q.relevant_set(&d.db);
        // Quantile is nearest-rank: allow some slack around 25%.
        assert!(rel.len() >= 20 && rel.len() <= 35, "{}", rel.len());
    }

    #[test]
    fn query_with_dims_restricts_scorer() {
        let d = DatasetSpec::new(DatasetKind::DudLike, 50, 3).generate();
        let q = d.query_with_dims(3, 9);
        match &q.scorer {
            Scorer::MeanOfDims(dims) => assert_eq!(dims.len(), 3),
            other => panic!("unexpected scorer {other:?}"),
        }
        assert!(!q.relevant_set(&d.db).is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = DatasetSpec::new(DatasetKind::DblpLike, 40, 5).generate();
        let b = DatasetSpec::new(DatasetKind::DblpLike, 40, 5).generate();
        assert_eq!(a.db.graphs(), b.db.graphs());
        assert_eq!(a.db.all_features(), b.db.all_features());
    }
}
