//! The baseline greedy algorithm (paper Alg. 1).
//!
//! Greedy selection of the graph with the maximum marginal gain in
//! representative power. By submodularity (Thm 2) this approximates the
//! optimal answer set within `1 − 1/e`, and no polynomial algorithm does
//! better unless P = NP. The bottleneck is the θ-neighborhood computation,
//! abstracted behind [`NeighborhoodProvider`] so the experiments can plug in
//! brute force, C-tree, M-tree, a distance matrix — or the NB-Index.

use crate::answer::AnswerSet;
pub use crate::provider::NeighborhoodProvider;
use graphrep_ged::DistanceOracle;
use graphrep_graph::GraphId;
use graphrep_metric::Bitset;

/// Brute-force provider: one θ-membership test per relevant graph, routed
/// through the oracle's tiered [`DistanceOracle::within_verdict`] ladder so
/// cheap bounds answer most tests without an edit-distance computation.
#[derive(Debug)]
pub struct BruteForceProvider<'a> {
    oracle: &'a DistanceOracle,
    relevant: &'a [GraphId],
}

impl<'a> BruteForceProvider<'a> {
    /// Creates a provider over the oracle and the relevant set.
    pub fn new(oracle: &'a DistanceOracle, relevant: &'a [GraphId]) -> Self {
        Self { oracle, relevant }
    }
}

impl NeighborhoodProvider for BruteForceProvider<'_> {
    fn neighborhood(&self, g: GraphId, theta: f64) -> Vec<GraphId> {
        self.relevant
            .iter()
            .copied()
            .filter(|&r| self.oracle.within_verdict(g, r, theta))
            .collect()
    }

    fn neighborhood_with_distances(
        &self,
        g: GraphId,
        theta: f64,
    ) -> (Vec<GraphId>, Vec<Option<f64>>) {
        let members = self.neighborhood(g, theta);
        let distances = members
            .iter()
            .map(|&m| self.oracle.cached_distance(g, m))
            .collect();
        (members, distances)
    }
}

/// Runs Alg. 1: `k` rounds of maximum-marginal-gain selection over the
/// relevant set, with neighborhoods supplied by `provider`.
///
/// Ties break toward the smaller graph id, which makes the output
/// deterministic and lets the NB-Index implementation be checked for exact
/// answer equality. The neighborhood-initialization phase — the quadratic
/// GED-dominated part the paper indexes — fans out across rayon workers; the
/// per-graph neighborhoods are pure and collected in relevant-set order, so
/// the answer is identical at any thread count.
pub fn baseline_greedy(
    provider: &(impl NeighborhoodProvider + Sync),
    relevant: &[GraphId],
    theta: f64,
    k: usize,
) -> AnswerSet {
    use rayon::prelude::*;
    let cap = relevant.iter().copied().max().map_or(0, |m| m as usize + 1);
    // Neighborhood initialization: the quadratic phase the paper indexes.
    let mut neigh: Vec<Bitset> = relevant
        .par_iter()
        .map(|&g| {
            Bitset::from_indices(
                cap,
                provider.neighborhood(g, theta).iter().map(|&n| n as usize),
            )
        })
        .collect();
    let mut in_answer = vec![false; relevant.len()];
    let mut covered = Bitset::new(cap);
    let mut ids = Vec::with_capacity(k.min(relevant.len()));
    let mut pi_trajectory = Vec::with_capacity(k.min(relevant.len()));
    #[cfg(feature = "invariant-audit")]
    let mut prev_gain = usize::MAX;
    for _ in 0..k.min(relevant.len()) {
        // arg max marginal gain; |N(g) \ covered| with N pre-shrunk each round.
        let mut best: Option<(usize, usize)> = None; // (gain, index)
        for (i, n) in neigh.iter().enumerate() {
            if in_answer[i] {
                continue;
            }
            let gain = n.count();
            match best {
                Some((bg, _)) if bg >= gain => {}
                _ => best = Some((gain, i)),
            }
        }
        let Some((gain, bi)) = best else { break };
        #[cfg(feature = "invariant-audit")]
        {
            graphrep_ged::audit_invariant!(
                gain <= prev_gain,
                "submodularity (Thm 2): greedy marginal gain rose from {prev_gain} to {gain}"
            );
            prev_gain = gain;
        }
        if gain == 0 {
            // Nothing left to cover: additional answers cannot raise π and
            // only dilute the compression ratio — stop early.
            break;
        }
        in_answer[bi] = true;
        ids.push(relevant[bi]);
        let chosen = neigh[bi].clone();
        covered.union_with(&chosen);
        // Alg. 1 lines 6–7: N(g) ← N(g) \ N(g*).
        for (i, n) in neigh.iter_mut().enumerate() {
            if !in_answer[i] {
                n.subtract(&chosen);
            }
        }
        pi_trajectory.push(if relevant.is_empty() {
            0.0
        } else {
            covered.count() as f64 / relevant.len() as f64
        });
    }
    AnswerSet {
        ids,
        covered: covered.count(),
        relevant: relevant.len(),
        pi_trajectory,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Provider over an abstract 1-D space: item ids are positions.
    struct LineProvider {
        relevant: Vec<GraphId>,
    }

    impl NeighborhoodProvider for LineProvider {
        fn neighborhood(&self, g: GraphId, theta: f64) -> Vec<GraphId> {
            self.relevant
                .iter()
                .copied()
                .filter(|&r| (r as f64 - g as f64).abs() <= theta)
                .collect()
        }
    }

    #[test]
    fn picks_cluster_centers_first() {
        // Cluster at 0..5, outlier at 100.
        let relevant = vec![0, 1, 2, 3, 4, 100];
        let p = LineProvider {
            relevant: relevant.clone(),
        };
        let a = baseline_greedy(&p, &relevant, 2.0, 2);
        // Best first pick covers {0..4} — that's position 2.
        assert_eq!(a.ids[0], 2);
        assert_eq!(a.ids[1], 100);
        assert_eq!(a.covered, 6);
        assert!((a.pi() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn trajectory_is_monotone_and_matches_pi() {
        let relevant: Vec<GraphId> = (0..30).collect();
        let p = LineProvider {
            relevant: relevant.clone(),
        };
        let a = baseline_greedy(&p, &relevant, 3.0, 5);
        for w in a.pi_trajectory.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert!((a.pi_trajectory.last().unwrap() - a.pi()).abs() < 1e-12);
    }

    #[test]
    fn k_larger_than_relevant_set() {
        let relevant = vec![0, 10];
        let p = LineProvider {
            relevant: relevant.clone(),
        };
        let a = baseline_greedy(&p, &relevant, 1.0, 10);
        assert_eq!(a.len(), 2);
        assert!((a.pi() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_relevant_set() {
        let p = LineProvider { relevant: vec![] };
        let a = baseline_greedy(&p, &[], 1.0, 3);
        assert!(a.is_empty());
        assert_eq!(a.pi(), 0.0);
    }

    #[test]
    fn greedy_respects_marginal_gain_not_raw_power() {
        // Two overlapping dense clusters: after picking the first center,
        // the second pick should be the *other* cluster even though members
        // of the first cluster have higher raw |N|.
        let relevant = vec![0, 1, 2, 3, 4, 5, 20, 21, 22];
        let p = LineProvider {
            relevant: relevant.clone(),
        };
        let a = baseline_greedy(&p, &relevant, 3.0, 2);
        assert!(a.ids[0] <= 5);
        assert!(a.ids[1] >= 20, "second pick must cover the far cluster");
    }

    #[test]
    fn deterministic_tie_break_smallest_id() {
        let relevant = vec![7, 8];
        let p = LineProvider {
            relevant: relevant.clone(),
        };
        let a = baseline_greedy(&p, &relevant, 0.0, 1);
        assert_eq!(a.ids, vec![7]);
    }
}
