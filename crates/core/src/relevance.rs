//! Query-time relevance functions `q : features → {−1, 1}` (paper Sec 2,
//! Table 1).
//!
//! A [`Scorer`] maps a feature vector to a scalar; a [`RelevanceQuery`]
//! thresholds the score. The paper's four example applications are all
//! expressible: linear scores over selected dimensions (molecular library,
//! bug analysis), Jaccard similarity against a topic set (cascades), and
//! intersection counts against expertise areas (social networks).

use crate::db::GraphDatabase;
use graphrep_graph::GraphId;
use serde::{Deserialize, Serialize};

/// Feature-space scoring functions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Scorer {
    /// Mean of the selected dimensions: `Σ_j g_j / |dims|` (DUD style).
    MeanOfDims(Vec<usize>),
    /// Weighted sum `wᵀ·g` (bug-analysis style).
    Weighted(Vec<f64>),
    /// Jaccard similarity of the binary feature vector against a topic set
    /// (cascade style): `|g ∩ T| / |g ∪ T|`.
    Jaccard(Vec<usize>),
    /// Intersection count against expertise areas (social-network style):
    /// `|g ∩ E|`.
    Intersection(Vec<usize>),
}

impl Scorer {
    /// Scores one feature vector.
    pub fn score(&self, f: &[f64]) -> f64 {
        match self {
            Scorer::MeanOfDims(dims) => {
                if dims.is_empty() {
                    return 0.0;
                }
                dims.iter().map(|&d| f[d]).sum::<f64>() / dims.len() as f64
            }
            Scorer::Weighted(w) => w.iter().zip(f).map(|(a, b)| a * b).sum(),
            Scorer::Jaccard(topics) => {
                let in_set = |d: usize| topics.contains(&d);
                let mut inter = 0.0;
                let mut union = topics.len() as f64;
                for (d, &v) in f.iter().enumerate() {
                    if v > 0.5 {
                        if in_set(d) {
                            inter += 1.0;
                        } else {
                            union += 1.0;
                        }
                    }
                }
                if union <= 0.0 {
                    0.0
                } else {
                    inter / union
                }
            }
            Scorer::Intersection(areas) => areas
                .iter()
                .map(|&d| {
                    if f.get(d).copied().unwrap_or(0.0) > 0.5 {
                        1.0
                    } else {
                        0.0
                    }
                })
                .sum(),
        }
    }
}

/// A relevance query: a graph is relevant iff its score is at least
/// `threshold`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RelevanceQuery {
    /// The feature-space scorer.
    pub scorer: Scorer,
    /// Relevance cutoff.
    pub threshold: f64,
}

impl RelevanceQuery {
    /// Builds a query whose threshold is the `q`-quantile of scores over
    /// `db` — the paper marks graphs relevant when their score falls in the
    /// top quartile (`q = 0.75`).
    pub fn top_quantile(db: &GraphDatabase, scorer: Scorer, q: f64) -> Self {
        let mut scores: Vec<f64> = db.all_features().iter().map(|f| scorer.score(f)).collect();
        scores.sort_by(f64::total_cmp);
        let threshold = if scores.is_empty() {
            0.0
        } else {
            let idx = ((scores.len() as f64 - 1.0) * q.clamp(0.0, 1.0)).round() as usize;
            scores[idx]
        };
        Self { scorer, threshold }
    }

    /// Whether graph `id` of `db` is relevant.
    pub fn is_relevant(&self, db: &GraphDatabase, id: GraphId) -> bool {
        self.scorer.score(db.features(id)) >= self.threshold
    }

    /// The score of graph `id`.
    pub fn score(&self, db: &GraphDatabase, id: GraphId) -> f64 {
        self.scorer.score(db.features(id))
    }

    /// The relevant set `L_q`, in ascending id order.
    pub fn relevant_set(&self, db: &GraphDatabase) -> Vec<GraphId> {
        (0..db.len() as GraphId)
            .filter(|&id| self.is_relevant(db, id))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphrep_graph::{GraphBuilder, LabelInterner};

    fn db_with_features(features: Vec<Vec<f64>>) -> GraphDatabase {
        let graphs = features
            .iter()
            .map(|_| {
                let mut b = GraphBuilder::new();
                b.add_node(0);
                b.build()
            })
            .collect();
        GraphDatabase::new(graphs, features, LabelInterner::new())
    }

    #[test]
    fn mean_of_dims() {
        let s = Scorer::MeanOfDims(vec![0, 2]);
        assert_eq!(s.score(&[2.0, 100.0, 4.0]), 3.0);
        assert_eq!(Scorer::MeanOfDims(vec![]).score(&[1.0]), 0.0);
    }

    #[test]
    fn weighted() {
        let s = Scorer::Weighted(vec![1.0, -1.0]);
        assert_eq!(s.score(&[3.0, 2.0]), 1.0);
    }

    #[test]
    fn jaccard() {
        // features: topics 0 and 2 active; query topics {0, 1}.
        let s = Scorer::Jaccard(vec![0, 1]);
        // intersection {0}, union {0,1,2} → 1/3.
        assert!((s.score(&[1.0, 0.0, 1.0]) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(Scorer::Jaccard(vec![]).score(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn intersection() {
        let s = Scorer::Intersection(vec![0, 1, 5]);
        assert_eq!(s.score(&[1.0, 1.0, 1.0]), 2.0); // dim 5 missing → skipped
    }

    #[test]
    fn quantile_threshold_marks_top_quarter() {
        let feats: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let db = db_with_features(feats);
        let q = RelevanceQuery::top_quantile(&db, Scorer::MeanOfDims(vec![0]), 0.75);
        let rel = q.relevant_set(&db);
        assert_eq!(rel.len(), 26); // scores 74..=99 — nearest-rank at 0.75
        assert!(q.is_relevant(&db, 99));
        assert!(!q.is_relevant(&db, 0));
    }

    #[test]
    fn relevant_set_sorted() {
        let db = db_with_features(vec![vec![5.0], vec![1.0], vec![9.0]]);
        let q = RelevanceQuery {
            scorer: Scorer::MeanOfDims(vec![0]),
            threshold: 4.0,
        };
        assert_eq!(q.relevant_set(&db), vec![0, 2]);
        assert_eq!(q.score(&db, 1), 1.0);
    }

    #[test]
    fn empty_db_quantile() {
        let db = db_with_features(vec![]);
        let q = RelevanceQuery::top_quantile(&db, Scorer::MeanOfDims(vec![0]), 0.75);
        assert_eq!(q.threshold, 0.0);
        assert!(q.relevant_set(&db).is_empty());
    }
}
