//! Lazy greedy (CELF) and weighted-coverage extensions.
//!
//! * [`lazy_greedy`] — the classic CELF optimization for submodular
//!   maximization: stale marginal gains are kept in a priority queue and
//!   only re-evaluated when they reach the top. Returns exactly the Alg 1
//!   answer (same tie-break) while evaluating far fewer gains. The NB-Index
//!   generalizes this idea with *tree-level* bounds; CELF is included as the
//!   flat-space reference point.
//! * [`weighted_greedy`] — maximizes **weighted** coverage
//!   `Σ_{g' covered} w(g')`, a natural extension the paper hints at (reward
//!   covering *high-scoring* relevant graphs more): with unit weights it
//!   reduces to Alg 1.

use crate::answer::AnswerSet;
use crate::cancel::{CancelToken, Cancelled};
use crate::greedy::NeighborhoodProvider;
use graphrep_graph::GraphId;
use graphrep_metric::Bitset;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry {
    gain: usize,
    /// Iteration at which this gain was computed (freshness stamp).
    round: usize,
    idx: usize,
    id: GraphId,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.gain == other.gain && self.id == other.id
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max gain first; ties toward the smaller graph id (Alg 1 parity).
        self.gain
            .cmp(&other.gain)
            .then_with(|| other.id.cmp(&self.id))
    }
}

/// Statistics of a lazy-greedy run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LazyStats {
    /// Marginal gains actually recomputed.
    pub gain_evaluations: u64,
    /// Upper bound: gains a plain greedy would compute (`k · |L_q|`).
    pub eager_evaluations: u64,
}

/// CELF lazy greedy over precomputed θ-neighborhoods. The neighborhood
/// precomputation (the GED-heavy phase) runs across rayon workers and
/// collects in relevant-set order; the lazy selection loop is sequential, so
/// answers are thread-count-independent.
pub fn lazy_greedy(
    provider: &(impl NeighborhoodProvider + Sync),
    relevant: &[GraphId],
    theta: f64,
    k: usize,
) -> (AnswerSet, LazyStats) {
    match lazy_greedy_cancellable(provider, relevant, theta, k, &CancelToken::never()) {
        Ok(r) => r,
        // A never-token has no trigger; this arm cannot be reached.
        Err(Cancelled) => unreachable!("CancelToken::never() fired"),
    }
}

/// [`lazy_greedy`] with a cooperative cancellation token, polled between
/// CELF heap pops (before the neighborhood precomputation and before each
/// gain refresh). On cancellation the partial answer is discarded.
pub fn lazy_greedy_cancellable(
    provider: &(impl NeighborhoodProvider + Sync),
    relevant: &[GraphId],
    theta: f64,
    k: usize,
    cancel: &CancelToken,
) -> Result<(AnswerSet, LazyStats), Cancelled> {
    use rayon::prelude::*;
    cancel.check()?;
    let cap = relevant.iter().copied().max().map_or(0, |m| m as usize + 1);
    let neigh: Vec<Bitset> = relevant
        .par_iter()
        .map(|&g| {
            Bitset::from_indices(
                cap,
                provider.neighborhood(g, theta).iter().map(|&n| n as usize),
            )
        })
        .collect();
    let mut covered = Bitset::new(cap);
    let mut heap: BinaryHeap<Entry> = relevant
        .iter()
        .enumerate()
        .map(|(i, &g)| Entry {
            gain: neigh[i].count(),
            round: 0,
            idx: i,
            id: g,
        })
        .collect();
    let mut stats = LazyStats {
        gain_evaluations: relevant.len() as u64,
        eager_evaluations: (k.min(relevant.len()) * relevant.len()) as u64,
    };
    let mut in_answer = vec![false; relevant.len()];
    let mut ids = Vec::new();
    let mut pi_trajectory = Vec::new();
    let mut round = 0usize;
    while ids.len() < k.min(relevant.len()) {
        cancel.check()?;
        let Some(top) = heap.pop() else { break };
        if in_answer[top.idx] {
            continue;
        }
        if top.round < round {
            // Stale: refresh and re-insert. Submodularity guarantees the
            // fresh gain is ≤ the stale one, so the heap order stays sound.
            let fresh = neigh[top.idx].difference_count(&covered);
            stats.gain_evaluations += 1;
            heap.push(Entry {
                gain: fresh,
                round,
                idx: top.idx,
                id: top.id,
            });
            continue;
        }
        if top.gain == 0 {
            break; // coverage saturated — same early-stop as Alg 1
        }
        in_answer[top.idx] = true;
        ids.push(top.id);
        covered.union_with(&neigh[top.idx]);
        round += 1;
        pi_trajectory.push(if relevant.is_empty() {
            0.0
        } else {
            covered.count() as f64 / relevant.len() as f64
        });
    }
    Ok((
        AnswerSet {
            ids,
            covered: covered.count(),
            relevant: relevant.len(),
            pi_trajectory,
        },
        stats,
    ))
}

/// Result of a weighted greedy run.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedAnswer {
    /// Chosen graphs, in selection order.
    pub ids: Vec<GraphId>,
    /// Total weight covered.
    pub covered_weight: f64,
    /// Total weight of the relevant set.
    pub total_weight: f64,
}

impl WeightedAnswer {
    /// Weighted representative power: covered weight / total weight.
    pub fn weighted_pi(&self) -> f64 {
        if self.total_weight <= 0.0 {
            0.0
        } else {
            self.covered_weight / self.total_weight
        }
    }
}

/// Greedy maximization of weighted coverage. `weight[i]` belongs to
/// `relevant[i]` and must be non-negative; the objective stays monotone
/// submodular, so the `1 − 1/e` guarantee carries over.
pub fn weighted_greedy(
    provider: &(impl NeighborhoodProvider + Sync),
    relevant: &[GraphId],
    weight: &[f64],
    theta: f64,
    k: usize,
) -> WeightedAnswer {
    use rayon::prelude::*;
    assert_eq!(relevant.len(), weight.len());
    assert!(weight.iter().all(|w| *w >= 0.0), "weights must be ≥ 0");
    let cap = relevant.iter().copied().max().map_or(0, |m| m as usize + 1);
    // Weight lookup by graph id.
    let mut w_by_id = vec![0.0f64; cap];
    for (&g, &w) in relevant.iter().zip(weight) {
        w_by_id[g as usize] = w;
    }
    let neigh: Vec<Vec<usize>> = relevant
        .par_iter()
        .map(|&g| {
            provider
                .neighborhood(g, theta)
                .into_iter()
                .map(|n| n as usize)
                .collect()
        })
        .collect();
    let mut covered = Bitset::new(cap);
    let mut in_answer = vec![false; relevant.len()];
    let mut ids = Vec::new();
    let mut covered_weight = 0.0;
    for _ in 0..k.min(relevant.len()) {
        let mut best: Option<(f64, usize)> = None;
        for (i, nb) in neigh.iter().enumerate() {
            if in_answer[i] {
                continue;
            }
            let gain: f64 = nb
                .iter()
                .filter(|&&n| !covered.contains(n))
                .map(|&n| w_by_id[n])
                .sum();
            match best {
                Some((bg, _)) if bg >= gain => {}
                _ => best = Some((gain, i)),
            }
        }
        let Some((gain, bi)) = best else { break };
        in_answer[bi] = true;
        ids.push(relevant[bi]);
        covered_weight += gain;
        for &n in &neigh[bi] {
            covered.insert(n);
        }
    }
    WeightedAnswer {
        ids,
        covered_weight,
        total_weight: weight.iter().sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::baseline_greedy;

    struct LineProvider {
        relevant: Vec<GraphId>,
    }

    impl NeighborhoodProvider for LineProvider {
        fn neighborhood(&self, g: GraphId, theta: f64) -> Vec<GraphId> {
            self.relevant
                .iter()
                .copied()
                .filter(|&r| (r as f64 - g as f64).abs() <= theta)
                .collect()
        }
    }

    #[test]
    fn lazy_matches_eager_greedy() {
        let relevant: Vec<GraphId> = vec![0, 1, 2, 3, 4, 5, 20, 21, 22, 50, 51, 90];
        let p = LineProvider {
            relevant: relevant.clone(),
        };
        for k in [1usize, 3, 6, 12] {
            let eager = baseline_greedy(&p, &relevant, 2.0, k);
            let (lazy, stats) = lazy_greedy(&p, &relevant, 2.0, k);
            assert_eq!(lazy.ids, eager.ids, "k = {k}");
            assert_eq!(lazy.pi_trajectory, eager.pi_trajectory);
            assert!(stats.gain_evaluations <= stats.eager_evaluations + relevant.len() as u64);
        }
    }

    #[test]
    fn lazy_saves_evaluations_on_clustered_data() {
        let relevant: Vec<GraphId> = (0..100).collect();
        let p = LineProvider {
            relevant: relevant.clone(),
        };
        let (_, stats) = lazy_greedy(&p, &relevant, 3.0, 10);
        assert!(
            stats.gain_evaluations < stats.eager_evaluations,
            "CELF should beat eager: {} >= {}",
            stats.gain_evaluations,
            stats.eager_evaluations
        );
    }

    #[test]
    fn weighted_reduces_to_unweighted_with_unit_weights() {
        let relevant: Vec<GraphId> = vec![0, 1, 2, 3, 10, 11, 12, 40];
        let p = LineProvider {
            relevant: relevant.clone(),
        };
        let unit = vec![1.0; relevant.len()];
        let w = weighted_greedy(&p, &relevant, &unit, 2.0, 3);
        let plain = baseline_greedy(&p, &relevant, 2.0, 3);
        assert_eq!(w.ids, plain.ids);
        assert!((w.covered_weight - plain.covered as f64).abs() < 1e-12);
    }

    #[test]
    fn weights_steer_the_answer() {
        // Two clusters; the small one carries huge weight.
        let relevant: Vec<GraphId> = vec![0, 1, 2, 3, 4, 50, 51];
        let mut weight = vec![1.0; relevant.len()];
        weight[5] = 100.0;
        weight[6] = 100.0;
        let p = LineProvider {
            relevant: relevant.clone(),
        };
        let w = weighted_greedy(&p, &relevant, &weight, 2.0, 1);
        assert!(w.ids[0] >= 50, "heavy cluster must win: {:?}", w.ids);
        assert!(w.weighted_pi() > 0.9);
    }

    #[test]
    fn empty_inputs() {
        let p = LineProvider { relevant: vec![] };
        let (a, _) = lazy_greedy(&p, &[], 1.0, 5);
        assert!(a.is_empty());
        let w = weighted_greedy(&p, &[], &[], 1.0, 5);
        assert!(w.ids.is_empty());
        assert_eq!(w.weighted_pi(), 0.0);
    }

    #[test]
    #[should_panic(expected = "weights must be ≥ 0")]
    fn negative_weights_rejected() {
        let p = LineProvider { relevant: vec![0] };
        let _ = weighted_greedy(&p, &[0], &[-1.0], 1.0, 1);
    }
}
