//! Cooperative cancellation for long-running searches.
//!
//! The greedy search (Alg 2) and CELF both run an unbounded-cost loop of
//! priority-queue pops whose individual steps can trigger NP-hard edit
//! distances. A serving layer cannot afford to let one request hold a worker
//! forever, so the search loops poll a [`CancelToken`] between pops and bail
//! out with [`Cancelled`] when it fires — either because a deadline passed
//! or because a shutdown/abort flag was raised.
//!
//! Cancellation is *cooperative*: a search never stops mid-distance (the
//! engine call is the atomic unit of work), it stops at the next pop
//! boundary. That keeps every data structure consistent — the session
//! remains fully usable for the next run after a cancelled one.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A cancelled search. The partial answer is discarded: results are only
/// ever returned for complete, deterministic runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled;

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("search cancelled (deadline exceeded or abort requested)")
    }
}

impl std::error::Error for Cancelled {}

/// A cancellation signal checked cooperatively by search loops.
///
/// A token combines two independent triggers, either of which cancels:
///
/// * a **deadline** — an [`Instant`] after which the search must stop, used
///   for per-request latency budgets;
/// * a **flag** — a shared [`AtomicBool`] raised by another thread, used for
///   shutdown draining and client-initiated aborts.
///
/// [`CancelToken::never`] is the zero-cost default: both triggers absent, so
/// [`CancelToken::is_cancelled`] is a pair of `None` checks.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    deadline: Option<Instant>,
    flag: Option<Arc<AtomicBool>>,
}

impl CancelToken {
    /// A token that never cancels.
    pub fn never() -> Self {
        Self::default()
    }

    /// A token that cancels once `deadline` has passed.
    pub fn with_deadline(deadline: Instant) -> Self {
        Self {
            deadline: Some(deadline),
            flag: None,
        }
    }

    /// A token that cancels once `flag` is raised (set to `true`).
    pub fn with_flag(flag: Arc<AtomicBool>) -> Self {
        Self {
            deadline: None,
            flag: Some(flag),
        }
    }

    /// Adds a deadline trigger to this token, keeping any flag trigger.
    pub fn and_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Adds a flag trigger to this token, keeping any deadline trigger.
    pub fn and_flag(mut self, flag: Arc<AtomicBool>) -> Self {
        self.flag = Some(flag);
        self
    }

    /// Whether the token has fired. Cheap enough to poll per queue pop.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        if let Some(flag) = &self.flag {
            // Advisory signal: the search only needs to observe the store
            // eventually, and the pop loop re-polls continuously.
            if flag.load(Ordering::Relaxed) {
                return true;
            }
        }
        match self.deadline {
            Some(d) => Instant::now() >= d,
            None => false,
        }
    }

    /// `Err(Cancelled)` once the token has fired, for `?`-style early exit.
    #[inline]
    pub fn check(&self) -> Result<(), Cancelled> {
        if self.is_cancelled() {
            Err(Cancelled)
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn never_token_never_cancels() {
        let t = CancelToken::never();
        assert!(!t.is_cancelled());
        assert!(t.check().is_ok());
    }

    #[test]
    fn past_deadline_cancels_immediately() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.is_cancelled());
        assert_eq!(t.check(), Err(Cancelled));
    }

    #[test]
    fn future_deadline_does_not_cancel_yet() {
        let t = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(!t.is_cancelled());
    }

    #[test]
    fn flag_cancels_when_raised() {
        let flag = Arc::new(AtomicBool::new(false));
        let t = CancelToken::with_flag(Arc::clone(&flag));
        assert!(!t.is_cancelled());
        flag.store(true, Ordering::Relaxed);
        assert!(t.is_cancelled());
    }

    #[test]
    fn combined_triggers_fire_independently() {
        let flag = Arc::new(AtomicBool::new(false));
        let t = CancelToken::with_flag(Arc::clone(&flag))
            .and_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(!t.is_cancelled());
        flag.store(true, Ordering::Relaxed);
        assert!(t.is_cancelled());

        let t = CancelToken::with_flag(Arc::new(AtomicBool::new(false)))
            .and_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.is_cancelled());
    }
}
