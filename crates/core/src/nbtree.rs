//! The NB-Tree: top-down hierarchical clustering of the database
//! (paper Sec 6.4).
//!
//! Disjoint clusters are formed recursively: `b` pivots are chosen
//! farthest-first, every graph is assigned to its closest pivot — using the
//! vantage-point lower bound to skip most NP-hard distance computations —
//! and the process recurses until clusters have at most `b` members. Each
//! node stores its centroid, radius, and a diameter upper bound (sum of the
//! two largest centroid distances), which power the Thm 6–8 batch updates.
//!
//! Graph ids are permuted DFS-wise into `leaf_order`, so every node owns a
//! contiguous *position* range and cluster∩coverage counts are O(words)
//! bitset range operations.

use graphrep_ged::DistanceOracle;
use graphrep_graph::GraphId;
use graphrep_metric::VantageTable;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Serde adapter for the root's infinite radius/diameter: JSON has no
/// `Infinity`, so non-finite values round-trip through `-1.0`.
mod serde_radius {
    use serde::{DeError, Value};

    /// Maps non-finite radii to the `-1.0` sentinel.
    pub fn serialize(v: &f64) -> Value {
        serde::Serialize::to_value(&if v.is_finite() { *v } else { -1.0 })
    }

    /// Restores the `-1.0` sentinel back to `+inf`.
    pub fn deserialize(v: &Value) -> Result<f64, DeError> {
        let f = <f64 as serde::Deserialize>::from_value(v)?;
        Ok(if f < 0.0 { f64::INFINITY } else { f })
    }
}

/// One cluster node of the NB-Tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TreeNode {
    /// The pivot graph acting as cluster centroid.
    pub centroid: GraphId,
    /// Max distance from the centroid to any member (∞ at the root).
    #[serde(with = "serde_radius")]
    pub radius: f64,
    /// Upper bound on the pairwise diameter (∞ at the root).
    #[serde(with = "serde_radius")]
    pub diameter: f64,
    /// Child node indices; empty for bottom clusters whose children are the
    /// individual graphs in `start..end`.
    pub children: Vec<u32>,
    /// First leaf position owned by this node.
    pub start: u32,
    /// One past the last leaf position owned by this node.
    pub end: u32,
}

impl TreeNode {
    /// Number of graphs in this cluster.
    pub fn size(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// Whether this node's children are individual graphs.
    pub fn is_bottom(&self) -> bool {
        self.children.is_empty()
    }
}

/// The NB-Tree over a whole database.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NbTree {
    nodes: Vec<TreeNode>,
    /// `leaf_order[pos]` = graph id at leaf position `pos`.
    leaf_order: Vec<GraphId>,
    /// `pos_of[graph id]` = leaf position.
    pos_of: Vec<u32>,
    branching: usize,
}

/// Construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct NbTreeConfig {
    /// Maximum fan-out `b` (also the bottom-cluster capacity).
    pub branching: usize,
    /// Sample size cap for farthest-first pivot selection.
    pub pivot_sample: usize,
}

impl Default for NbTreeConfig {
    fn default() -> Self {
        Self {
            branching: 8,
            pivot_sample: 64,
        }
    }
}

struct Builder<'a> {
    oracle: &'a DistanceOracle,
    vt: Option<&'a VantageTable>,
    cfg: NbTreeConfig,
    nodes: Vec<TreeNode>,
    leaf_order: Vec<GraphId>,
}

impl Builder<'_> {
    /// Exact distance, as cached by the oracle.
    fn dist(&self, i: GraphId, j: GraphId) -> f64 {
        self.oracle.distance(i, j)
    }

    /// Chooses up to `b` pivots farthest-first from a sample of `members`.
    ///
    /// The RNG (sample shuffle) runs on the sequential control path; only
    /// the pure pool→pivot distance sweeps fan out over rayon workers, and
    /// the farthest-first argmax folds their results in pool order — so the
    /// chosen pivots are independent of thread count.
    fn choose_pivots<R: Rng + ?Sized>(&self, members: &[GraphId], rng: &mut R) -> Vec<GraphId> {
        use rayon::prelude::*;
        let b = self.cfg.branching;
        let mut pool: Vec<GraphId> = members.to_vec();
        pool.shuffle(rng);
        pool.truncate(self.cfg.pivot_sample.max(b).min(members.len()));
        let mut pivots = vec![pool[0]];
        let mut mindist: Vec<f64> = pool.par_iter().map(|&g| self.dist(g, pivots[0])).collect();
        while pivots.len() < b.min(pool.len()) {
            let (best_i, &best_d) = mindist
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                // graphrep: allow(G001, pool is non-empty: members is non-empty and truncation keeps at least one)
                .expect("non-empty pool");
            if best_d <= 0.0 {
                break; // every remaining candidate coincides with a pivot
            }
            let p = pool[best_i];
            pivots.push(p);
            let to_p: Vec<f64> = pool.par_iter().map(|&g| self.dist(g, p)).collect();
            for (i, d) in to_p.into_iter().enumerate() {
                if d < mindist[i] {
                    mindist[i] = d;
                }
            }
        }
        pivots
    }

    /// Closest pivot to `g`, pruning exact computations with the VP lower
    /// bound (paper Sec 6.4). Returns `(pivot index, exact distance)`.
    fn assign(&self, g: GraphId, pivots: &[GraphId]) -> (usize, f64) {
        match self.vt {
            Some(vt) => {
                let mut order: Vec<(f64, usize)> = pivots
                    .iter()
                    .enumerate()
                    .map(|(i, &p)| (vt.lower_bound(g, p), i))
                    .collect();
                order.sort_by(|a, b| a.0.total_cmp(&b.0));
                let mut best = f64::INFINITY;
                let mut best_i = order[0].1;
                for &(lb, i) in &order {
                    if lb >= best {
                        break; // ascending lbs: no remaining pivot can win
                    }
                    let d = self.dist(g, pivots[i]);
                    if d < best {
                        best = d;
                        best_i = i;
                    }
                }
                (best_i, best)
            }
            None => {
                let mut best = f64::INFINITY;
                let mut best_i = 0;
                for (i, &p) in pivots.iter().enumerate() {
                    let d = self.dist(g, p);
                    if d < best {
                        best = d;
                        best_i = i;
                    }
                }
                (best_i, best)
            }
        }
    }

    /// Builds the node for `members` with the given centroid and exact
    /// centroid distances; returns its index.
    fn build_cluster<R: Rng + ?Sized>(
        &mut self,
        members: Vec<GraphId>,
        centroid: GraphId,
        cent_dists: Vec<f64>,
        rng: &mut R,
    ) -> u32 {
        let (radius, diameter) = radius_diameter(&cent_dists);
        let idx = self.nodes.len() as u32;
        self.nodes.push(TreeNode {
            centroid,
            radius,
            diameter,
            children: vec![],
            start: 0,
            end: 0,
        });
        if members.len() <= self.cfg.branching {
            let start = self.leaf_order.len() as u32;
            self.leaf_order.extend(&members);
            let end = self.leaf_order.len() as u32;
            self.nodes[idx as usize].start = start;
            self.nodes[idx as usize].end = end;
            return idx;
        }
        let pivots = self.choose_pivots(&members, rng);
        let mut parts: Vec<Vec<GraphId>> = vec![vec![]; pivots.len()];
        let mut part_dists: Vec<Vec<f64>> = vec![vec![]; pivots.len()];
        // Each member's closest-pivot search is pure and independent; fan it
        // out and partition sequentially in member order afterwards, so the
        // resulting clusters never depend on thread interleaving.
        let assignments: Vec<(usize, f64)> = {
            use rayon::prelude::*;
            let builder = &*self;
            members
                .par_iter()
                .map(|&g| builder.assign(g, &pivots))
                .collect()
        };
        for (&g, (pi, d)) in members.iter().zip(assignments) {
            parts[pi].push(g);
            part_dists[pi].push(d);
        }
        // Degenerate split (duplicate-heavy data): fall back to a flat bottom
        // cluster to guarantee termination.
        if parts.iter().filter(|p| !p.is_empty()).count() <= 1 {
            let start = self.leaf_order.len() as u32;
            self.leaf_order.extend(&members);
            let end = self.leaf_order.len() as u32;
            self.nodes[idx as usize].start = start;
            self.nodes[idx as usize].end = end;
            return idx;
        }
        let start = self.leaf_order.len() as u32;
        let mut children = Vec::new();
        for (pi, (part, dists)) in parts.into_iter().zip(part_dists).enumerate() {
            if part.is_empty() {
                continue;
            }
            children.push(self.build_cluster(part, pivots[pi], dists, rng));
        }
        let end = self.leaf_order.len() as u32;
        let n = &mut self.nodes[idx as usize];
        n.children = children;
        n.start = start;
        n.end = end;
        idx
    }
}

/// Radius (max) and diameter bound (sum of two largest) from centroid
/// distances.
fn radius_diameter(cent_dists: &[f64]) -> (f64, f64) {
    let (mut r1, mut r2) = (0.0f64, 0.0f64);
    for &d in cent_dists {
        if d > r1 {
            r2 = r1;
            r1 = d;
        } else if d > r2 {
            r2 = d;
        }
    }
    (r1, r1 + r2)
}

impl NbTree {
    /// Builds the tree over every graph the oracle holds.
    pub fn build<R: Rng + ?Sized>(
        oracle: &DistanceOracle,
        vt: Option<&VantageTable>,
        cfg: NbTreeConfig,
        rng: &mut R,
    ) -> Self {
        assert!(cfg.branching >= 2, "branching factor must be at least 2");
        let n = oracle.len();
        let mut b = Builder {
            oracle,
            vt,
            cfg,
            nodes: Vec::new(),
            leaf_order: Vec::with_capacity(n),
        };
        if n > 0 {
            let members: Vec<GraphId> = (0..n as GraphId).collect();
            let centroid = members[rng.gen_range(0..n)];
            // Root: whole database; radius/diameter are left unbounded so the
            // root is always traversed (it cannot be pruned anyway).
            let idx = b.build_cluster(members, centroid, vec![], rng);
            debug_assert_eq!(idx, 0);
            b.nodes[0].radius = f64::INFINITY;
            b.nodes[0].diameter = f64::INFINITY;
        }
        let mut pos_of = vec![0u32; n];
        for (pos, &g) in b.leaf_order.iter().enumerate() {
            pos_of[g as usize] = pos as u32;
        }
        let tree = NbTree {
            nodes: b.nodes,
            leaf_order: b.leaf_order,
            pos_of,
            branching: cfg.branching,
        };
        tree.audit(oracle);
        tree
    }

    /// All nodes (index 0 is the root).
    pub fn nodes(&self) -> &[TreeNode] {
        &self.nodes
    }

    /// The node at `idx`.
    pub fn node(&self, idx: u32) -> &TreeNode {
        &self.nodes[idx as usize]
    }

    /// Root index (0), if the tree is non-empty.
    pub fn root(&self) -> Option<u32> {
        (!self.nodes.is_empty()).then_some(0)
    }

    /// Number of graphs indexed.
    pub fn len(&self) -> usize {
        self.leaf_order.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.leaf_order.is_empty()
    }

    /// The configured fan-out.
    pub fn branching(&self) -> usize {
        self.branching
    }

    /// Graph id at leaf position `pos`.
    pub fn graph_at(&self, pos: u32) -> GraphId {
        self.leaf_order[pos as usize]
    }

    /// Leaf position of graph `id`.
    pub fn pos_of(&self, id: GraphId) -> u32 {
        self.pos_of[id as usize]
    }

    /// The DFS leaf ordering.
    pub fn leaf_order(&self) -> &[GraphId] {
        &self.leaf_order
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| std::mem::size_of::<TreeNode>() + n.children.len() * 4)
            .sum::<usize>()
            + self.leaf_order.len() * 4
            + self.pos_of.len() * 4
    }

    /// Audits the metric facts behind the Thm 6–8 batch updates: structure
    /// and radius containment (via [`NbTree::validate`]), radius ≤ diameter
    /// bound on every non-root node, and pairwise member distances within
    /// the diameter bound on bottom clusters. Panics on violation.
    ///
    /// Compiled only under the `invariant-audit` feature; the default build
    /// gets the no-op twin below.
    #[cfg(feature = "invariant-audit")]
    pub fn audit(&self, oracle: &DistanceOracle) {
        use graphrep_ged::audit_invariant;
        let v = self.validate(oracle);
        audit_invariant!(
            v.is_ok(),
            "NB-Tree validation failed: {}",
            v.as_ref().err().map(String::as_str).unwrap_or("?")
        );
        for (i, n) in self.nodes.iter().enumerate() {
            if i == 0 {
                continue;
            }
            audit_invariant!(
                n.radius <= n.diameter + 1e-9,
                "node {i}: radius {} exceeds diameter bound {}",
                n.radius,
                n.diameter
            );
            // The diameter bound rests on the triangle inequality, which
            // approximate or budget-starved engines do not guarantee.
            if n.is_bottom() && n.diameter.is_finite() && oracle.audit_distances_exact() {
                for p in n.start..n.end {
                    for q in (p + 1)..n.end {
                        let (a, b) = (self.leaf_order[p as usize], self.leaf_order[q as usize]);
                        let d = oracle.distance(a, b);
                        audit_invariant!(
                            d <= n.diameter + 1e-6,
                            "node {i}: member pair ({a}, {b}) distance {d} exceeds diameter bound {}",
                            n.diameter
                        );
                    }
                }
            }
        }
    }

    /// No-op twin of the audit hook for builds without `invariant-audit`.
    #[cfg(not(feature = "invariant-audit"))]
    #[inline(always)]
    pub fn audit(&self, _oracle: &DistanceOracle) {}

    /// Checks structural invariants; exact radius/diameter containment is
    /// verified against the oracle. Intended for tests.
    pub fn validate(&self, oracle: &DistanceOracle) -> Result<(), String> {
        if self.nodes.is_empty() {
            return Ok(());
        }
        if self.leaf_order.len() != oracle.len() {
            return Err("leaf order must cover the database".into());
        }
        let mut seen = vec![false; self.leaf_order.len()];
        for &g in &self.leaf_order {
            if seen[g as usize] {
                return Err(format!("graph {g} appears twice"));
            }
            seen[g as usize] = true;
        }
        for (i, n) in self.nodes.iter().enumerate() {
            if n.start > n.end || n.end as usize > self.leaf_order.len() {
                return Err(format!("node {i} has bad range"));
            }
            // Children must tile the parent's range.
            if !n.children.is_empty() {
                let mut cursor = n.start;
                for &c in &n.children {
                    let cn = &self.nodes[c as usize];
                    if cn.start != cursor {
                        return Err(format!("node {i}: children not contiguous"));
                    }
                    cursor = cn.end;
                }
                if cursor != n.end {
                    return Err(format!("node {i}: children do not tile range"));
                }
            }
            if i != 0 {
                for p in n.start..n.end {
                    let g = self.leaf_order[p as usize];
                    let d = oracle.distance(n.centroid, g);
                    if d > n.radius + 1e-6 {
                        return Err(format!("node {i}: member {g} outside radius"));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphrep_ged::{GedConfig, GedEngine};
    use graphrep_graph::generate::{mutate, random_connected};
    use graphrep_graph::Graph;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn family_oracle(n_families: usize, per: usize, seed: u64) -> DistanceOracle {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut graphs: Vec<Graph> = Vec::new();
        for _ in 0..n_families {
            let base = random_connected(&mut rng, 7, 2, &[0, 1, 2, 3], &[8, 9]);
            for _ in 0..per {
                graphs.push(mutate(&mut rng, &base, 1, &[0, 1, 2, 3], &[8, 9]));
            }
        }
        DistanceOracle::new(Arc::new(graphs), GedEngine::new(GedConfig::default()))
    }

    #[test]
    fn build_and_validate() {
        let oracle = family_oracle(4, 8, 5);
        let mut rng = SmallRng::seed_from_u64(1);
        let tree = NbTree::build(
            &oracle,
            None,
            NbTreeConfig {
                branching: 4,
                pivot_sample: 16,
            },
            &mut rng,
        );
        assert_eq!(tree.len(), 32);
        tree.validate(&oracle).unwrap();
    }

    #[test]
    fn positions_round_trip() {
        let oracle = family_oracle(3, 6, 6);
        let mut rng = SmallRng::seed_from_u64(2);
        let tree = NbTree::build(&oracle, None, NbTreeConfig::default(), &mut rng);
        for g in 0..tree.len() as GraphId {
            assert_eq!(tree.graph_at(tree.pos_of(g)), g);
        }
    }

    #[test]
    fn vp_assisted_build_matches_validation() {
        let oracle = family_oracle(3, 8, 7);
        let mut rng = SmallRng::seed_from_u64(3);
        let vt = VantageTable::build(oracle.len(), 6, &mut rng, |a, b| oracle.distance(a, b));
        let tree = NbTree::build(&oracle, Some(&vt), NbTreeConfig::default(), &mut rng);
        tree.validate(&oracle).unwrap();
    }

    #[test]
    fn vp_pruning_saves_distance_computations() {
        let oracle_a = family_oracle(4, 10, 8);
        let oracle_b = family_oracle(4, 10, 8);
        let mut rng = SmallRng::seed_from_u64(4);
        let cfg = NbTreeConfig {
            branching: 5,
            pivot_sample: 20,
        };
        // Without VPs.
        let _ = NbTree::build(&oracle_a, None, cfg, &mut rng);
        let plain = oracle_a.stats().distance_computations;
        // With VPs (VP construction distances counted too).
        let mut rng = SmallRng::seed_from_u64(4);
        let vt = VantageTable::build(oracle_b.len(), 6, &mut rng, |a, b| oracle_b.distance(a, b));
        let _ = NbTree::build(&oracle_b, Some(&vt), cfg, &mut rng);
        let pruned = oracle_b.stats().distance_computations;
        // The pruned build must not do *more* pairwise work than brute
        // assignment; typically it does far less.
        assert!(pruned <= plain + oracle_b.len() as u64 * 6);
    }

    #[test]
    fn duplicate_heavy_data_terminates() {
        // All graphs identical: recursion must bottom out via the degenerate
        // split guard.
        let mut rng = SmallRng::seed_from_u64(9);
        let g = random_connected(&mut rng, 5, 2, &[0], &[1]);
        let graphs: Vec<Graph> = (0..20).map(|_| g.clone()).collect();
        let oracle = DistanceOracle::new(Arc::new(graphs), GedEngine::new(GedConfig::default()));
        let tree = NbTree::build(
            &oracle,
            None,
            NbTreeConfig {
                branching: 3,
                pivot_sample: 8,
            },
            &mut rng,
        );
        tree.validate(&oracle).unwrap();
    }

    #[test]
    fn empty_database() {
        let oracle = DistanceOracle::new(Arc::new(vec![]), GedEngine::new(GedConfig::default()));
        let mut rng = SmallRng::seed_from_u64(10);
        let tree = NbTree::build(&oracle, None, NbTreeConfig::default(), &mut rng);
        assert!(tree.is_empty());
        assert!(tree.root().is_none());
        tree.validate(&oracle).unwrap();
    }

    #[test]
    fn radius_diameter_helper() {
        assert_eq!(radius_diameter(&[]), (0.0, 0.0));
        assert_eq!(radius_diameter(&[3.0]), (3.0, 3.0));
        assert_eq!(radius_diameter(&[1.0, 5.0, 4.0]), (5.0, 9.0));
    }
}
