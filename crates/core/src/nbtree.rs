//! The NB-Tree: top-down hierarchical clustering of the database
//! (paper Sec 6.4).
//!
//! Disjoint clusters are formed recursively: `b` pivots are chosen
//! farthest-first, every graph is assigned to its closest pivot — using the
//! vantage-point lower bound to skip most NP-hard distance computations —
//! and the process recurses until clusters have at most `b` members. Each
//! node stores its centroid, radius, and a diameter upper bound (sum of the
//! two largest centroid distances), which power the Thm 6–8 batch updates.
//!
//! Graph ids are permuted DFS-wise into `leaf_order`, so every node owns a
//! contiguous *position* range and cluster∩coverage counts are O(words)
//! bitset range operations.

use graphrep_ged::DistanceOracle;
use graphrep_graph::GraphId;
use graphrep_metric::VantageTable;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Serde adapter for the root's infinite radius/diameter: JSON has no
/// `Infinity`, so non-finite values round-trip through `-1.0`.
mod serde_radius {
    use serde::{DeError, Value};

    /// Maps non-finite radii to the `-1.0` sentinel.
    pub fn serialize(v: &f64) -> Value {
        serde::Serialize::to_value(&if v.is_finite() { *v } else { -1.0 })
    }

    /// Restores the `-1.0` sentinel back to `+inf`.
    pub fn deserialize(v: &Value) -> Result<f64, DeError> {
        let f = <f64 as serde::Deserialize>::from_value(v)?;
        Ok(if f < 0.0 { f64::INFINITY } else { f })
    }
}

/// One cluster node of the NB-Tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TreeNode {
    /// The pivot graph acting as cluster centroid.
    pub centroid: GraphId,
    /// Max distance from the centroid to any member (∞ at the root).
    #[serde(with = "serde_radius")]
    pub radius: f64,
    /// Upper bound on the pairwise diameter (∞ at the root).
    #[serde(with = "serde_radius")]
    pub diameter: f64,
    /// Child node indices; empty for bottom clusters whose children are the
    /// individual graphs in `start..end`.
    pub children: Vec<u32>,
    /// First leaf position owned by this node.
    pub start: u32,
    /// One past the last leaf position owned by this node.
    pub end: u32,
}

impl TreeNode {
    /// Number of graphs in this cluster.
    pub fn size(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// Whether this node's children are individual graphs.
    pub fn is_bottom(&self) -> bool {
        self.children.is_empty()
    }
}

/// The NB-Tree over a whole database.
///
/// Dynamic maintenance (DESIGN.md §10): removed graphs are *tombstoned* —
/// they keep their leaf position (so `len() == oracle.len()` and every
/// position-indexed structure stays valid) but are flagged in `dead` and
/// excluded from per-node live counts. Inserted graphs are routed to their
/// nearest bottom cluster with radius/diameter re-expansion along the path,
/// which keeps the Thm 6–8 bounds admissible without restructuring.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NbTree {
    nodes: Vec<TreeNode>,
    /// `leaf_order[pos]` = graph id at leaf position `pos`.
    leaf_order: Vec<GraphId>,
    /// `pos_of[graph id]` = leaf position.
    pos_of: Vec<u32>,
    branching: usize,
    /// `dead[pos]` = the graph at leaf position `pos` is tombstoned.
    dead: Vec<bool>,
    /// `node_live[i]` = live (non-tombstoned) members of node `i`'s range.
    node_live: Vec<u32>,
}

/// Result of one [`NbTree::insert_graph`] call.
#[derive(Debug, Clone, Copy)]
pub struct InsertOutcome {
    /// Leaf position the new graph received.
    pub pos: u32,
    /// Nodes on the root→bottom routing path (including both ends).
    pub path_len: usize,
    /// Σ (r′ − r) / max(r, 1) over the re-expanded path nodes — the bound-
    /// degradation currency of the rebuild policy.
    pub radius_inflation: f64,
    /// Whether the receiving bottom cluster was split after insertion.
    pub split: bool,
}

/// Construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct NbTreeConfig {
    /// Maximum fan-out `b` (also the bottom-cluster capacity).
    pub branching: usize,
    /// Sample size cap for farthest-first pivot selection.
    pub pivot_sample: usize,
}

impl Default for NbTreeConfig {
    fn default() -> Self {
        Self {
            branching: 8,
            pivot_sample: 64,
        }
    }
}

struct Builder<'a> {
    oracle: &'a DistanceOracle,
    vt: Option<&'a VantageTable>,
    cfg: NbTreeConfig,
    nodes: Vec<TreeNode>,
    leaf_order: Vec<GraphId>,
}

impl Builder<'_> {
    /// Chooses up to `b` pivots farthest-first from a sample of `members`.
    fn choose_pivots<R: Rng + ?Sized>(&self, members: &[GraphId], rng: &mut R) -> Vec<GraphId> {
        farthest_first_pivots(
            self.oracle,
            members,
            self.cfg.branching,
            self.cfg.pivot_sample,
            rng,
        )
    }

    /// Closest pivot to `g` (paper Sec 6.4).
    fn assign(&self, g: GraphId, pivots: &[GraphId]) -> (usize, f64) {
        nearest_of(self.oracle, self.vt, g, pivots)
    }

    /// Builds the node for `members` with the given centroid and exact
    /// centroid distances; returns its index.
    fn build_cluster<R: Rng + ?Sized>(
        &mut self,
        members: Vec<GraphId>,
        centroid: GraphId,
        cent_dists: Vec<f64>,
        rng: &mut R,
    ) -> u32 {
        let (radius, diameter) = radius_diameter(&cent_dists);
        let idx = self.nodes.len() as u32;
        self.nodes.push(TreeNode {
            centroid,
            radius,
            diameter,
            children: vec![],
            start: 0,
            end: 0,
        });
        if members.len() <= self.cfg.branching {
            let start = self.leaf_order.len() as u32;
            self.leaf_order.extend(&members);
            let end = self.leaf_order.len() as u32;
            self.nodes[idx as usize].start = start;
            self.nodes[idx as usize].end = end;
            return idx;
        }
        let pivots = self.choose_pivots(&members, rng);
        let mut parts: Vec<Vec<GraphId>> = vec![vec![]; pivots.len()];
        let mut part_dists: Vec<Vec<f64>> = vec![vec![]; pivots.len()];
        // Each member's closest-pivot search is pure and independent; fan it
        // out and partition sequentially in member order afterwards, so the
        // resulting clusters never depend on thread interleaving.
        let assignments: Vec<(usize, f64)> = {
            use rayon::prelude::*;
            let builder = &*self;
            members
                .par_iter()
                .map(|&g| builder.assign(g, &pivots))
                .collect()
        };
        for (&g, (pi, d)) in members.iter().zip(assignments) {
            parts[pi].push(g);
            part_dists[pi].push(d);
        }
        // Degenerate split (duplicate-heavy data): fall back to a flat bottom
        // cluster to guarantee termination.
        if parts.iter().filter(|p| !p.is_empty()).count() <= 1 {
            let start = self.leaf_order.len() as u32;
            self.leaf_order.extend(&members);
            let end = self.leaf_order.len() as u32;
            self.nodes[idx as usize].start = start;
            self.nodes[idx as usize].end = end;
            return idx;
        }
        let start = self.leaf_order.len() as u32;
        let mut children = Vec::new();
        for (pi, (part, dists)) in parts.into_iter().zip(part_dists).enumerate() {
            if part.is_empty() {
                continue;
            }
            children.push(self.build_cluster(part, pivots[pi], dists, rng));
        }
        let end = self.leaf_order.len() as u32;
        let n = &mut self.nodes[idx as usize];
        n.children = children;
        n.start = start;
        n.end = end;
        idx
    }
}

/// Chooses up to `b` pivots farthest-first from a sample of `members`.
///
/// The RNG (sample shuffle) runs on the sequential control path; only the
/// pure pool→pivot distance sweeps fan out over rayon workers, and the
/// farthest-first argmax folds their results in pool order — so the chosen
/// pivots are independent of thread count.
fn farthest_first_pivots<R: Rng + ?Sized>(
    oracle: &DistanceOracle,
    members: &[GraphId],
    b: usize,
    pivot_sample: usize,
    rng: &mut R,
) -> Vec<GraphId> {
    use rayon::prelude::*;
    let mut pool: Vec<GraphId> = members.to_vec();
    pool.shuffle(rng);
    pool.truncate(pivot_sample.max(b).min(members.len()));
    let mut pivots = vec![pool[0]];
    let mut mindist: Vec<f64> = pool
        .par_iter()
        .map(|&g| oracle.distance(g, pivots[0]))
        .collect();
    while pivots.len() < b.min(pool.len()) {
        let (best_i, &best_d) = mindist
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            // graphrep: allow(G001, pool is non-empty: members is non-empty and truncation keeps at least one)
            .expect("non-empty pool");
        if best_d <= 0.0 {
            break; // every remaining candidate coincides with a pivot
        }
        let p = pool[best_i];
        pivots.push(p);
        let to_p: Vec<f64> = pool.par_iter().map(|&g| oracle.distance(g, p)).collect();
        for (i, d) in to_p.into_iter().enumerate() {
            if d < mindist[i] {
                mindist[i] = d;
            }
        }
    }
    pivots
}

/// Closest pivot to `g`, pruning exact computations with the VP lower bound
/// (paper Sec 6.4). Returns `(pivot index, exact distance)`. Deterministic:
/// ties go to the lowest pivot index (the lb sort is stable, the scan keeps
/// the first strict minimum).
/// Parallel twin of [`nearest_of`] for the online-insert routing hot path:
/// the per-level child sweep computes every pivot distance across rayon
/// workers (wall time ≈ one edit distance instead of a serial scan) and
/// picks the minimum with the same lowest-index tie-break, so the routing
/// decision — and therefore the tree shape — is identical to the serial
/// scan's. Trades a few extra (cached-forever) distance computations for
/// per-op latency; the static build keeps the bound-pruned serial scan,
/// where total work matters more than single-op wall time.
fn nearest_of_par(oracle: &DistanceOracle, g: GraphId, pivots: &[GraphId]) -> (usize, f64) {
    use rayon::prelude::*;
    let dists: Vec<f64> = pivots.par_iter().map(|&p| oracle.distance(g, p)).collect();
    let mut best = f64::INFINITY;
    let mut best_i = 0;
    for (i, &d) in dists.iter().enumerate() {
        if d < best {
            best = d;
            best_i = i;
        }
    }
    (best_i, best)
}

fn nearest_of(
    oracle: &DistanceOracle,
    vt: Option<&VantageTable>,
    g: GraphId,
    pivots: &[GraphId],
) -> (usize, f64) {
    match vt {
        Some(vt) => {
            let mut order: Vec<(f64, usize)> = pivots
                .iter()
                .enumerate()
                .map(|(i, &p)| (vt.lower_bound(g, p), i))
                .collect();
            order.sort_by(|a, b| a.0.total_cmp(&b.0));
            let mut best = f64::INFINITY;
            let mut best_i = order[0].1;
            for &(lb, i) in &order {
                if lb >= best {
                    break; // ascending lbs: no remaining pivot can win
                }
                let d = oracle.distance(g, pivots[i]);
                if d < best {
                    best = d;
                    best_i = i;
                }
            }
            (best_i, best)
        }
        None => {
            let mut best = f64::INFINITY;
            let mut best_i = 0;
            for (i, &p) in pivots.iter().enumerate() {
                let d = oracle.distance(g, p);
                if d < best {
                    best = d;
                    best_i = i;
                }
            }
            (best_i, best)
        }
    }
}

/// Radius (max) and diameter bound (sum of two largest) from centroid
/// distances.
fn radius_diameter(cent_dists: &[f64]) -> (f64, f64) {
    let (mut r1, mut r2) = (0.0f64, 0.0f64);
    for &d in cent_dists {
        if d > r1 {
            r2 = r1;
            r1 = d;
        } else if d > r2 {
            r2 = d;
        }
    }
    (r1, r1 + r2)
}

impl NbTree {
    /// Builds the tree over every graph the oracle holds.
    pub fn build<R: Rng + ?Sized>(
        oracle: &DistanceOracle,
        vt: Option<&VantageTable>,
        cfg: NbTreeConfig,
        rng: &mut R,
    ) -> Self {
        Self::build_over(oracle, vt, cfg, rng, &vec![true; oracle.len()])
    }

    /// Builds the tree over the graphs with `live[id] == true` — the
    /// compaction path of the rebuild policy.
    ///
    /// Dead ids keep leaf positions at the *tail*, outside the root's range:
    /// `pos_of` stays total (every position-indexed structure keeps working)
    /// while traversal, which starts at the root, can never reach a dead
    /// graph. The resulting tree has zero tombstones inside node ranges.
    ///
    /// # Panics
    /// If `live.len() != oracle.len()` or `cfg.branching < 2`.
    pub fn build_over<R: Rng + ?Sized>(
        oracle: &DistanceOracle,
        vt: Option<&VantageTable>,
        cfg: NbTreeConfig,
        rng: &mut R,
        live: &[bool],
    ) -> Self {
        assert!(cfg.branching >= 2, "branching factor must be at least 2");
        let n = oracle.len();
        assert_eq!(live.len(), n, "one liveness flag per indexed graph");
        let members: Vec<GraphId> = (0..n as GraphId).filter(|&g| live[g as usize]).collect();
        let mut b = Builder {
            oracle,
            vt,
            cfg,
            nodes: Vec::new(),
            leaf_order: Vec::with_capacity(n),
        };
        if !members.is_empty() {
            let centroid = members[rng.gen_range(0..members.len())];
            // Root: whole live set; radius/diameter are left unbounded so the
            // root is always traversed (it cannot be pruned anyway).
            let idx = b.build_cluster(members, centroid, vec![], rng);
            debug_assert_eq!(idx, 0);
            b.nodes[0].radius = f64::INFINITY;
            b.nodes[0].diameter = f64::INFINITY;
        }
        let live_count = b.leaf_order.len();
        for g in 0..n as GraphId {
            if !live[g as usize] {
                b.leaf_order.push(g);
            }
        }
        let mut pos_of = vec![0u32; n];
        for (pos, &g) in b.leaf_order.iter().enumerate() {
            pos_of[g as usize] = pos as u32;
        }
        let node_live = b.nodes.iter().map(|nd| nd.size() as u32).collect();
        let mut dead = vec![false; n];
        for d in dead.iter_mut().skip(live_count) {
            *d = true;
        }
        let tree = NbTree {
            nodes: b.nodes,
            leaf_order: b.leaf_order,
            pos_of,
            branching: cfg.branching,
            dead,
            node_live,
        };
        tree.audit(oracle);
        tree
    }

    /// Routes the already-appended graph `id` (which must equal the previous
    /// [`NbTree::len`]) down to its nearest bottom cluster, re-expanding
    /// radius and diameter along the path so every Thm 6–8 bound stays
    /// admissible: for a path node with radius `r` at distance `d` from the
    /// new graph, `r′ = max(r, d)` restores containment and
    /// `diam′ = max(diam, d + r)` bounds any new–old pair via the triangle
    /// inequality through the centroid.
    ///
    /// A bottom cluster that grows beyond `2 × branching` all-live members
    /// is split in place (one level, deterministic under `rng`), bounding
    /// bottom-scan cost under sustained insert load.
    ///
    /// # Panics
    /// If `id` is not the next unindexed id.
    pub fn insert_graph<R: Rng + ?Sized>(
        &mut self,
        oracle: &DistanceOracle,
        vt: Option<&VantageTable>,
        id: GraphId,
        rng: &mut R,
    ) -> InsertOutcome {
        assert_eq!(
            id as usize,
            self.leaf_order.len(),
            "insert_graph takes the next unindexed id"
        );
        if self.nodes.is_empty() {
            // No root (fresh or fully-compacted-away tree): the new graph
            // becomes a singleton root appended after any dead tail.
            let pos = self.leaf_order.len() as u32;
            self.nodes.push(TreeNode {
                centroid: id,
                radius: f64::INFINITY,
                diameter: f64::INFINITY,
                children: vec![],
                start: pos,
                end: pos + 1,
            });
            self.leaf_order.push(id);
            self.pos_of.push(pos);
            self.dead.push(false);
            self.node_live.push(1);
            return InsertOutcome {
                pos,
                path_len: 1,
                radius_inflation: 0.0,
                split: false,
            };
        }
        // Route: at each internal node pick the nearest-centroid child (VP
        // lower bounds prune exact computations, as in the static build) and
        // re-expand it to contain the new member.
        let mut cur = 0u32;
        let mut path = vec![cur];
        let mut inflation = 0.0f64;
        while !self.nodes[cur as usize].is_bottom() {
            let children = self.nodes[cur as usize].children.clone();
            let centroids: Vec<GraphId> = children
                .iter()
                .map(|&c| self.nodes[c as usize].centroid)
                .collect();
            let (ci, d) = nearest_of_par(oracle, id, &centroids);
            let child = children[ci];
            let n = &mut self.nodes[child as usize];
            if n.radius.is_finite() {
                let grown = n.radius.max(d);
                inflation += (grown - n.radius) / n.radius.max(1.0);
                n.diameter = n.diameter.max(d + n.radius);
                n.radius = grown;
            }
            cur = child;
            path.push(cur);
        }
        // Splice the new leaf position at the receiving bottom's end:
        // ancestors stretch by one, everything to the right slides by one.
        let insert_pos = self.nodes[cur as usize].end;
        for (i, n) in self.nodes.iter_mut().enumerate() {
            if path.contains(&(i as u32)) {
                n.end += 1;
            } else if n.start >= insert_pos {
                n.start += 1;
                n.end += 1;
            }
        }
        for p in self.pos_of.iter_mut() {
            if *p >= insert_pos {
                *p += 1;
            }
        }
        self.leaf_order.insert(insert_pos as usize, id);
        self.dead.insert(insert_pos as usize, false);
        self.pos_of.push(insert_pos);
        for &nidx in &path {
            self.node_live[nidx as usize] += 1;
        }
        let split = self.maybe_split_bottom(cur, oracle, vt, rng);
        InsertOutcome {
            // A split reorders the receiving bottom's range, so re-read the
            // final position rather than reporting the pre-split slot.
            pos: self.pos_of[id as usize],
            path_len: path.len(),
            radius_inflation: inflation,
            split,
        }
    }

    /// Splits bottom `idx` one level if it holds more than `2 × branching`
    /// members, all live. Tombstoned bottoms are left alone — compaction is
    /// the rebuild policy's job, and splitting around dead positions would
    /// break range contiguity.
    fn maybe_split_bottom<R: Rng + ?Sized>(
        &mut self,
        idx: u32,
        oracle: &DistanceOracle,
        vt: Option<&VantageTable>,
        rng: &mut R,
    ) -> bool {
        let (start, end) = {
            let n = &self.nodes[idx as usize];
            if !n.is_bottom()
                || n.size() <= 2 * self.branching
                || (self.node_live[idx as usize] as usize) < n.size()
            {
                return false;
            }
            (n.start, n.end)
        };
        let members: Vec<GraphId> = self.leaf_order[start as usize..end as usize].to_vec();
        let pivots = farthest_first_pivots(oracle, &members, self.branching, members.len(), rng);
        if pivots.len() <= 1 {
            return false; // duplicate-heavy cluster: nothing to separate
        }
        let mut parts: Vec<Vec<GraphId>> = vec![vec![]; pivots.len()];
        let mut part_dists: Vec<Vec<f64>> = vec![vec![]; pivots.len()];
        for &g in &members {
            let (pi, d) = nearest_of(oracle, vt, g, &pivots);
            parts[pi].push(g);
            part_dists[pi].push(d);
        }
        if parts.iter().filter(|p| !p.is_empty()).count() <= 1 {
            return false;
        }
        // Rewrite the bottom's leaf range as the part concatenation and hang
        // one child per non-empty part under it.
        let mut cursor = start;
        let mut children = Vec::new();
        for (pi, (part, dists)) in parts.into_iter().zip(part_dists).enumerate() {
            if part.is_empty() {
                continue;
            }
            let (radius, diameter) = radius_diameter(&dists);
            let cstart = cursor;
            for &g in &part {
                self.leaf_order[cursor as usize] = g;
                self.pos_of[g as usize] = cursor;
                cursor += 1;
            }
            let cidx = self.nodes.len() as u32;
            self.nodes.push(TreeNode {
                centroid: pivots[pi],
                radius,
                diameter,
                children: vec![],
                start: cstart,
                end: cursor,
            });
            self.node_live.push(cursor - cstart);
            children.push(cidx);
        }
        self.nodes[idx as usize].children = children;
        true
    }

    /// Tombstones graph `id`: the graph keeps its leaf position (so every
    /// position-indexed structure stays valid) but is flagged dead and
    /// decremented from the live count of every node on its ancestor chain.
    /// Radii never shrink, so all Thm 6–8 bounds remain admissible.
    ///
    /// Returns the graph's leaf position, or an error if `id` is unindexed
    /// or already removed.
    pub fn remove_graph(&mut self, id: GraphId) -> Result<u32, String> {
        let idu = id as usize;
        if idu >= self.pos_of.len() {
            return Err(format!("graph {id} is not indexed"));
        }
        let pos = self.pos_of[idu];
        if self.dead[pos as usize] {
            return Err(format!("graph {id} is already removed"));
        }
        self.dead[pos as usize] = true;
        if !self.nodes.is_empty() && pos >= self.nodes[0].start && pos < self.nodes[0].end {
            let mut cur = 0u32;
            loop {
                self.node_live[cur as usize] = self.node_live[cur as usize].saturating_sub(1);
                if self.nodes[cur as usize].is_bottom() {
                    break;
                }
                let mut next = None;
                for &c in &self.nodes[cur as usize].children {
                    let cn = &self.nodes[c as usize];
                    if cn.start <= pos && pos < cn.end {
                        next = Some(c);
                        break;
                    }
                }
                match next {
                    Some(c) => cur = c,
                    None => break, // unreachable: children tile the parent
                }
            }
        }
        Ok(pos)
    }

    /// Whether graph `id` is indexed and not tombstoned.
    pub fn is_live(&self, id: GraphId) -> bool {
        (id as usize) < self.pos_of.len() && !self.dead[self.pos_of[id as usize] as usize]
    }

    /// Number of live (non-tombstoned) graphs.
    pub fn live_len(&self) -> usize {
        self.node_live.first().map_or(0, |&l| l as usize)
    }

    /// Number of tombstoned graphs.
    pub fn tombstones(&self) -> usize {
        self.len() - self.live_len()
    }

    /// Tombstones still occupying positions *inside* the root's clustered
    /// range — the ones traversal must step over. A rebuild moves every dead
    /// id to the tail (outside the root's range), so this is the staleness
    /// the rebuild policy meters, while [`NbTree::tombstones`] counts all
    /// removals ever.
    pub fn stale(&self) -> usize {
        self.nodes.first().map_or(0, |root| {
            root.size() - self.node_live.first().copied().unwrap_or(0) as usize
        })
    }

    /// Live member count of node `idx`'s range.
    pub fn node_live(&self, idx: u32) -> u32 {
        self.node_live[idx as usize]
    }

    /// All nodes (index 0 is the root).
    pub fn nodes(&self) -> &[TreeNode] {
        &self.nodes
    }

    /// The node at `idx`.
    pub fn node(&self, idx: u32) -> &TreeNode {
        &self.nodes[idx as usize]
    }

    /// Root index (0), if the tree is non-empty.
    pub fn root(&self) -> Option<u32> {
        (!self.nodes.is_empty()).then_some(0)
    }

    /// Number of graphs indexed.
    pub fn len(&self) -> usize {
        self.leaf_order.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.leaf_order.is_empty()
    }

    /// The configured fan-out.
    pub fn branching(&self) -> usize {
        self.branching
    }

    /// Graph id at leaf position `pos`.
    pub fn graph_at(&self, pos: u32) -> GraphId {
        self.leaf_order[pos as usize]
    }

    /// Leaf position of graph `id`.
    pub fn pos_of(&self, id: GraphId) -> u32 {
        self.pos_of[id as usize]
    }

    /// The DFS leaf ordering.
    pub fn leaf_order(&self) -> &[GraphId] {
        &self.leaf_order
    }

    /// Reassembles a tree from its persisted parts — the binary decode path.
    /// `pos_of` is derived from `leaf_order` (it is the inverse permutation),
    /// and the shape is validated so a corrupt payload surfaces as a typed
    /// error instead of an out-of-bounds panic during traversal.
    pub(crate) fn from_raw_parts(
        nodes: Vec<TreeNode>,
        leaf_order: Vec<GraphId>,
        branching: usize,
        dead: Vec<bool>,
        node_live: Vec<u32>,
    ) -> Result<Self, String> {
        if branching < 2 {
            return Err(format!("branching factor {branching} below minimum 2"));
        }
        let n = leaf_order.len();
        if dead.len() != n {
            return Err(format!("{n} leaves but {} dead flags", dead.len()));
        }
        if node_live.len() != nodes.len() {
            return Err(format!(
                "{} nodes but {} live counts",
                nodes.len(),
                node_live.len()
            ));
        }
        let mut pos_of = vec![u32::MAX; n];
        for (pos, &g) in leaf_order.iter().enumerate() {
            let slot = pos_of
                .get_mut(g as usize)
                .ok_or_else(|| format!("leaf order names graph {g}, only {n} graphs exist"))?;
            if *slot != u32::MAX {
                return Err(format!("graph {g} appears twice in the leaf order"));
            }
            *slot = pos as u32;
        }
        for (i, node) in nodes.iter().enumerate() {
            if node.start > node.end || node.end as usize > n {
                return Err(format!(
                    "node {i} owns leaf range {}..{} beyond {n} leaves",
                    node.start, node.end
                ));
            }
            if let Some(&c) = node.children.iter().find(|&&c| c as usize >= nodes.len()) {
                return Err(format!(
                    "node {i} has child {c} beyond {} nodes",
                    nodes.len()
                ));
            }
        }
        Ok(Self {
            nodes,
            leaf_order,
            pos_of,
            branching,
            dead,
            node_live,
        })
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| std::mem::size_of::<TreeNode>() + n.children.len() * 4)
            .sum::<usize>()
            + self.leaf_order.len() * 4
            + self.pos_of.len() * 4
            + self.dead.len()
            + self.node_live.len() * 4
    }

    /// Audits the metric facts behind the Thm 6–8 batch updates: structure
    /// and radius containment (via [`NbTree::validate`]), radius ≤ diameter
    /// bound on every non-root node, and pairwise member distances within
    /// the diameter bound on bottom clusters. Panics on violation.
    ///
    /// Compiled only under the `invariant-audit` feature; the default build
    /// gets the no-op twin below.
    #[cfg(feature = "invariant-audit")]
    pub fn audit(&self, oracle: &DistanceOracle) {
        use graphrep_ged::audit_invariant;
        let v = self.validate(oracle);
        audit_invariant!(
            v.is_ok(),
            "NB-Tree validation failed: {}",
            v.as_ref().err().map(String::as_str).unwrap_or("?")
        );
        for (i, n) in self.nodes.iter().enumerate() {
            if i == 0 {
                continue;
            }
            audit_invariant!(
                n.radius <= n.diameter + 1e-9,
                "node {i}: radius {} exceeds diameter bound {}",
                n.radius,
                n.diameter
            );
            // The diameter bound rests on the triangle inequality, which
            // approximate or budget-starved engines do not guarantee.
            if n.is_bottom() && n.diameter.is_finite() && oracle.audit_distances_exact() {
                for p in n.start..n.end {
                    for q in (p + 1)..n.end {
                        let (a, b) = (self.leaf_order[p as usize], self.leaf_order[q as usize]);
                        let d = oracle.distance(a, b);
                        audit_invariant!(
                            d <= n.diameter + 1e-6,
                            "node {i}: member pair ({a}, {b}) distance {d} exceeds diameter bound {}",
                            n.diameter
                        );
                    }
                }
            }
        }
    }

    /// No-op twin of the audit hook for builds without `invariant-audit`.
    #[cfg(not(feature = "invariant-audit"))]
    #[inline(always)]
    pub fn audit(&self, _oracle: &DistanceOracle) {}

    /// Checks structural invariants; exact radius/diameter containment is
    /// verified against the oracle. Intended for tests.
    pub fn validate(&self, oracle: &DistanceOracle) -> Result<(), String> {
        if self.dead.len() != self.leaf_order.len() {
            return Err("one tombstone flag per leaf position".into());
        }
        if self.node_live.len() != self.nodes.len() {
            return Err("one live count per node".into());
        }
        if self.nodes.is_empty() {
            if self.dead.iter().any(|&d| !d) {
                return Err("a live graph exists but the tree has no nodes".into());
            }
            return Ok(());
        }
        if self.leaf_order.len() != oracle.len() {
            return Err("leaf order must cover the database".into());
        }
        let mut seen = vec![false; self.leaf_order.len()];
        for &g in &self.leaf_order {
            if seen[g as usize] {
                return Err(format!("graph {g} appears twice"));
            }
            seen[g as usize] = true;
        }
        // Positions outside the root's range (the dead tail a compacting
        // rebuild leaves behind) must all be tombstoned: traversal starts at
        // the root and must be able to reach every live graph.
        let root = &self.nodes[0];
        for pos in 0..self.leaf_order.len() as u32 {
            if (pos < root.start || pos >= root.end) && !self.dead[pos as usize] {
                return Err(format!("live position {pos} outside the root's range"));
            }
        }
        for (i, n) in self.nodes.iter().enumerate() {
            let live_in_range = (n.start..n.end).filter(|&p| !self.dead[p as usize]).count();
            if live_in_range != self.node_live[i] as usize {
                return Err(format!(
                    "node {i}: live count {} but {live_in_range} live members",
                    self.node_live[i]
                ));
            }
            if n.start > n.end || n.end as usize > self.leaf_order.len() {
                return Err(format!("node {i} has bad range"));
            }
            // Children must tile the parent's range.
            if !n.children.is_empty() {
                let mut cursor = n.start;
                for &c in &n.children {
                    let cn = &self.nodes[c as usize];
                    if cn.start != cursor {
                        return Err(format!("node {i}: children not contiguous"));
                    }
                    cursor = cn.end;
                }
                if cursor != n.end {
                    return Err(format!("node {i}: children do not tile range"));
                }
            }
            if i != 0 {
                for p in n.start..n.end {
                    let g = self.leaf_order[p as usize];
                    let d = oracle.distance(n.centroid, g);
                    if d > n.radius + 1e-6 {
                        return Err(format!("node {i}: member {g} outside radius"));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphrep_ged::{GedConfig, GedEngine};
    use graphrep_graph::generate::{mutate, random_connected};
    use graphrep_graph::Graph;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn family_oracle(n_families: usize, per: usize, seed: u64) -> DistanceOracle {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut graphs: Vec<Graph> = Vec::new();
        for _ in 0..n_families {
            let base = random_connected(&mut rng, 7, 2, &[0, 1, 2, 3], &[8, 9]);
            for _ in 0..per {
                graphs.push(mutate(&mut rng, &base, 1, &[0, 1, 2, 3], &[8, 9]));
            }
        }
        DistanceOracle::new(Arc::new(graphs), GedEngine::new(GedConfig::default()))
    }

    #[test]
    fn build_and_validate() {
        let oracle = family_oracle(4, 8, 5);
        let mut rng = SmallRng::seed_from_u64(1);
        let tree = NbTree::build(
            &oracle,
            None,
            NbTreeConfig {
                branching: 4,
                pivot_sample: 16,
            },
            &mut rng,
        );
        assert_eq!(tree.len(), 32);
        tree.validate(&oracle).unwrap();
    }

    #[test]
    fn positions_round_trip() {
        let oracle = family_oracle(3, 6, 6);
        let mut rng = SmallRng::seed_from_u64(2);
        let tree = NbTree::build(&oracle, None, NbTreeConfig::default(), &mut rng);
        for g in 0..tree.len() as GraphId {
            assert_eq!(tree.graph_at(tree.pos_of(g)), g);
        }
    }

    #[test]
    fn vp_assisted_build_matches_validation() {
        let oracle = family_oracle(3, 8, 7);
        let mut rng = SmallRng::seed_from_u64(3);
        let vt = VantageTable::build(oracle.len(), 6, &mut rng, |a, b| oracle.distance(a, b));
        let tree = NbTree::build(&oracle, Some(&vt), NbTreeConfig::default(), &mut rng);
        tree.validate(&oracle).unwrap();
    }

    #[test]
    fn vp_pruning_saves_distance_computations() {
        let oracle_a = family_oracle(4, 10, 8);
        let oracle_b = family_oracle(4, 10, 8);
        let mut rng = SmallRng::seed_from_u64(4);
        let cfg = NbTreeConfig {
            branching: 5,
            pivot_sample: 20,
        };
        // Without VPs.
        let _ = NbTree::build(&oracle_a, None, cfg, &mut rng);
        let plain = oracle_a.stats().distance_computations;
        // With VPs (VP construction distances counted too).
        let mut rng = SmallRng::seed_from_u64(4);
        let vt = VantageTable::build(oracle_b.len(), 6, &mut rng, |a, b| oracle_b.distance(a, b));
        let _ = NbTree::build(&oracle_b, Some(&vt), cfg, &mut rng);
        let pruned = oracle_b.stats().distance_computations;
        // The pruned build must not do *more* pairwise work than brute
        // assignment; typically it does far less.
        assert!(pruned <= plain + oracle_b.len() as u64 * 6);
    }

    #[test]
    fn duplicate_heavy_data_terminates() {
        // All graphs identical: recursion must bottom out via the degenerate
        // split guard.
        let mut rng = SmallRng::seed_from_u64(9);
        let g = random_connected(&mut rng, 5, 2, &[0], &[1]);
        let graphs: Vec<Graph> = (0..20).map(|_| g.clone()).collect();
        let oracle = DistanceOracle::new(Arc::new(graphs), GedEngine::new(GedConfig::default()));
        let tree = NbTree::build(
            &oracle,
            None,
            NbTreeConfig {
                branching: 3,
                pivot_sample: 8,
            },
            &mut rng,
        );
        tree.validate(&oracle).unwrap();
    }

    #[test]
    fn empty_database() {
        let oracle = DistanceOracle::new(Arc::new(vec![]), GedEngine::new(GedConfig::default()));
        let mut rng = SmallRng::seed_from_u64(10);
        let tree = NbTree::build(&oracle, None, NbTreeConfig::default(), &mut rng);
        assert!(tree.is_empty());
        assert!(tree.root().is_none());
        tree.validate(&oracle).unwrap();
    }

    #[test]
    fn radius_diameter_helper() {
        assert_eq!(radius_diameter(&[]), (0.0, 0.0));
        assert_eq!(radius_diameter(&[3.0]), (3.0, 3.0));
        assert_eq!(radius_diameter(&[1.0, 5.0, 4.0]), (5.0, 9.0));
    }

    /// Oracle over `base` graphs plus `extra` more from the same families,
    /// so insertions have realistic neighbors.
    fn growable_oracle(total: usize, seed: u64) -> DistanceOracle {
        let mut rng = SmallRng::seed_from_u64(seed);
        let base = random_connected(&mut rng, 6, 2, &[0, 1, 2, 3], &[8, 9]);
        let graphs: Vec<Graph> = (0..total)
            .map(|_| mutate(&mut rng, &base, 2, &[0, 1, 2, 3], &[8, 9]))
            .collect();
        DistanceOracle::new(Arc::new(graphs), GedEngine::new(GedConfig::default()))
    }

    #[test]
    fn insert_keeps_structure_valid() {
        let oracle = growable_oracle(30, 21);
        let prefix = DistanceOracle::new(
            Arc::new(oracle.graphs()[..20].to_vec()),
            GedEngine::new(GedConfig::default()),
        );
        let mut rng = SmallRng::seed_from_u64(5);
        let cfg = NbTreeConfig {
            branching: 3,
            pivot_sample: 16,
        };
        let mut tree = NbTree::build(&prefix, None, cfg, &mut rng);
        for id in 20..30u32 {
            let out = tree.insert_graph(&oracle, None, id, &mut rng);
            assert!(out.radius_inflation >= 0.0);
            assert_eq!(tree.graph_at(out.pos), id);
        }
        assert_eq!(tree.len(), 30);
        assert_eq!(tree.live_len(), 30);
        tree.validate(&oracle).unwrap();
        for g in 0..30u32 {
            assert_eq!(tree.graph_at(tree.pos_of(g)), g);
            assert!(tree.is_live(g));
        }
    }

    #[test]
    fn remove_tombstones_and_counts() {
        let oracle = family_oracle(3, 8, 13);
        let mut rng = SmallRng::seed_from_u64(6);
        let mut tree = NbTree::build(&oracle, None, NbTreeConfig::default(), &mut rng);
        assert_eq!(tree.live_len(), 24);
        tree.remove_graph(5).unwrap();
        tree.remove_graph(17).unwrap();
        assert!(tree.remove_graph(5).is_err(), "double remove must fail");
        assert!(tree.remove_graph(99).is_err(), "unknown id must fail");
        assert_eq!(tree.live_len(), 22);
        assert_eq!(tree.tombstones(), 2);
        assert!(!tree.is_live(5) && !tree.is_live(17) && tree.is_live(6));
        assert_eq!(tree.len(), 24, "tombstones keep their positions");
        tree.validate(&oracle).unwrap();
    }

    #[test]
    fn interleaved_insert_remove_round_trips_positions() {
        let oracle = growable_oracle(24, 22);
        let prefix = DistanceOracle::new(
            Arc::new(oracle.graphs()[..16].to_vec()),
            GedEngine::new(GedConfig::default()),
        );
        let mut rng = SmallRng::seed_from_u64(7);
        let cfg = NbTreeConfig {
            branching: 3,
            pivot_sample: 8,
        };
        let mut tree = NbTree::build(&prefix, None, cfg, &mut rng);
        for (step, id) in (16..24u32).enumerate() {
            tree.remove_graph(step as u32 * 2).unwrap();
            tree.insert_graph(&oracle, None, id, &mut rng);
        }
        assert_eq!(tree.len(), 24);
        assert_eq!(tree.live_len(), 16);
        tree.validate(&oracle).unwrap();
        for g in 0..24u32 {
            assert_eq!(tree.graph_at(tree.pos_of(g)), g);
        }
    }

    #[test]
    fn build_over_puts_dead_outside_root() {
        let oracle = family_oracle(3, 8, 14);
        let mut live = vec![true; 24];
        for id in [1usize, 7, 8, 20] {
            live[id] = false;
        }
        let mut rng = SmallRng::seed_from_u64(8);
        let tree = NbTree::build_over(&oracle, None, NbTreeConfig::default(), &mut rng, &live);
        assert_eq!(tree.len(), 24);
        assert_eq!(tree.live_len(), 20);
        assert_eq!(tree.tombstones(), 4);
        tree.validate(&oracle).unwrap();
        let root_end = tree.node(0).end;
        for id in [1u32, 7, 8, 20] {
            assert!(!tree.is_live(id));
            assert!(
                tree.pos_of(id) >= root_end,
                "dead id {id} must sit outside the root's range"
            );
        }
    }

    #[test]
    fn oversized_live_bottom_splits_on_insert() {
        let oracle = growable_oracle(20, 23);
        let prefix = DistanceOracle::new(
            Arc::new(oracle.graphs()[..4].to_vec()),
            GedEngine::new(GedConfig::default()),
        );
        let mut rng = SmallRng::seed_from_u64(9);
        let cfg = NbTreeConfig {
            branching: 2,
            pivot_sample: 8,
        };
        let mut tree = NbTree::build(&prefix, None, cfg, &mut rng);
        let mut any_split = false;
        for id in 4..20u32 {
            any_split |= tree.insert_graph(&oracle, None, id, &mut rng).split;
        }
        tree.validate(&oracle).unwrap();
        // With branching 2 and 16 insertions some bottom must have exceeded
        // 2·b members and split (unless all graphs were identical, which the
        // mutation-based generator rules out).
        assert!(any_split, "expected at least one bottom split");
    }

    #[test]
    fn insert_into_empty_tree() {
        let oracle = growable_oracle(3, 24);
        let empty = DistanceOracle::new(Arc::new(vec![]), GedEngine::new(GedConfig::default()));
        let mut rng = SmallRng::seed_from_u64(10);
        let mut tree = NbTree::build(&empty, None, NbTreeConfig::default(), &mut rng);
        for id in 0..3u32 {
            tree.insert_graph(&oracle, None, id, &mut rng);
        }
        assert_eq!(tree.live_len(), 3);
        tree.validate(&oracle).unwrap();
    }
}
