//! Answer sets and the representative-power objective (paper Eq. 3).

use graphrep_graph::GraphId;
use graphrep_metric::Bitset;

/// The result of a top-k representative query.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AnswerSet {
    /// Chosen graphs, in selection order.
    pub ids: Vec<GraphId>,
    /// Relevant graphs covered by the union of θ-neighborhoods.
    pub covered: usize,
    /// Size of the relevant set `|L_q|`.
    pub relevant: usize,
    /// Representative power after each greedy iteration (monotone).
    pub pi_trajectory: Vec<f64>,
}

impl AnswerSet {
    /// Representative power `π(A) = covered / |L_q|` (Eq. 3).
    pub fn pi(&self) -> f64 {
        if self.relevant == 0 {
            0.0
        } else {
            self.covered as f64 / self.relevant as f64
        }
    }

    /// Compression ratio `|N_θ(A)| / |A|` (Sec 8.3.1).
    pub fn compression_ratio(&self) -> f64 {
        if self.ids.is_empty() {
            0.0
        } else {
            self.covered as f64 / self.ids.len() as f64
        }
    }

    /// Number of answers.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the answer set is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// Evaluates `π` and the coverage of an arbitrary answer set against a
/// ground-truth neighborhood function. Used to score baseline answer sets
/// (DIV, DisC, traditional top-k) under the paper's objective.
pub fn evaluate_answer(
    ids: &[GraphId],
    relevant: &[GraphId],
    mut neighborhood: impl FnMut(GraphId) -> Vec<GraphId>,
) -> AnswerSet {
    let cap = relevant
        .iter()
        .copied()
        .max()
        .map_or(0, |m| m as usize + 1)
        .max(ids.iter().copied().max().map_or(0, |m| m as usize + 1));
    let rel_set = Bitset::from_indices(cap, relevant.iter().map(|&r| r as usize));
    let mut covered = Bitset::new(cap);
    let mut pi_trajectory = Vec::with_capacity(ids.len());
    for &g in ids {
        for n in neighborhood(g) {
            if (n as usize) < cap && rel_set.contains(n as usize) {
                covered.insert(n as usize);
            }
        }
        pi_trajectory.push(if relevant.is_empty() {
            0.0
        } else {
            covered.count() as f64 / relevant.len() as f64
        });
    }
    AnswerSet {
        ids: ids.to_vec(),
        covered: covered.count(),
        relevant: relevant.len(),
        pi_trajectory,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pi_and_cr() {
        let a = AnswerSet {
            ids: vec![1, 2],
            covered: 10,
            relevant: 40,
            pi_trajectory: vec![0.15, 0.25],
        };
        assert!((a.pi() - 0.25).abs() < 1e-12);
        assert!((a.compression_ratio() - 5.0).abs() < 1e-12);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn empty_answer() {
        let a = AnswerSet {
            ids: vec![],
            covered: 0,
            relevant: 0,
            pi_trajectory: vec![],
        };
        assert_eq!(a.pi(), 0.0);
        assert_eq!(a.compression_ratio(), 0.0);
        assert!(a.is_empty());
    }

    #[test]
    fn evaluate_counts_unique_relevant_coverage() {
        // Neighborhoods on a line: g covers {g−1, g, g+1} ∩ relevant.
        let relevant = vec![0, 1, 2, 3, 4, 8];
        let nbr = |g: GraphId| vec![g.saturating_sub(1), g, g + 1];
        let a = evaluate_answer(&[1, 2], &relevant, nbr);
        // 1 covers {0,1,2}; 2 covers {1,2,3} → union {0,1,2,3}.
        assert_eq!(a.covered, 4);
        assert_eq!(a.relevant, 6);
        assert_eq!(a.pi_trajectory.len(), 2);
        assert!(a.pi_trajectory[0] <= a.pi_trajectory[1]);
    }

    #[test]
    fn evaluate_ignores_irrelevant_neighbors() {
        let relevant = vec![5];
        let a = evaluate_answer(&[5], &relevant, |_| vec![4, 5, 6]);
        assert_eq!(a.covered, 1);
        assert!((a.pi() - 1.0).abs() < 1e-12);
    }
}
