//! Query processing (paper Sec 7): initialization phase, Alg 2 search, and
//! the Thm 6–8 batch update step, with interactive θ refinement.
//!
//! A [`QuerySession`] is created once per relevance function `q`: the
//! initialization phase computes π̂-vectors from the vantage orderings alone
//! (no edit distances). Each [`QuerySession::run`] then executes the
//! search-and-update phase for one `(θ, k)` — rerunning with a refined θ
//! reuses the same initialization, which is exactly the paper's interactive
//! zoom scenario (Fig 6(i)–(j)).
//!
//! ## Exactness
//!
//! The search accepts a graph only when its *verified* marginal gain is at
//! least every upper bound left in the priority queue, with ties broken
//! toward the smaller graph id — so a run returns precisely the Alg 1 greedy
//! answer. Upper bounds are only ever lowered when Thms 6–8 license it,
//! pushed down the tree lazily (segment-tree style).

use crate::answer::AnswerSet;
use crate::cancel::{CancelToken, Cancelled};
use crate::nbindex::NbIndex;
use crate::pihat::{PiHatVectors, ThresholdLadder};
use crate::provider::{MaterializedProvider, NeighborhoodProvider};
use crate::views::{query_fingerprint, AnswerCache, AnswerKey, ViewScope, ViewStore};
use graphrep_graph::GraphId;
use graphrep_metric::Bitset;
use std::cell::Cell;
use std::collections::BinaryHeap;
use std::collections::HashMap;
use std::ops::Deref;
use std::sync::Arc;
use std::time::{Duration, Instant};

const EPS: f64 = 1e-6;

/// Statistics of one search-and-update run.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunStats {
    /// Edit-distance engine calls made during the run.
    pub distance_calls: u64,
    /// Graphs whose exact θ-neighborhood was verified.
    pub verified_graphs: u64,
    /// Tree nodes expanded by the best-first search.
    pub nodes_expanded: u64,
    /// Ladder slot used, or `None` if fresh bounds were computed at θ.
    pub ladder_slot: Option<usize>,
    /// Wall time of the run.
    pub wall: Duration,
}

/// One accepted greedy pick, emitted mid-run by
/// [`QuerySession::run_streaming_cancellable`] as CELF commits it.
///
/// Events carry exactly the state the final [`AnswerSet`] records for the
/// pick: the `seq`-th entry of `ids` and of `pi_trajectory`, plus the
/// coverage counts behind the ratio. Concatenating the events of a completed
/// run therefore reconstructs the answer byte-for-byte.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PickEvent {
    /// Zero-based pick index within the run (`0` = first representative).
    pub seq: usize,
    /// The representative graph just accepted.
    pub id: GraphId,
    /// Relevant graphs covered after this pick.
    pub covered: usize,
    /// Size of the relevant set `L_q`.
    pub relevant: usize,
    /// Coverage ratio π after this pick (the `seq`-th trajectory entry).
    pub pi: f64,
}

/// A per-query-function session: initialization phase output plus a handle
/// to the index.
///
/// The handle is generic over how the index is held: [`NbIndex::start_session`]
/// borrows (`I = &NbIndex`, the classic single-process shape), while
/// [`QuerySession::shared`] owns an `Arc<NbIndex>` — an `'static`, `Send +
/// Sync` session that a server can store in a registry and run from many
/// worker threads at once. [`QuerySession::run`] takes `&self` and keeps all
/// run state on the stack, so concurrent runs of the same session are safe
/// and each returns exactly its single-threaded answer.
#[derive(Debug)]
pub struct QuerySession<I: Deref<Target = NbIndex> = Arc<NbIndex>> {
    index: I,
    relevant: Vec<GraphId>,
    /// Relevant membership by graph id.
    relevant_by_id: Bitset,
    /// Relevant membership by leaf position.
    rel_pos: Bitset,
    pihat: PiHatVectors,
    init_wall: Duration,
    /// Canonical fingerprint of the relevant set (cache key component).
    fingerprint: u64,
    /// Materialized-view store, when the session participates in caching.
    views: Option<Arc<ViewStore>>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Node(u32),
    Graph { pos: u32, verified: bool },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    bound: i64,
    /// Tie-break key: graphs (by ascending id) come before nodes.
    tie: u64,
    kind: Kind,
}

impl Entry {
    fn node(bound: i64, ni: u32) -> Self {
        // Nodes after all graphs at equal bound (graphs carry smaller keys).
        Entry {
            bound,
            tie: (1 << 33) | ni as u64,
            kind: Kind::Node(ni),
        }
    }
    fn graph(bound: i64, pos: u32, id: GraphId, verified: bool) -> Self {
        let v = if verified { 0u64 } else { 1 << 32 };
        Entry {
            bound,
            tie: v | id as u64,
            kind: Kind::Graph { pos, verified },
        }
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: larger bound first; then smaller tie key first.
        self.bound
            .cmp(&other.bound)
            .then_with(|| other.tie.cmp(&self.tie))
    }
}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Sessions over a shared index handle cross thread boundaries: the serving
/// layer stores them in a registry and runs them from pooled workers.
const fn _assert_send_sync<T: Send + Sync>() {}
const _: () = _assert_send_sync::<QuerySession<Arc<NbIndex>>>();

impl QuerySession<Arc<NbIndex>> {
    /// Initialization phase over a shared index handle: the returned session
    /// is `'static + Send + Sync`, suitable for a long-lived session registry
    /// serving concurrent `(θ, k)` runs (paper Sec 7's interactive model as a
    /// server-side workload).
    pub fn shared(index: Arc<NbIndex>, relevant: Vec<GraphId>) -> Self {
        Self::new(index, relevant)
    }
}

impl<I: Deref<Target = NbIndex> + Sync> QuerySession<I> {
    pub(crate) fn new(index: I, relevant: Vec<GraphId>) -> Self {
        let t0 = Instant::now();
        let n = index.tree().len();
        let relevant_by_id = Bitset::from_indices(n, relevant.iter().map(|&g| g as usize));
        let rel_pos =
            Bitset::from_indices(n, relevant.iter().map(|&g| index.tree().pos_of(g) as usize));
        let pihat = PiHatVectors::initialize(
            index.vantage(),
            index.tree(),
            &relevant,
            &relevant_by_id,
            index.ladder(),
        );
        let fingerprint = query_fingerprint(&relevant);
        Self {
            index,
            relevant,
            relevant_by_id,
            rel_pos,
            pihat,
            init_wall: t0.elapsed(),
            fingerprint,
            views: None,
        }
    }

    /// Attaches a materialized-view store: subsequent runs serve verified
    /// θ-neighborhoods from it when possible and offer fresh verifications
    /// back for materialization. Views are keyed by the index's mutation
    /// epoch and this session's [`QuerySession::fingerprint`], so a shared
    /// store is sound across sessions, epochs, and pinned snapshots.
    pub fn with_views(mut self, views: Arc<ViewStore>) -> Self {
        self.views = Some(views);
        self
    }

    /// The relevant set `L_q`.
    pub fn relevant(&self) -> &[GraphId] {
        &self.relevant
    }

    /// Canonical [`query_fingerprint`] of this session's relevant set.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Mutation epoch of the index snapshot this session is pinned to.
    pub fn epoch(&self) -> u64 {
        self.index.epoch()
    }

    /// Wall time of the initialization phase.
    pub fn init_wall(&self) -> Duration {
        self.init_wall
    }

    /// Session memory footprint (π̂-vectors and masks), Fig 6(l).
    pub fn memory_bytes(&self) -> usize {
        self.pihat.memory_bytes() + self.relevant_by_id.memory_bytes() + self.rel_pos.memory_bytes()
    }

    /// Executes the search-and-update phase for one `(θ, k)`.
    pub fn run(&self, theta: f64, k: usize) -> (AnswerSet, RunStats) {
        match self.run_cancellable(theta, k, &CancelToken::never()) {
            Ok(r) => r,
            // A never-token has no trigger; this arm cannot be reached.
            Err(Cancelled) => unreachable!("CancelToken::never() fired"),
        }
    }

    /// [`Self::run`] with a cooperative cancellation token, polled between
    /// best-first-search pops (the same boundary CELF uses) and between
    /// greedy iterations. On cancellation the partial answer is discarded
    /// and the session stays fully usable — π̂-vectors and the index are
    /// never mutated by a run.
    pub fn run_cancellable(
        &self,
        theta: f64,
        k: usize,
        cancel: &CancelToken,
    ) -> Result<(AnswerSet, RunStats), Cancelled> {
        self.run_streaming_cancellable(theta, k, cancel, &mut |_| true)
    }

    /// [`Self::run_cancellable`] with a per-pick observer: `on_pick` is
    /// invoked once for every accepted representative, in pick order,
    /// *after* the pick has been committed to the answer under
    /// construction. The callback never influences the computation — a run
    /// that completes returns the byte-identical answer `run` would — but
    /// returning `false` aborts the run exactly like a fired cancel token
    /// (the partial answer is discarded, the session stays usable). This is
    /// the seam a streaming server uses to ship each pick as its own frame
    /// and to stop paying for picks nobody is listening to.
    pub fn run_streaming_cancellable(
        &self,
        theta: f64,
        k: usize,
        cancel: &CancelToken,
        on_pick: &mut dyn FnMut(PickEvent) -> bool,
    ) -> Result<(AnswerSet, RunStats), Cancelled> {
        let t0 = Instant::now();
        // Checked up front so an already-expired deadline (e.g. a request
        // that waited out its budget in a server queue) aborts before the
        // off-ladder π̂ initialization, which is the run's priciest
        // distance-free step.
        cancel.check()?;
        if let Some(views) = &self.views {
            // One arrival per run — the view store's promotion policy counts
            // these, not per-graph lookups, so "hot" means repeated queries.
            views.note_query(self.view_scope(), theta);
        }
        let calls0 = self.index.oracle().engine_calls();
        let tree = self.index.tree();
        let n = tree.len();
        let mut stats = RunStats::default();

        // Working upper bounds at the ladder slot covering θ, or fresh
        // single-slot bounds when θ exceeds the ladder.
        let slot = self.index.ladder().slot_for(theta);
        stats.ladder_slot = slot;
        let fresh;
        let (pihat, use_slot): (&PiHatVectors, usize) = match slot {
            Some(s) => (&self.pihat, s),
            None => {
                fresh = PiHatVectors::initialize(
                    self.index.vantage(),
                    tree,
                    &self.relevant,
                    &self.relevant_by_id,
                    &ThresholdLadder::new(vec![theta]),
                );
                (&fresh, 0)
            }
        };
        let mut graph_bound: Vec<i64> = (0..n as u32)
            .map(|pos| pihat.graph_count(pos, use_slot) as i64)
            .collect();
        let mut node_bound: Vec<i64> = (0..tree.nodes().len() as u32)
            .map(|ni| pihat.node_count(ni, use_slot) as i64)
            .collect();
        let mut node_lazy: Vec<i64> = vec![0; tree.nodes().len()];

        let mut covered = Bitset::new(n);
        let mut in_answer = Bitset::new(n);
        let mut neigh: HashMap<u32, Bitset> = HashMap::new();

        let mut ids = Vec::new();
        let mut pi_trajectory = Vec::new();
        let budget = k.min(self.relevant.len());
        #[cfg(feature = "invariant-audit")]
        let mut prev_gain = i64::MAX;
        for _ in 0..budget {
            cancel.check()?;
            let Some(pos_star) = self.next_graph(
                theta,
                &mut graph_bound,
                &mut node_bound,
                &mut node_lazy,
                &covered,
                &in_answer,
                &mut neigh,
                &mut stats,
                cancel,
            )?
            else {
                break;
            };
            #[cfg(feature = "invariant-audit")]
            {
                let gain = graph_bound[pos_star as usize];
                graphrep_ged::audit_invariant!(
                    gain <= prev_gain,
                    "submodularity (Thm 2): search marginal gain rose from {prev_gain} to {gain}"
                );
                prev_gain = gain;
            }
            if graph_bound[pos_star as usize] == 0 {
                // Verified zero marginal gain: coverage is saturated (same
                // early-stop rule as the baseline greedy).
                break;
            }
            ids.push(tree.graph_at(pos_star));
            self.apply_update(
                theta,
                pos_star,
                &mut node_bound,
                &mut node_lazy,
                &mut covered,
                &mut in_answer,
                &neigh,
            );
            // Thm 6–8 preconditions are metric facts about the (immutable)
            // tree; re-checking after each batch update costs only cache hits.
            self.audit_tree();
            pi_trajectory.push(if self.relevant.is_empty() {
                0.0
            } else {
                covered.count() as f64 / self.relevant.len() as f64
            });
            let keep_going = on_pick(PickEvent {
                seq: ids.len() - 1,
                id: ids[ids.len() - 1],
                covered: covered.count(),
                relevant: self.relevant.len(),
                pi: pi_trajectory[pi_trajectory.len() - 1],
            });
            if !keep_going {
                return Err(Cancelled);
            }
        }
        self.audit_run_end();
        stats.distance_calls = self.index.oracle().engine_calls() - calls0;
        stats.wall = t0.elapsed();
        Ok((
            AnswerSet {
                ids,
                covered: covered.count(),
                relevant: self.relevant.len(),
                pi_trajectory,
            },
            stats,
        ))
    }

    /// [`Self::run`] memoized through a cross-session [`AnswerCache`]:
    /// returns the answer, the run's stats, and whether it was served from
    /// the cache. A hit returns the byte-identical [`AnswerSet`] the
    /// uncached run would produce (the key covers epoch, exact θ bits, `k`,
    /// and the query fingerprint) with near-zero [`RunStats`] — stats
    /// describe work actually performed.
    pub fn run_cached(
        &self,
        theta: f64,
        k: usize,
        cache: &AnswerCache,
    ) -> (Arc<AnswerSet>, RunStats, bool) {
        match self.run_cached_cancellable(theta, k, &CancelToken::never(), cache) {
            Ok(r) => r,
            // A never-token has no trigger; this arm cannot be reached.
            Err(Cancelled) => unreachable!("CancelToken::never() fired"),
        }
    }

    /// [`Self::run_cached`] with cooperative cancellation. The token is
    /// checked *before* the cache lookup: a request whose deadline already
    /// expired must report `deadline exceeded`, not be rescued by a hit —
    /// caching must not change observable admission semantics.
    pub fn run_cached_cancellable(
        &self,
        theta: f64,
        k: usize,
        cancel: &CancelToken,
        cache: &AnswerCache,
    ) -> Result<(Arc<AnswerSet>, RunStats, bool), Cancelled> {
        let t0 = Instant::now();
        cancel.check()?;
        let key = AnswerKey {
            epoch: self.index.epoch(),
            theta_bits: theta.to_bits(),
            k,
            fingerprint: self.fingerprint,
        };
        if let Some(answer) = cache.get(&key) {
            let stats = RunStats {
                wall: t0.elapsed(),
                ..RunStats::default()
            };
            return Ok((answer, stats, true));
        }
        let (answer, stats) = self.run_cancellable(theta, k, cancel)?;
        let answer = Arc::new(answer);
        cache.insert(key, Arc::clone(&answer));
        Ok((answer, stats, false))
    }

    /// The view-store scope of this session: its pinned snapshot's epoch
    /// plus the relevant-set fingerprint.
    fn view_scope(&self) -> ViewScope {
        ViewScope {
            epoch: self.index.epoch(),
            fingerprint: self.fingerprint,
        }
    }

    /// Exact θ-neighborhood of the graph at `pos` as a position bitset,
    /// memoized in `neigh`.
    ///
    /// The members come through the [`NeighborhoodProvider`] seam: an
    /// [`IndexVerifier`] performs the actual candidate-superset verification,
    /// and when a [`ViewStore`] is attached it is decorated with
    /// [`MaterializedProvider`], so previously verified neighborhoods are
    /// served as lookups. `stats.verified_graphs` counts only graphs the
    /// verifier actually verified — a view hit does not increment it.
    fn neighborhood(
        &self,
        theta: f64,
        pos: u32,
        neigh: &mut HashMap<u32, Bitset>,
        stats: &mut RunStats,
    ) -> Bitset {
        if let Some(nb) = neigh.get(&pos) {
            return nb.clone();
        }
        let tree = self.index.tree();
        let g = tree.graph_at(pos);
        let verifier = IndexVerifier {
            session: self,
            verified: Cell::new(0),
        };
        let members = match &self.views {
            Some(store) => MaterializedProvider::new(store, self.view_scope(), &verifier)
                .neighborhood(g, theta),
            None => verifier.neighborhood(g, theta),
        };
        stats.verified_graphs += verifier.verified.get();
        let mut nb = Bitset::new(tree.len());
        for c in members {
            nb.insert(tree.pos_of(c) as usize);
        }
        neigh.insert(pos, nb.clone());
        nb
    }

    /// Alg 2: best-first search for the next maximum-marginal-gain graph.
    ///
    /// The cancellation token is polled between heap pops — the loop's only
    /// unbounded dimension; everything inside one pop is bounded work plus
    /// at most one candidate-set verification.
    #[allow(clippy::too_many_arguments)]
    fn next_graph(
        &self,
        theta: f64,
        graph_bound: &mut [i64],
        node_bound: &mut [i64],
        node_lazy: &mut [i64],
        covered: &Bitset,
        in_answer: &Bitset,
        neigh: &mut HashMap<u32, Bitset>,
        stats: &mut RunStats,
        cancel: &CancelToken,
    ) -> Result<Option<u32>, Cancelled> {
        let tree = self.index.tree();
        let mut heap: BinaryHeap<Entry> = BinaryHeap::new();
        let Some(root) = tree.root() else {
            return Ok(None);
        };
        if self.pihat.node_relevant(root) > 0 {
            heap.push(Entry::node(node_bound[root as usize], root));
        }
        let mut best: Option<(i64, GraphId, u32)> = None;
        while let Some(e) = heap.pop() {
            cancel.check()?;
            if let Some((bg, _, _)) = best {
                if e.bound < bg {
                    break;
                }
            }
            match e.kind {
                Kind::Node(ni) => {
                    let cur = node_bound[ni as usize];
                    if e.bound > cur {
                        heap.push(Entry::node(cur, ni));
                        continue;
                    }
                    stats.nodes_expanded += 1;
                    let node = tree.node(ni);
                    let lazy = std::mem::take(&mut node_lazy[ni as usize]);
                    if node.is_bottom() {
                        for pos in node.start..node.end {
                            if !self.rel_pos.contains(pos as usize) {
                                continue;
                            }
                            if lazy > 0 {
                                graph_bound[pos as usize] =
                                    (graph_bound[pos as usize] - lazy).max(0);
                            }
                            if in_answer.contains(pos as usize) {
                                continue;
                            }
                            heap.push(Entry::graph(
                                graph_bound[pos as usize],
                                pos,
                                tree.graph_at(pos),
                                false,
                            ));
                        }
                    } else {
                        for &c in &node.children {
                            if lazy > 0 {
                                node_bound[c as usize] = (node_bound[c as usize] - lazy).max(0);
                                node_lazy[c as usize] += lazy;
                            }
                            if self.pihat.node_relevant(c) > 0 {
                                heap.push(Entry::node(node_bound[c as usize], c));
                            }
                        }
                    }
                }
                Kind::Graph {
                    pos,
                    verified: false,
                } => {
                    let cur = graph_bound[pos as usize];
                    if e.bound > cur {
                        heap.push(Entry::graph(cur, pos, tree.graph_at(pos), false));
                        continue;
                    }
                    let nb = self.neighborhood(theta, pos, neigh, stats);
                    let gain = nb.difference_count(covered) as i64;
                    debug_assert!(
                        gain <= e.bound,
                        "verified gain must not exceed its upper bound"
                    );
                    graph_bound[pos as usize] = gain;
                    heap.push(Entry::graph(gain, pos, tree.graph_at(pos), true));
                }
                Kind::Graph {
                    pos,
                    verified: true,
                } => {
                    let id = tree.graph_at(pos);
                    let better = match best {
                        None => true,
                        Some((bg, bid, _)) => e.bound > bg || (e.bound == bg && id < bid),
                    };
                    if better {
                        best = Some((e.bound, id, pos));
                    }
                }
            }
        }
        Ok(best.map(|(_, _, pos)| pos))
    }

    /// The update step: Thm 6 prunes unaffected clusters, Thms 7–8 subtract
    /// newly covered members from whole subtrees via lazy deltas.
    #[allow(clippy::too_many_arguments)]
    fn apply_update(
        &self,
        theta: f64,
        pos_star: u32,
        node_bound: &mut [i64],
        node_lazy: &mut [i64],
        covered: &mut Bitset,
        in_answer: &mut Bitset,
        neigh: &HashMap<u32, Bitset>,
    ) {
        let tree = self.index.tree();
        let vt = self.index.vantage();
        let oracle = self.index.oracle();
        let g_star = tree.graph_at(pos_star);
        let nb = neigh
            .get(&pos_star)
            // graphrep: allow(G001, search contract: next_graph only returns verified graphs, which are memoized)
            .expect("selected graph was verified")
            .clone();
        let mut new_c = nb.clone();
        new_c.subtract(covered);
        covered.union_with(&nb);
        in_answer.insert(pos_star as usize);
        if new_c.is_empty() {
            return;
        }
        let Some(root) = tree.root() else { return };
        let mut stack = vec![root];
        while let Some(ni) = stack.pop() {
            let node = tree.node(ni);
            if node.radius.is_finite() {
                // Vantage lower bound first: d ≥ vlb, so the Thm 6 test can
                // often prune without an edit distance.
                let vlb = vt.lower_bound(g_star, node.centroid);
                if vlb - node.radius > 2.0 * theta + EPS {
                    continue;
                }
                let d = oracle.distance(g_star, node.centroid);
                if d - node.radius > 2.0 * theta + EPS {
                    continue; // Thm 6: no neighborhood in c can overlap N(g*).
                }
                if node.diameter <= theta + EPS {
                    // Thms 7–8: every member g' of c has N(g') ⊇ c, hence
                    // N(g') ∩ N(g*) ⊇ c ∩ N(g*); its uncovered part is
                    // exactly the newly covered members of c.
                    let sub = new_c.count_range(node.start as usize, node.end as usize) as i64;
                    if sub > 0 {
                        node_bound[ni as usize] = (node_bound[ni as usize] - sub).max(0);
                        node_lazy[ni as usize] += sub;
                    }
                    continue;
                }
            }
            for &c in &node.children {
                if self.pihat.node_relevant(c) > 0 {
                    stack.push(c);
                }
            }
        }
    }

    /// Thm 4 audit: the vantage lower bound never exceeds the exact distance
    /// of a verified candidate. Compiled only under `invariant-audit`.
    #[cfg(feature = "invariant-audit")]
    fn audit_thm4(&self, g: GraphId, c: GraphId, d: f64) {
        // Thm 4 presumes metric (exact) distances.
        if !self.index.oracle().audit_distances_exact() {
            return;
        }
        let lb = self.index.vantage().lower_bound(g, c);
        graphrep_ged::audit_invariant!(
            lb <= d + EPS,
            "Thm 4: vantage lower bound {lb} exceeds exact distance {d} for pair ({g}, {c})"
        );
    }

    #[cfg(not(feature = "invariant-audit"))]
    #[inline(always)]
    fn audit_thm4(&self, _g: GraphId, _c: GraphId, _d: f64) {}

    /// Thm 5 audit: `N̂_θ` is a candidate superset — every relevant graph
    /// excluded from it must have a vantage lower bound strictly above θ
    /// (hence exact distance above θ). Compiled only under `invariant-audit`.
    #[cfg(feature = "invariant-audit")]
    fn audit_thm5(&self, g: GraphId, candidates: &[GraphId], theta: f64) {
        // Thm 5 presumes metric (exact) distances.
        if !self.index.oracle().audit_distances_exact() {
            return;
        }
        let in_cand = Bitset::from_indices(
            self.index.tree().len(),
            candidates.iter().map(|&c| c as usize),
        );
        for &r in &self.relevant {
            if r == g || in_cand.contains(r as usize) {
                continue;
            }
            let lb = self.index.vantage().lower_bound(g, r);
            graphrep_ged::audit_invariant!(
                lb > theta,
                "Thm 5: relevant graph {r} excluded from the candidate set of {g} \
                 but its lower bound {lb} does not exceed θ = {theta}"
            );
        }
    }

    #[cfg(not(feature = "invariant-audit"))]
    #[inline(always)]
    fn audit_thm5(&self, _g: GraphId, _candidates: &[GraphId], _theta: f64) {}

    /// Re-audits the NB-Tree's metric facts (Thm 6–8 preconditions).
    /// Compiled only under `invariant-audit`.
    #[cfg(feature = "invariant-audit")]
    fn audit_tree(&self) {
        self.index.tree().audit(self.index.oracle());
    }

    #[cfg(not(feature = "invariant-audit"))]
    #[inline(always)]
    fn audit_tree(&self) {}

    /// End-of-run audit: tree containment plus oracle counter conservation
    /// at a quiescent point. Compiled only under `invariant-audit`.
    #[cfg(feature = "invariant-audit")]
    fn audit_run_end(&self) {
        self.audit_tree();
        self.index.oracle().audit_counter_conservation();
    }

    #[cfg(not(feature = "invariant-audit"))]
    #[inline(always)]
    fn audit_run_end(&self) {}
}

/// The index-backed [`NeighborhoodProvider`]: verifies the `N̂_θ` candidate
/// superset against the tiered oracle. This is the expensive inner provider
/// the session's [`MaterializedProvider`] decorates; `verified` counts how
/// many neighborhoods it actually verified (view hits bypass it entirely).
struct IndexVerifier<'s, I: Deref<Target = NbIndex>> {
    session: &'s QuerySession<I>,
    verified: Cell<u64>,
}

impl<I: Deref<Target = NbIndex> + Sync> NeighborhoodProvider for IndexVerifier<'_, I> {
    fn neighborhood(&self, g: GraphId, theta: f64) -> Vec<GraphId> {
        self.neighborhood_with_distances(g, theta).0
    }

    /// Verifying the `N̂_θ` candidate superset is the run's GED-dominated
    /// step, so the per-candidate θ-membership tests fan out across rayon
    /// workers, in ascending Lipschitz-lower-bound order: near candidates
    /// (small lower bound) are the likeliest triangle-upper-bound accepts,
    /// so their exact distances — the costliest ones the tier ladder might
    /// otherwise compute — are attempted only after the cheap certificates
    /// have had first refusal, and far candidates arrive with the strongest
    /// evidence for a bound-only rejection. Each test is an independent pure
    /// evaluation against the sharded oracle; the accepted candidates are
    /// returned sorted by id, so the result — and the tiered oracle's
    /// verdicts — is identical at any thread count and with tiers on or off.
    /// Distances are whatever the oracle has exact values for afterwards
    /// (upper-bound-certified accepts carry `None`).
    fn neighborhood_with_distances(
        &self,
        g: GraphId,
        theta: f64,
    ) -> (Vec<GraphId>, Vec<Option<f64>>) {
        use rayon::prelude::*;
        let s = self.session;
        let vt = s.index.vantage();
        let oracle = s.index.oracle();
        // Only relevant candidates matter here, so a small `L_q` applies the
        // Thm 5 membership test pair-by-pair — O(|L_q|·|V|) — instead of
        // enumerating the database-wide θ-band; `passes_all_bands` is
        // exactly the predicate `candidates` filters by, so both paths
        // produce the same relevant-candidate set (and the Thm 5 audit runs
        // against whichever set was built).
        let mut keyed: Vec<(f64, u32)> = if s.relevant.len() <= 16 {
            let members: Vec<GraphId> = s
                .relevant
                .iter()
                .copied()
                .filter(|&c| vt.passes_all_bands(g, c, theta))
                .collect();
            s.audit_thm5(g, &members, theta);
            members
                .into_iter()
                .map(|c| (vt.lower_bound(g, c), c))
                .collect()
        } else {
            let candidates = vt.candidates(g, theta);
            s.audit_thm5(g, &candidates, theta);
            candidates
                .into_iter()
                .filter(|&c| s.relevant_by_id.contains(c as usize))
                .map(|c| (vt.lower_bound(g, c), c))
                .collect()
        };
        keyed.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let verify = |&(_, c): &(f64, u32)| {
            if oracle.within_verdict(g, c, theta) {
                // Upper-bound-certified accepts carry no exact distance;
                // the Thm 4 audit checks whichever pairs have one.
                if let Some(d) = oracle.cached_distance(g, c) {
                    s.audit_thm4(g, c, d);
                }
                Some(c)
            } else {
                None
            }
        };
        // Tiny candidate lists stay on the calling thread — rayon's dispatch
        // latency would dominate a handful of verdicts. Each test is an
        // independent pure evaluation, so the result is identical either way.
        let verified: Vec<Option<u32>> = if keyed.len() <= 16 {
            keyed.iter().map(verify).collect()
        } else {
            keyed.par_iter().map(verify).collect()
        };
        let mut members: Vec<GraphId> = verified.into_iter().flatten().collect();
        members.sort_unstable();
        let distances = members
            .iter()
            .map(|&m| oracle.cached_distance(g, m))
            .collect();
        self.verified.set(self.verified.get() + 1);
        (members, distances)
    }
}
