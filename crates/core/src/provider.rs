//! The neighborhood-provider seam (DESIGN.md §11).
//!
//! Separates *what greedy needs* — the θ-neighborhood `N_θ(g)` restricted
//! to the relevant set — from *where it comes from*: brute force, the
//! NB-Index's verified search, or a [`ViewStore`] of previously verified
//! neighborhoods. [`MaterializedProvider`] is the caching decorator: it
//! answers from the store when a materialized view exists for the exact
//! `(epoch, θ, fingerprint, g)` key and otherwise delegates to the inner
//! provider, offering the verified result back for materialization.

use crate::views::{ViewScope, ViewStore};
use graphrep_graph::GraphId;

/// Supplies θ-neighborhoods restricted to the relevant set.
pub trait NeighborhoodProvider {
    /// All *relevant* graphs within distance θ of `g`, including `g` itself
    /// when relevant.
    fn neighborhood(&self, g: GraphId, theta: f64) -> Vec<GraphId>;

    /// Like [`NeighborhoodProvider::neighborhood`], additionally reporting
    /// whatever exact distances the provider computed along the way
    /// (`None` for members certified by bounds alone — cheap accepts never
    /// produce a distance). The default computes no distances.
    fn neighborhood_with_distances(
        &self,
        g: GraphId,
        theta: f64,
    ) -> (Vec<GraphId>, Vec<Option<f64>>) {
        let members = self.neighborhood(g, theta);
        let distances = vec![None; members.len()];
        (members, distances)
    }
}

/// Caching decorator over any provider: serves materialized θ-neighborhood
/// views from a [`ViewStore`] and populates the store on miss (subject to
/// the store's frequency-promotion policy).
///
/// Sound by construction: the store keys on the exact `(epoch, θ bits,
/// query fingerprint, graph)` — a hit returns precisely the member set the
/// inner provider verified earlier under the same index snapshot, relevant
/// set, and threshold, so cached and uncached runs are byte-identical.
#[derive(Debug)]
pub struct MaterializedProvider<'a, P> {
    store: &'a ViewStore,
    scope: ViewScope,
    inner: &'a P,
}

impl<'a, P: NeighborhoodProvider> MaterializedProvider<'a, P> {
    /// Wraps `inner`, serving and recording views under `scope`.
    pub fn new(store: &'a ViewStore, scope: ViewScope, inner: &'a P) -> Self {
        Self {
            store,
            scope,
            inner,
        }
    }
}

impl<P: NeighborhoodProvider> NeighborhoodProvider for MaterializedProvider<'_, P> {
    fn neighborhood(&self, g: GraphId, theta: f64) -> Vec<GraphId> {
        self.neighborhood_with_distances(g, theta).0
    }

    fn neighborhood_with_distances(
        &self,
        g: GraphId,
        theta: f64,
    ) -> (Vec<GraphId>, Vec<Option<f64>>) {
        if let Some(view) = self.store.lookup(self.scope, theta, g) {
            return (view.members.to_vec(), view.distances.to_vec());
        }
        let (members, distances) = self.inner.neighborhood_with_distances(g, theta);
        self.store
            .record(self.scope, theta, g, &members, &distances);
        (members, distances)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::baseline_greedy;
    use crate::views::{query_fingerprint, CacheConfig};
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Provider over an abstract 1-D space that counts how often the
    /// expensive path runs.
    struct CountingLine {
        relevant: Vec<GraphId>,
        calls: AtomicU64,
    }

    impl NeighborhoodProvider for CountingLine {
        fn neighborhood(&self, g: GraphId, theta: f64) -> Vec<GraphId> {
            // Relaxed: test-only call counter, no ordering dependency.
            self.calls.fetch_add(1, Ordering::Relaxed);
            self.relevant
                .iter()
                .copied()
                .filter(|&r| (r as f64 - g as f64).abs() <= theta)
                .collect()
        }
    }

    fn setup() -> (CountingLine, ViewStore, ViewScope) {
        let relevant: Vec<GraphId> = (0..20).collect();
        let scope = ViewScope {
            epoch: 0,
            fingerprint: query_fingerprint(&relevant),
        };
        let inner = CountingLine {
            relevant,
            calls: AtomicU64::new(0),
        };
        let store = ViewStore::new(CacheConfig {
            promote_after: 1,
            ..CacheConfig::default()
        });
        (inner, store, scope)
    }

    #[test]
    fn decorated_greedy_matches_plain_and_reuses_views() {
        let (inner, store, scope) = setup();
        store.note_query(scope, 3.0);
        let relevant = inner.relevant.clone();
        let plain = baseline_greedy(&inner, &relevant, 3.0, 4);
        let after_plain = inner.calls.load(Ordering::Relaxed);

        // First decorated run: all misses, populates the store.
        let provider = MaterializedProvider::new(&store, scope, &inner);
        let first = baseline_greedy(&provider, &relevant, 3.0, 4);
        assert_eq!(format!("{first:?}"), format!("{plain:?}"));
        let after_first = inner.calls.load(Ordering::Relaxed);
        assert_eq!(after_first - after_plain, relevant.len() as u64);

        // Second decorated run: every neighborhood served from the store.
        let second = baseline_greedy(&provider, &relevant, 3.0, 4);
        assert_eq!(format!("{second:?}"), format!("{plain:?}"));
        assert_eq!(
            inner.calls.load(Ordering::Relaxed),
            after_first,
            "second run must not touch the inner provider"
        );
        let c = store.counters();
        assert_eq!(c.lookups, c.hits + c.misses);
        assert_eq!(c.hits as usize, relevant.len());
    }

    #[test]
    fn different_theta_or_epoch_bypasses_views() {
        let (inner, store, scope) = setup();
        store.note_query(scope, 3.0);
        let relevant = inner.relevant.clone();
        let provider = MaterializedProvider::new(&store, scope, &inner);
        let _ = baseline_greedy(&provider, &relevant, 3.0, 2);
        let calls = inner.calls.load(Ordering::Relaxed);

        // Same store, bumped epoch: all entries are invisible.
        let bumped = ViewScope { epoch: 1, ..scope };
        store.note_query(bumped, 3.0);
        let provider2 = MaterializedProvider::new(&store, bumped, &inner);
        let _ = baseline_greedy(&provider2, &relevant, 3.0, 2);
        assert_eq!(
            inner.calls.load(Ordering::Relaxed) - calls,
            relevant.len() as u64,
            "epoch bump must recompute every neighborhood"
        );
    }

    #[test]
    fn default_distances_are_all_unknown() {
        let (inner, _, _) = setup();
        let (members, dists) = inner.neighborhood_with_distances(5, 2.0);
        assert_eq!(members.len(), dists.len());
        assert!(dists.iter().all(Option::is_none));
    }
}
