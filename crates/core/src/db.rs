//! The graph database: graphs plus per-graph feature vectors.

use graphrep_ged::{DistanceOracle, GedConfig, GedEngine};
use graphrep_graph::{Graph, GraphId, LabelInterner};
use std::sync::Arc;

/// A graph database `D = {g_1, …, g_n}` where every graph `g_i` carries a
/// feature vector characterizing its properties (paper Sec 2, Table 1).
#[derive(Debug, Clone)]
pub struct GraphDatabase {
    graphs: Arc<Vec<Graph>>,
    features: Arc<Vec<Vec<f64>>>,
    labels: Arc<LabelInterner>,
}

impl GraphDatabase {
    /// Assembles a database. `features[i]` belongs to `graphs[i]`; all
    /// feature vectors must have the same dimensionality.
    pub fn new(graphs: Vec<Graph>, features: Vec<Vec<f64>>, labels: LabelInterner) -> Self {
        assert_eq!(graphs.len(), features.len(), "one feature vector per graph");
        if let Some(first) = features.first() {
            let d = first.len();
            assert!(
                features.iter().all(|f| f.len() == d),
                "feature vectors must share one dimensionality"
            );
        }
        Self {
            graphs: Arc::new(graphs),
            features: Arc::new(features),
            labels: Arc::new(labels),
        }
    }

    /// Number of graphs.
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }

    /// Feature dimensionality (`0` for an empty database).
    pub fn dims(&self) -> usize {
        self.features.first().map_or(0, Vec::len)
    }

    /// The graphs.
    pub fn graphs(&self) -> &[Graph] {
        &self.graphs
    }

    /// Shared handle to the graphs (for building a [`DistanceOracle`]).
    pub fn graphs_arc(&self) -> Arc<Vec<Graph>> {
        Arc::clone(&self.graphs)
    }

    /// Graph `id`.
    pub fn graph(&self, id: GraphId) -> &Graph {
        &self.graphs[id as usize]
    }

    /// Feature vector of graph `id`.
    pub fn features(&self, id: GraphId) -> &[f64] {
        &self.features[id as usize]
    }

    /// All feature vectors.
    pub fn all_features(&self) -> &[Vec<f64>] {
        &self.features
    }

    /// The label interner.
    pub fn labels(&self) -> &LabelInterner {
        &self.labels
    }

    /// Builds a caching distance oracle over this database.
    pub fn oracle(&self, config: GedConfig) -> Arc<DistanceOracle> {
        Arc::new(DistanceOracle::new(
            self.graphs_arc(),
            GedEngine::new(config),
        ))
    }

    /// Restricts the database to the graphs at `ids` (in order), rebasing ids
    /// to `0..ids.len()`. Used for dataset-size sweeps in the experiments.
    pub fn subset(&self, ids: &[GraphId]) -> GraphDatabase {
        let graphs = ids
            .iter()
            .map(|&i| self.graphs[i as usize].clone())
            .collect();
        let features = ids
            .iter()
            .map(|&i| self.features[i as usize].clone())
            .collect();
        GraphDatabase::new(graphs, features, (*self.labels).clone())
    }

    /// The first `n` graphs as a new database.
    pub fn prefix(&self, n: usize) -> GraphDatabase {
        let ids: Vec<GraphId> = (0..n.min(self.len()) as GraphId).collect();
        self.subset(&ids)
    }

    /// A new database with `graph` and its `features` appended as the next
    /// id. Existing ids are unchanged — the dynamic-maintenance counterpart
    /// of [`DistanceOracle::extended`].
    ///
    /// # Panics
    /// If `features` does not match the database's dimensionality.
    pub fn pushed(&self, graph: Graph, features: Vec<f64>) -> GraphDatabase {
        assert!(
            self.is_empty() || features.len() == self.dims(),
            "feature vectors must share one dimensionality"
        );
        let mut graphs = self.graphs.as_ref().clone();
        graphs.push(graph);
        let mut feats = self.features.as_ref().clone();
        feats.push(features);
        GraphDatabase {
            graphs: Arc::new(graphs),
            features: Arc::new(feats),
            labels: Arc::clone(&self.labels),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphrep_graph::GraphBuilder;

    fn tiny_db() -> GraphDatabase {
        let mut labels = LabelInterner::new();
        let c = labels.intern("C");
        let graphs: Vec<Graph> = (0..4)
            .map(|i| {
                let mut b = GraphBuilder::new();
                for _ in 0..=i {
                    b.add_node(c);
                }
                for j in 0..i {
                    b.add_edge(j as u16, j as u16 + 1, c).unwrap();
                }
                b.build()
            })
            .collect();
        let features = (0..4).map(|i| vec![i as f64, 1.0]).collect();
        GraphDatabase::new(graphs, features, labels)
    }

    #[test]
    fn accessors() {
        let db = tiny_db();
        assert_eq!(db.len(), 4);
        assert_eq!(db.dims(), 2);
        assert_eq!(db.graph(2).node_count(), 3);
        assert_eq!(db.features(3), &[3.0, 1.0]);
        assert_eq!(db.labels().len(), 1);
    }

    #[test]
    #[should_panic(expected = "one feature vector per graph")]
    fn mismatched_lengths_panic() {
        let db = tiny_db();
        GraphDatabase::new(db.graphs().to_vec(), vec![vec![1.0]], LabelInterner::new());
    }

    #[test]
    #[should_panic(expected = "dimensionality")]
    fn mismatched_dims_panic() {
        let db = tiny_db();
        let mut feats: Vec<Vec<f64>> = db.all_features().to_vec();
        feats[1] = vec![1.0];
        GraphDatabase::new(db.graphs().to_vec(), feats, LabelInterner::new());
    }

    #[test]
    fn subset_rebases() {
        let db = tiny_db();
        let sub = db.subset(&[3, 1]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.graph(0).node_count(), 4);
        assert_eq!(sub.features(1), &[1.0, 1.0]);
    }

    #[test]
    fn prefix_truncates() {
        let db = tiny_db();
        assert_eq!(db.prefix(2).len(), 2);
        assert_eq!(db.prefix(99).len(), 4);
    }

    #[test]
    fn pushed_appends_without_touching_original() {
        let db = tiny_db();
        let g = db.graph(0).clone();
        let db2 = db.pushed(g, vec![9.0, 9.0]);
        assert_eq!(db2.len(), 5);
        assert_eq!(db.len(), 4);
        assert_eq!(db2.features(4), &[9.0, 9.0]);
        assert_eq!(db2.features(1), db.features(1));
    }

    #[test]
    #[should_panic(expected = "dimensionality")]
    fn pushed_rejects_wrong_dims() {
        let db = tiny_db();
        let g = db.graph(0).clone();
        let _ = db.pushed(g, vec![1.0]);
    }

    #[test]
    fn oracle_runs() {
        let db = tiny_db();
        let o = db.oracle(GedConfig::default());
        assert!(o.distance(0, 3) > 0.0);
    }
}
