//! The NB-Index (paper Sec 6.4): vantage orderings + NB-Tree + threshold
//! ladder, unified behind one build/query interface.

use crate::answer::AnswerSet;
use crate::nbtree::{NbTree, NbTreeConfig};
use crate::pihat::ThresholdLadder;
use crate::session::{QuerySession, RunStats};
use graphrep_ged::{DistanceOracle, MetricHints};
use graphrep_graph::GraphId;
use graphrep_metric::VantageTable;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Construction parameters for the NB-Index.
#[derive(Debug, Clone)]
pub struct NbIndexConfig {
    /// Number of vantage points `|V|` (Sec 6.2.1).
    pub num_vps: usize,
    /// NB-Tree clustering parameters.
    pub tree: NbTreeConfig,
    /// Distance thresholds indexed in π̂-vectors (Sec 7.1). May be empty, in
    /// which case every run computes fresh bounds at its exact θ.
    pub ladder: Vec<f64>,
    /// RNG seed (VP choice, pivot sampling).
    pub seed: u64,
}

impl Default for NbIndexConfig {
    fn default() -> Self {
        Self {
            num_vps: 16,
            tree: NbTreeConfig::default(),
            ladder: vec![],
            seed: 0x5eed,
        }
    }
}

/// Costs incurred while building the index (Fig 6(k)).
#[derive(Debug, Clone, Copy, Default)]
pub struct BuildStats {
    /// Wall time of the build.
    pub wall: Duration,
    /// Edit-distance engine calls during the build.
    pub distance_calls: u64,
}

/// The vantage table's margin-adjusted Lipschitz/triangle bounds, exposed to
/// the oracle's [`MetricHints`] tier: the same embedding that generates
/// candidates also helps *verify* them without an engine call.
#[derive(Debug)]
struct VantageHints(Arc<VantageTable>);

impl MetricHints for VantageHints {
    fn lower_bound(&self, i: GraphId, j: GraphId) -> f64 {
        self.0.hint_bounds(i, j).0
    }
    fn upper_bound(&self, i: GraphId, j: GraphId) -> f64 {
        self.0.hint_bounds(i, j).1
    }
}

/// The NB-Index over one graph database.
#[derive(Debug)]
pub struct NbIndex {
    oracle: Arc<DistanceOracle>,
    vantage: Arc<VantageTable>,
    tree: NbTree,
    ladder: ThresholdLadder,
    build_stats: BuildStats,
}

impl NbIndex {
    /// Assembles an index from pre-built parts (used by persistence),
    /// installing the vantage bounds as the oracle's hint tier.
    pub(crate) fn from_parts(
        oracle: Arc<DistanceOracle>,
        vantage: VantageTable,
        tree: NbTree,
        ladder: ThresholdLadder,
        build_stats: BuildStats,
    ) -> Self {
        let vantage = Arc::new(vantage);
        oracle.set_hints(Arc::new(VantageHints(Arc::clone(&vantage))));
        Self {
            oracle,
            vantage,
            tree,
            ladder,
            build_stats,
        }
    }

    /// Builds the index: vantage orderings first (they accelerate the
    /// NB-Tree's pivot assignments), then the hierarchical clustering.
    ///
    /// The `|V| × n` vantage distances — the bulk of the build's NP-hard
    /// work — are evaluated across rayon workers, as are the NB-Tree's
    /// child-assignment distances; both phases collect in index order, so
    /// the built index is identical at any thread count.
    pub fn build(oracle: Arc<DistanceOracle>, config: NbIndexConfig) -> Self {
        let t0 = Instant::now();
        let calls0 = oracle.engine_calls();
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let n = oracle.len();
        let mut vp_ids: Vec<u32> = (0..n as u32).collect();
        {
            use rand::seq::SliceRandom;
            vp_ids.shuffle(&mut rng);
        }
        vp_ids.truncate(config.num_vps.min(n));
        let vantage = VantageTable::build_with_vps_par(n, vp_ids, &|a, b| oracle.distance(a, b));
        let tree = NbTree::build(&oracle, Some(&vantage), config.tree, &mut rng);
        let ladder = ThresholdLadder::new(config.ladder);
        let build_stats = BuildStats {
            wall: t0.elapsed(),
            distance_calls: oracle.engine_calls() - calls0,
        };
        let vantage = Arc::new(vantage);
        // From here on the oracle can certify θ-verdicts straight from the
        // embedding (Lipschitz lower / triangle upper bounds) — no engine.
        oracle.set_hints(Arc::new(VantageHints(Arc::clone(&vantage))));
        let this = Self {
            oracle,
            vantage,
            tree,
            ladder,
            build_stats,
        };
        this.audit_build();
        this
    }

    /// Post-build audit: oracle counter conservation across the whole build
    /// (the tree's own audit runs inside [`NbTree::build`]).
    #[cfg(feature = "invariant-audit")]
    fn audit_build(&self) {
        self.oracle.audit_counter_conservation();
    }

    #[cfg(not(feature = "invariant-audit"))]
    #[inline(always)]
    fn audit_build(&self) {}

    /// The underlying distance oracle.
    pub fn oracle(&self) -> &DistanceOracle {
        &self.oracle
    }

    /// The vantage orderings.
    pub fn vantage(&self) -> &VantageTable {
        &self.vantage
    }

    /// The NB-Tree.
    pub fn tree(&self) -> &NbTree {
        &self.tree
    }

    /// The indexed threshold ladder.
    pub fn ladder(&self) -> &ThresholdLadder {
        &self.ladder
    }

    /// Replaces the threshold ladder (the vantage orderings and tree are
    /// unchanged — ladder choice is an orthogonal, cheap re-indexing used by
    /// the Fig 6(a) experiment). Sessions created afterwards use the new
    /// ladder.
    pub fn set_ladder(&mut self, thetas: Vec<f64>) {
        self.ladder = ThresholdLadder::new(thetas);
    }

    /// Build-time costs.
    pub fn build_stats(&self) -> BuildStats {
        self.build_stats
    }

    /// Index memory footprint in bytes (vantage orderings + tree), Fig 6(l).
    /// Session π̂-vectors are accounted by [`QuerySession::memory_bytes`].
    pub fn memory_bytes(&self) -> usize {
        self.vantage.memory_bytes() + self.tree.memory_bytes()
    }

    /// Initialization phase for a relevance function: computes π̂-vectors
    /// once; the returned session answers any number of `(θ, k)` runs.
    pub fn start_session(&self, relevant: Vec<GraphId>) -> QuerySession<&NbIndex> {
        QuerySession::new(self, relevant)
    }

    /// [`Self::start_session`] over a shared handle: the returned session is
    /// `'static + Send + Sync`, so it can outlive the calling stack frame and
    /// serve concurrent runs — the shape the serving layer's session registry
    /// needs.
    pub fn start_session_shared(self: Arc<Self>, relevant: Vec<GraphId>) -> QuerySession {
        QuerySession::shared(self, relevant)
    }

    /// One-shot top-k representative query.
    pub fn query(&self, relevant: Vec<GraphId>, theta: f64, k: usize) -> (AnswerSet, RunStats) {
        self.start_session(relevant).run(theta, k)
    }
}
