//! The NB-Index (paper Sec 6.4): vantage orderings + NB-Tree + threshold
//! ladder, unified behind one build/query interface.

use crate::answer::AnswerSet;
use crate::nbtree::{NbTree, NbTreeConfig};
use crate::pihat::ThresholdLadder;
use crate::session::{QuerySession, RunStats};
use graphrep_ged::{DistanceOracle, MetricHints};
use graphrep_graph::{Graph, GraphId};
use graphrep_metric::VantageTable;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Vantage coordinate assigned to tombstoned graphs when the index is
/// rebuilt: far outside any real edit distance, so dead graphs fall outside
/// every band scan and their hint lower bounds reject any finite threshold.
/// Kept finite (and exactly representable in `f32`) so the persisted JSON
/// stays well-formed.
const DEAD_COORD: f64 = 1e30;

/// Construction parameters for the NB-Index.
#[derive(Debug, Clone)]
pub struct NbIndexConfig {
    /// Number of vantage points `|V|` (Sec 6.2.1).
    pub num_vps: usize,
    /// NB-Tree clustering parameters.
    pub tree: NbTreeConfig,
    /// Distance thresholds indexed in π̂-vectors (Sec 7.1). May be empty, in
    /// which case every run computes fresh bounds at its exact θ.
    pub ladder: Vec<f64>,
    /// RNG seed (VP choice, pivot sampling).
    pub seed: u64,
}

impl Default for NbIndexConfig {
    fn default() -> Self {
        Self {
            num_vps: 16,
            tree: NbTreeConfig::default(),
            ladder: vec![],
            seed: 0x5eed,
        }
    }
}

/// When accumulated mutation damage triggers a full rebuild (DESIGN.md §10).
///
/// Both knobs measure *bound quality*, not correctness: answers stay exact at
/// any staleness, but tombstones waste band-scan work and inflated radii
/// weaken the Thm 6–8 prune/accept tests, so past these limits a rebuild is
/// cheaper than the slowdown it removes.
#[derive(Debug, Clone, Copy)]
pub struct MutationPolicy {
    /// Rebuild when the ratio of in-range tombstones ([`NbTree::stale`])
    /// to indexed graphs exceeds this value.
    pub max_tombstone_ratio: f64,
    /// Rebuild when the summed relative radius inflation from
    /// [`crate::nbtree::InsertOutcome::radius_inflation`] exceeds this budget.
    pub radius_inflation_budget: f64,
}

impl Default for MutationPolicy {
    fn default() -> Self {
        Self {
            max_tombstone_ratio: 0.3,
            radius_inflation_budget: 4.0,
        }
    }
}

/// How a mutation was absorbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationOutcome {
    /// Applied incrementally: tree routed/tombstoned in place.
    Applied,
    /// The mutation pushed the index past its [`MutationPolicy`] and a full
    /// reclustering ran.
    Rebuilt,
}

/// A rejected mutation (unknown id, double remove, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MutateError(pub String);

impl std::fmt::Display for MutateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "mutation rejected: {}", self.0)
    }
}

impl std::error::Error for MutateError {}

/// Costs incurred while building the index (Fig 6(k)).
#[derive(Debug, Clone, Copy, Default)]
pub struct BuildStats {
    /// Wall time of the build.
    pub wall: Duration,
    /// Edit-distance engine calls during the build.
    pub distance_calls: u64,
}

/// The vantage table's margin-adjusted Lipschitz/triangle bounds, exposed to
/// the oracle's [`MetricHints`] tier: the same embedding that generates
/// candidates also helps *verify* them without an engine call.
#[derive(Debug)]
struct VantageHints(Arc<VantageTable>);

impl MetricHints for VantageHints {
    fn lower_bound(&self, i: GraphId, j: GraphId) -> f64 {
        self.0.hint_bounds(i, j).0
    }
    fn upper_bound(&self, i: GraphId, j: GraphId) -> f64 {
        self.0.hint_bounds(i, j).1
    }
}

/// The NB-Index over one graph database.
#[derive(Debug)]
pub struct NbIndex {
    oracle: Arc<DistanceOracle>,
    vantage: Arc<VantageTable>,
    tree: NbTree,
    ladder: ThresholdLadder,
    build_stats: BuildStats,
    config: NbIndexConfig,
    policy: MutationPolicy,
    /// Counts every applied mutation; never reset (rebuilds keep it), so a
    /// persisted snapshot can prove which database state it describes.
    epoch: u64,
    /// Accumulated relative radius inflation since the last (re)build.
    inflation: f64,
}

impl NbIndex {
    /// Assembles an index from pre-built parts (used by persistence),
    /// installing the vantage bounds as the oracle's hint tier. The original
    /// build configuration is not persisted; the reconstructed config only
    /// matters for mutation RNG seeding and rebuild parameters, for which the
    /// defaults (plus the persisted ladder) are faithful enough.
    pub(crate) fn from_parts(
        oracle: Arc<DistanceOracle>,
        vantage: VantageTable,
        tree: NbTree,
        ladder: ThresholdLadder,
        build_stats: BuildStats,
        epoch: u64,
    ) -> Self {
        let vantage = Arc::new(vantage);
        oracle.set_hints(Arc::new(VantageHints(Arc::clone(&vantage))));
        let config = NbIndexConfig {
            num_vps: vantage.num_vps(),
            ladder: ladder.thetas().to_vec(),
            ..NbIndexConfig::default()
        };
        Self {
            oracle,
            vantage,
            tree,
            ladder,
            build_stats,
            config,
            policy: MutationPolicy::default(),
            epoch,
            inflation: 0.0,
        }
    }

    /// Builds the index: vantage orderings first (they accelerate the
    /// NB-Tree's pivot assignments), then the hierarchical clustering.
    ///
    /// The `|V| × n` vantage distances — the bulk of the build's NP-hard
    /// work — are evaluated across rayon workers, as are the NB-Tree's
    /// child-assignment distances; both phases collect in index order, so
    /// the built index is identical at any thread count.
    pub fn build(oracle: Arc<DistanceOracle>, config: NbIndexConfig) -> Self {
        let t0 = Instant::now();
        let calls0 = oracle.engine_calls();
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let n = oracle.len();
        let mut vp_ids: Vec<u32> = (0..n as u32).collect();
        {
            use rand::seq::SliceRandom;
            vp_ids.shuffle(&mut rng);
        }
        vp_ids.truncate(config.num_vps.min(n));
        let vantage = VantageTable::build_with_vps_par(n, vp_ids, &|a, b| oracle.distance(a, b));
        let tree = NbTree::build(&oracle, Some(&vantage), config.tree, &mut rng);
        let ladder = ThresholdLadder::new(config.ladder.clone());
        let build_stats = BuildStats {
            wall: t0.elapsed(),
            distance_calls: oracle.engine_calls() - calls0,
        };
        let vantage = Arc::new(vantage);
        // From here on the oracle can certify θ-verdicts straight from the
        // embedding (Lipschitz lower / triangle upper bounds) — no engine.
        oracle.set_hints(Arc::new(VantageHints(Arc::clone(&vantage))));
        let this = Self {
            oracle,
            vantage,
            tree,
            ladder,
            build_stats,
            config,
            policy: MutationPolicy::default(),
            epoch: 0,
            inflation: 0.0,
        };
        this.audit_build();
        this
    }

    /// Post-build audit: oracle counter conservation across the whole build
    /// (the tree's own audit runs inside [`NbTree::build`]).
    #[cfg(feature = "invariant-audit")]
    fn audit_build(&self) {
        self.oracle.audit_counter_conservation();
    }

    #[cfg(not(feature = "invariant-audit"))]
    #[inline(always)]
    fn audit_build(&self) {}

    /// The underlying distance oracle.
    pub fn oracle(&self) -> &DistanceOracle {
        &self.oracle
    }

    /// Shared handle to the oracle. Mutations swap the index's oracle, so
    /// holders that must observe post-mutation counters should re-fetch this
    /// from the current index rather than caching it.
    pub fn oracle_arc(&self) -> Arc<DistanceOracle> {
        Arc::clone(&self.oracle)
    }

    /// The vantage orderings.
    pub fn vantage(&self) -> &VantageTable {
        &self.vantage
    }

    /// The NB-Tree.
    pub fn tree(&self) -> &NbTree {
        &self.tree
    }

    /// The indexed threshold ladder.
    pub fn ladder(&self) -> &ThresholdLadder {
        &self.ladder
    }

    /// Replaces the threshold ladder (the vantage orderings and tree are
    /// unchanged — ladder choice is an orthogonal, cheap re-indexing used by
    /// the Fig 6(a) experiment). Sessions created afterwards use the new
    /// ladder.
    pub fn set_ladder(&mut self, thetas: Vec<f64>) {
        self.ladder = ThresholdLadder::new(thetas);
    }

    /// Build-time costs.
    pub fn build_stats(&self) -> BuildStats {
        self.build_stats
    }

    /// Mutation epoch: number of applied inserts/removes since the initial
    /// build. Persisted snapshots record it so a stale snapshot cannot be
    /// silently served after the in-memory index has moved on, and the
    /// caching layer ([`crate::ViewStore`] / [`crate::AnswerCache`]) keys
    /// every entry on it — a fork-mutate-swap bumps the epoch, so cached
    /// results can never cross a mutation boundary even before any explicit
    /// invalidation runs.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Accumulated relative radius inflation since the last (re)build.
    pub fn inflation(&self) -> f64 {
        self.inflation
    }

    /// The active rebuild policy.
    pub fn policy(&self) -> MutationPolicy {
        self.policy
    }

    /// Replaces the rebuild policy (takes effect on the next mutation).
    pub fn set_policy(&mut self, policy: MutationPolicy) {
        self.policy = policy;
    }

    /// Adds `graph` to the index as the next graph id (DESIGN.md §10).
    ///
    /// The oracle is extended (cache and counters carry forward), the vantage
    /// table gains one row, and the NB-Tree routes the new graph to its
    /// nearest bottom cluster, re-expanding radii/diameters along the path so
    /// every bound stays admissible. Sessions opened before the call keep
    /// their pinned snapshot; sessions opened after see the new graph.
    pub fn insert(&mut self, graph: Graph) -> Result<(GraphId, MutationOutcome), MutateError> {
        use rayon::prelude::*;
        let id = self.oracle.len() as GraphId;
        let oracle = Arc::new(self.oracle.extended(graph));
        // Pure independent distance sweep, collected in vantage order:
        // parallel execution cannot change the embedding row.
        let vp_dists: Vec<f64> = self
            .vantage
            .vp_ids()
            .par_iter()
            .map(|&v| oracle.distance(v, id))
            .collect();
        // make_mut forks the table if sessions still share it, so their
        // pinned embedding (and the old oracle's hints) are undisturbed.
        let appended = Arc::make_mut(&mut self.vantage).push_item(&vp_dists);
        debug_assert_eq!(appended, id, "vantage row ids track oracle ids");
        let mut rng = SmallRng::seed_from_u64(self.config.seed ^ self.epoch);
        let out = self
            .tree
            .insert_graph(&oracle, Some(self.vantage.as_ref()), id, &mut rng);
        self.inflation += out.radius_inflation;
        self.epoch += 1;
        oracle.set_hints(Arc::new(VantageHints(Arc::clone(&self.vantage))));
        self.oracle = oracle;
        if self.needs_rebuild() {
            self.rebuild();
            Ok((id, MutationOutcome::Rebuilt))
        } else {
            Ok((id, MutationOutcome::Applied))
        }
    }

    /// Tombstones graph `id` (DESIGN.md §10): the graph keeps its leaf
    /// position (so every position-indexed structure stays valid) but is
    /// excluded from live counts, from relevance sets of future sessions, and
    /// from the clustering of the next rebuild.
    pub fn remove(&mut self, id: GraphId) -> Result<MutationOutcome, MutateError> {
        self.tree.remove_graph(id).map_err(MutateError)?;
        self.epoch += 1;
        if self.needs_rebuild() {
            self.rebuild();
            Ok(MutationOutcome::Rebuilt)
        } else {
            Ok(MutationOutcome::Applied)
        }
    }

    fn needs_rebuild(&self) -> bool {
        let n = self.tree.len();
        if n == 0 {
            return false;
        }
        let tomb = self.tree.stale() as f64 / n as f64;
        tomb > self.policy.max_tombstone_ratio
            || self.inflation > self.policy.radius_inflation_budget
    }

    /// Full reclustering over the live graphs: fresh vantage points, fresh
    /// tree, zeroed inflation. The epoch is *kept* — it counts database
    /// mutations, not index generations.
    ///
    /// Dead ids keep tail leaf positions (outside the root's range) and get
    /// [`DEAD_COORD`] vantage coordinates, so every id stays addressable
    /// while traversal and band scans never touch a tombstone. The oracle is
    /// forked, not mutated: sessions pinned to the old oracle keep the old
    /// embedding's hints.
    pub fn rebuild(&mut self) {
        let oracle = Arc::new(self.oracle.forked());
        let n = oracle.len();
        let live: Vec<bool> = (0..n as GraphId).map(|g| self.tree.is_live(g)).collect();
        let mut rng = SmallRng::seed_from_u64(self.config.seed ^ self.epoch);
        // Keep surviving vantage points: their distance columns are already
        // memoized, so a rebuild after churn re-pays the NP-hard phase only
        // for dead VPs' replacements. Top-up picks are a seeded shuffle of
        // the remaining live ids — deterministic for a given epoch.
        let target = self.config.num_vps.min(self.tree.live_len());
        let mut vp_ids: Vec<u32> = self
            .vantage
            .vp_ids()
            .iter()
            .copied()
            .filter(|&v| live[v as usize])
            .collect();
        vp_ids.truncate(target);
        let mut pool: Vec<u32> = (0..n as u32)
            .filter(|&g| live[g as usize] && !vp_ids.contains(&g))
            .collect();
        {
            use rand::seq::SliceRandom;
            pool.shuffle(&mut rng);
        }
        vp_ids.extend(pool.into_iter().take(target - vp_ids.len()));
        let vantage = VantageTable::build_with_vps_par(n, vp_ids, &|a, b| {
            if live[b as usize] {
                oracle.distance(a, b)
            } else {
                DEAD_COORD
            }
        });
        let tree = NbTree::build_over(&oracle, Some(&vantage), self.config.tree, &mut rng, &live);
        let vantage = Arc::new(vantage);
        oracle.set_hints(Arc::new(VantageHints(Arc::clone(&vantage))));
        self.oracle = oracle;
        self.vantage = vantage;
        self.tree = tree;
        self.inflation = 0.0;
        self.audit_build();
    }

    /// A mutable copy sharing the immutable heavyweight state (oracle,
    /// vantage table) by `Arc`. This is how a serving registry mutates while
    /// readers hold the previous `Arc<NbIndex>`: fork, mutate the fork, swap.
    pub fn fork(&self) -> NbIndex {
        NbIndex {
            oracle: Arc::clone(&self.oracle),
            vantage: Arc::clone(&self.vantage),
            tree: self.tree.clone(),
            ladder: self.ladder.clone(),
            build_stats: self.build_stats,
            config: self.config.clone(),
            policy: self.policy,
            epoch: self.epoch,
            inflation: self.inflation,
        }
    }

    /// Index memory footprint in bytes (vantage orderings + tree), Fig 6(l).
    /// Session π̂-vectors are accounted by [`QuerySession::memory_bytes`].
    pub fn memory_bytes(&self) -> usize {
        self.vantage.memory_bytes() + self.tree.memory_bytes()
    }

    /// Initialization phase for a relevance function: computes π̂-vectors
    /// once; the returned session answers any number of `(θ, k)` runs.
    ///
    /// Tombstoned ids in `relevant` are dropped: a removed graph can neither
    /// be an answer nor lend coverage.
    pub fn start_session(&self, mut relevant: Vec<GraphId>) -> QuerySession<&NbIndex> {
        relevant.retain(|&g| self.tree.is_live(g));
        QuerySession::new(self, relevant)
    }

    /// [`Self::start_session`] over a shared handle: the returned session is
    /// `'static + Send + Sync`, so it can outlive the calling stack frame and
    /// serve concurrent runs — the shape the serving layer's session registry
    /// needs. Tombstoned ids in `relevant` are dropped, as in
    /// [`Self::start_session`].
    pub fn start_session_shared(self: Arc<Self>, mut relevant: Vec<GraphId>) -> QuerySession {
        relevant.retain(|&g| self.tree.is_live(g));
        QuerySession::shared(self, relevant)
    }

    /// One-shot top-k representative query.
    pub fn query(&self, relevant: Vec<GraphId>, theta: f64, k: usize) -> (AnswerSet, RunStats) {
        self.start_session(relevant).run(theta, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphrep_datagen::{DatasetKind, DatasetSpec};
    use graphrep_ged::{GedConfig, GedEngine};
    use graphrep_graph::generate::mutate;

    fn small_config(data: &graphrep_datagen::Dataset) -> NbIndexConfig {
        NbIndexConfig {
            num_vps: 4,
            ladder: data.default_ladder.clone(),
            ..Default::default()
        }
    }

    /// An insert must leave the index answering exactly like a fresh build
    /// over the extended database — the differential-equivalence contract in
    /// miniature.
    #[test]
    fn insert_matches_fresh_build() {
        let data = DatasetSpec::new(DatasetKind::DudLike, 40, 7101).generate();
        let oracle = data.db.oracle(GedConfig::default());
        let mut index = NbIndex::build(oracle, small_config(&data));
        let mut rng = rand::rngs::SmallRng::seed_from_u64(99);
        let g = mutate(&mut rng, data.db.graph(0), 2, &[0, 1], &[0]);

        let (id, out) = index.insert(g.clone()).unwrap();
        assert_eq!(id as usize, data.db.len());
        assert_eq!(out, MutationOutcome::Applied);
        assert_eq!(index.epoch(), 1);
        index.tree().validate(index.oracle()).unwrap();

        let mut relevant = data.default_query().relevant_set(&data.db);
        relevant.push(id);
        let (got, _) = index.query(relevant.clone(), data.default_theta, 4);

        let mut graphs = data.db.graphs().to_vec();
        graphs.push(g);
        let ref_oracle = Arc::new(DistanceOracle::new(
            Arc::new(graphs),
            GedEngine::new(GedConfig::default()),
        ));
        let reference = NbIndex::build(ref_oracle, small_config(&data));
        let (want, _) = reference.query(relevant, data.default_theta, 4);
        assert_eq!(format!("{got:?}"), format!("{want:?}"));
    }

    /// A remove must drop the graph from answers, and the mutated index must
    /// agree with a fresh index queried over the surviving relevant set.
    #[test]
    fn remove_matches_live_filtered_fresh_build() {
        let data = DatasetSpec::new(DatasetKind::DudLike, 40, 7102).generate();
        let oracle = data.db.oracle(GedConfig::default());
        let mut index = NbIndex::build(oracle, small_config(&data));
        let relevant = data.default_query().relevant_set(&data.db);
        let victim = relevant[0];

        assert_eq!(index.remove(victim).unwrap(), MutationOutcome::Applied);
        assert!(
            matches!(index.remove(victim), Err(MutateError(_))),
            "double remove is rejected"
        );
        index.tree().validate(index.oracle()).unwrap();

        let (got, _) = index.query(relevant.clone(), data.default_theta, 4);
        assert!(!got.ids.contains(&victim));

        let reference = NbIndex::build(data.db.oracle(GedConfig::default()), small_config(&data));
        let live: Vec<GraphId> = relevant.iter().copied().filter(|&g| g != victim).collect();
        let (want, _) = reference.query(live, data.default_theta, 4);
        assert_eq!(format!("{got:?}"), format!("{want:?}"));
    }

    /// Crossing the tombstone-ratio threshold must trigger a full rebuild
    /// that compacts the tombstones and keeps answers correct.
    #[test]
    fn tombstone_ratio_triggers_rebuild() {
        let data = DatasetSpec::new(DatasetKind::DudLike, 30, 7103).generate();
        let oracle = data.db.oracle(GedConfig::default());
        let mut index = NbIndex::build(oracle, small_config(&data));
        index.set_policy(MutationPolicy {
            max_tombstone_ratio: 0.1,
            ..MutationPolicy::default()
        });
        let mut rebuilt = false;
        for id in 0..5 {
            if index.remove(id).unwrap() == MutationOutcome::Rebuilt {
                rebuilt = true;
                assert_eq!(
                    index.tree().stale(),
                    0,
                    "rebuild compacts in-range tombstones"
                );
            }
        }
        assert!(rebuilt, "removing 5/30 must cross the 0.1 ratio");
        index.tree().validate(index.oracle()).unwrap();
        assert_eq!(index.tree().live_len(), 25);

        let relevant = data.default_query().relevant_set(&data.db);
        let reference = NbIndex::build(data.db.oracle(GedConfig::default()), small_config(&data));
        let live: Vec<GraphId> = relevant.iter().copied().filter(|&g| g >= 5).collect();
        let (want, _) = reference.query(live, data.default_theta, 3);
        let (got, _) = index.query(relevant, data.default_theta, 3);
        assert_eq!(format!("{got:?}"), format!("{want:?}"));
    }

    /// A fork must be mutable without disturbing the original — the
    /// registry's copy-on-mutate contract.
    #[test]
    fn fork_isolates_mutations() {
        let data = DatasetSpec::new(DatasetKind::DudLike, 20, 7104).generate();
        let oracle = data.db.oracle(GedConfig::default());
        let index = NbIndex::build(oracle, small_config(&data));
        let mut fork = index.fork();
        fork.remove(3).unwrap();
        assert!(!fork.tree().is_live(3));
        assert!(index.tree().is_live(3), "original must be untouched");
        assert_eq!(index.epoch(), 0);
        assert_eq!(fork.epoch(), 1);

        let relevant = data.default_query().relevant_set(&data.db);
        let (a, _) = index.query(relevant.clone(), data.default_theta, 3);
        let reference = NbIndex::build(data.db.oracle(GedConfig::default()), small_config(&data));
        let (b, _) = reference.query(relevant, data.default_theta, 3);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    /// Unknown ids are rejected with the typed error, not a panic.
    #[test]
    fn remove_unknown_id_rejected() {
        let data = DatasetSpec::new(DatasetKind::DudLike, 10, 7105).generate();
        let oracle = data.db.oracle(GedConfig::default());
        let mut index = NbIndex::build(oracle, small_config(&data));
        let err = index.remove(999).unwrap_err();
        assert!(err.to_string().contains("mutation rejected"));
    }
}
