//! The NB-Index (paper Sec 6.4): vantage orderings + NB-Tree + threshold
//! ladder, unified behind one build/query interface.

use crate::answer::AnswerSet;
use crate::nbtree::{NbTree, NbTreeConfig};
use crate::pihat::ThresholdLadder;
use crate::session::{QuerySession, RunStats};
use graphrep_ged::DistanceOracle;
use graphrep_graph::GraphId;
use graphrep_metric::VantageTable;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Construction parameters for the NB-Index.
#[derive(Debug, Clone)]
pub struct NbIndexConfig {
    /// Number of vantage points `|V|` (Sec 6.2.1).
    pub num_vps: usize,
    /// NB-Tree clustering parameters.
    pub tree: NbTreeConfig,
    /// Distance thresholds indexed in π̂-vectors (Sec 7.1). May be empty, in
    /// which case every run computes fresh bounds at its exact θ.
    pub ladder: Vec<f64>,
    /// RNG seed (VP choice, pivot sampling).
    pub seed: u64,
}

impl Default for NbIndexConfig {
    fn default() -> Self {
        Self {
            num_vps: 16,
            tree: NbTreeConfig::default(),
            ladder: vec![],
            seed: 0x5eed,
        }
    }
}

/// Costs incurred while building the index (Fig 6(k)).
#[derive(Debug, Clone, Copy, Default)]
pub struct BuildStats {
    /// Wall time of the build.
    pub wall: Duration,
    /// Edit-distance engine calls during the build.
    pub distance_calls: u64,
}

/// The NB-Index over one graph database.
#[derive(Debug)]
pub struct NbIndex {
    oracle: Arc<DistanceOracle>,
    vantage: VantageTable,
    tree: NbTree,
    ladder: ThresholdLadder,
    build_stats: BuildStats,
}

impl NbIndex {
    /// Assembles an index from pre-built parts (used by persistence).
    pub(crate) fn from_parts(
        oracle: Arc<DistanceOracle>,
        vantage: VantageTable,
        tree: NbTree,
        ladder: ThresholdLadder,
        build_stats: BuildStats,
    ) -> Self {
        Self {
            oracle,
            vantage,
            tree,
            ladder,
            build_stats,
        }
    }

    /// Builds the index: vantage orderings first (they accelerate the
    /// NB-Tree's pivot assignments), then the hierarchical clustering.
    ///
    /// The `|V| × n` vantage distances — the bulk of the build's NP-hard
    /// work — are computed in parallel, one thread per available core; the
    /// oracle's cache then serves them to the table construction.
    pub fn build(oracle: Arc<DistanceOracle>, config: NbIndexConfig) -> Self {
        let t0 = Instant::now();
        let calls0 = oracle.engine_calls();
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let n = oracle.len();
        let mut vp_ids: Vec<u32> = (0..n as u32).collect();
        {
            use rand::seq::SliceRandom;
            vp_ids.shuffle(&mut rng);
        }
        vp_ids.truncate(config.num_vps.min(n));
        warm_vp_distances(&oracle, &vp_ids);
        let vantage = VantageTable::build_with_vps(n, vp_ids, &mut |a, b| oracle.distance(a, b));
        let tree = NbTree::build(&oracle, Some(&vantage), config.tree, &mut rng);
        let ladder = ThresholdLadder::new(config.ladder);
        let build_stats = BuildStats {
            wall: t0.elapsed(),
            distance_calls: oracle.engine_calls() - calls0,
        };
        Self {
            oracle,
            vantage,
            tree,
            ladder,
            build_stats,
        }
    }

    /// The underlying distance oracle.
    pub fn oracle(&self) -> &DistanceOracle {
        &self.oracle
    }

    /// The vantage orderings.
    pub fn vantage(&self) -> &VantageTable {
        &self.vantage
    }

    /// The NB-Tree.
    pub fn tree(&self) -> &NbTree {
        &self.tree
    }

    /// The indexed threshold ladder.
    pub fn ladder(&self) -> &ThresholdLadder {
        &self.ladder
    }

    /// Replaces the threshold ladder (the vantage orderings and tree are
    /// unchanged — ladder choice is an orthogonal, cheap re-indexing used by
    /// the Fig 6(a) experiment). Sessions created afterwards use the new
    /// ladder.
    pub fn set_ladder(&mut self, thetas: Vec<f64>) {
        self.ladder = ThresholdLadder::new(thetas);
    }

    /// Build-time costs.
    pub fn build_stats(&self) -> BuildStats {
        self.build_stats
    }

    /// Index memory footprint in bytes (vantage orderings + tree), Fig 6(l).
    /// Session π̂-vectors are accounted by [`QuerySession::memory_bytes`].
    pub fn memory_bytes(&self) -> usize {
        self.vantage.memory_bytes() + self.tree.memory_bytes()
    }

    /// Initialization phase for a relevance function: computes π̂-vectors
    /// once; the returned session answers any number of `(θ, k)` runs.
    pub fn start_session(&self, relevant: Vec<GraphId>) -> QuerySession<'_> {
        QuerySession::new(self, relevant)
    }

    /// One-shot top-k representative query.
    pub fn query(&self, relevant: Vec<GraphId>, theta: f64, k: usize) -> (AnswerSet, RunStats) {
        self.start_session(relevant).run(theta, k)
    }
}

/// Computes all `vp × item` distances in parallel into the oracle's cache.
/// Work is sliced round-robin over the item axis so threads stay balanced
/// even when one VP's distances are much harder than another's.
fn warm_vp_distances(oracle: &Arc<DistanceOracle>, vp_ids: &[u32]) {
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(vp_ids.len().max(1) * 2);
    if threads <= 1 || oracle.len() < 64 {
        return; // the sequential build will compute them on demand
    }
    crossbeam::thread::scope(|s| {
        for t in 0..threads {
            let oracle = Arc::clone(oracle);
            let vp_ids = vp_ids.to_vec();
            s.spawn(move |_| {
                let n = oracle.len() as u32;
                for &v in &vp_ids {
                    let mut i = t as u32;
                    while i < n {
                        let _ = oracle.distance(v, i);
                        i += threads as u32;
                    }
                }
            });
        }
    })
    .expect("vantage warm-up threads");
}
