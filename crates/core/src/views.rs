//! Materialized θ-neighborhood views and the cross-session answer cache
//! (DESIGN.md §11).
//!
//! Production query traffic is heavily skewed: the same `(θ, k,
//! query-family)` arrives over and over, yet every run re-verifies the same
//! θ-neighborhoods — exactly the `N_θ` sets Alg 1's greedy consumes. The two
//! stores here turn that repeat traffic into lookups:
//!
//! * [`ViewStore`] — records *verified* θ-neighborhoods (graph id → member
//!   set + known exact distances), keyed by `(dataset epoch, exact θ bits,
//!   query fingerprint, graph id)`. Entries are materialized on miss, but
//!   only once a `(θ-band, fingerprint)` pair has been queried often enough
//!   (a frequency promotion policy mined from the per-run
//!   [`ViewStore::note_query`] stream), so one-shot queries never pollute
//!   the store.
//! * [`AnswerCache`] — memoizes whole [`crate::QuerySession::run`] results,
//!   keyed by `(epoch, θ bits, k, fingerprint)`.
//!
//! ## Soundness
//!
//! Both stores key on the index **mutation epoch**: a mutation forks the
//! index and bumps the epoch, so entries written against the old snapshot
//! can never answer a query against the new one — even *without* any
//! invalidation. [`ViewStore::invalidate_all`] / [`AnswerCache::invalidate_all`]
//! exist to reclaim memory wholesale when the serving layer swaps indexes;
//! sessions pinned to the pre-mutation snapshot simply miss afterwards and
//! recompute from their pinned index, byte-identically.
//!
//! Member sets are keyed by the *exact* `θ.to_bits()`, never a band:
//! θ-membership is an exact predicate, and upper-bound-certified accepts
//! carry no exact distance, so a neighborhood verified at θ cannot be
//! re-filtered for a nearby θ′. The coarser
//! [`graphrep_metric::theta_band`] quantization is used only by the
//! promotion policy, where pooling nearby thresholds is harmless — it
//! decides *whether* to materialize, never *what* is served.
//!
//! ## Conservation
//!
//! Every counter lives under the store's mutex, so the identities are exact
//! even under thread races: `lookups == hits + misses`, `evictions ≤
//! insertions`, and all counters are monotone (invalidation drops entries,
//! never history).

use crate::answer::AnswerSet;
use graphrep_graph::GraphId;
use graphrep_lockaudit::TrackedMutex;
use graphrep_metric::theta_band;
use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration shared by both cache tiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Maximum resident entries per store; 0 disables the store entirely
    /// (every lookup misses, nothing is ever inserted).
    pub capacity: usize,
    /// Optional time-to-live: entries older than this answer as misses and
    /// are dropped. `None` (the default) keeps entries until evicted or
    /// invalidated — the deterministic choice the differential tests use.
    pub ttl: Option<Duration>,
    /// Frequency-promotion threshold for the view store: a `(θ-band,
    /// fingerprint)` pair must have been queried at least this many times
    /// (see [`ViewStore::note_query`]) before its neighborhoods are
    /// materialized. 0 and 1 both mean "materialize from the first query".
    pub promote_after: u64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            capacity: 1024,
            ttl: None,
            promote_after: 2,
        }
    }
}

/// Monotone counters of one cache tier, snapshotted atomically (they are
/// read under the same mutex that updates them, so the conservation
/// identity `lookups == hits + misses` holds exactly in every snapshot).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookup requests served (hit or miss).
    pub lookups: u64,
    /// Lookups answered from the store.
    pub hits: u64,
    /// Lookups that found nothing usable.
    pub misses: u64,
    /// Entries written (including replacements of an existing key).
    pub insertions: u64,
    /// Entries dropped by capacity pressure, TTL expiry, or replacement.
    pub evictions: u64,
    /// Entries dropped wholesale by [`ViewStore::invalidate_all`] /
    /// [`AnswerCache::invalidate_all`].
    pub invalidated: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Approximate resident bytes of the stored values.
    pub memory_bytes: usize,
}

impl CacheCounters {
    /// Hit rate over all lookups so far, in `[0, 1]` (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }

    /// Asserts the conservation identities (always-on in tests; under
    /// `invariant-audit` they are also audited inside every snapshot).
    fn conserve(&self) {
        debug_assert_eq!(self.lookups, self.hits + self.misses);
        debug_assert!(self.evictions <= self.insertions);
        #[cfg(feature = "invariant-audit")]
        {
            graphrep_ged::audit_invariant!(
                self.lookups == self.hits + self.misses,
                "cache conservation: {} lookups != {} hits + {} misses",
                self.lookups,
                self.hits,
                self.misses
            );
            graphrep_ged::audit_invariant!(
                self.evictions <= self.insertions,
                "cache conservation: {} evictions > {} insertions",
                self.evictions,
                self.insertions
            );
        }
    }
}

/// One resident entry of the generic LRU below.
struct Slot<V> {
    value: V,
    /// Recency stamp; also the key into the recency index.
    stamp: u64,
    /// Insertion time, for TTL expiry.
    inserted: Instant,
    /// Approximate bytes attributed to this entry.
    bytes: usize,
}

/// A deterministic LRU map: `HashMap` for residency plus a
/// `BTreeMap<stamp, key>` recency index (O(log n) touch/evict), with the
/// counters kept inside the same structure so one mutex makes every
/// conservation identity exact.
struct Lru<K, V> {
    entries: HashMap<K, Slot<V>>,
    recency: BTreeMap<u64, K>,
    next_stamp: u64,
    bytes: usize,
    lookups: u64,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
    invalidated: u64,
}

impl<K: Eq + Hash + Clone, V: Clone> Lru<K, V> {
    fn new() -> Self {
        Self {
            entries: HashMap::new(),
            recency: BTreeMap::new(),
            next_stamp: 0,
            bytes: 0,
            lookups: 0,
            hits: 0,
            misses: 0,
            insertions: 0,
            evictions: 0,
            invalidated: 0,
        }
    }

    fn stamp(&mut self) -> u64 {
        let s = self.next_stamp;
        self.next_stamp += 1;
        s
    }

    /// Looks `key` up, refreshing its recency. A TTL-expired entry is
    /// dropped (counted as an eviction) and reported as a miss.
    fn get(&mut self, key: &K, ttl: Option<Duration>) -> Option<V> {
        self.lookups += 1;
        let expired = match (self.entries.get(key), ttl) {
            (Some(slot), Some(ttl)) => slot.inserted.elapsed() >= ttl,
            _ => false,
        };
        if expired {
            if let Some(slot) = self.entries.remove(key) {
                self.recency.remove(&slot.stamp);
                self.bytes -= slot.bytes;
                self.evictions += 1;
            }
            self.misses += 1;
            return None;
        }
        let next = self.stamp();
        match self.entries.get_mut(key) {
            Some(slot) => {
                self.recency.remove(&slot.stamp);
                slot.stamp = next;
                self.recency.insert(next, key.clone());
                self.hits += 1;
                Some(slot.value.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts (or replaces) `key`, then evicts least-recently-used entries
    /// until residency fits `capacity`. A replacement counts as one
    /// insertion plus one eviction, keeping `evictions ≤ insertions` exact.
    fn insert(&mut self, key: K, value: V, bytes: usize, capacity: usize) {
        if capacity == 0 {
            return;
        }
        if let Some(old) = self.entries.remove(&key) {
            self.recency.remove(&old.stamp);
            self.bytes -= old.bytes;
            self.evictions += 1;
        }
        let stamp = self.stamp();
        self.entries.insert(
            key.clone(),
            Slot {
                value,
                stamp,
                inserted: Instant::now(),
                bytes,
            },
        );
        self.recency.insert(stamp, key);
        self.bytes += bytes;
        self.insertions += 1;
        while self.entries.len() > capacity {
            let Some((&stamp, _)) = self.recency.iter().next() else {
                break;
            };
            let Some(victim) = self.recency.remove(&stamp) else {
                break;
            };
            if let Some(slot) = self.entries.remove(&victim) {
                self.bytes -= slot.bytes;
            }
            self.evictions += 1;
        }
    }

    /// Drops every entry, counting them as invalidated. Returns how many.
    fn invalidate_all(&mut self) -> u64 {
        let dropped = self.entries.len() as u64;
        self.entries.clear();
        self.recency.clear();
        self.bytes = 0;
        self.invalidated += dropped;
        dropped
    }

    fn counters(&self) -> CacheCounters {
        let c = CacheCounters {
            lookups: self.lookups,
            hits: self.hits,
            misses: self.misses,
            insertions: self.insertions,
            evictions: self.evictions,
            invalidated: self.invalidated,
            entries: self.entries.len(),
            memory_bytes: self.bytes,
        };
        c.conserve();
        c
    }
}

/// Mixes one value into a SplitMix64 fold (same finalizer constants the
/// serve-layer load harness uses).
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Canonical fingerprint of a relevance query: a SplitMix64 fold over the
/// **sorted** relevant ids, so two sessions over the same relevant *set*
/// share cache entries regardless of the order the ids arrived in (answers
/// are set-determined: ties break by graph id on every search path).
pub fn query_fingerprint(relevant: &[GraphId]) -> u64 {
    let mut ids: Vec<GraphId> = relevant.to_vec();
    ids.sort_unstable();
    ids.dedup();
    let mut h = mix(ids.len() as u64 ^ 0x5143_4F56_4945_5753); // "SCOVIEWS"
    for id in ids {
        h = mix(h ^ u64::from(id));
    }
    h
}

/// Scope of a view-store entry: which index snapshot and which relevance
/// query the neighborhoods were verified against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ViewScope {
    /// Mutation epoch of the index snapshot (see
    /// [`crate::NbIndex::epoch`]) — the invalidation key.
    pub epoch: u64,
    /// [`query_fingerprint`] of the relevant set.
    pub fingerprint: u64,
}

/// Key of one materialized neighborhood: scope + exact θ + the graph whose
/// neighborhood it is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ViewKey {
    epoch: u64,
    theta_bits: u64,
    fingerprint: u64,
    graph: GraphId,
}

/// One materialized θ-neighborhood: the verified member ids plus whatever
/// exact distances the verifying oracle had on hand (upper-bound-certified
/// accepts carry `None` — no engine call ever produced their distance).
#[derive(Debug, Clone, PartialEq)]
pub struct MaterializedView {
    /// Verified members of `N_θ(g)` restricted to the relevant set.
    pub members: Arc<Vec<GraphId>>,
    /// `distances[i]` is the exact distance to `members[i]` when known.
    pub distances: Arc<Vec<Option<f64>>>,
}

impl MaterializedView {
    fn bytes(&self) -> usize {
        std::mem::size_of::<ViewKey>()
            + std::mem::size_of::<Self>()
            + self.members.len() * std::mem::size_of::<GraphId>()
            + self.distances.len() * std::mem::size_of::<Option<f64>>()
    }
}

struct ViewInner {
    lru: Lru<ViewKey, MaterializedView>,
    /// Query arrivals per `(θ-band, fingerprint)` — the promotion signal.
    freq: HashMap<(u32, u64), u64>,
}

/// The materialized view store: a concurrent, frequency-promoted LRU of
/// verified θ-neighborhoods. See the module docs for keying and soundness.
pub struct ViewStore {
    config: CacheConfig,
    inner: TrackedMutex<ViewInner>,
}

impl std::fmt::Debug for ViewStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ViewStore")
            .field("config", &self.config)
            .field("counters", &self.counters())
            .finish()
    }
}

impl ViewStore {
    /// An empty store with the given configuration.
    pub fn new(config: CacheConfig) -> Self {
        Self {
            config,
            inner: TrackedMutex::new(
                "core.views.ViewStore.inner",
                ViewInner {
                    lru: Lru::new(),
                    freq: HashMap::new(),
                },
            ),
        }
    }

    /// The store's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Registers one query arrival for `(θ, scope)` — called once per
    /// session run, *not* per neighborhood. The promotion policy counts
    /// these arrivals pooled by [`theta_band`]: materialization starts only
    /// once a band has proven hot, so a one-shot query costs no memory.
    pub fn note_query(&self, scope: ViewScope, theta: f64) {
        let mut inner = self.inner.lock();
        *inner
            .freq
            .entry((theta_band(theta), scope.fingerprint))
            .or_insert(0) += 1;
    }

    /// Whether the promotion policy currently allows materializing for
    /// `(θ, scope)`.
    fn promoted(inner: &ViewInner, cfg: &CacheConfig, scope: ViewScope, theta: f64) -> bool {
        let seen = inner
            .freq
            .get(&(theta_band(theta), scope.fingerprint))
            .copied()
            .unwrap_or(0);
        seen >= cfg.promote_after.max(1)
    }

    /// Looks up the materialized neighborhood of `graph` at exactly `θ`
    /// under `scope`. Counts one lookup (hit or miss).
    pub fn lookup(&self, scope: ViewScope, theta: f64, graph: GraphId) -> Option<MaterializedView> {
        let key = ViewKey {
            epoch: scope.epoch,
            theta_bits: theta.to_bits(),
            fingerprint: scope.fingerprint,
            graph,
        };
        self.inner.lock().lru.get(&key, self.config.ttl)
    }

    /// Offers a freshly verified neighborhood for materialization; it is
    /// stored only when the promotion policy has seen enough arrivals for
    /// this `(θ-band, fingerprint)`. Returns whether it was stored.
    pub fn record(
        &self,
        scope: ViewScope,
        theta: f64,
        graph: GraphId,
        members: &[GraphId],
        distances: &[Option<f64>],
    ) -> bool {
        debug_assert_eq!(members.len(), distances.len());
        let mut inner = self.inner.lock();
        if !Self::promoted(&inner, &self.config, scope, theta) {
            return false;
        }
        let key = ViewKey {
            epoch: scope.epoch,
            theta_bits: theta.to_bits(),
            fingerprint: scope.fingerprint,
            graph,
        };
        let view = MaterializedView {
            members: Arc::new(members.to_vec()),
            distances: Arc::new(distances.to_vec()),
        };
        let bytes = view.bytes();
        inner.lru.insert(key, view, bytes, self.config.capacity);
        true
    }

    /// Drops every materialized view (the wholesale epoch-bump
    /// invalidation); counters and promotion frequencies are kept — history
    /// is monotone, and a hot query family stays hot across epochs. Returns
    /// how many entries were dropped.
    pub fn invalidate_all(&self) -> u64 {
        self.inner.lock().lru.invalidate_all()
    }

    /// Atomic counter snapshot (conservation holds exactly; see
    /// [`CacheCounters`]).
    pub fn counters(&self) -> CacheCounters {
        self.inner.lock().lru.counters()
    }

    /// Approximate resident bytes of the materialized views.
    pub fn memory_bytes(&self) -> usize {
        self.inner.lock().lru.bytes
    }
}

/// Key of one memoized answer: snapshot epoch, exact `(θ, k)`, and the
/// query fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AnswerKey {
    /// Mutation epoch of the index snapshot the answer was computed on.
    pub epoch: u64,
    /// `θ.to_bits()` of the run.
    pub theta_bits: u64,
    /// Answer-set budget `k`.
    pub k: usize,
    /// [`query_fingerprint`] of the relevant set.
    pub fingerprint: u64,
}

/// The cross-session answer cache: memoizes whole
/// [`crate::QuerySession::run`] results. Epoch keying makes a stale serve
/// impossible (see module docs); [`AnswerCache::invalidate_all`] reclaims
/// the memory wholesale when the serving layer swaps in a mutated index.
pub struct AnswerCache {
    config: CacheConfig,
    inner: TrackedMutex<Lru<AnswerKey, Arc<AnswerSet>>>,
}

impl std::fmt::Debug for AnswerCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnswerCache")
            .field("config", &self.config)
            .field("counters", &self.counters())
            .finish()
    }
}

fn answer_bytes(a: &AnswerSet) -> usize {
    std::mem::size_of::<AnswerKey>()
        + std::mem::size_of::<AnswerSet>()
        + a.ids.len() * std::mem::size_of::<GraphId>()
        + a.pi_trajectory.len() * std::mem::size_of::<f64>()
}

impl AnswerCache {
    /// An empty cache with the given configuration (`promote_after` is
    /// ignored — answers are always worth one slot).
    pub fn new(config: CacheConfig) -> Self {
        Self {
            config,
            inner: TrackedMutex::new("core.views.AnswerCache.inner", Lru::new()),
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Looks a memoized answer up. Counts one lookup (hit or miss).
    pub fn get(&self, key: &AnswerKey) -> Option<Arc<AnswerSet>> {
        self.inner.lock().get(key, self.config.ttl)
    }

    /// Memoizes an answer under `key`.
    pub fn insert(&self, key: AnswerKey, answer: Arc<AnswerSet>) {
        let bytes = answer_bytes(&answer);
        self.inner
            .lock()
            .insert(key, answer, bytes, self.config.capacity);
    }

    /// Drops every memoized answer (counters are kept — history is
    /// monotone). Returns how many entries were dropped.
    pub fn invalidate_all(&self) -> u64 {
        self.inner.lock().invalidate_all()
    }

    /// Atomic counter snapshot (conservation holds exactly).
    pub fn counters(&self) -> CacheCounters {
        self.inner.lock().counters()
    }

    /// Approximate resident bytes of the memoized answers.
    pub fn memory_bytes(&self) -> usize {
        self.inner.lock().bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scope(epoch: u64) -> ViewScope {
        ViewScope {
            epoch,
            fingerprint: query_fingerprint(&[1, 2, 3]),
        }
    }

    fn eager() -> CacheConfig {
        CacheConfig {
            promote_after: 1,
            ..CacheConfig::default()
        }
    }

    #[test]
    fn fingerprint_is_order_insensitive_and_set_sensitive() {
        assert_eq!(query_fingerprint(&[3, 1, 2]), query_fingerprint(&[1, 2, 3]));
        assert_ne!(query_fingerprint(&[1, 2]), query_fingerprint(&[1, 2, 3]));
        assert_ne!(query_fingerprint(&[]), query_fingerprint(&[0]));
    }

    #[test]
    fn view_store_round_trip_and_conservation() {
        let s = ViewStore::new(eager());
        let sc = scope(0);
        s.note_query(sc, 2.0);
        assert!(s.lookup(sc, 2.0, 7).is_none());
        assert!(s.record(sc, 2.0, 7, &[1, 3], &[Some(0.5), None]));
        let v = s.lookup(sc, 2.0, 7).expect("recorded view must hit");
        assert_eq!(*v.members, vec![1, 3]);
        assert_eq!(*v.distances, vec![Some(0.5), None]);
        // Exact-θ keying: a different θ in the same band misses.
        assert!(s.lookup(sc, 2.0 + 1e-9, 7).is_none());
        // Epoch keying: a different epoch misses.
        assert!(s.lookup(scope(1), 2.0, 7).is_none());
        let c = s.counters();
        assert_eq!(c.lookups, c.hits + c.misses);
        assert_eq!((c.lookups, c.hits), (4, 1));
        assert!(c.memory_bytes > 0);
    }

    #[test]
    fn promotion_policy_gates_materialization() {
        let cfg = CacheConfig {
            promote_after: 2,
            ..CacheConfig::default()
        };
        let s = ViewStore::new(cfg);
        let sc = scope(0);
        s.note_query(sc, 2.0);
        assert!(
            !s.record(sc, 2.0, 7, &[1], &[None]),
            "first arrival is cold"
        );
        assert!(s.lookup(sc, 2.0, 7).is_none());
        s.note_query(sc, 2.0);
        assert!(s.record(sc, 2.0, 7, &[1], &[None]), "second arrival is hot");
        assert!(s.lookup(sc, 2.0, 7).is_some());
        // Band pooling: a nearby θ in the same f32 band shares the heat.
        assert!(s.record(sc, 2.0, 9, &[2], &[None]));
    }

    #[test]
    fn lru_evicts_least_recent_and_counts() {
        let s = ViewStore::new(CacheConfig {
            capacity: 2,
            promote_after: 1,
            ..CacheConfig::default()
        });
        let sc = scope(0);
        s.note_query(sc, 1.0);
        for g in 0..2u32 {
            assert!(s.record(sc, 1.0, g, &[g], &[None]));
        }
        // Touch graph 0 so graph 1 is the LRU victim.
        assert!(s.lookup(sc, 1.0, 0).is_some());
        assert!(s.record(sc, 1.0, 2, &[2], &[None]));
        assert!(s.lookup(sc, 1.0, 0).is_some());
        assert!(s.lookup(sc, 1.0, 1).is_none(), "LRU victim must be gone");
        assert!(s.lookup(sc, 1.0, 2).is_some());
        let c = s.counters();
        assert_eq!(c.entries, 2);
        assert_eq!(c.insertions, 3);
        assert_eq!(c.evictions, 1);
        assert_eq!(c.lookups, c.hits + c.misses);
    }

    #[test]
    fn zero_capacity_disables_the_store() {
        let s = ViewStore::new(CacheConfig {
            capacity: 0,
            promote_after: 1,
            ..CacheConfig::default()
        });
        let sc = scope(0);
        s.note_query(sc, 1.0);
        assert!(s.record(sc, 1.0, 0, &[0], &[None]));
        assert!(s.lookup(sc, 1.0, 0).is_none());
        assert_eq!(s.counters().entries, 0);
        assert_eq!(s.memory_bytes(), 0);
    }

    #[test]
    fn ttl_expiry_counts_as_eviction_then_miss() {
        let s = AnswerCache::new(CacheConfig {
            ttl: Some(Duration::ZERO),
            ..CacheConfig::default()
        });
        let key = AnswerKey {
            epoch: 0,
            theta_bits: 1.0f64.to_bits(),
            k: 3,
            fingerprint: 9,
        };
        s.insert(key, Arc::new(AnswerSet::default()));
        assert!(s.get(&key).is_none(), "zero TTL must expire immediately");
        let c = s.counters();
        assert_eq!((c.evictions, c.misses, c.hits), (1, 1, 0));
        assert_eq!(c.entries, 0);
    }

    #[test]
    fn invalidate_all_drops_entries_keeps_history() {
        let s = AnswerCache::new(CacheConfig::default());
        for k in 0..5usize {
            s.insert(
                AnswerKey {
                    epoch: 0,
                    theta_bits: 0,
                    k,
                    fingerprint: 1,
                },
                Arc::new(AnswerSet::default()),
            );
        }
        let before = s.counters();
        assert_eq!(s.invalidate_all(), 5);
        let after = s.counters();
        assert_eq!(after.entries, 0);
        assert_eq!(after.memory_bytes, 0);
        assert_eq!(after.invalidated, 5);
        assert_eq!(after.insertions, before.insertions, "history is monotone");
        assert_eq!(s.invalidate_all(), 0, "second invalidate finds nothing");
    }

    #[test]
    fn answer_cache_round_trip() {
        let s = AnswerCache::new(CacheConfig::default());
        let key = AnswerKey {
            epoch: 3,
            theta_bits: 2.0f64.to_bits(),
            k: 4,
            fingerprint: 11,
        };
        let ans = Arc::new(AnswerSet {
            ids: vec![5, 9],
            covered: 7,
            relevant: 9,
            pi_trajectory: vec![0.5, 0.77],
        });
        assert!(s.get(&key).is_none());
        s.insert(key, Arc::clone(&ans));
        let got = s.get(&key).expect("inserted answer must hit");
        assert_eq!(format!("{got:?}"), format!("{ans:?}"));
        // A different epoch, θ, k, or fingerprint all miss.
        assert!(s.get(&AnswerKey { epoch: 4, ..key }).is_none());
        assert!(s.get(&AnswerKey { k: 5, ..key }).is_none());
        let c = s.counters();
        assert_eq!(c.lookups, c.hits + c.misses);
        assert!(c.memory_bytes > 0);
    }
}
