//! The succinct binary index format (`index.bin`) — the cold-start path.
//!
//! Layout (DESIGN.md §13): a 28-byte little-endian header
//!
//! ```text
//! magic "GRNBIDX1" (8) | version u32 (4) | payload_len u64 (8) | word-wise FNV-1a checksum u64 (8)
//! ```
//!
//! followed by a checksummed payload holding exactly the state the JSON
//! format persists, re-encoded for size and decode speed:
//!
//! * vantage coordinates as per-VP *columns*, each either raw f32 bit
//!   patterns or a dictionary of distinct bit patterns plus bit-packed
//!   indices (GED columns hold few distinct values, so the dictionary form
//!   usually packs a coordinate into well under a byte);
//! * NB-Tree nodes with varint fields, `(start, len)` ranges, and
//!   delta-encoded child lists; tombstone flags as a bitset;
//! * the threshold ladder as a packed `u16` count plus tagged-width floats.
//!
//! Everything decodes by slice reads (`chunks_exact` + `from_le_bytes`) into
//! the same in-memory structures the JSON path produces — coordinates and
//! thresholds round-trip bit-exactly (no lossy quantization anywhere), so a
//! binary-loaded index answers byte-identically to a JSON-loaded or freshly
//! built one. Vantage sort orders are *not* stored: they are the stable
//! argsort of the columns by construction (see `graphrep_metric::vantage`)
//! and are rederived on load.
//!
//! Corruption surfaces as typed [`PersistError`]s: bad or byte-swapped magic,
//! short files, checksum mismatches, and shape violations in an intact
//! payload each get their own variant, so every load site can fall back to a
//! rebuild with provenance.

use crate::nbtree::{NbTree, TreeNode};
use crate::persist::{PersistError, VERSION};
use crate::pihat::ThresholdLadder;
use graphrep_metric::VantageTable;

/// File magic: format name + major layout revision, byte-order sensitive on
/// purpose — a big-endian writer would produce these bytes reversed, which
/// the decoder reports as [`PersistError::Magic`].
pub(crate) const MAGIC: [u8; 8] = *b"GRNBIDX1";

/// Header length in bytes (magic + version + payload length + checksum).
pub(crate) const HEADER_LEN: usize = 28;

/// Word-wise FNV-1a variant over `bytes`: the FNV-1a xor/multiply round
/// applied to 8-byte little-endian words, with the sub-8-byte tail
/// zero-padded and a final round folding in the length (so payloads that
/// differ only in trailing zero bytes hash differently). Byte-serial FNV
/// costs ~1.4 ns/byte — a measurable slice of cold start on a
/// multi-kilobyte payload — while the word-wise round keeps the same
/// single-bit-flip avalanche at an eighth of the dependency chain. Tiny,
/// dependency-free, and plenty for detecting torn writes and bit rot (this
/// is an integrity check, not an authenticity one).
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut chunks = bytes.chunks_exact(8);
    for c in chunks.by_ref() {
        h ^= u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]);
        h = h.wrapping_mul(PRIME);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        h ^= u64::from_le_bytes(tail);
        h = h.wrapping_mul(PRIME);
    }
    h ^= bytes.len() as u64;
    h.wrapping_mul(PRIME)
}

/// The parts [`decode_index`] reassembles; mirrors `PersistedIndex`.
pub(crate) struct DecodedIndex {
    pub graphs: usize,
    pub epoch: u64,
    pub vantage: VantageTable,
    pub tree: NbTree,
    pub ladder: ThresholdLadder,
}

/// Serializes the persisted state to a complete `index.bin` image
/// (header + payload).
pub(crate) fn encode_index(
    epoch: u64,
    vantage: &VantageTable,
    tree: &NbTree,
    ladder: &ThresholdLadder,
) -> Vec<u8> {
    let mut w = Writer::default();
    let graphs = tree.len();
    w.varint(graphs as u64);
    w.varint(epoch);

    // Vantage table: vp ids, then one encoded coordinate column per VP.
    w.varint(vantage.num_vps() as u64);
    for &id in vantage.vp_ids() {
        w.bytes(&id.to_le_bytes());
    }
    for v in 0..vantage.num_vps() {
        encode_f32_column(&mut w, &vantage.column(v));
    }

    // NB-Tree: nodes (varint fields, (start, len) ranges, delta-coded child
    // lists), leaf order, tombstone bitset, per-node live counts.
    w.varint(tree.branching() as u64);
    w.varint(tree.nodes().len() as u64);
    for node in tree.nodes() {
        w.varint(u64::from(node.centroid));
        w.f64enc(node.radius);
        w.f64enc(node.diameter);
        w.varint(u64::from(node.start));
        w.varint(u64::from(node.end - node.start));
        w.varint(node.children.len() as u64);
        let mut prev = 0i64;
        for &c in &node.children {
            w.zigzag(i64::from(c) - prev);
            prev = i64::from(c);
        }
    }
    for &g in tree.leaf_order() {
        w.varint(u64::from(g));
    }
    let dead: Vec<bool> = tree
        .leaf_order()
        .iter()
        .map(|&g| !tree.is_live(g))
        .collect();
    w.bitset(&dead);
    for idx in 0..tree.nodes().len() as u32 {
        w.varint(u64::from(tree.node_live(idx)));
    }

    // Threshold ladder: packed u16 rung count + tagged-width thetas.
    let rungs = u16::try_from(ladder.thetas().len()).unwrap_or(u16::MAX);
    w.bytes(&rungs.to_le_bytes());
    for &t in ladder.thetas().iter().take(usize::from(rungs)) {
        w.f64enc(t);
    }

    let payload = w.buf;
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Parses a complete `index.bin` image, verifying magic, version, length,
/// and checksum before touching the payload.
pub(crate) fn decode_index(bytes: &[u8]) -> Result<DecodedIndex, PersistError> {
    if bytes.len() < HEADER_LEN {
        // Too short to even carry a header; classify by what prefix is there.
        if bytes.len() >= 8 && bytes[..8] != MAGIC {
            return Err(magic_error(&bytes[..8]));
        }
        return Err(PersistError::Truncated {
            expected: HEADER_LEN,
            got: bytes.len(),
        });
    }
    if bytes[..8] != MAGIC {
        return Err(magic_error(&bytes[..8]));
    }
    let version = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    if version != VERSION {
        return Err(PersistError::Version(version));
    }
    let mut len8 = [0u8; 8];
    len8.copy_from_slice(&bytes[12..20]);
    let payload_len = u64::from_le_bytes(len8) as usize;
    let mut sum8 = [0u8; 8];
    sum8.copy_from_slice(&bytes[20..28]);
    let expected_sum = u64::from_le_bytes(sum8);
    let total = HEADER_LEN
        .checked_add(payload_len)
        .ok_or(PersistError::Truncated {
            expected: usize::MAX,
            got: bytes.len(),
        })?;
    if bytes.len() < total {
        return Err(PersistError::Truncated {
            expected: total,
            got: bytes.len(),
        });
    }
    let payload = &bytes[HEADER_LEN..total];
    let got_sum = fnv1a64(payload);
    if got_sum != expected_sum {
        return Err(PersistError::Checksum {
            expected: expected_sum,
            got: got_sum,
        });
    }
    decode_payload(payload).map_err(PersistError::Corrupt)
}

fn magic_error(prefix: &[u8]) -> PersistError {
    let mut got = [0u8; 8];
    got[..prefix.len()].copy_from_slice(prefix);
    PersistError::Magic { got }
}

fn decode_payload(payload: &[u8]) -> Result<DecodedIndex, String> {
    let mut r = Reader {
        buf: payload,
        pos: 0,
    };
    let graphs = r.varint()? as usize;
    let epoch = r.varint()?;

    let num_vps = r.varint()? as usize;
    let mut vp_ids = Vec::with_capacity(num_vps);
    for chunk in r
        .take(num_vps.checked_mul(4).ok_or("vp count overflows")?)?
        .chunks_exact(4)
    {
        vp_ids.push(u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]));
    }
    // The table's SoA slabs are filled directly as each column decodes —
    // the row-major transpose, the sorted coordinate array, and the stable
    // argsort all come out of the same pass, with no intermediate
    // per-column buffers. Every order is self-derived (counting sort or
    // comparison sort over the decoded values), never read from the file,
    // so the raw SoA constructor is safe: it only re-checks shapes.
    let mut rows = vec![
        0.0f32;
        graphs
            .checked_mul(num_vps)
            .ok_or("vantage size overflows")?
    ];
    let mut sorted = Vec::with_capacity(num_vps);
    let mut orders = Vec::with_capacity(num_vps);
    for v in 0..num_vps {
        let (sorted_v, order) = decode_f32_column(&mut r, graphs, num_vps, v, &mut rows)?;
        sorted.push(sorted_v);
        orders.push(order);
    }
    let vantage = VantageTable::from_raw_soa(graphs, vp_ids, rows, sorted, orders)?;

    let branching = r.varint()? as usize;
    let node_count = r.varint()? as usize;
    let mut nodes = Vec::with_capacity(node_count);
    for i in 0..node_count {
        let centroid = narrow_u32(r.varint()?, "centroid")?;
        let radius = r.f64enc()?;
        let diameter = r.f64enc()?;
        let start = narrow_u32(r.varint()?, "node start")?;
        let len = narrow_u32(r.varint()?, "node length")?;
        let end = start
            .checked_add(len)
            .ok_or_else(|| format!("node {i} range overflows"))?;
        let n_children = r.varint()? as usize;
        let mut children = Vec::with_capacity(n_children);
        let mut prev = 0i64;
        for _ in 0..n_children {
            let c = prev + r.zigzag()?;
            children
                .push(u32::try_from(c).map_err(|_| format!("node {i} child index {c} negative"))?);
            prev = c;
        }
        nodes.push(TreeNode {
            centroid,
            radius,
            diameter,
            children,
            start,
            end,
        });
    }
    let mut leaf_order = Vec::with_capacity(graphs);
    for _ in 0..graphs {
        leaf_order.push(narrow_u32(r.varint()?, "leaf id")?);
    }
    let dead_by_pos = r.bitset(graphs)?;
    let mut node_live = Vec::with_capacity(node_count);
    for _ in 0..node_count {
        node_live.push(narrow_u32(r.varint()?, "live count")?);
    }
    let tree = NbTree::from_raw_parts(nodes, leaf_order, branching, dead_by_pos, node_live)?;

    let rung_bytes = r.take(2)?;
    let rungs = u16::from_le_bytes([rung_bytes[0], rung_bytes[1]]);
    let mut thetas = Vec::with_capacity(usize::from(rungs));
    for _ in 0..rungs {
        thetas.push(r.f64enc()?);
    }
    // `ThresholdLadder::new` sorts/dedups — a no-op on the canonical rung
    // list the encoder wrote, so the ladder round-trips bit-exactly.
    let ladder = ThresholdLadder::new(thetas);

    if r.pos != payload.len() {
        return Err(format!(
            "{} trailing payload byte(s) after a complete index",
            payload.len() - r.pos
        ));
    }
    Ok(DecodedIndex {
        graphs,
        epoch,
        vantage,
        tree,
        ladder,
    })
}

fn narrow_u32(v: u64, what: &str) -> Result<u32, String> {
    u32::try_from(v).map_err(|_| format!("{what} {v} exceeds u32"))
}

// ---------------------------------------------------------------------------
// Column codec: raw f32 bits, or dictionary + bit-packed indices.
// ---------------------------------------------------------------------------

/// Mode tag: `graphs` f32 bit patterns, 4 bytes each.
const COL_RAW: u8 = 0;
/// Mode tag: dictionary of distinct bit patterns + fixed-width packed indices.
const COL_DICT: u8 = 1;

fn encode_f32_column(w: &mut Writer, col: &[f32]) {
    let mut dict: Vec<u32> = col.iter().map(|f| f.to_bits()).collect();
    dict.sort_unstable();
    dict.dedup();
    let width = index_width(dict.len());
    let dict_cost =
        varint_len(dict.len() as u64) + 4 * dict.len() + 1 + packed_len(col.len(), width);
    if dict.len() <= usize::from(u16::MAX) + 1 && dict_cost < 4 * col.len() {
        w.byte(COL_DICT);
        w.varint(dict.len() as u64);
        for &bits in &dict {
            w.bytes(&bits.to_le_bytes());
        }
        w.byte(width);
        let indices: Vec<u32> = col
            .iter()
            .map(|f| {
                // Present by construction; `partition_point` keeps this
                // panic-free for the linter even though a miss cannot happen.
                let bits = f.to_bits();
                dict.partition_point(|&d| d < bits) as u32
            })
            .collect();
        w.packed(&indices, width);
    } else {
        w.byte(COL_RAW);
        for f in col {
            w.bytes(&f.to_bits().to_le_bytes());
        }
    }
}

/// Decodes one coordinate column straight into the table's SoA slabs:
/// values land in `rows` (the row-major transpose, at stride `num_vps`,
/// offset `v`), and the sorted coordinate array plus the stable argsort are
/// returned. For dictionary-mode columns over non-negative values both are
/// derived in O(n): the dictionary is sorted by f32 bit pattern, which for
/// sign-bit-clear floats is exactly the `total_cmp` order, so a counting
/// sort over dictionary indices reproduces the tie-stable sort the table's
/// invariant demands, and the sorted array is just the dictionary expanded
/// by occurrence counts — no comparison sort, no intermediate column
/// buffer. Raw-mode columns (and the never-in-practice negative-value
/// dictionaries, where the bits-order equivalence breaks) pay a comparison
/// sort instead.
fn decode_f32_column(
    r: &mut Reader<'_>,
    n: usize,
    num_vps: usize,
    v: usize,
    rows: &mut [f32],
) -> Result<(Vec<f32>, Vec<u32>), String> {
    match r.byte()? {
        COL_RAW => {
            let raw = r.take(n.checked_mul(4).ok_or("column size overflows")?)?;
            let col: Vec<f32> = raw
                .chunks_exact(4)
                .map(|c| f32::from_bits(u32::from_le_bytes([c[0], c[1], c[2], c[3]])))
                .collect();
            for (i, &x) in col.iter().enumerate() {
                rows[i * num_vps + v] = x;
            }
            Ok(sorted_by_comparison(&col))
        }
        COL_DICT => {
            let dict_len = r.varint()? as usize;
            if dict_len > usize::from(u16::MAX) + 1 {
                return Err(format!("column dictionary of {dict_len} entries too large"));
            }
            let mut dict = Vec::with_capacity(dict_len);
            for c in r
                .take(dict_len.checked_mul(4).ok_or("dictionary size overflows")?)?
                .chunks_exact(4)
            {
                dict.push(f32::from_bits(u32::from_le_bytes([c[0], c[1], c[2], c[3]])));
            }
            let width = r.byte()?;
            if width != index_width(dict_len) {
                return Err(format!(
                    "column index width {width} does not fit a {dict_len}-entry dictionary"
                ));
            }
            let indices = r.unpacked(n, width)?;
            // Single fused pass: range check (`get` is the guard against a
            // corrupt index stream), transpose write, and histogram.
            let mut counts = vec![0u32; dict_len + 1];
            for (i, &ix) in indices.iter().enumerate() {
                let val = *dict.get(ix as usize).ok_or_else(|| {
                    format!("column index {ix} beyond {dict_len}-entry dictionary")
                })?;
                rows[i * num_vps + v] = val;
                counts[ix as usize + 1] += 1;
            }
            // A sign bit anywhere (negative values, -0.0, negative NaN)
            // breaks the bits-order == total_cmp-order equivalence; the
            // dictionary is bits-ascending, so checking its last entry
            // covers them all. Distances are non-negative, so in practice
            // this path always fires.
            if dict.last().is_none_or(|f| f.is_sign_negative()) {
                let col: Vec<f32> = indices.iter().map(|&ix| dict[ix as usize]).collect();
                return Ok(sorted_by_comparison(&col));
            }
            // Sorted coordinates = the dictionary expanded by counts.
            let mut sorted_v = Vec::with_capacity(n);
            for (d, &val) in dict.iter().enumerate() {
                let upto = sorted_v.len() + counts[d + 1] as usize;
                sorted_v.resize(upto, val);
            }
            // Counting argsort: prefix-sum the histogram into bucket
            // cursors, then scatter item ids in id order (tie-stable).
            for d in 0..dict_len {
                counts[d + 1] += counts[d];
            }
            let mut order = vec![0u32; n];
            for (item, &ix) in indices.iter().enumerate() {
                order[counts[ix as usize] as usize] = item as u32;
                counts[ix as usize] += 1;
            }
            Ok((sorted_v, order))
        }
        m => Err(format!("unknown column mode {m}")),
    }
}

/// Comparison-sort fallback for column orders: identical semantics to the
/// table's own derivation (`total_cmp`, ties by id). Returns the sorted
/// coordinates and the argsort.
fn sorted_by_comparison(col: &[f32]) -> (Vec<f32>, Vec<u32>) {
    let order = stable_argsort(col.len(), col);
    let sorted_v = order.iter().map(|&id| col[id as usize]).collect();
    (sorted_v, order)
}

/// Identical comparison semantics to the table's own order derivation
/// (`total_cmp`, ties by id) — the raw-column fallback when counting sort
/// does not apply.
fn stable_argsort(n: usize, d: &[f32]) -> Vec<u32> {
    let mut ord: Vec<u32> = (0..n as u32).collect();
    ord.sort_by(|&a, &b| d[a as usize].total_cmp(&d[b as usize]));
    ord
}

/// Bits needed to index a `dict_len`-entry dictionary (0 when a single entry
/// makes every index 0).
fn index_width(dict_len: usize) -> u8 {
    match dict_len.saturating_sub(1) {
        0 => 0,
        max => (64 - (max as u64).leading_zeros()) as u8,
    }
}

fn packed_len(n: usize, width: u8) -> usize {
    (n * usize::from(width)).div_ceil(8)
}

fn varint_len(mut v: u64) -> usize {
    let mut len = 1;
    while v >= 0x80 {
        v >>= 7;
        len += 1;
    }
    len
}

// ---------------------------------------------------------------------------
// Byte-level writer / reader.
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn byte(&mut self, b: u8) {
        self.buf.push(b);
    }

    fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// LEB128 unsigned varint.
    fn varint(&mut self, mut v: u64) {
        while v >= 0x80 {
            self.buf.push((v as u8) | 0x80);
            v >>= 7;
        }
        self.buf.push(v as u8);
    }

    /// Zigzag-mapped signed varint (for delta sequences).
    fn zigzag(&mut self, v: i64) {
        self.varint(((v << 1) ^ (v >> 63)) as u64);
    }

    /// Tagged-width float: `+∞` is tag 0 with no body (the NB-Tree root's
    /// radius/diameter), an f32-exact value is tag 1 + 4 bytes, anything
    /// else tag 2 + full 8 bytes. Bit-exact in all three cases.
    fn f64enc(&mut self, x: f64) {
        if x == f64::INFINITY {
            self.byte(0);
        } else if f64::from(x as f32) == x {
            self.byte(1);
            self.bytes(&(x as f32).to_bits().to_le_bytes());
        } else {
            self.byte(2);
            self.bytes(&x.to_le_bytes());
        }
    }

    /// Bit-packed bool array, LSB-first within each byte.
    fn bitset(&mut self, bits: &[bool]) {
        let mut acc = 0u8;
        for (i, &b) in bits.iter().enumerate() {
            if b {
                acc |= 1 << (i % 8);
            }
            if i % 8 == 7 {
                self.buf.push(acc);
                acc = 0;
            }
        }
        if !bits.len().is_multiple_of(8) {
            self.buf.push(acc);
        }
    }

    /// `width`-bit values packed LSB-first into a byte stream.
    fn packed(&mut self, values: &[u32], width: u8) {
        if width == 0 {
            return;
        }
        let mut acc = 0u64;
        let mut nbits = 0u32;
        for &v in values {
            acc |= u64::from(v) << nbits;
            nbits += u32::from(width);
            while nbits >= 8 {
                self.buf.push(acc as u8);
                acc >>= 8;
                nbits -= 8;
            }
        }
        if nbits > 0 {
            self.buf.push(acc as u8);
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| {
                format!(
                    "payload exhausted: need {n} byte(s) at offset {}, have {}",
                    self.pos,
                    self.buf.len() - self.pos
                )
            })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn byte(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn varint(&mut self) -> Result<u64, String> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.byte()?;
            if shift >= 63 && b > 1 {
                return Err("varint exceeds 64 bits".into());
            }
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn zigzag(&mut self) -> Result<i64, String> {
        let v = self.varint()?;
        Ok(((v >> 1) as i64) ^ -((v & 1) as i64))
    }

    fn f64enc(&mut self) -> Result<f64, String> {
        match self.byte()? {
            0 => Ok(f64::INFINITY),
            1 => {
                let c = self.take(4)?;
                Ok(f64::from(f32::from_bits(u32::from_le_bytes([
                    c[0], c[1], c[2], c[3],
                ]))))
            }
            2 => {
                let c = self.take(8)?;
                let mut b = [0u8; 8];
                b.copy_from_slice(c);
                Ok(f64::from_le_bytes(b))
            }
            t => Err(format!("unknown float tag {t}")),
        }
    }

    fn bitset(&mut self, n: usize) -> Result<Vec<bool>, String> {
        let bytes = self.take(n.div_ceil(8))?;
        Ok((0..n).map(|i| bytes[i / 8] & (1 << (i % 8)) != 0).collect())
    }

    fn unpacked(&mut self, n: usize, width: u8) -> Result<Vec<u32>, String> {
        if width == 0 {
            return Ok(vec![0; n]);
        }
        if width > 32 {
            return Err(format!("packed index width {width} exceeds 32 bits"));
        }
        let bytes = self.take(packed_len(n, width))?;
        let mask = if width == 32 {
            u64::from(u32::MAX)
        } else {
            (1u64 << width) - 1
        };
        let mut out = Vec::with_capacity(n);
        let mut acc = 0u64;
        let mut nbits = 0u32;
        let mut next = 0usize;
        for _ in 0..n {
            while nbits < u32::from(width) {
                acc |= u64::from(bytes[next]) << nbits;
                next += 1;
                nbits += 8;
            }
            out.push((acc & mask) as u32);
            acc >>= width;
            nbits -= u32::from(width);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_and_zigzag_round_trip() {
        let mut w = Writer::default();
        let values = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for &v in &values {
            w.varint(v);
        }
        let signed = [0i64, -1, 1, -64, 64, i64::MIN, i64::MAX];
        for &v in &signed {
            w.zigzag(v);
        }
        let mut r = Reader {
            buf: &w.buf,
            pos: 0,
        };
        for &v in &values {
            assert_eq!(r.varint().unwrap(), v);
        }
        for &v in &signed {
            assert_eq!(r.zigzag().unwrap(), v);
        }
        assert_eq!(r.pos, w.buf.len());
    }

    #[test]
    fn f64enc_is_bit_exact() {
        let mut w = Writer::default();
        let values = [
            0.0,
            -0.0,
            1.5,
            f64::INFINITY,
            1e30,
            0.1, // not f32-exact
            f64::from(f32::MAX),
            -3.25,
        ];
        for &v in &values {
            w.f64enc(v);
        }
        let mut r = Reader {
            buf: &w.buf,
            pos: 0,
        };
        for &v in &values {
            assert_eq!(r.f64enc().unwrap().to_bits(), v.to_bits());
        }
    }

    /// Decodes one encoded column as a single-VP table and returns the
    /// decoded values, the sorted coordinates, and the derived argsort —
    /// asserting the reader consumed the column exactly.
    fn decode_one(buf: &[u8], n: usize) -> (Vec<f32>, Vec<f32>, Vec<u32>) {
        let mut r = Reader { buf, pos: 0 };
        let mut rows = vec![0.0f32; n];
        let (sorted_v, order) = decode_f32_column(&mut r, n, 1, 0, &mut rows).unwrap();
        assert_eq!(r.pos, buf.len());
        (rows, sorted_v, order)
    }

    #[test]
    fn column_codec_round_trips_and_compresses_small_alphabets() {
        // Few distinct values → dictionary mode, far below 4 bytes/entry.
        let col: Vec<f32> = (0..500).map(|i| (i % 7) as f32).collect();
        let mut w = Writer::default();
        encode_f32_column(&mut w, &col);
        assert!(
            w.buf.len() < col.len(),
            "dict column should be < 1 byte/entry, got {} for {}",
            w.buf.len(),
            col.len()
        );
        let (back, sorted_v, order) = decode_one(&w.buf, col.len());
        assert_eq!(
            back.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
            col.iter().map(|f| f.to_bits()).collect::<Vec<_>>()
        );
        // Dict mode derives the stable argsort by counting sort, and it
        // matches the comparison-sort derivation exactly (ties broken by
        // id); the sorted coordinates are the gather through it.
        let want = stable_argsort(col.len(), &col);
        assert_eq!(order, want);
        let want_sorted: Vec<f32> = want.iter().map(|&id| col[id as usize]).collect();
        assert_eq!(sorted_v, want_sorted);
    }

    #[test]
    fn column_codec_falls_back_to_raw_on_diverse_data() {
        // All-distinct values → dictionary would be larger than raw.
        let col: Vec<f32> = (0..100).map(|i| (i as f32).sqrt() * 1.0001).collect();
        let mut w = Writer::default();
        encode_f32_column(&mut w, &col);
        assert_eq!(w.buf[0], COL_RAW);
        let (back, _, order) = decode_one(&w.buf, col.len());
        assert_eq!(
            back.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
            col.iter().map(|f| f.to_bits()).collect::<Vec<_>>()
        );
        // Raw columns derive the order by comparison sort.
        assert_eq!(order, stable_argsort(col.len(), &col));
    }

    #[test]
    fn dict_column_with_negatives_skips_counting_sort() {
        // Sign-bit values break the bits-order == total_cmp-order mapping,
        // so the decoder must refuse the counting-sort shortcut — and the
        // comparison-sort fallback must still order negatives first.
        let col: Vec<f32> = (0..40)
            .map(|i| if i % 2 == 0 { -1.5 } else { 2.0 })
            .collect();
        let mut w = Writer::default();
        encode_f32_column(&mut w, &col);
        assert_eq!(w.buf[0], COL_DICT);
        let (back, sorted_v, order) = decode_one(&w.buf, col.len());
        assert_eq!(back, col);
        assert_eq!(order, stable_argsort(col.len(), &col));
        assert_eq!(order[0], 0);
        assert_eq!(order[col.len() / 2], 1, "negatives sort before positives");
        assert!(sorted_v[0] < 0.0 && sorted_v[col.len() - 1] > 0.0);
    }

    #[test]
    fn empty_and_singleton_columns() {
        for col in [vec![], vec![4.25f32], vec![4.25f32; 9]] {
            let mut w = Writer::default();
            encode_f32_column(&mut w, &col);
            let (back, sorted_v, order) = decode_one(&w.buf, col.len());
            assert_eq!(back, col);
            assert_eq!(sorted_v, col, "constant columns sort to themselves");
            assert_eq!(order.len(), col.len());
        }
    }

    #[test]
    fn bitset_round_trips_odd_lengths() {
        for n in [0usize, 1, 7, 8, 9, 500] {
            let bits: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
            let mut w = Writer::default();
            w.bitset(&bits);
            let mut r = Reader {
                buf: &w.buf,
                pos: 0,
            };
            assert_eq!(r.bitset(n).unwrap(), bits);
        }
    }

    #[test]
    fn truncated_reader_is_an_error_not_a_panic() {
        let mut w = Writer::default();
        w.varint(300);
        let mut r = Reader {
            buf: &w.buf[..1],
            pos: 0,
        };
        assert!(r.varint().is_err());
    }
}
