//! π̂-vectors and the indexed threshold ladder (paper Sec 7, Def 6, Sec 7.1).
//!
//! During a session's initialization phase, every relevant graph gets a
//! vector of upper bounds on its representative power — one per indexed
//! threshold — computed purely from the vantage orderings (Thm 5, no edit
//! distances). The vectors are propagated up the NB-Tree as ceilings so that
//! any tree node bounds the gain of every graph in its subtree (Eq. 14).
//! Bounds are stored as *relevant-graph counts* (integers), not fractions.

use crate::nbtree::NbTree;
use graphrep_graph::GraphId;
use graphrep_metric::{Bitset, DistanceDistribution, VantageTable};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

const EPS: f64 = 1e-6;

/// The sorted set of distance thresholds indexed in π̂-vectors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThresholdLadder {
    thetas: Vec<f64>,
}

impl ThresholdLadder {
    /// Creates a ladder (sorted, deduplicated, non-negative).
    pub fn new(mut thetas: Vec<f64>) -> Self {
        thetas.retain(|t| t.is_finite() && *t >= 0.0);
        thetas.sort_by(f64::total_cmp);
        thetas.dedup_by(|a, b| (*a - *b).abs() < EPS);
        Self { thetas }
    }

    /// The indexed thresholds, ascending.
    pub fn thetas(&self) -> &[f64] {
        &self.thetas
    }

    /// Number of indexed thresholds.
    pub fn len(&self) -> usize {
        self.thetas.len()
    }

    /// Whether the ladder is empty.
    pub fn is_empty(&self) -> bool {
        self.thetas.is_empty()
    }

    /// Index of the smallest `θ_i ≥ θ` (binary search, Def 6), or `None`
    /// when `θ` exceeds every indexed threshold.
    pub fn slot_for(&self, theta: f64) -> Option<usize> {
        let i = self.thetas.partition_point(|&t| t < theta - EPS);
        (i < self.thetas.len()).then_some(i)
    }

    /// Sec 7.1 scheme 1: sample `count` thresholds (without replacement)
    /// from a log of previously queried θ values.
    pub fn from_query_log<R: Rng + ?Sized>(log: &[f64], count: usize, rng: &mut R) -> Self {
        let mut pool = log.to_vec();
        pool.shuffle(rng);
        pool.truncate(count);
        Self::new(pool)
    }

    /// Sec 7.1 scheme 2: no prior information — place thresholds where the
    /// sampled distance CDF is steep by taking equal-probability quantiles
    /// (equivalently, density-proportional placement).
    pub fn from_distribution(dist: &DistanceDistribution, count: usize) -> Self {
        if dist.is_empty() || count == 0 {
            return Self::new(vec![]);
        }
        let thetas = (1..=count)
            .map(|i| dist.quantile(i as f64 / count as f64))
            .collect();
        Self::new(thetas)
    }
}

/// Per-graph and per-node π̂ counts at every ladder slot, plus static
/// per-node relevant counts.
#[derive(Debug, Clone)]
pub struct PiHatVectors {
    slots: usize,
    /// `graph_counts[pos * slots + i]` — π̂ of the graph at leaf position
    /// `pos` at ladder slot `i` (zero for irrelevant graphs).
    graph_counts: Vec<u32>,
    /// `node_counts[node * slots + i]` — ceiling over the node's relevant
    /// descendants.
    node_counts: Vec<u32>,
    /// Number of relevant graphs in each node's subtree.
    node_rel: Vec<u32>,
}

impl PiHatVectors {
    /// Initialization phase: computes π̂-vectors for every relevant graph
    /// from the vantage orderings and propagates ceilings up the tree.
    ///
    /// `relevant_by_id` is indexed by graph id; counts are of *relevant*
    /// candidates (Thm 5 applied within `L_q`).
    ///
    /// The per-graph π̂ rows are independent pure functions of the vantage
    /// orderings, so the batch update over `L_q` fans out across rayon
    /// workers once `L_q` is large enough to amortize the dispatch; rows are
    /// written back in relevant-set order, making the vectors identical at
    /// any thread count.
    pub fn initialize(
        vt: &VantageTable,
        tree: &NbTree,
        relevant: &[GraphId],
        relevant_by_id: &Bitset,
        ladder: &ThresholdLadder,
    ) -> Self {
        use rayon::prelude::*;
        let slots = ladder.len();
        let n = tree.len();
        let mut graph_counts = vec![0u32; n * slots];
        let theta_max = ladder.thetas().last().copied().unwrap_or(0.0);
        let small = relevant.len() <= 16;
        let one_row = |g: GraphId| {
            // π̂ needs lower bounds to *relevant* candidates only (Thm 5
            // within `L_q`). For small `L_q` the membership test is applied
            // pair-by-pair — O(|L_q|·|V|) — instead of enumerating the full
            // θ-band of the database; `passes_all_bands` is exactly the
            // predicate `candidates_into` filters by, so both paths produce
            // the same band multiset.
            let mut band: Vec<f64> = if small {
                relevant
                    .iter()
                    .filter(|&&c| vt.passes_all_bands(g, c, theta_max))
                    .map(|&c| vt.lower_bound(g, c))
                    .collect()
            } else {
                let mut cand_buf = Vec::new();
                vt.candidates_into(g, theta_max, &mut cand_buf);
                cand_buf
                    .iter()
                    .filter(|&&c| relevant_by_id.contains(c as usize))
                    .map(|&c| vt.lower_bound(g, c))
                    .collect()
            };
            band.sort_by(f64::total_cmp);
            let row = ladder
                .thetas()
                .iter()
                .map(|&t| band.partition_point(|&d| d <= t + EPS) as u32)
                .collect();
            (tree.pos_of(g) as usize, row)
        };
        // Tiny relevant sets (serve liveness probes, cold-start first answers)
        // are dominated by rayon's dispatch latency, not by the row math, so
        // they stay on the calling thread. Either way rows are written back
        // in relevant-set order, so the vectors are identical at any thread
        // count.
        let rows: Vec<(usize, Vec<u32>)> = if small {
            relevant.iter().map(|&g| one_row(g)).collect()
        } else {
            relevant.par_iter().map(|&g| one_row(g)).collect()
        };
        for (pos, row) in rows {
            graph_counts[pos * slots..pos * slots + slots].copy_from_slice(&row);
        }
        let mut node_counts = vec![0u32; tree.nodes().len() * slots];
        let mut node_rel = vec![0u32; tree.nodes().len()];
        let rel_pos = Bitset::from_indices(n, relevant.iter().map(|&g| tree.pos_of(g) as usize));
        for (ni, node) in tree.nodes().iter().enumerate() {
            node_rel[ni] = rel_pos.count_range(node.start as usize, node.end as usize) as u32;
            for pos in node.start as usize..node.end as usize {
                if !rel_pos.contains(pos) {
                    continue;
                }
                for i in 0..slots {
                    let v = graph_counts[pos * slots + i];
                    let slot = &mut node_counts[ni * slots + i];
                    if v > *slot {
                        *slot = v;
                    }
                }
            }
        }
        let this = Self {
            slots,
            graph_counts,
            node_counts,
            node_rel,
        };
        this.audit(tree, &rel_pos);
        this
    }

    /// Audits the Def 6 / Eq. 14 structure: every π̂ row (graph and node) is
    /// monotone non-decreasing along the ascending threshold ladder, and
    /// every node ceiling dominates the π̂ of each relevant graph in its
    /// subtree. Panics on violation.
    ///
    /// Compiled only under the `invariant-audit` feature; the default build
    /// gets the no-op twin below.
    #[cfg(feature = "invariant-audit")]
    pub fn audit(&self, tree: &NbTree, rel_pos: &Bitset) {
        use graphrep_ged::audit_invariant;
        for pos in 0..tree.len() {
            for i in 1..self.slots {
                let (a, b) = (
                    self.graph_counts[pos * self.slots + i - 1],
                    self.graph_counts[pos * self.slots + i],
                );
                audit_invariant!(
                    a <= b,
                    "π̂ monotonicity: graph at pos {pos} drops from {a} (slot {}) to {b} (slot {i})",
                    i - 1
                );
            }
        }
        for (ni, node) in tree.nodes().iter().enumerate() {
            for i in 0..self.slots {
                if i > 0 {
                    let (a, b) = (
                        self.node_counts[ni * self.slots + i - 1],
                        self.node_counts[ni * self.slots + i],
                    );
                    audit_invariant!(
                        a <= b,
                        "π̂ monotonicity: node {ni} drops from {a} (slot {}) to {b} (slot {i})",
                        i - 1
                    );
                }
                let ceil = self.node_counts[ni * self.slots + i];
                for pos in node.start as usize..node.end as usize {
                    if rel_pos.contains(pos) {
                        let v = self.graph_counts[pos * self.slots + i];
                        audit_invariant!(
                            v <= ceil,
                            "Eq. 14: node {ni} ceiling {ceil} at slot {i} below member π̂ {v} at pos {pos}"
                        );
                    }
                }
            }
        }
    }

    /// No-op twin of the audit hook for builds without `invariant-audit`.
    #[cfg(not(feature = "invariant-audit"))]
    #[inline(always)]
    pub fn audit(&self, _tree: &NbTree, _rel_pos: &Bitset) {}

    /// Test-only corruption hook: overwrites one per-graph π̂ entry so audit
    /// tests can prove the checks are not vacuous. Exists only in audit
    /// builds.
    #[cfg(feature = "invariant-audit")]
    pub fn audit_corrupt_graph_count(&mut self, pos: u32, slot: usize, value: u32) {
        self.graph_counts[pos as usize * self.slots + slot] = value;
    }

    /// Number of ladder slots.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// π̂ count of the graph at leaf position `pos` at ladder slot `i`.
    pub fn graph_count(&self, pos: u32, slot: usize) -> u32 {
        self.graph_counts[pos as usize * self.slots + slot]
    }

    /// π̂ ceiling of tree node `node` at ladder slot `i`.
    pub fn node_count(&self, node: u32, slot: usize) -> u32 {
        self.node_counts[node as usize * self.slots + slot]
    }

    /// Number of relevant graphs under `node`.
    pub fn node_relevant(&self, node: u32) -> u32 {
        self.node_rel[node as usize]
    }

    /// Approximate heap footprint in bytes (Fig 6(l) accounting).
    pub fn memory_bytes(&self) -> usize {
        (self.graph_counts.len() + self.node_counts.len() + self.node_rel.len()) * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn ladder_sorts_and_dedupes() {
        let l = ThresholdLadder::new(vec![5.0, 1.0, 5.0, 3.0, -2.0, f64::NAN]);
        assert_eq!(l.thetas(), &[1.0, 3.0, 5.0]);
        assert_eq!(l.len(), 3);
    }

    #[test]
    fn slot_for_picks_smallest_geq() {
        let l = ThresholdLadder::new(vec![1.0, 3.0, 5.0]);
        assert_eq!(l.slot_for(0.5), Some(0));
        assert_eq!(l.slot_for(1.0), Some(0));
        assert_eq!(l.slot_for(1.1), Some(1));
        assert_eq!(l.slot_for(3.0), Some(1));
        assert_eq!(l.slot_for(5.0), Some(2));
        assert_eq!(l.slot_for(5.1), None);
    }

    #[test]
    fn from_query_log_samples_without_replacement() {
        let mut rng = SmallRng::seed_from_u64(1);
        let log = vec![2.0, 4.0, 6.0, 8.0];
        let l = ThresholdLadder::from_query_log(&log, 3, &mut rng);
        assert_eq!(l.len(), 3);
        for t in l.thetas() {
            assert!(log.contains(t));
        }
    }

    #[test]
    fn from_distribution_tracks_density() {
        // Dense mass around 10, sparse tail to 100: most thresholds should
        // land near 10.
        let mut vals: Vec<f64> = (0..90).map(|i| 10.0 + (i % 10) as f64 * 0.1).collect();
        vals.extend((0..10).map(|i| 20.0 + i as f64 * 8.0));
        let dist = DistanceDistribution::new(vals);
        let l = ThresholdLadder::from_distribution(&dist, 8);
        assert!(!l.is_empty());
        let near_ten = l.thetas().iter().filter(|&&t| t < 12.0).count();
        assert!(near_ten >= l.len() / 2, "thetas: {:?}", l.thetas());
    }

    #[test]
    fn empty_distribution_gives_empty_ladder() {
        let l = ThresholdLadder::from_distribution(&DistanceDistribution::new(vec![]), 5);
        assert!(l.is_empty());
        assert_eq!(l.slot_for(1.0), None);
    }
}
