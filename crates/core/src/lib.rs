#![warn(missing_docs)]
#![deny(unsafe_code)]
#![deny(missing_debug_implementations)]

//! Top-k representative queries on graph databases — the core library.
//!
//! Implements the SIGMOD'14 paper's contribution end to end:
//!
//! * the problem model — [`GraphDatabase`], query-time [`RelevanceQuery`]
//!   functions, and the representative-power objective ([`AnswerSet`]),
//! * the `1 − 1/e` [`greedy`] approximation (Alg 1) over pluggable
//!   θ-neighborhood providers,
//! * the **NB-Index** ([`NbIndex`]): vantage orderings, the [`nbtree`]
//!   hierarchical clustering, π̂-vectors over an indexed threshold ladder,
//!   the Alg 2 best-first search, Thm 6–8 batch updates, and interactive
//!   θ refinement via [`session::QuerySession`].
//!
//! The NB-Index path returns *exactly* the baseline greedy answer (ties
//! broken toward smaller graph ids on both paths) while computing orders of
//! magnitude fewer NP-hard edit distances.

pub mod answer;
pub(crate) mod binfmt;
pub mod cancel;
pub mod celf;
pub mod db;
pub mod greedy;
pub mod nbindex;
pub mod nbtree;
pub mod persist;
pub mod pihat;
pub mod provider;
pub mod relevance;
pub mod session;
pub mod views;

pub use answer::{evaluate_answer, AnswerSet};
pub use cancel::{CancelToken, Cancelled};
pub use celf::{lazy_greedy, lazy_greedy_cancellable, weighted_greedy, LazyStats, WeightedAnswer};
pub use db::GraphDatabase;
pub use greedy::{baseline_greedy, BruteForceProvider};
pub use nbindex::{
    BuildStats, MutateError, MutationOutcome, MutationPolicy, NbIndex, NbIndexConfig,
};
pub use nbtree::{InsertOutcome, NbTree, NbTreeConfig, TreeNode};
pub use persist::{is_binary_index, PersistError, PersistedIndex};
pub use pihat::{PiHatVectors, ThresholdLadder};
pub use provider::{MaterializedProvider, NeighborhoodProvider};
pub use relevance::{RelevanceQuery, Scorer};
pub use session::{PickEvent, QuerySession, RunStats};
pub use views::{
    query_fingerprint, AnswerCache, AnswerKey, CacheConfig, CacheCounters, MaterializedView,
    ViewScope, ViewStore,
};
