//! Index persistence: save the offline-built NB-Index parts and reattach a
//! distance oracle on load.
//!
//! The vantage orderings, NB-Tree, and threshold ladder are pure data; the
//! oracle (graphs + engine) is reconstructed by the caller — typically from
//! the same database files — so a saved index skips the entire NP-hard build
//! phase on restart.

use crate::nbindex::{BuildStats, NbIndex, NbIndexConfig};
use crate::nbtree::NbTree;
use crate::pihat::ThresholdLadder;
use graphrep_ged::DistanceOracle;
use graphrep_metric::VantageTable;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The serializable portion of an NB-Index.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PersistedIndex {
    /// Format version for forward compatibility.
    pub version: u32,
    /// Number of graphs the index was built over.
    pub graphs: usize,
    /// Mutation epoch the snapshot describes (see [`NbIndex::epoch`]).
    pub epoch: u64,
    vantage: VantageTable,
    tree: NbTree,
    ladder: ThresholdLadder,
}

/// Errors raised when loading a persisted index.
#[derive(Debug)]
pub enum PersistError {
    /// The JSON payload could not be parsed.
    Format(serde_json::Error),
    /// The index was built over a different number of graphs.
    GraphCountMismatch {
        /// Count recorded in the persisted index.
        expected: usize,
        /// Count held by the supplied oracle.
        got: usize,
    },
    /// Unsupported format version.
    Version(u32),
    /// The snapshot's mutation epoch does not match the expected one — the
    /// database has mutated since the snapshot was written.
    EpochMismatch {
        /// Epoch recorded in the persisted index.
        snapshot: u64,
        /// Epoch the caller knows the database to be at.
        expected: u64,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Format(e) => write!(f, "bad index payload: {e}"),
            PersistError::GraphCountMismatch { expected, got } => {
                write!(f, "index built over {expected} graphs, oracle has {got}")
            }
            PersistError::Version(v) => write!(f, "unsupported index version {v}"),
            PersistError::EpochMismatch { snapshot, expected } => write!(
                f,
                "stale index snapshot: written at mutation epoch {snapshot}, database is at {expected}"
            ),
        }
    }
}

impl std::error::Error for PersistError {}

/// Version 2 added the mutation `epoch` field plus the NB-Tree tombstone
/// state; version-1 payloads are rejected (their trees predate liveness
/// tracking), which every load site handles by rebuilding.
const VERSION: u32 = 2;

impl NbIndex {
    /// Serializes the index structure (not the oracle) to JSON.
    pub fn save_json(&self) -> String {
        let p = PersistedIndex {
            version: VERSION,
            graphs: self.tree().len(),
            epoch: self.epoch(),
            vantage: self.vantage().clone(),
            tree: self.tree().clone(),
            ladder: self.ladder().clone(),
        };
        // graphrep: allow(G001, persisted struct is plain owned data; serialization cannot fail)
        serde_json::to_string(&p).expect("index parts are serializable")
    }

    /// Restores an index from [`NbIndex::save_json`] output, attaching
    /// `oracle` (which must hold the same database, in the same order).
    ///
    /// Accepts the snapshot at whatever epoch it records; callers that track
    /// the database's current epoch out of band should use
    /// [`NbIndex::load_json_at_epoch`] so a stale snapshot cannot be served
    /// silently.
    pub fn load_json(json: &str, oracle: Arc<DistanceOracle>) -> Result<Self, PersistError> {
        Self::load_checked(json, oracle, None)
    }

    /// [`NbIndex::load_json`] that additionally rejects snapshots whose
    /// recorded mutation epoch differs from `expected`.
    pub fn load_json_at_epoch(
        json: &str,
        oracle: Arc<DistanceOracle>,
        expected: u64,
    ) -> Result<Self, PersistError> {
        Self::load_checked(json, oracle, Some(expected))
    }

    fn load_checked(
        json: &str,
        oracle: Arc<DistanceOracle>,
        expected_epoch: Option<u64>,
    ) -> Result<Self, PersistError> {
        let p: PersistedIndex = serde_json::from_str(json).map_err(PersistError::Format)?;
        if p.version != VERSION {
            return Err(PersistError::Version(p.version));
        }
        if p.graphs != oracle.len() {
            return Err(PersistError::GraphCountMismatch {
                expected: p.graphs,
                got: oracle.len(),
            });
        }
        if let Some(expected) = expected_epoch {
            if p.epoch != expected {
                return Err(PersistError::EpochMismatch {
                    snapshot: p.epoch,
                    expected,
                });
            }
        }
        Ok(Self::from_parts(
            oracle,
            p.vantage,
            p.tree,
            p.ladder,
            BuildStats::default(),
            p.epoch,
        ))
    }

    /// A default config whose documentation points here: persisted indexes
    /// carry their own parameters, so the config is not stored.
    pub fn persisted_config_hint() -> NbIndexConfig {
        NbIndexConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphrep_datagen::{DatasetKind, DatasetSpec};
    use graphrep_ged::GedConfig;

    #[test]
    fn save_load_round_trip_preserves_answers() {
        let data = DatasetSpec::new(DatasetKind::DudLike, 60, 901).generate();
        let oracle = data.db.oracle(GedConfig::default());
        let index = NbIndex::build(
            oracle,
            NbIndexConfig {
                num_vps: 4,
                ladder: data.default_ladder.clone(),
                ..Default::default()
            },
        );
        let relevant = data.default_query().relevant_set(&data.db);
        let (want, _) = index.query(relevant.clone(), data.default_theta, 4);

        let json = index.save_json();
        let fresh_oracle = data.db.oracle(GedConfig::default());
        let loaded = NbIndex::load_json(&json, fresh_oracle).unwrap();
        let (got, _) = loaded.query(relevant, data.default_theta, 4);
        assert_eq!(got.ids, want.ids);
        assert_eq!(got.pi_trajectory, want.pi_trajectory);
    }

    /// Save → load → save must reproduce the exact payload bytes, and the
    /// loaded index must answer a fixed query byte-identically (the full
    /// `AnswerSet` debug form covers ids, coverage, and the π trajectory).
    #[test]
    fn round_trip_is_byte_identical() {
        let data = DatasetSpec::new(DatasetKind::DudLike, 50, 904).generate();
        let oracle = data.db.oracle(GedConfig::default());
        let index = NbIndex::build(
            oracle,
            NbIndexConfig {
                num_vps: 4,
                ladder: data.default_ladder.clone(),
                ..Default::default()
            },
        );
        let relevant = data.default_query().relevant_set(&data.db);
        let (want, _) = index.query(relevant.clone(), data.default_theta, 5);

        let json = index.save_json();
        let loaded = NbIndex::load_json(&json, data.db.oracle(GedConfig::default())).unwrap();
        assert_eq!(
            loaded.save_json(),
            json,
            "re-serializing a loaded index must be byte-identical"
        );
        let (got, _) = loaded.query(relevant, data.default_theta, 5);
        assert_eq!(
            format!("{got:?}"),
            format!("{want:?}"),
            "loaded index must answer byte-identically"
        );
    }

    /// A bumped `version` field must surface as the typed
    /// [`PersistError::Version`] — never a panic or a silent misread.
    #[test]
    fn version_mismatch_is_typed_error() {
        let data = DatasetSpec::new(DatasetKind::DudLike, 12, 905).generate();
        let oracle = data.db.oracle(GedConfig::default());
        let index = NbIndex::build(oracle, NbIndexConfig::default());
        let json = index.save_json();
        let bumped = json.replacen("\"version\":2", "\"version\":999", 1);
        assert_ne!(bumped, json, "fixture must actually bump the version");
        match NbIndex::load_json(&bumped, data.db.oracle(GedConfig::default())) {
            Err(PersistError::Version(v)) => assert_eq!(v, 999),
            other => panic!("expected Version error, got {other:?}"),
        }
    }

    #[test]
    fn graph_count_mismatch_rejected() {
        let data = DatasetSpec::new(DatasetKind::DudLike, 40, 902).generate();
        let oracle = data.db.oracle(GedConfig::default());
        let index = NbIndex::build(oracle, NbIndexConfig::default());
        let json = index.save_json();
        let smaller = data.db.prefix(10).oracle(GedConfig::default());
        match NbIndex::load_json(&json, smaller) {
            Err(PersistError::GraphCountMismatch { expected, got }) => {
                assert_eq!(expected, 40);
                assert_eq!(got, 10);
            }
            other => panic!("expected mismatch, got {other:?}"),
        }
    }

    /// The mutation epoch must round-trip through persistence, and
    /// [`NbIndex::load_json_at_epoch`] must reject a snapshot recorded at a
    /// different epoch with the typed error — the load-after-mutate
    /// staleness guard.
    #[test]
    fn epoch_round_trips_and_stale_snapshot_rejected() {
        let data = DatasetSpec::new(DatasetKind::DudLike, 30, 906).generate();
        let oracle = data.db.oracle(GedConfig::default());
        let mut index = NbIndex::build(
            oracle,
            NbIndexConfig {
                num_vps: 4,
                ladder: data.default_ladder.clone(),
                ..Default::default()
            },
        );
        index.remove(3).unwrap();
        index.remove(7).unwrap();
        assert_eq!(index.epoch(), 2);

        let json = index.save_json();
        let loaded =
            NbIndex::load_json_at_epoch(&json, data.db.oracle(GedConfig::default()), 2).unwrap();
        assert_eq!(loaded.epoch(), 2, "epoch must round-trip");
        assert!(!loaded.tree().is_live(3) && !loaded.tree().is_live(7));

        match NbIndex::load_json_at_epoch(&json, data.db.oracle(GedConfig::default()), 5) {
            Err(PersistError::EpochMismatch { snapshot, expected }) => {
                assert_eq!(snapshot, 2);
                assert_eq!(expected, 5);
            }
            other => panic!("expected EpochMismatch, got {other:?}"),
        }
        // The unchecked loader still accepts the snapshot as-is.
        assert!(NbIndex::load_json(&json, data.db.oracle(GedConfig::default())).is_ok());
    }

    #[test]
    fn garbage_payload_rejected() {
        let data = DatasetSpec::new(DatasetKind::DudLike, 10, 903).generate();
        let oracle = data.db.oracle(GedConfig::default());
        assert!(matches!(
            NbIndex::load_json("{not json", oracle),
            Err(PersistError::Format(_))
        ));
    }
}
