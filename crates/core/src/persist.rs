//! Index persistence: save the offline-built NB-Index parts and reattach a
//! distance oracle on load.
//!
//! The vantage orderings, NB-Tree, and threshold ladder are pure data; the
//! oracle (graphs + engine) is reconstructed by the caller — typically from
//! the same database files — so a saved index skips the entire NP-hard build
//! phase on restart.
//!
//! Two formats persist the same state and answer byte-identically:
//!
//! * **binary** (`index.bin`, [`NbIndex::save_bin`]) — the succinct
//!   checksummed layout in [`crate::binfmt`]; the default and the fast
//!   cold-start path.
//! * **JSON** (`index.json`, [`NbIndex::save_json`]) — the original format,
//!   kept as the human-readable fallback and the migration path for indexes
//!   written before the binary layout existed.

use crate::nbindex::{BuildStats, NbIndex, NbIndexConfig};
use crate::nbtree::NbTree;
use crate::pihat::ThresholdLadder;
use graphrep_ged::DistanceOracle;
use graphrep_metric::VantageTable;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The serializable portion of an NB-Index.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PersistedIndex {
    /// Format version for forward compatibility.
    pub version: u32,
    /// Number of graphs the index was built over.
    pub graphs: usize,
    /// Mutation epoch the snapshot describes (see [`NbIndex::epoch`]).
    pub epoch: u64,
    vantage: VantageTable,
    tree: NbTree,
    ladder: ThresholdLadder,
}

/// Errors raised when loading a persisted index.
#[derive(Debug)]
pub enum PersistError {
    /// The JSON payload could not be parsed.
    Format(serde_json::Error),
    /// The binary file does not start with the `GRNBIDX1` magic — not an
    /// index file, or one written byte-swapped (the magic is byte-order
    /// sensitive on purpose, so a wrong-endian writer is caught here).
    Magic {
        /// The first eight bytes actually found.
        got: [u8; 8],
    },
    /// The binary file is shorter than its header + recorded payload length
    /// — a torn or partial write.
    Truncated {
        /// Bytes the header claims the file holds.
        expected: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// The payload bytes do not hash to the checksum recorded in the header.
    Checksum {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum of the payload as read.
        got: u64,
    },
    /// The header verified but the payload violates the format's shape
    /// constraints (a bad length, index out of range, unknown tag, …).
    Corrupt(String),
    /// The index was built over a different number of graphs.
    GraphCountMismatch {
        /// Count recorded in the persisted index.
        expected: usize,
        /// Count held by the supplied oracle.
        got: usize,
    },
    /// Unsupported format version.
    Version(u32),
    /// The snapshot's mutation epoch does not match the expected one — the
    /// database has mutated since the snapshot was written.
    EpochMismatch {
        /// Epoch recorded in the persisted index.
        snapshot: u64,
        /// Epoch the caller knows the database to be at.
        expected: u64,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Format(e) => write!(f, "bad index payload: {e}"),
            PersistError::Magic { got } => {
                write!(f, "not a binary index: magic bytes {got:02x?}")
            }
            PersistError::Truncated { expected, got } => {
                write!(f, "truncated index file: {got} of {expected} byte(s)")
            }
            PersistError::Checksum { expected, got } => write!(
                f,
                "index payload checksum mismatch: header says {expected:016x}, payload hashes to {got:016x}"
            ),
            PersistError::Corrupt(why) => write!(f, "corrupt index payload: {why}"),
            PersistError::GraphCountMismatch { expected, got } => {
                write!(f, "index built over {expected} graphs, oracle has {got}")
            }
            PersistError::Version(v) => write!(f, "unsupported index version {v}"),
            PersistError::EpochMismatch { snapshot, expected } => write!(
                f,
                "stale index snapshot: written at mutation epoch {snapshot}, database is at {expected}"
            ),
        }
    }
}

impl std::error::Error for PersistError {}

/// Whether `bytes` begin with the binary index magic — the cheap format
/// sniff tools use to route a file to [`NbIndex::load_bin`] vs
/// [`NbIndex::load_json`].
pub fn is_binary_index(bytes: &[u8]) -> bool {
    bytes.len() >= 8 && bytes[..8] == crate::binfmt::MAGIC
}

/// Version 2 added the mutation `epoch` field plus the NB-Tree tombstone
/// state; version-1 payloads are rejected (their trees predate liveness
/// tracking), which every load site handles by rebuilding. The binary and
/// JSON formats share the version counter — they persist the same state.
pub(crate) const VERSION: u32 = 2;

impl NbIndex {
    /// Serializes the index structure (not the oracle) to JSON.
    pub fn save_json(&self) -> String {
        let p = PersistedIndex {
            version: VERSION,
            graphs: self.tree().len(),
            epoch: self.epoch(),
            vantage: self.vantage().clone(),
            tree: self.tree().clone(),
            ladder: self.ladder().clone(),
        };
        // graphrep: allow(G001, persisted struct is plain owned data; serialization cannot fail)
        serde_json::to_string(&p).expect("index parts are serializable")
    }

    /// Restores an index from [`NbIndex::save_json`] output, attaching
    /// `oracle` (which must hold the same database, in the same order).
    ///
    /// Accepts the snapshot at whatever epoch it records; callers that track
    /// the database's current epoch out of band should use
    /// [`NbIndex::load_json_at_epoch`] so a stale snapshot cannot be served
    /// silently.
    pub fn load_json(json: &str, oracle: Arc<DistanceOracle>) -> Result<Self, PersistError> {
        Self::load_checked(json, oracle, None)
    }

    /// [`NbIndex::load_json`] that additionally rejects snapshots whose
    /// recorded mutation epoch differs from `expected`.
    pub fn load_json_at_epoch(
        json: &str,
        oracle: Arc<DistanceOracle>,
        expected: u64,
    ) -> Result<Self, PersistError> {
        Self::load_checked(json, oracle, Some(expected))
    }

    fn load_checked(
        json: &str,
        oracle: Arc<DistanceOracle>,
        expected_epoch: Option<u64>,
    ) -> Result<Self, PersistError> {
        let p: PersistedIndex = serde_json::from_str(json).map_err(PersistError::Format)?;
        if p.version != VERSION {
            return Err(PersistError::Version(p.version));
        }
        Self::attach(
            oracle,
            p.graphs,
            p.epoch,
            p.vantage,
            p.tree,
            p.ladder,
            expected_epoch,
        )
    }

    /// Serializes the index structure (not the oracle) to the succinct
    /// binary format (`index.bin`, see [`crate::binfmt`]) — byte-for-byte
    /// the same state as [`NbIndex::save_json`], at a fraction of the size
    /// and parse cost.
    pub fn save_bin(&self) -> Vec<u8> {
        crate::binfmt::encode_index(self.epoch(), self.vantage(), self.tree(), self.ladder())
    }

    /// Restores an index from [`NbIndex::save_bin`] output. The epoch policy
    /// matches [`NbIndex::load_json`]: the snapshot is accepted at whatever
    /// epoch it records.
    pub fn load_bin(bytes: &[u8], oracle: Arc<DistanceOracle>) -> Result<Self, PersistError> {
        Self::load_bin_checked(bytes, oracle, None)
    }

    /// [`NbIndex::load_bin`] that additionally rejects snapshots whose
    /// recorded mutation epoch differs from `expected`.
    pub fn load_bin_at_epoch(
        bytes: &[u8],
        oracle: Arc<DistanceOracle>,
        expected: u64,
    ) -> Result<Self, PersistError> {
        Self::load_bin_checked(bytes, oracle, Some(expected))
    }

    fn load_bin_checked(
        bytes: &[u8],
        oracle: Arc<DistanceOracle>,
        expected_epoch: Option<u64>,
    ) -> Result<Self, PersistError> {
        let d = crate::binfmt::decode_index(bytes)?;
        Self::attach(
            oracle,
            d.graphs,
            d.epoch,
            d.vantage,
            d.tree,
            d.ladder,
            expected_epoch,
        )
    }

    /// Shared tail of both load paths: graph-count and epoch guards, then
    /// reassembly around the supplied oracle.
    #[allow(clippy::too_many_arguments)]
    fn attach(
        oracle: Arc<DistanceOracle>,
        graphs: usize,
        epoch: u64,
        vantage: VantageTable,
        tree: NbTree,
        ladder: ThresholdLadder,
        expected_epoch: Option<u64>,
    ) -> Result<Self, PersistError> {
        if graphs != oracle.len() {
            return Err(PersistError::GraphCountMismatch {
                expected: graphs,
                got: oracle.len(),
            });
        }
        if let Some(expected) = expected_epoch {
            if epoch != expected {
                return Err(PersistError::EpochMismatch {
                    snapshot: epoch,
                    expected,
                });
            }
        }
        Ok(Self::from_parts(
            oracle,
            vantage,
            tree,
            ladder,
            BuildStats::default(),
            epoch,
        ))
    }

    /// A default config whose documentation points here: persisted indexes
    /// carry their own parameters, so the config is not stored.
    pub fn persisted_config_hint() -> NbIndexConfig {
        NbIndexConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphrep_datagen::{DatasetKind, DatasetSpec};
    use graphrep_ged::GedConfig;

    #[test]
    fn save_load_round_trip_preserves_answers() {
        let data = DatasetSpec::new(DatasetKind::DudLike, 60, 901).generate();
        let oracle = data.db.oracle(GedConfig::default());
        let index = NbIndex::build(
            oracle,
            NbIndexConfig {
                num_vps: 4,
                ladder: data.default_ladder.clone(),
                ..Default::default()
            },
        );
        let relevant = data.default_query().relevant_set(&data.db);
        let (want, _) = index.query(relevant.clone(), data.default_theta, 4);

        let json = index.save_json();
        let fresh_oracle = data.db.oracle(GedConfig::default());
        let loaded = NbIndex::load_json(&json, fresh_oracle).unwrap();
        let (got, _) = loaded.query(relevant, data.default_theta, 4);
        assert_eq!(got.ids, want.ids);
        assert_eq!(got.pi_trajectory, want.pi_trajectory);
    }

    /// Save → load → save must reproduce the exact payload bytes, and the
    /// loaded index must answer a fixed query byte-identically (the full
    /// `AnswerSet` debug form covers ids, coverage, and the π trajectory).
    #[test]
    fn round_trip_is_byte_identical() {
        let data = DatasetSpec::new(DatasetKind::DudLike, 50, 904).generate();
        let oracle = data.db.oracle(GedConfig::default());
        let index = NbIndex::build(
            oracle,
            NbIndexConfig {
                num_vps: 4,
                ladder: data.default_ladder.clone(),
                ..Default::default()
            },
        );
        let relevant = data.default_query().relevant_set(&data.db);
        let (want, _) = index.query(relevant.clone(), data.default_theta, 5);

        let json = index.save_json();
        let loaded = NbIndex::load_json(&json, data.db.oracle(GedConfig::default())).unwrap();
        assert_eq!(
            loaded.save_json(),
            json,
            "re-serializing a loaded index must be byte-identical"
        );
        let (got, _) = loaded.query(relevant, data.default_theta, 5);
        assert_eq!(
            format!("{got:?}"),
            format!("{want:?}"),
            "loaded index must answer byte-identically"
        );
    }

    /// A bumped `version` field must surface as the typed
    /// [`PersistError::Version`] — never a panic or a silent misread.
    #[test]
    fn version_mismatch_is_typed_error() {
        let data = DatasetSpec::new(DatasetKind::DudLike, 12, 905).generate();
        let oracle = data.db.oracle(GedConfig::default());
        let index = NbIndex::build(oracle, NbIndexConfig::default());
        let json = index.save_json();
        let bumped = json.replacen("\"version\":2", "\"version\":999", 1);
        assert_ne!(bumped, json, "fixture must actually bump the version");
        match NbIndex::load_json(&bumped, data.db.oracle(GedConfig::default())) {
            Err(PersistError::Version(v)) => assert_eq!(v, 999),
            other => panic!("expected Version error, got {other:?}"),
        }
    }

    #[test]
    fn graph_count_mismatch_rejected() {
        let data = DatasetSpec::new(DatasetKind::DudLike, 40, 902).generate();
        let oracle = data.db.oracle(GedConfig::default());
        let index = NbIndex::build(oracle, NbIndexConfig::default());
        let json = index.save_json();
        let smaller = data.db.prefix(10).oracle(GedConfig::default());
        match NbIndex::load_json(&json, smaller) {
            Err(PersistError::GraphCountMismatch { expected, got }) => {
                assert_eq!(expected, 40);
                assert_eq!(got, 10);
            }
            other => panic!("expected mismatch, got {other:?}"),
        }
    }

    /// The mutation epoch must round-trip through persistence, and
    /// [`NbIndex::load_json_at_epoch`] must reject a snapshot recorded at a
    /// different epoch with the typed error — the load-after-mutate
    /// staleness guard.
    #[test]
    fn epoch_round_trips_and_stale_snapshot_rejected() {
        let data = DatasetSpec::new(DatasetKind::DudLike, 30, 906).generate();
        let oracle = data.db.oracle(GedConfig::default());
        let mut index = NbIndex::build(
            oracle,
            NbIndexConfig {
                num_vps: 4,
                ladder: data.default_ladder.clone(),
                ..Default::default()
            },
        );
        index.remove(3).unwrap();
        index.remove(7).unwrap();
        assert_eq!(index.epoch(), 2);

        let json = index.save_json();
        let loaded =
            NbIndex::load_json_at_epoch(&json, data.db.oracle(GedConfig::default()), 2).unwrap();
        assert_eq!(loaded.epoch(), 2, "epoch must round-trip");
        assert!(!loaded.tree().is_live(3) && !loaded.tree().is_live(7));

        match NbIndex::load_json_at_epoch(&json, data.db.oracle(GedConfig::default()), 5) {
            Err(PersistError::EpochMismatch { snapshot, expected }) => {
                assert_eq!(snapshot, 2);
                assert_eq!(expected, 5);
            }
            other => panic!("expected EpochMismatch, got {other:?}"),
        }
        // The unchecked loader still accepts the snapshot as-is.
        assert!(NbIndex::load_json(&json, data.db.oracle(GedConfig::default())).is_ok());
    }

    #[test]
    fn garbage_payload_rejected() {
        let data = DatasetSpec::new(DatasetKind::DudLike, 10, 903).generate();
        let oracle = data.db.oracle(GedConfig::default());
        assert!(matches!(
            NbIndex::load_json("{not json", oracle),
            Err(PersistError::Format(_))
        ));
    }

    /// Builds a mutated index (insert + remove, so tombstones and a non-zero
    /// epoch are exercised) plus the dataset it came from.
    fn mutated_index(size: usize, seed: u64) -> (graphrep_datagen::Dataset, NbIndex) {
        let data = DatasetSpec::new(DatasetKind::DudLike, size, seed).generate();
        let oracle = data.db.oracle(GedConfig::default());
        let mut index = NbIndex::build(
            oracle,
            NbIndexConfig {
                num_vps: 4,
                ladder: data.default_ladder.clone(),
                ..Default::default()
            },
        );
        index.remove(1).unwrap();
        index.remove(size as u32 / 2).unwrap();
        (data, index)
    }

    /// Binary save → load must preserve answers, the epoch, tombstones, and
    /// re-serialize to the exact same bytes; the binary file must also be
    /// several times smaller than the JSON one.
    #[test]
    fn bin_round_trip_is_byte_identical_and_smaller() {
        let (data, index) = mutated_index(60, 910);
        let relevant = data.default_query().relevant_set(&data.db);
        let (want, _) = index.query(relevant.clone(), data.default_theta, 5);

        let bin = index.save_bin();
        let json = index.save_json();
        assert!(
            bin.len() * 3 < json.len(),
            "binary ({}) should be well under a third of JSON ({})",
            bin.len(),
            json.len()
        );

        let loaded = NbIndex::load_bin(&bin, data.db.oracle(GedConfig::default())).unwrap();
        assert_eq!(loaded.epoch(), index.epoch());
        assert!(!loaded.tree().is_live(1) && !loaded.tree().is_live(30));
        assert_eq!(loaded.save_bin(), bin, "re-encoding must be byte-identical");
        assert_eq!(
            loaded.save_json(),
            json,
            "a binary-loaded index must serialize to the same JSON as the original"
        );
        let (got, _) = loaded.query(relevant, data.default_theta, 5);
        assert_eq!(format!("{got:?}"), format!("{want:?}"));
    }

    #[test]
    fn bin_epoch_guard_matches_json_semantics() {
        let (data, index) = mutated_index(30, 911);
        let bin = index.save_bin();
        let at = index.epoch();
        assert!(NbIndex::load_bin_at_epoch(&bin, data.db.oracle(GedConfig::default()), at).is_ok());
        match NbIndex::load_bin_at_epoch(&bin, data.db.oracle(GedConfig::default()), at + 3) {
            Err(PersistError::EpochMismatch { snapshot, expected }) => {
                assert_eq!(snapshot, at);
                assert_eq!(expected, at + 3);
            }
            other => panic!("expected EpochMismatch, got {other:?}"),
        }
    }

    /// Satellite: a file cut short mid-payload is the typed `Truncated`
    /// error — at every possible cut point, never a panic.
    #[test]
    fn bin_truncation_is_typed_error() {
        let (data, index) = mutated_index(20, 912);
        let bin = index.save_bin();
        for cut in [0, 4, 12, 27, 28, bin.len() / 2, bin.len() - 1] {
            match NbIndex::load_bin(&bin[..cut], data.db.oracle(GedConfig::default())) {
                Err(PersistError::Truncated { expected, got }) => {
                    assert_eq!(got, cut);
                    assert!(expected > cut, "cut {cut}: expected {expected}");
                }
                other => panic!("cut {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    /// Satellite: a flipped byte in the stored checksum (and equally in the
    /// payload it vouches for) is the typed `Checksum` error.
    #[test]
    fn bin_checksum_flip_is_typed_error() {
        let (data, index) = mutated_index(20, 913);
        let bin = index.save_bin();
        // Flip one byte of the stored checksum (header offset 20..28)…
        let mut bad_header = bin.clone();
        bad_header[21] ^= 0xff;
        match NbIndex::load_bin(&bad_header, data.db.oracle(GedConfig::default())) {
            Err(PersistError::Checksum { expected, got }) => assert_ne!(expected, got),
            other => panic!("expected Checksum, got {other:?}"),
        }
        // …and one byte of the payload itself.
        let mut bad_payload = bin.clone();
        let last = bad_payload.len() - 1;
        bad_payload[last] ^= 0x55;
        assert!(matches!(
            NbIndex::load_bin(&bad_payload, data.db.oracle(GedConfig::default())),
            Err(PersistError::Checksum { .. })
        ));
    }

    /// Satellite: a bumped version field in the binary header is the same
    /// typed `Version` error the JSON path raises.
    #[test]
    fn bin_wrong_version_is_typed_error() {
        let (data, index) = mutated_index(20, 914);
        let mut bin = index.save_bin();
        bin[8] = 99; // version u32 LE lives at header offset 8..12
        match NbIndex::load_bin(&bin, data.db.oracle(GedConfig::default())) {
            Err(PersistError::Version(v)) => assert_eq!(v, 99),
            other => panic!("expected Version, got {other:?}"),
        }
    }

    /// Satellite: byte-swapped magic (what a big-endian writer would emit)
    /// and plain foreign bytes are both the typed `Magic` error.
    #[test]
    fn bin_wrong_endian_magic_is_typed_error() {
        let (data, index) = mutated_index(20, 915);
        let mut swapped = index.save_bin();
        swapped[..8].reverse();
        match NbIndex::load_bin(&swapped, data.db.oracle(GedConfig::default())) {
            Err(PersistError::Magic { got }) => assert_eq!(&got, b"1XDIBNRG"),
            other => panic!("expected Magic, got {other:?}"),
        }
        // A JSON index handed to the binary loader is also just a bad magic.
        let json = index.save_json();
        assert!(matches!(
            NbIndex::load_bin(json.as_bytes(), data.db.oracle(GedConfig::default())),
            Err(PersistError::Magic { .. })
        ));
    }

    /// An intact, correctly checksummed header over a shape-violating
    /// payload (here: trailing bytes after a complete index) is the typed
    /// `Corrupt` error — the checksum vouches for the bytes, the shape
    /// validation for their meaning.
    #[test]
    fn bin_shape_violation_is_typed_corrupt_error() {
        let (data, index) = mutated_index(20, 916);
        let mut bad = index.save_bin();
        bad.push(0x00);
        let payload_len = (bad.len() - crate::binfmt::HEADER_LEN) as u64;
        bad[12..20].copy_from_slice(&payload_len.to_le_bytes());
        let sum = crate::binfmt::fnv1a64(&bad[crate::binfmt::HEADER_LEN..]);
        bad[20..28].copy_from_slice(&sum.to_le_bytes());
        match NbIndex::load_bin(&bad, data.db.oracle(GedConfig::default())) {
            Err(PersistError::Corrupt(why)) => {
                assert!(why.contains("trailing"), "unexpected reason: {why}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }
}
