//! Differential equivalence under online mutation (DESIGN.md §10): random
//! interleavings of insert / remove / query / refine must leave the mutated
//! NB-Index answering **byte-identically** to an index built from scratch
//! over the same live state, at every checkpoint. Tree invariants (radius /
//! diameter containment, live counts) are re-validated after every op; with
//! `--features invariant-audit` the π̂ ceiling audits also fire inside every
//! session initialization these checkpoints perform.

use graphrep_core::{MutationOutcome, NbIndex, NbIndexConfig};
use graphrep_datagen::{DatasetKind, DatasetSpec};
use graphrep_ged::{DistanceOracle, GedConfig, GedEngine};
use graphrep_graph::{generate::mutate, Graph, GraphId};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn index_config(ladder: &[f64]) -> NbIndexConfig {
    NbIndexConfig {
        num_vps: 4,
        ladder: ladder.to_vec(),
        ..Default::default()
    }
}

/// The harness pairs a mutated index with a model of the state it should be
/// in: the full id space (tombstoned graphs keep their slot) plus live
/// flags. A reference oracle over the same id space is grown alongside so
/// checkpoint rebuilds share one distance cache — distances are
/// deterministic, so caching cannot change any answer.
struct Harness {
    index: NbIndex,
    ref_oracle: Arc<DistanceOracle>,
    graphs: Vec<Graph>,
    live: Vec<bool>,
    ladder: Vec<f64>,
    ops: usize,
}

impl Harness {
    fn new(size: usize, seed: u64) -> Self {
        let data = DatasetSpec::new(DatasetKind::DudLike, size, seed).generate();
        let oracle = data.db.oracle(GedConfig::default());
        let index = NbIndex::build(oracle, index_config(&data.default_ladder));
        let graphs = data.db.graphs().to_vec();
        let ref_oracle = Arc::new(DistanceOracle::new(
            Arc::new(graphs.clone()),
            GedEngine::new(GedConfig::default()),
        ));
        Harness {
            index,
            ref_oracle,
            live: vec![true; graphs.len()],
            graphs,
            ladder: data.default_ladder.clone(),
            ops: 0,
        }
    }

    fn live_ids(&self) -> Vec<GraphId> {
        (0..self.graphs.len() as GraphId)
            .filter(|&g| self.live[g as usize])
            .collect()
    }

    fn validate(&self) {
        self.index
            .tree()
            .validate(self.index.oracle())
            .expect("tree invariants must hold after every mutation");
        assert_eq!(self.index.tree().len(), self.graphs.len());
        assert_eq!(
            self.index.tree().live_len(),
            self.live.iter().filter(|&&l| l).count()
        );
    }

    fn insert(&mut self, rng: &mut SmallRng) -> MutationOutcome {
        let ids = self.live_ids();
        let src = ids[rng.gen_range(0..ids.len())] as usize;
        let edits = 1 + rng.gen_range(0..3);
        let g = mutate(rng, &self.graphs[src], edits, &[0, 1], &[0]);
        let (id, out) = self.index.insert(g.clone()).expect("insert must succeed");
        assert_eq!(id as usize, self.graphs.len(), "ids are allocated densely");
        self.ref_oracle = Arc::new(self.ref_oracle.extended(g.clone()));
        self.graphs.push(g);
        self.live.push(true);
        self.ops += 1;
        self.validate();
        out
    }

    fn remove(&mut self, rng: &mut SmallRng) -> MutationOutcome {
        let ids = self.live_ids();
        // Keep enough graphs alive for queries to stay interesting.
        if ids.len() <= 6 {
            return MutationOutcome::Applied;
        }
        let victim = ids[rng.gen_range(0..ids.len())];
        let out = self.index.remove(victim).expect("remove must succeed");
        self.live[victim as usize] = false;
        self.ops += 1;
        self.validate();
        out
    }

    /// One differential checkpoint: a session on the mutated index and a
    /// session on a from-scratch rebuild answer an identical (θ, k)
    /// refinement sequence; every answer must match byte for byte.
    fn checkpoint(&mut self, rng: &mut SmallRng) {
        let reference = NbIndex::build(Arc::clone(&self.ref_oracle), index_config(&self.ladder));
        let live = self.live_ids();
        let got_session = self.index.start_session(live.clone());
        let want_session = reference.start_session(live);
        let refinements = 1 + rng.gen_range(0..3);
        for _ in 0..refinements {
            let slot = rng.gen_range(0..self.ladder.len());
            let theta = if rng.gen_bool(0.5) {
                self.ladder[slot]
            } else {
                // Off-ladder θ exercises the interpolation path too.
                self.ladder[slot] * 0.9 + 0.3
            };
            let k = 1 + rng.gen_range(0..5);
            let (got, _) = got_session.run(theta, k);
            let (want, _) = want_session.run(theta, k);
            assert_eq!(
                format!("{got:?}"),
                format!("{want:?}"),
                "divergence after {} ops at θ = {theta}, k = {k}",
                self.ops
            );
            self.ops += 1;
        }
    }

    /// Runs a scripted op sequence: each byte picks insert / remove /
    /// checkpoint, with a final checkpoint so every sequence ends verified.
    fn run_script(&mut self, script: &[u8], rng: &mut SmallRng) {
        for &op in script {
            match op % 5 {
                0 | 1 => {
                    self.insert(rng);
                }
                2 | 3 => {
                    self.remove(rng);
                }
                _ => self.checkpoint(rng),
            }
        }
        self.checkpoint(rng);
    }
}

/// The acceptance workload: three seeds, ≥ 200 ops in total per seed-set,
/// with every checkpoint byte-identical to a fresh rebuild.
#[test]
fn differential_equivalence_three_seeds() {
    for seed in [5101u64, 5102, 5103] {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut h = Harness::new(36, seed);
        let script: Vec<u8> = (0..100).map(|_| rng.gen()).collect();
        h.run_script(&script, &mut rng);
        assert!(
            h.ops >= 100,
            "seed {seed}: expected at least 100 ops, ran {}",
            h.ops
        );
    }
}

/// Tombstone churn heavy enough to trip the rebuild policy repeatedly must
/// still agree with fresh rebuilds.
#[test]
fn rebuild_policy_churn_stays_equivalent() {
    let mut rng = SmallRng::seed_from_u64(2026);
    let mut h = Harness::new(30, 2026);
    h.index.set_policy(graphrep_core::MutationPolicy {
        max_tombstone_ratio: 0.15,
        ..Default::default()
    });
    let mut rebuilds = 0;
    for round in 0..10 {
        let outs = [h.insert(&mut rng), h.remove(&mut rng), h.remove(&mut rng)];
        rebuilds += outs
            .iter()
            .filter(|&&o| o == MutationOutcome::Rebuilt)
            .count();
        if round % 3 == 0 {
            h.checkpoint(&mut rng);
        }
    }
    h.checkpoint(&mut rng);
    assert!(rebuilds > 0, "the 0.15 ratio must trip at least once");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Randomized op interleavings: any script over any seed must keep the
    /// mutated index equivalent to a fresh rebuild at every checkpoint.
    #[test]
    fn random_op_sequences_match_fresh_rebuild(
        seed in 0u64..10_000,
        script in collection::vec(0u8..255, 12..24),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut h = Harness::new(24, seed ^ 0xA5A5);
        h.run_script(&script, &mut rng);
    }
}
