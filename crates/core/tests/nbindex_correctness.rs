//! NB-Index exactness: the indexed search must return precisely the Alg 1
//! baseline greedy answer — same ids for positive-gain picks, identical
//! π trajectory throughout — on every dataset regime.

use graphrep_core::{baseline_greedy, BruteForceProvider, NbIndex, NbIndexConfig};
use graphrep_datagen::{DatasetKind, DatasetSpec};
use graphrep_ged::GedConfig;

fn check_dataset(kind: DatasetKind, size: usize, seed: u64, k: usize) {
    let data = DatasetSpec::new(kind, size, seed).generate();
    let oracle = data.db.oracle(GedConfig::default());
    let relevant = data.default_query().relevant_set(&data.db);
    assert!(!relevant.is_empty(), "dataset must have relevant graphs");
    let theta = data.default_theta;

    let reference = baseline_greedy(
        &BruteForceProvider::new(&oracle, &relevant),
        &relevant,
        theta,
        k,
    );

    let index = NbIndex::build(
        oracle,
        NbIndexConfig {
            num_vps: 8,
            ladder: data.default_ladder.clone(),
            ..NbIndexConfig::default()
        },
    );
    let (answer, stats) = index.query(relevant.clone(), theta, k);

    assert_eq!(
        answer.pi_trajectory,
        reference.pi_trajectory,
        "{}: π trajectory must match baseline greedy",
        kind.name()
    );
    assert_eq!(answer.covered, reference.covered, "{}", kind.name());
    // Ids must match exactly wherever the pick had positive marginal gain
    // (zero-gain picks are arbitrary on both sides).
    let mut prev = 0.0;
    for (i, &pi) in reference.pi_trajectory.iter().enumerate() {
        if pi > prev {
            assert_eq!(
                answer.ids[i],
                reference.ids[i],
                "{}: pick {i} diverged",
                kind.name()
            );
        }
        prev = pi;
    }
    assert!(stats.verified_graphs as usize >= answer.len());
}

#[test]
fn dud_like_matches_baseline() {
    check_dataset(DatasetKind::DudLike, 120, 101, 6);
}

#[test]
fn dblp_like_matches_baseline() {
    check_dataset(DatasetKind::DblpLike, 120, 102, 6);
}

#[test]
fn amazon_like_matches_baseline() {
    check_dataset(DatasetKind::AmazonLike, 100, 103, 5);
}

#[test]
fn multiple_seeds_and_ks() {
    for (seed, k) in [(7u64, 1usize), (8, 3), (9, 10)] {
        check_dataset(DatasetKind::DudLike, 80, seed, k);
    }
}

#[test]
fn refinement_matches_fresh_runs() {
    // A session refined across θ values must give the same answers as
    // one-shot queries at each θ.
    let data = DatasetSpec::new(DatasetKind::DudLike, 100, 104).generate();
    let oracle = data.db.oracle(GedConfig::default());
    let relevant = data.default_query().relevant_set(&data.db);
    let index = NbIndex::build(
        oracle.clone(),
        NbIndexConfig {
            num_vps: 8,
            ladder: data.default_ladder.clone(),
            ..NbIndexConfig::default()
        },
    );
    let session = index.start_session(relevant.clone());
    for theta in [2.0, 4.0, 5.0, 3.5] {
        let (refined, _) = session.run(theta, 5);
        let reference = baseline_greedy(
            &BruteForceProvider::new(&oracle, &relevant),
            &relevant,
            theta,
            5,
        );
        assert_eq!(
            refined.pi_trajectory, reference.pi_trajectory,
            "θ = {theta}"
        );
    }
}

#[test]
fn theta_beyond_ladder_still_exact() {
    let data = DatasetSpec::new(DatasetKind::DudLike, 80, 105).generate();
    let oracle = data.db.oracle(GedConfig::default());
    let relevant = data.default_query().relevant_set(&data.db);
    let index = NbIndex::build(
        oracle.clone(),
        NbIndexConfig {
            num_vps: 8,
            ladder: vec![2.0, 3.0], // deliberately short ladder
            ..NbIndexConfig::default()
        },
    );
    let theta = 6.0; // beyond the ladder → fresh bounds path
    let (answer, stats) = index.query(relevant.clone(), theta, 4);
    assert_eq!(stats.ladder_slot, None);
    let reference = baseline_greedy(
        &BruteForceProvider::new(&oracle, &relevant),
        &relevant,
        theta,
        4,
    );
    assert_eq!(answer.pi_trajectory, reference.pi_trajectory);
}

#[test]
fn empty_ladder_works() {
    let data = DatasetSpec::new(DatasetKind::DblpLike, 60, 106).generate();
    let oracle = data.db.oracle(GedConfig::default());
    let relevant = data.default_query().relevant_set(&data.db);
    let index = NbIndex::build(oracle, NbIndexConfig::default());
    let (answer, stats) = index.query(relevant, 4.0, 3);
    assert_eq!(stats.ladder_slot, None);
    assert!(answer.len() <= 3);
}

#[test]
fn index_saves_distance_computations_vs_brute_force() {
    let data = DatasetSpec::new(DatasetKind::DudLike, 150, 107).generate();
    let relevant = data.default_query().relevant_set(&data.db);
    let theta = data.default_theta;

    // Brute-force query cost (neighborhood initialization dominates).
    let oracle_a = data.db.oracle(GedConfig::default());
    let _ = baseline_greedy(
        &BruteForceProvider::new(&oracle_a, &relevant),
        &relevant,
        theta,
        5,
    );
    let brute_calls = oracle_a.engine_calls();

    // NB-Index query cost (index build excluded — it is offline).
    let oracle_b = data.db.oracle(GedConfig::default());
    let index = NbIndex::build(
        oracle_b.clone(),
        NbIndexConfig {
            num_vps: 10,
            ladder: data.default_ladder.clone(),
            ..NbIndexConfig::default()
        },
    );
    oracle_b.reset_stats();
    let session = index.start_session(relevant.clone());
    let (_, stats) = session.run(theta, 5);
    assert!(
        stats.distance_calls < brute_calls / 2,
        "NB-Index used {} engine calls, brute force used {brute_calls}",
        stats.distance_calls
    );
}
