//! Randomized equivalence: across random datasets, thresholds, budgets and
//! index parameters, the NB-Index search must reproduce the baseline greedy
//! π trajectory exactly.

use graphrep_core::{baseline_greedy, BruteForceProvider, NbIndex, NbIndexConfig, NbTreeConfig};
use graphrep_datagen::{DatasetKind, DatasetSpec};
use graphrep_ged::GedConfig;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn nbindex_equals_greedy_on_random_configs(
        seed in 0u64..10_000,
        kind_pick in 0usize..3,
        theta_steps in 1u32..8,
        k in 1usize..8,
        num_vps in 1usize..10,
        branching in 2usize..12,
    ) {
        let kind = [DatasetKind::DudLike, DatasetKind::DblpLike, DatasetKind::AmazonLike][kind_pick];
        let data = DatasetSpec::new(kind, 60, seed).generate();
        let theta = theta_steps as f64;
        let oracle = data.db.oracle(GedConfig::default());
        let relevant = data.default_query().relevant_set(&data.db);
        prop_assume!(!relevant.is_empty());

        let reference = baseline_greedy(
            &BruteForceProvider::new(&oracle, &relevant),
            &relevant,
            theta,
            k,
        );
        let index = NbIndex::build(
            oracle,
            NbIndexConfig {
                num_vps,
                tree: NbTreeConfig { branching, pivot_sample: 4 * branching },
                ladder: data.default_ladder.clone(),
                seed,
            },
        );
        let (answer, _) = index.query(relevant, theta, k);
        prop_assert_eq!(answer.pi_trajectory, reference.pi_trajectory);
        prop_assert_eq!(answer.covered, reference.covered);
    }
}
