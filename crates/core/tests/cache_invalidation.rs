//! Cache soundness under online mutation (DESIGN.md §11): with one shared
//! [`ViewStore`] and [`AnswerCache`] living across every mutation epoch, a
//! cached answer must **never** be served across an epoch boundary. The
//! proof is differential, extending the `mutation_equivalence` harness:
//! after random interleavings of insert / remove / query, every cached run
//! on the mutated index is compared byte-for-byte against a from-scratch
//! rebuild over the same live state. Epoch keying alone must make the
//! caches sound — explicit `invalidate_all` is a memory measure, so the
//! harness runs both with and without it.

use graphrep_core::{AnswerCache, CacheConfig, NbIndex, NbIndexConfig, ViewStore};
use graphrep_datagen::{DatasetKind, DatasetSpec};
use graphrep_ged::{DistanceOracle, GedConfig, GedEngine};
use graphrep_graph::{generate::mutate, Graph, GraphId};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn index_config(ladder: &[f64]) -> NbIndexConfig {
    NbIndexConfig {
        num_vps: 4,
        ladder: ladder.to_vec(),
        ..Default::default()
    }
}

/// Eagerly-promoting cache configuration so view hits appear within the
/// short per-checkpoint refinement sequences.
fn cache_config() -> CacheConfig {
    CacheConfig {
        promote_after: 1,
        ..CacheConfig::default()
    }
}

/// A mutated index paired with a model of its live state, a reference
/// oracle for from-scratch rebuilds, and — unlike `mutation_equivalence` —
/// one view store and one answer cache shared across *all* epochs.
struct Harness {
    index: NbIndex,
    views: Arc<ViewStore>,
    answers: AnswerCache,
    /// When set, mutations also wipe the caches (the serving layer's
    /// policy); soundness must hold either way.
    invalidate_on_mutation: bool,
    ref_oracle: Arc<DistanceOracle>,
    graphs: Vec<Graph>,
    live: Vec<bool>,
    ladder: Vec<f64>,
    ops: usize,
}

impl Harness {
    fn new(size: usize, seed: u64, invalidate_on_mutation: bool) -> Self {
        let data = DatasetSpec::new(DatasetKind::DudLike, size, seed).generate();
        let oracle = data.db.oracle(GedConfig::default());
        let index = NbIndex::build(oracle, index_config(&data.default_ladder));
        let graphs = data.db.graphs().to_vec();
        let ref_oracle = Arc::new(DistanceOracle::new(
            Arc::new(graphs.clone()),
            GedEngine::new(GedConfig::default()),
        ));
        Harness {
            index,
            views: Arc::new(ViewStore::new(cache_config())),
            answers: AnswerCache::new(cache_config()),
            invalidate_on_mutation,
            ref_oracle,
            live: vec![true; graphs.len()],
            graphs,
            ladder: data.default_ladder.clone(),
            ops: 0,
        }
    }

    fn live_ids(&self) -> Vec<GraphId> {
        (0..self.graphs.len() as GraphId)
            .filter(|&g| self.live[g as usize])
            .collect()
    }

    fn after_mutation(&mut self) {
        self.ops += 1;
        if self.invalidate_on_mutation {
            self.views.invalidate_all();
            self.answers.invalidate_all();
        }
    }

    fn insert(&mut self, rng: &mut SmallRng) {
        let ids = self.live_ids();
        let src = ids[rng.gen_range(0..ids.len())] as usize;
        let edits = 1 + rng.gen_range(0..3);
        let g = mutate(rng, &self.graphs[src], edits, &[0, 1], &[0]);
        self.index.insert(g.clone()).expect("insert must succeed");
        self.ref_oracle = Arc::new(self.ref_oracle.extended(g.clone()));
        self.graphs.push(g);
        self.live.push(true);
        self.after_mutation();
    }

    fn remove(&mut self, rng: &mut SmallRng) {
        let ids = self.live_ids();
        // Keep enough graphs alive for queries to stay interesting.
        if ids.len() <= 6 {
            return;
        }
        let victim = ids[rng.gen_range(0..ids.len())];
        self.index.remove(victim).expect("remove must succeed");
        self.live[victim as usize] = false;
        self.after_mutation();
    }

    /// One differential checkpoint: every (θ, k) is run **twice** through
    /// the shared caches — the repeat must report `cached == true` — and
    /// both results must match a from-scratch rebuild byte for byte. A hit
    /// carried over an epoch boundary would diverge here, because the
    /// rebuild only ever sees the current live state.
    fn checkpoint(&mut self, rng: &mut SmallRng) {
        let reference = NbIndex::build(Arc::clone(&self.ref_oracle), index_config(&self.ladder));
        let live = self.live_ids();
        let got_session = self
            .index
            .start_session(live.clone())
            .with_views(Arc::clone(&self.views));
        let want_session = reference.start_session(live);
        let refinements = 1 + rng.gen_range(0..3);
        for _ in 0..refinements {
            let slot = rng.gen_range(0..self.ladder.len());
            let theta = if rng.gen_bool(0.5) {
                self.ladder[slot]
            } else {
                self.ladder[slot] * 0.9 + 0.3
            };
            let k = 1 + rng.gen_range(0..5);
            let (want, _) = want_session.run(theta, k);
            let want_fp = format!("{want:?}");
            let (first, _, _) = got_session.run_cached(theta, k, &self.answers);
            assert_eq!(
                format!("{:?}", *first),
                want_fp,
                "divergence after {} ops at epoch {}, θ = {theta}, k = {k}",
                self.ops,
                self.index.epoch(),
            );
            let (again, _, cached) = got_session.run_cached(theta, k, &self.answers);
            assert!(cached, "repeat of (θ = {theta}, k = {k}) must hit");
            assert_eq!(
                format!("{:?}", *again),
                want_fp,
                "cached repeat diverged at epoch {}, θ = {theta}, k = {k}",
                self.index.epoch(),
            );
            self.ops += 1;
        }
        for c in [self.answers.counters(), self.views.counters()] {
            assert_eq!(c.lookups, c.hits + c.misses, "conservation broke: {c:?}");
            assert!(c.evictions <= c.insertions, "over-eviction: {c:?}");
        }
    }

    fn run_script(&mut self, script: &[u8], rng: &mut SmallRng) {
        for &op in script {
            match op % 5 {
                0 | 1 => self.insert(rng),
                2 | 3 => self.remove(rng),
                _ => self.checkpoint(rng),
            }
        }
        self.checkpoint(rng);
    }
}

/// Epoch keying alone (no explicit invalidation) keeps one long-lived
/// cache pair sound across three seeds of mutation churn; repeats hit.
#[test]
fn epoch_keys_alone_keep_shared_caches_sound() {
    for seed in [6101u64, 6102, 6103] {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut h = Harness::new(30, seed, false);
        let script: Vec<u8> = (0..40).map(|_| rng.gen()).collect();
        h.run_script(&script, &mut rng);
        let a = h.answers.counters();
        assert!(a.hits > 0, "seed {seed}: repeats never hit: {a:?}");
        assert_eq!(
            a.invalidated, 0,
            "seed {seed}: nothing should be invalidated in this mode"
        );
    }
}

/// The serving layer's policy — wipe both caches on every mutation — must
/// agree with fresh rebuilds too, and the history counters must survive
/// the wipes monotonically.
#[test]
fn explicit_invalidation_keeps_history_and_soundness() {
    let mut rng = SmallRng::seed_from_u64(7207);
    let mut h = Harness::new(30, 7207, true);
    let script: Vec<u8> = (0..40).map(|_| rng.gen()).collect();
    let mut last_hits = 0u64;
    for chunk in script.chunks(8) {
        h.run_script(chunk, &mut rng);
        let a = h.answers.counters();
        assert!(a.hits >= last_hits, "hit counter went backwards: {a:?}");
        last_hits = a.hits;
    }
    let a = h.answers.counters();
    assert!(
        a.invalidated > 0,
        "mutations must have wiped entries: {a:?}"
    );
    assert!(a.hits > 0, "within-epoch repeats must still hit: {a:?}");
}

/// A stale entry planted under an old epoch is unreachable after any
/// mutation: the epoch in the key changes, so the poisoned answer can
/// never be served again.
#[test]
fn stale_epoch_entries_are_unreachable_after_mutation() {
    let mut rng = SmallRng::seed_from_u64(99);
    let mut h = Harness::new(24, 99, false);
    let theta = h.ladder[1];
    let epoch0 = h.index.epoch();

    let session = h
        .index
        .start_session(h.live_ids())
        .with_views(Arc::clone(&h.views));
    let (_, _, cached) = session.run_cached(theta, 3, &h.answers);
    assert!(!cached, "first run must miss");
    let (_, _, cached) = session.run_cached(theta, 3, &h.answers);
    assert!(cached, "repeat within the epoch must hit");
    drop(session);

    h.insert(&mut rng);
    assert_ne!(h.index.epoch(), epoch0, "insert must bump the epoch");
    let session = h
        .index
        .start_session(h.live_ids())
        .with_views(Arc::clone(&h.views));
    let (_, _, cached) = session.run_cached(theta, 3, &h.answers);
    assert!(!cached, "epoch bump must force a recompute");
    h.checkpoint(&mut rng);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Randomized op interleavings over long-lived shared caches: any
    /// script over any seed must keep every cached answer byte-identical
    /// to a fresh rebuild at every checkpoint.
    #[test]
    fn random_op_sequences_never_serve_stale_answers(
        seed in 0u64..10_000,
        invalidate_sel in 0u8..2,
        script in collection::vec(0u8..255, 10..20),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut h = Harness::new(22, seed ^ 0x5A5A, invalidate_sel == 1);
        h.run_script(&script, &mut rng);
    }
}
