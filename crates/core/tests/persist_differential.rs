//! Differential persistence: the binary round-trip, the JSON round-trip, and
//! the in-memory index must be indistinguishable — across dataset kinds and
//! a randomized insert/remove mutation script, with answers and re-encoded
//! bytes compared at every mutation epoch.

use graphrep_core::{NbIndex, NbIndexConfig};
use graphrep_datagen::{DatasetKind, DatasetSpec};
use graphrep_ged::GedConfig;
use graphrep_graph::generate::mutate;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Queries all three views of the same epoch (in-memory, JSON-reloaded,
/// binary-reloaded) and asserts byte-identical answers plus cross-format
/// re-encode stability.
fn assert_formats_agree(
    index: &NbIndex,
    relevant: &[u32],
    theta: f64,
    k: usize,
) -> Result<(), TestCaseError> {
    let json = index.save_json();
    let bin = index.save_bin();
    let from_json =
        NbIndex::load_json_at_epoch(&json, index.oracle_arc(), index.epoch()).expect("json load");
    let from_bin =
        NbIndex::load_bin_at_epoch(&bin, index.oracle_arc(), index.epoch()).expect("bin load");

    // Re-encoding from either loaded form reproduces the exact bytes of
    // both formats — the persisted state is format-independent.
    prop_assert_eq!(
        from_bin.save_json(),
        json.clone(),
        "bin→json re-encode drifted"
    );
    prop_assert_eq!(
        from_json.save_bin(),
        bin.clone(),
        "json→bin re-encode drifted"
    );
    prop_assert_eq!(from_bin.save_bin(), bin, "bin→bin re-encode drifted");
    prop_assert_eq!(from_json.save_json(), json, "json→json re-encode drifted");

    if relevant.is_empty() {
        return Ok(());
    }
    let (want, _) = index.query(relevant.to_vec(), theta, k);
    let (via_json, _) = from_json.query(relevant.to_vec(), theta, k);
    let (via_bin, _) = from_bin.query(relevant.to_vec(), theta, k);
    let want = format!("{want:?}");
    prop_assert_eq!(
        format!("{via_json:?}"),
        want.clone(),
        "JSON-loaded answers differ"
    );
    prop_assert_eq!(format!("{via_bin:?}"), want, "binary-loaded answers differ");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn binary_json_and_memory_agree_at_every_epoch(
        seed in 0u64..10_000,
        kind_pick in 0usize..3,
        script in proptest::collection::vec(0u8..3, 1..5),
        k in 1usize..6,
    ) {
        let kind =
            [DatasetKind::DudLike, DatasetKind::DblpLike, DatasetKind::AmazonLike][kind_pick];
        let data = DatasetSpec::new(kind, 40, seed).generate();
        let theta = data.default_theta;
        let oracle = data.db.oracle(GedConfig::default());
        let mut index = NbIndex::build(
            oracle,
            NbIndexConfig {
                num_vps: 4,
                ladder: data.default_ladder.clone(),
                ..Default::default()
            },
        );
        let base_relevant = data.default_query().relevant_set(&data.db);
        prop_assume!(!base_relevant.is_empty());

        // Label alphabets for the insert op, drawn from the dataset itself.
        let mut node_alphabet: Vec<u32> = data.db.graph(0).node_labels().to_vec();
        node_alphabet.sort_unstable();
        node_alphabet.dedup();
        let mut edge_alphabet: Vec<u32> =
            data.db.graph(0).edges().iter().map(|e| e.label).collect();
        edge_alphabet.sort_unstable();
        edge_alphabet.dedup();
        if edge_alphabet.is_empty() {
            edge_alphabet.push(0);
        }

        let mut rng = SmallRng::seed_from_u64(seed ^ 0xD1FF);
        let live_relevant = |index: &NbIndex| -> Vec<u32> {
            base_relevant
                .iter()
                .copied()
                .filter(|&g| index.tree().is_live(g))
                .collect()
        };

        // Epoch 0 (fresh build), then after every mutation.
        assert_formats_agree(&index, &live_relevant(&index), theta, k)?;
        for op in script {
            match op {
                // Two insert variants (different perturbation depths) and
                // one remove, so scripts mix epochs of both kinds.
                0 | 1 => {
                    let src = rng.gen_range(0..data.db.len());
                    let g = mutate(
                        &mut rng,
                        data.db.graph(src as u32),
                        1 + usize::from(op),
                        &node_alphabet,
                        &edge_alphabet,
                    );
                    index.insert(g).expect("insert");
                }
                _ => {
                    let live: Vec<u32> = (0..index.tree().len() as u32)
                        .filter(|&g| index.tree().is_live(g))
                        .collect();
                    prop_assume!(!live.is_empty());
                    let victim = live[rng.gen_range(0..live.len())];
                    index.remove(victim).expect("remove");
                }
            }
            assert_formats_agree(&index, &live_relevant(&index), theta, k)?;
        }
    }
}
