//! Failure injection: the system must degrade gracefully — no panics, sane
//! answers — when the distance engine is starved (tiny A* budgets forcing
//! bipartite fallbacks) or runs in hybrid approximate mode.

use graphrep_core::{NbIndex, NbIndexConfig};
use graphrep_datagen::{DatasetKind, DatasetSpec};
use graphrep_ged::{GedConfig, GedMode};

#[test]
fn starved_budget_still_produces_valid_answers() {
    let data = DatasetSpec::new(DatasetKind::DudLike, 80, 1001).generate();
    // Budget of 1 expansion: nearly every exact search falls back to the
    // bipartite upper bound.
    let oracle = data.db.oracle(GedConfig {
        budget: 1,
        ..GedConfig::default()
    });
    let relevant = data.default_query().relevant_set(&data.db);
    let index = NbIndex::build(
        oracle.clone(),
        NbIndexConfig {
            num_vps: 4,
            ladder: data.default_ladder.clone(),
            ..Default::default()
        },
    );
    let (answer, _) = index.query(relevant.clone(), data.default_theta, 5);
    assert!(answer.len() <= 5);
    for &g in &answer.ids {
        assert!(relevant.contains(&g));
    }
    // Fallbacks must have been recorded, proving the injection worked.
    assert!(
        oracle.engine().counters().snapshot().budget_fallbacks > 0,
        "expected budget fallbacks under a starved engine"
    );
}

#[test]
fn hybrid_mode_runs_on_paper_scale_graphs() {
    // Graphs at the paper's true scale (~26 nodes) are far beyond exact GED;
    // hybrid mode routes them through the bipartite approximation.
    use graphrep_datagen::molecules::{self, MoleculeParams};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let mut rng = SmallRng::seed_from_u64(7);
    let m = molecules::generate(
        &mut rng,
        MoleculeParams {
            size: 60,
            scaffold_nodes: (22, 28),
            ..Default::default()
        },
    );
    let db = graphrep_core::GraphDatabase::new(m.graphs, m.features, m.labels);
    let oracle = db.oracle(GedConfig {
        mode: GedMode::Hybrid {
            exact_max_nodes: 12,
        },
        ..GedConfig::default()
    });
    let index = NbIndex::build(
        oracle,
        NbIndexConfig {
            num_vps: 4,
            ladder: vec![4.0, 8.0, 12.0, 20.0, 40.0],
            ..Default::default()
        },
    );
    let relevant: Vec<u32> = (0..60).collect();
    let (answer, _) = index.query(relevant, 8.0, 5);
    assert!(!answer.is_empty());
    assert!(answer.pi() > 0.0);
    for w in answer.pi_trajectory.windows(2) {
        assert!(w[1] >= w[0]);
    }
}

#[test]
fn starved_within_never_claims_false_membership_certificates() {
    // Even starved, `within` answers that return Some(d) must satisfy d ≤ τ.
    let data = DatasetSpec::new(DatasetKind::DblpLike, 40, 1002).generate();
    let oracle = data.db.oracle(GedConfig {
        budget: 2,
        ..GedConfig::default()
    });
    for i in 0..10u32 {
        for j in 0..10u32 {
            if let Some(d) = oracle.within(i, j, 3.0) {
                assert!(d <= 3.0 + 1e-9);
            }
        }
    }
}
