//! Edge cases of the query session: empty/degenerate inputs, θ extremes,
//! repeated runs, and stats sanity.

use graphrep_core::{NbIndex, NbIndexConfig};
use graphrep_datagen::{DatasetKind, DatasetSpec};
use graphrep_ged::GedConfig;

fn small_index(seed: u64) -> (graphrep_datagen::Dataset, NbIndex) {
    let data = DatasetSpec::new(DatasetKind::DudLike, 60, seed).generate();
    let oracle = data.db.oracle(GedConfig::default());
    let index = NbIndex::build(
        oracle,
        NbIndexConfig {
            num_vps: 4,
            ladder: data.default_ladder.clone(),
            ..Default::default()
        },
    );
    (data, index)
}

#[test]
fn k_zero_returns_empty() {
    let (data, index) = small_index(801);
    let relevant = data.default_query().relevant_set(&data.db);
    let (answer, _) = index.query(relevant, data.default_theta, 0);
    assert!(answer.is_empty());
    assert_eq!(answer.pi(), 0.0);
}

#[test]
fn empty_relevant_set_returns_empty() {
    let (_, index) = small_index(802);
    let (answer, _) = index.query(vec![], 4.0, 5);
    assert!(answer.is_empty());
    assert_eq!(answer.relevant, 0);
}

#[test]
fn k_exceeding_relevant_set_is_capped() {
    let (data, index) = small_index(803);
    let relevant = data.default_query().relevant_set(&data.db);
    let (answer, _) = index.query(relevant.clone(), data.default_theta, 10_000);
    assert!(answer.len() <= relevant.len());
    // Everything relevant must be covered when the whole set is selected.
    if answer.len() == relevant.len() {
        assert_eq!(answer.covered, relevant.len());
    }
}

#[test]
fn theta_zero_covers_only_duplicates() {
    let (data, index) = small_index(804);
    let relevant = data.default_query().relevant_set(&data.db);
    let k = 3.min(relevant.len());
    let (answer, _) = index.query(relevant.clone(), 0.0, k);
    // Each answer covers at least itself (d = 0 ≤ θ).
    assert!(answer.covered >= answer.len());
}

#[test]
fn huge_theta_covers_everything_with_one_pick() {
    let (data, index) = small_index(805);
    let relevant = data.default_query().relevant_set(&data.db);
    let (answer, _) = index.query(relevant.clone(), 1e6, 1);
    assert_eq!(answer.covered, relevant.len());
    assert!((answer.pi() - 1.0).abs() < 1e-12);
}

#[test]
fn repeated_runs_are_deterministic() {
    let (data, index) = small_index(806);
    let relevant = data.default_query().relevant_set(&data.db);
    let session = index.start_session(relevant);
    let (a, _) = session.run(data.default_theta, 5);
    let (b, _) = session.run(data.default_theta, 5);
    assert_eq!(a.ids, b.ids);
    assert_eq!(a.pi_trajectory, b.pi_trajectory);
}

#[test]
fn stats_fields_are_consistent() {
    let (data, index) = small_index(807);
    let relevant = data.default_query().relevant_set(&data.db);
    let session = index.start_session(relevant);
    let (answer, stats) = session.run(data.default_theta, 4);
    assert!(stats.verified_graphs >= answer.len() as u64);
    assert!(stats.nodes_expanded >= 1);
    assert!(stats.ladder_slot.is_some());
    assert!(stats.wall.as_nanos() > 0);
}

#[test]
fn single_graph_database() {
    let data = DatasetSpec::new(DatasetKind::DudLike, 1, 808).generate();
    let oracle = data.db.oracle(GedConfig::default());
    let index = NbIndex::build(oracle, NbIndexConfig::default());
    let (answer, _) = index.query(vec![0], 2.0, 3);
    assert_eq!(answer.ids, vec![0]);
    assert_eq!(answer.covered, 1);
}

#[test]
fn all_graphs_identical() {
    use graphrep_core::GraphDatabase;
    use graphrep_graph::{GraphBuilder, LabelInterner};
    let mut b = GraphBuilder::new();
    let a = b.add_node(0);
    let c = b.add_node(1);
    b.add_edge(a, c, 2).unwrap();
    let g = b.build();
    let graphs = vec![g; 20];
    let feats = (0..20).map(|i| vec![i as f64]).collect();
    let db = GraphDatabase::new(graphs, feats, LabelInterner::new());
    let oracle = db.oracle(GedConfig::default());
    let index = NbIndex::build(
        oracle,
        NbIndexConfig {
            num_vps: 3,
            ladder: vec![1.0, 2.0],
            ..Default::default()
        },
    );
    let relevant: Vec<u32> = (0..20).collect();
    let (answer, _) = index.query(relevant, 1.0, 4);
    // One pick covers everything (all distances are zero).
    assert_eq!(answer.pi_trajectory[0], 1.0);
    assert_eq!(answer.covered, 20);
}
