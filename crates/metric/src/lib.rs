#![warn(missing_docs)]
#![deny(unsafe_code)]
#![deny(missing_debug_implementations)]

//! Metric-space toolkit for `graphrep`.
//!
//! Everything the NB-Index needs from the metric space, independent of
//! graphs: [`Bitset`]s for neighborhood/coverage bookkeeping,
//! [`VantageTable`] — the Lipschitz embedding / vantage orderings of
//! Sec 6.2 — [`DistanceDistribution`] statistics (Figs 5(a)–(e)), the
//! vantage-point false-positive-rate theory of Sec 6.2.1 ([`fpr`]), and the
//! precomputed [`DistanceMatrix`] comparator.

pub mod bitset;
pub mod fpr;
pub mod space;
pub mod stats;
pub mod vantage;

pub use bitset::Bitset;
pub use space::DistanceMatrix;
pub use stats::DistanceDistribution;
pub use vantage::{theta_band, VantageTable};
