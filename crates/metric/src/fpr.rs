//! False-positive-rate theory for vantage points (paper Sec 6.2.1).
//!
//! The probability that a graph survives every vantage-point band test yet
//! lies outside the true θ-neighborhood is bounded by Eq. 11 (Gaussian
//! distances) and Eq. 12 (uniform distances). These bounds drive the choice
//! of `|V|` and are validated empirically in the Fig 5(f)–(h) experiment.

/// Error function, Abramowitz & Stegun 7.1.26 (|error| ≤ 1.5e-7).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Standard normal CDF Φ(x).
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Eq. 11: FPR upper bound when pairwise distances are `N(μ, σ²)`.
///
/// `FPR ≤ (1 − Φ((θ−μ)/σ)) · (2Φ(θ/σ) − 1)^|V|`
pub fn fpr_normal_bound(theta: f64, mu: f64, sigma: f64, num_vps: usize) -> f64 {
    assert!(sigma > 0.0, "sigma must be positive");
    let reject = 1.0 - normal_cdf((theta - mu) / sigma);
    let band = (2.0 * normal_cdf(theta / sigma) - 1.0).clamp(0.0, 1.0);
    reject * band.powi(num_vps as i32)
}

/// Eq. 12: exact FPR when pairwise distances are `U(0, m·θ)`.
///
/// `FPR = ((m−1)/m) · (1/m)^|V|` where `m·θ` is the space diameter.
pub fn fpr_uniform(m: f64, num_vps: usize) -> f64 {
    assert!(m >= 1.0, "diameter must be at least θ");
    (m - 1.0) / m * (1.0 / m).powi(num_vps as i32)
}

/// Smallest `|V| ≤ max_vps` whose Gaussian bound (Eq. 11) is ≤ `target`,
/// or `max_vps` if no count reaches the target.
///
/// This is the paper's recipe ("to limit the FPR below 5% … we choose 100
/// VPs"), applied to measured `μ, σ` of the dataset.
pub fn choose_vp_count(target: f64, theta: f64, mu: f64, sigma: f64, max_vps: usize) -> usize {
    for v in 1..=max_vps {
        if fpr_normal_bound(theta, mu, sigma, v) <= target {
            return v;
        }
    }
    max_vps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_values() {
        // Reference values from tables.
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
        assert!((erf(2.0) - 0.9953222650).abs() < 1e-6);
        assert!(erf(6.0) > 0.999999);
    }

    #[test]
    fn normal_cdf_reference_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
    }

    #[test]
    fn normal_bound_decreases_with_vps() {
        let b1 = fpr_normal_bound(10.0, 30.0, 8.0, 1);
        let b10 = fpr_normal_bound(10.0, 30.0, 8.0, 10);
        let b100 = fpr_normal_bound(10.0, 30.0, 8.0, 100);
        assert!(b1 > b10 && b10 > b100);
        assert!(b100 >= 0.0);
    }

    #[test]
    fn normal_bound_is_a_probability() {
        for &theta in &[1.0, 5.0, 20.0, 50.0] {
            for &v in &[1usize, 5, 50] {
                let b = fpr_normal_bound(theta, 25.0, 6.0, v);
                assert!((0.0..=1.0).contains(&b), "theta={theta} v={v} b={b}");
            }
        }
    }

    #[test]
    fn uniform_bound_matches_formula() {
        // m = 4, |V| = 2: (3/4)·(1/16) = 0.046875
        assert!((fpr_uniform(4.0, 2) - 0.046875).abs() < 1e-12);
        // m = 1: band is the whole space, but no rejections → FPR 0.
        assert_eq!(fpr_uniform(1.0, 3), 0.0);
    }

    #[test]
    fn choose_vp_count_hits_target() {
        let v = choose_vp_count(0.05, 10.0, 30.0, 8.0, 200);
        assert!(v >= 1);
        assert!(fpr_normal_bound(10.0, 30.0, 8.0, v) <= 0.05);
        if v > 1 {
            assert!(fpr_normal_bound(10.0, 30.0, 8.0, v - 1) > 0.05);
        }
    }

    #[test]
    fn choose_vp_count_saturates() {
        // θ/σ huge ⇒ band probability ≈ 1, so extra VPs barely help, while
        // θ < μ keeps the rejection factor large: the bound stays above the
        // target for every |V| and the search saturates at max_vps.
        let v = choose_vp_count(1e-12, 10.0, 10.5, 1.0, 16);
        assert_eq!(v, 16);
    }
}
