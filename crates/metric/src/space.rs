//! Precomputed distance matrices (the paper's best-case comparator).

use serde::{Deserialize, Serialize};

/// A dense symmetric distance matrix over items `0..n`.
///
/// Used by the "distance matrix" baseline of Fig 5(i)/6(k): fastest possible
/// queries, quadratic storage and construction cost.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DistanceMatrix {
    n: usize,
    /// Upper triangle, row-major: entry `(i, j)` with `i < j` at
    /// `i*(2n−i−1)/2 + (j−i−1)`.
    tri: Vec<f32>,
}

impl DistanceMatrix {
    /// Builds the matrix by calling `dist` on every unordered pair.
    pub fn build(n: usize, mut dist: impl FnMut(u32, u32) -> f64) -> Self {
        let mut tri = Vec::with_capacity(n * n.saturating_sub(1) / 2);
        for i in 0..n {
            for j in i + 1..n {
                tri.push(dist(i as u32, j as u32) as f32);
            }
        }
        Self { n, tri }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    #[inline]
    fn idx(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < j);
        i * (2 * self.n - i - 1) / 2 + (j - i - 1)
    }

    /// Distance between items `i` and `j`.
    #[inline]
    pub fn get(&self, i: u32, j: u32) -> f64 {
        if i == j {
            return 0.0;
        }
        let (a, b) = (i.min(j) as usize, i.max(j) as usize);
        self.tri[self.idx(a, b)] as f64
    }

    /// All items within distance `theta` of `i` (including `i`).
    pub fn range_query(&self, i: u32, theta: f64) -> Vec<u32> {
        (0..self.n as u32)
            .filter(|&j| self.get(i, j) <= theta + 1e-9)
            .collect()
    }

    /// Heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.tri.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: usize) -> DistanceMatrix {
        DistanceMatrix::build(n, |a, b| (a as f64 - b as f64).abs())
    }

    #[test]
    fn get_round_trips() {
        let m = line(6);
        for i in 0..6u32 {
            for j in 0..6u32 {
                assert_eq!(m.get(i, j), (i as f64 - j as f64).abs());
            }
        }
    }

    #[test]
    fn range_query_matches_definition() {
        let m = line(10);
        assert_eq!(m.range_query(5, 2.0), vec![3, 4, 5, 6, 7]);
        assert_eq!(m.range_query(0, 0.0), vec![0]);
    }

    #[test]
    fn empty_and_single() {
        let m = line(0);
        assert!(m.is_empty());
        let m1 = line(1);
        assert_eq!(m1.get(0, 0), 0.0);
        assert_eq!(m1.range_query(0, 5.0), vec![0]);
    }

    #[test]
    fn memory_is_quadratic() {
        assert_eq!(line(100).memory_bytes(), 100 * 99 / 2 * 4);
    }
}
