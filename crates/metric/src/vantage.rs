//! Vantage points and vantage orderings (paper Sec 6.2).
//!
//! A [`VantageTable`] is the Lipschitz embedding of a finite metric space on
//! `|V|` randomly chosen vantage points: every item is represented by its
//! distance to each VP. Theorem 4 (`d_v(g, g') > θ ⇒ g' ∉ N(g)`) makes each
//! coordinate a band filter; Theorem 5 makes their intersection `N̂_θ(g)` a
//! superset of the true θ-neighborhood, computable with binary searches and
//! O(|V|) float comparisons per candidate — no edit distances.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

const EPS: f64 = 1e-6;

/// The vantage orderings of a database: per-VP distances and sorted orders.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VantageTable {
    n: usize,
    vp_ids: Vec<u32>,
    /// `dists[v][i]` = distance from VP `v` to item `i`.
    dists: Vec<Vec<f32>>,
    /// `orders[v]` = item ids sorted by distance to VP `v`.
    orders: Vec<Vec<u32>>,
}

impl VantageTable {
    /// Builds a table over items `0..n` with `num_vps` randomly chosen VPs,
    /// using `dist` to compute `d(vp, item)`.
    pub fn build<R: Rng + ?Sized>(
        n: usize,
        num_vps: usize,
        rng: &mut R,
        mut dist: impl FnMut(u32, u32) -> f64,
    ) -> Self {
        let mut ids: Vec<u32> = (0..n as u32).collect();
        ids.shuffle(rng);
        ids.truncate(num_vps.min(n));
        Self::build_with_vps(n, ids, &mut dist)
    }

    /// Builds a table with explicitly chosen vantage points.
    pub fn build_with_vps(
        n: usize,
        vp_ids: Vec<u32>,
        dist: &mut impl FnMut(u32, u32) -> f64,
    ) -> Self {
        let mut dists = Vec::with_capacity(vp_ids.len());
        for &v in &vp_ids {
            dists.push((0..n as u32).map(|i| dist(v, i) as f32).collect());
        }
        Self::from_dists(n, vp_ids, dists)
    }

    /// Builds a table with explicitly chosen vantage points, evaluating the
    /// `|V| × n` distance matrix — the NP-hard bulk of index construction —
    /// across rayon workers.
    ///
    /// Every matrix cell is an independent pure computation and results are
    /// collected in index order, so the table is identical to the sequential
    /// [`VantageTable::build_with_vps`] at any thread count.
    pub fn build_with_vps_par(
        n: usize,
        vp_ids: Vec<u32>,
        dist: &(impl Fn(u32, u32) -> f64 + Sync),
    ) -> Self {
        use rayon::prelude::*;
        let num_vps = vp_ids.len();
        let flat: Vec<f32> = (0..num_vps * n)
            .into_par_iter()
            .map(|cell| {
                let (v, i) = (vp_ids[cell / n.max(1)], (cell % n.max(1)) as u32);
                dist(v, i) as f32
            })
            .collect();
        let dists = flat.chunks(n.max(1)).map(<[f32]>::to_vec).collect();
        Self::from_dists(n, vp_ids, dists)
    }

    /// Shared tail of the builders: derives the per-VP sorted orders.
    fn from_dists(n: usize, vp_ids: Vec<u32>, dists: Vec<Vec<f32>>) -> Self {
        let orders = dists
            .iter()
            .map(|d| {
                let mut ord: Vec<u32> = (0..n as u32).collect();
                ord.sort_by(|&a, &b| d[a as usize].total_cmp(&d[b as usize]));
                ord
            })
            .collect();
        Self {
            n,
            vp_ids,
            dists,
            orders,
        }
    }

    /// Number of vantage points.
    pub fn num_vps(&self) -> usize {
        self.vp_ids.len()
    }

    /// Ids of the vantage points.
    pub fn vp_ids(&self) -> &[u32] {
        &self.vp_ids
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the table is empty (no VPs or no items).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Distance from VP index `v` (not id) to item `i`.
    #[inline]
    pub fn vp_dist(&self, v: usize, i: u32) -> f64 {
        self.dists[v][i as usize] as f64
    }

    /// Lipschitz lower bound `max_v |d(v,i) − d(v,j)| ≤ d(i,j)`.
    pub fn lower_bound(&self, i: u32, j: u32) -> f64 {
        self.dists
            .iter()
            .map(|d| (d[i as usize] - d[j as usize]).abs() as f64)
            .fold(0.0, f64::max)
    }

    /// Triangle upper bound `min_v (d(v,i) + d(v,j)) ≥ d(i,j)`.
    pub fn upper_bound(&self, i: u32, j: u32) -> f64 {
        self.dists
            .iter()
            .map(|d| (d[i as usize] + d[j as usize]) as f64)
            .fold(f64::INFINITY, f64::min)
    }

    /// Whether `d_v(i, j) ≤ θ` for every VP (the Thm 5 candidate test).
    #[inline]
    pub fn passes_all_bands(&self, i: u32, j: u32, theta: f64) -> bool {
        self.dists
            .iter()
            .all(|d| ((d[i as usize] - d[j as usize]).abs() as f64) <= theta + EPS)
    }

    /// Index range (into `orders[v]`) of items whose VP-distance lies within
    /// `[d(v,i) − θ, d(v,i) + θ]`.
    fn band_range(&self, v: usize, i: u32, theta: f64) -> (usize, usize) {
        let center = self.dists[v][i as usize] as f64;
        let lo = (center - theta - EPS) as f32;
        let hi = (center + theta + EPS) as f32;
        let ord = &self.orders[v];
        let d = &self.dists[v];
        let start = ord.partition_point(|&id| d[id as usize] < lo);
        let end = ord.partition_point(|&id| d[id as usize] <= hi);
        (start, end)
    }

    /// Computes the candidate neighborhood `N̂_θ(i)` (Theorem 5), appending
    /// item ids to `out`. Includes `i` itself. Scans the VP with the smallest
    /// band and verifies every candidate against the remaining VPs.
    pub fn candidates_into(&self, i: u32, theta: f64, out: &mut Vec<u32>) {
        out.clear();
        if self.vp_ids.is_empty() {
            out.extend(0..self.len() as u32);
            return;
        }
        let mut best_v = 0usize;
        let mut best = usize::MAX;
        let mut best_range = (0, 0);
        for v in 0..self.num_vps() {
            let (s, e) = self.band_range(v, i, theta);
            if e - s < best {
                best = e - s;
                best_v = v;
                best_range = (s, e);
            }
        }
        let ord = &self.orders[best_v];
        for &cand in &ord[best_range.0..best_range.1] {
            if self.passes_all_bands(i, cand, theta) {
                out.push(cand);
            }
        }
    }

    /// Allocating variant of [`Self::candidates_into`].
    pub fn candidates(&self, i: u32, theta: f64) -> Vec<u32> {
        let mut v = Vec::new();
        self.candidates_into(i, theta, &mut v);
        v
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.vp_ids.len() * 4
            + self.dists.iter().map(|d| d.len() * 4).sum::<usize>()
            + self.orders.iter().map(|o| o.len() * 4).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// 1-D line metric: items at positions 0, 1, 2, …, n−1.
    fn line_table(n: usize, vps: usize, seed: u64) -> VantageTable {
        let mut rng = SmallRng::seed_from_u64(seed);
        VantageTable::build(n, vps, &mut rng, |a, b| (a as f64 - b as f64).abs())
    }

    #[test]
    fn bounds_sandwich_true_distance_on_line() {
        let t = line_table(50, 5, 1);
        for i in 0..50u32 {
            for j in 0..50u32 {
                let d = (i as f64 - j as f64).abs();
                assert!(t.lower_bound(i, j) <= d + 1e-6);
                assert!(t.upper_bound(i, j) >= d - 1e-6);
            }
        }
    }

    #[test]
    fn on_a_line_one_vp_lower_bound_is_often_exact() {
        // For collinear points on the same side of the VP the bound is exact.
        let mut d = |a: u32, b: u32| (a as f64 - b as f64).abs();
        let t = VantageTable::build_with_vps(10, vec![0], &mut d);
        assert_eq!(t.lower_bound(3, 7), 4.0);
    }

    #[test]
    fn candidates_superset_of_true_neighborhood() {
        let t = line_table(100, 3, 2);
        for i in (0..100u32).step_by(17) {
            let cands = t.candidates(i, 5.0);
            for j in 0..100u32 {
                let d = (i as f64 - j as f64).abs();
                if d <= 5.0 {
                    assert!(cands.contains(&j), "true neighbor {j} of {i} missing");
                }
            }
            assert!(cands.contains(&i));
        }
    }

    #[test]
    fn more_vps_never_grow_candidates() {
        let mut d = |a: u32, b: u32| {
            // 2-D grid metric (L1): decouples coordinates so one VP is weak.
            let (ax, ay) = ((a % 10) as f64, (a / 10) as f64);
            let (bx, by) = ((b % 10) as f64, (b / 10) as f64);
            (ax - bx).abs() + (ay - by).abs()
        };
        let t1 = VantageTable::build_with_vps(100, vec![0], &mut d);
        let t3 = VantageTable::build_with_vps(100, vec![0, 9, 90], &mut d);
        for i in (0..100u32).step_by(13) {
            let c1 = t1.candidates(i, 3.0).len();
            let c3 = t3.candidates(i, 3.0).len();
            assert!(c3 <= c1, "i={i}: {c3} > {c1}");
        }
    }

    #[test]
    fn empty_vp_set_returns_everything() {
        let mut d = |a: u32, b: u32| (a as f64 - b as f64).abs();
        let t = VantageTable::build_with_vps(5, vec![], &mut d);
        assert_eq!(t.candidates(2, 1.0), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn memory_accounting_scales() {
        let t1 = line_table(100, 2, 3);
        let t2 = line_table(100, 8, 3);
        assert!(t2.memory_bytes() > t1.memory_bytes());
    }

    #[test]
    fn serde_round_trip() {
        let t = line_table(20, 3, 4);
        let json = serde_json::to_string(&t).unwrap();
        let back: VantageTable = serde_json::from_str(&json).unwrap();
        assert_eq!(back.num_vps(), t.num_vps());
        assert_eq!(back.candidates(5, 2.0), t.candidates(5, 2.0));
    }
}
