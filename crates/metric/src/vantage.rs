//! Vantage points and vantage orderings (paper Sec 6.2).
//!
//! A [`VantageTable`] is the Lipschitz embedding of a finite metric space on
//! `|V|` randomly chosen vantage points: every item is represented by its
//! distance to each VP. Theorem 4 (`d_v(g, g') > θ ⇒ g' ∉ N(g)`) makes each
//! coordinate a band filter; Theorem 5 makes their intersection `N̂_θ(g)` a
//! superset of the true θ-neighborhood, computable with binary searches and
//! O(|V|) float comparisons per candidate — no edit distances.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

const EPS: f64 = 1e-6;

/// The single-band test `|dᵢ − dⱼ| ≤ θ` on two *stored* (f32) coordinates,
/// with the shared storage tolerance. The difference is taken in f64, where
/// it is exact for f32 inputs, so every band decision in this module rounds
/// the same way.
#[inline]
fn band_pass(di: f32, dj: f32, theta: f64) -> bool {
    (f64::from(di) - f64::from(dj)).abs() <= theta + EPS
}

/// f32 scan edges of the band `[center − θ − EPS, center + θ + EPS]`, widened
/// by one ULP on each side so truncating the f64 edges to storage precision
/// can never exclude a coordinate that [`band_pass`] accepts.
#[inline]
fn band_edges(center: f32, theta: f64) -> (f32, f32) {
    let lo = ((f64::from(center) - theta - EPS) as f32).next_down();
    let hi = ((f64::from(center) + theta + EPS) as f32).next_up();
    (lo, hi)
}

/// Quantizes a threshold to its f32 storage band — the bit pattern of
/// `θ as f32`, the same precision the table stores coordinates at. Two
/// thresholds in the same band are indistinguishable to the stored
/// coordinates, which makes the band a natural pooling key for *statistics*
/// (e.g. cache promotion frequency). It must never be used to share exact
/// θ-membership results: `N_θ` is an exact-θ predicate.
#[inline]
pub fn theta_band(theta: f64) -> u32 {
    (theta as f32).to_bits()
}

/// The vantage orderings of a database: per-VP distances and sorted orders.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VantageTable {
    n: usize,
    vp_ids: Vec<u32>,
    /// `dists[v][i]` = distance from VP `v` to item `i`.
    dists: Vec<Vec<f32>>,
    /// `orders[v]` = item ids sorted by distance to VP `v`.
    orders: Vec<Vec<u32>>,
}

impl VantageTable {
    /// Builds a table over items `0..n` with `num_vps` randomly chosen VPs,
    /// using `dist` to compute `d(vp, item)`.
    pub fn build<R: Rng + ?Sized>(
        n: usize,
        num_vps: usize,
        rng: &mut R,
        mut dist: impl FnMut(u32, u32) -> f64,
    ) -> Self {
        let mut ids: Vec<u32> = (0..n as u32).collect();
        ids.shuffle(rng);
        ids.truncate(num_vps.min(n));
        Self::build_with_vps(n, ids, &mut dist)
    }

    /// Builds a table with explicitly chosen vantage points.
    pub fn build_with_vps(
        n: usize,
        vp_ids: Vec<u32>,
        dist: &mut impl FnMut(u32, u32) -> f64,
    ) -> Self {
        let mut dists = Vec::with_capacity(vp_ids.len());
        for &v in &vp_ids {
            dists.push((0..n as u32).map(|i| dist(v, i) as f32).collect());
        }
        Self::from_dists(n, vp_ids, dists)
    }

    /// Builds a table with explicitly chosen vantage points, evaluating the
    /// `|V| × n` distance matrix — the NP-hard bulk of index construction —
    /// across rayon workers.
    ///
    /// Every matrix cell is an independent pure computation and results are
    /// collected in index order, so the table is identical to the sequential
    /// [`VantageTable::build_with_vps`] at any thread count.
    pub fn build_with_vps_par(
        n: usize,
        vp_ids: Vec<u32>,
        dist: &(impl Fn(u32, u32) -> f64 + Sync),
    ) -> Self {
        use rayon::prelude::*;
        let num_vps = vp_ids.len();
        if n == 0 {
            // No items: the matrix is `|V|` empty rows. Guarded explicitly so
            // the flat-index arithmetic below never divides by zero (and so a
            // non-empty `vp_ids` cannot be silently dropped by `chunks`).
            return Self::from_dists(0, vp_ids, vec![Vec::new(); num_vps]);
        }
        let flat: Vec<f32> = (0..num_vps * n)
            .into_par_iter()
            .map(|cell| {
                let (v, i) = (vp_ids[cell / n], (cell % n) as u32);
                dist(v, i) as f32
            })
            .collect();
        let dists = flat.chunks(n).map(<[f32]>::to_vec).collect();
        Self::from_dists(n, vp_ids, dists)
    }

    /// Shared tail of the builders: derives the per-VP sorted orders.
    fn from_dists(n: usize, vp_ids: Vec<u32>, dists: Vec<Vec<f32>>) -> Self {
        let orders = dists
            .iter()
            .map(|d| {
                let mut ord: Vec<u32> = (0..n as u32).collect();
                ord.sort_by(|&a, &b| d[a as usize].total_cmp(&d[b as usize]));
                ord
            })
            .collect();
        Self {
            n,
            vp_ids,
            dists,
            orders,
        }
    }

    /// Appends one item to the embedding: `vp_dists[v]` is the distance from
    /// VP index `v` to the new item, whose id becomes the previous
    /// [`VantageTable::len`]. Each sorted order receives the id by binary
    /// insertion *after* any equal coordinates — the new id is the largest,
    /// so the orders stay exactly what a stable full re-sort would produce.
    /// Returns the new item's id.
    ///
    /// # Panics
    /// If `vp_dists.len()` differs from [`VantageTable::num_vps`].
    pub fn push_item(&mut self, vp_dists: &[f64]) -> u32 {
        assert_eq!(
            vp_dists.len(),
            self.num_vps(),
            "push_item needs one distance per vantage point"
        );
        let id = self.n as u32;
        for (v, &d) in vp_dists.iter().enumerate() {
            let d = d as f32;
            self.dists[v].push(d);
            let col = &self.dists[v];
            let at =
                self.orders[v].partition_point(|&other| col[other as usize].total_cmp(&d).is_le());
            self.orders[v].insert(at, id);
        }
        self.n += 1;
        id
    }

    /// Number of vantage points.
    pub fn num_vps(&self) -> usize {
        self.vp_ids.len()
    }

    /// Ids of the vantage points.
    pub fn vp_ids(&self) -> &[u32] {
        &self.vp_ids
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the table is empty (no VPs or no items).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Distance from VP index `v` (not id) to item `i`.
    #[inline]
    pub fn vp_dist(&self, v: usize, i: u32) -> f64 {
        self.dists[v][i as usize] as f64
    }

    /// Lipschitz lower bound `max_v |d(v,i) − d(v,j)| ≤ d(i,j)`.
    pub fn lower_bound(&self, i: u32, j: u32) -> f64 {
        self.dists
            .iter()
            .map(|d| (d[i as usize] - d[j as usize]).abs() as f64)
            .fold(0.0, f64::max)
    }

    /// Triangle upper bound `min_v (d(v,i) + d(v,j)) ≥ d(i,j)`.
    pub fn upper_bound(&self, i: u32, j: u32) -> f64 {
        self.dists
            .iter()
            .map(|d| (d[i as usize] + d[j as usize]) as f64)
            .fold(f64::INFINITY, f64::min)
    }

    /// Whether `d_v(i, j) ≤ θ` for every VP (the Thm 5 candidate test).
    #[inline]
    pub fn passes_all_bands(&self, i: u32, j: u32, theta: f64) -> bool {
        self.dists
            .iter()
            .all(|d| band_pass(d[i as usize], d[j as usize], theta))
    }

    /// Index range (into `orders[v]`) of items whose VP-distance lies within
    /// `[d(v,i) − θ, d(v,i) + θ]`. Uses [`band_edges`], whose widened f32
    /// edges guarantee the range covers every item [`band_pass`] accepts.
    fn band_range(&self, v: usize, i: u32, theta: f64) -> (usize, usize) {
        let (lo, hi) = band_edges(self.dists[v][i as usize], theta);
        let ord = &self.orders[v];
        let d = &self.dists[v];
        let start = ord.partition_point(|&id| d[id as usize] < lo);
        let end = ord.partition_point(|&id| d[id as usize] <= hi);
        (start, end)
    }

    /// One-pass margin-adjusted metric bounds for the pair `(i, j)`: a
    /// Lipschitz lower bound and triangle upper bound on `d(i, j)` that stay
    /// sound under the f32 storage rounding of the per-VP distances (each
    /// stored coordinate carries relative error ≤ 2⁻²⁴ ≪ the `EPS = 1e-6`
    /// margin applied here, which scales with the coordinate magnitudes —
    /// not with their difference, where cancellation would make a
    /// difference-relative margin unsound). Returns `(0.0, f64::INFINITY)`
    /// when there are no vantage points.
    pub fn hint_bounds(&self, i: u32, j: u32) -> (f64, f64) {
        let mut lb = 0.0_f64;
        let mut ub = f64::INFINITY;
        for d in &self.dists {
            let (di, dj) = (f64::from(d[i as usize]), f64::from(d[j as usize]));
            lb = lb.max((di - dj).abs() - EPS * (di + dj));
            ub = ub.min((di + dj) * (1.0 + EPS));
        }
        (lb.max(0.0), ub)
    }

    /// Computes the candidate neighborhood `N̂_θ(i)` (Theorem 5), appending
    /// item ids to `out`. Includes `i` itself. Scans the VP with the smallest
    /// band and verifies every candidate against the remaining VPs.
    pub fn candidates_into(&self, i: u32, theta: f64, out: &mut Vec<u32>) {
        out.clear();
        if self.vp_ids.is_empty() {
            out.extend(0..self.len() as u32);
            return;
        }
        let mut best_v = 0usize;
        let mut best = usize::MAX;
        let mut best_range = (0, 0);
        for v in 0..self.num_vps() {
            let (s, e) = self.band_range(v, i, theta);
            if e - s < best {
                best = e - s;
                best_v = v;
                best_range = (s, e);
            }
        }
        let ord = &self.orders[best_v];
        for &cand in &ord[best_range.0..best_range.1] {
            if self.passes_all_bands(i, cand, theta) {
                out.push(cand);
            }
        }
    }

    /// Allocating variant of [`Self::candidates_into`].
    pub fn candidates(&self, i: u32, theta: f64) -> Vec<u32> {
        let mut v = Vec::new();
        self.candidates_into(i, theta, &mut v);
        v
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.vp_ids.len() * 4
            + self.dists.iter().map(|d| d.len() * 4).sum::<usize>()
            + self.orders.iter().map(|o| o.len() * 4).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// 1-D line metric: items at positions 0, 1, 2, …, n−1.
    fn line_table(n: usize, vps: usize, seed: u64) -> VantageTable {
        let mut rng = SmallRng::seed_from_u64(seed);
        VantageTable::build(n, vps, &mut rng, |a, b| (a as f64 - b as f64).abs())
    }

    #[test]
    fn theta_band_pools_f32_identical_thresholds() {
        // Thresholds indistinguishable at f32 precision share a band…
        assert_eq!(theta_band(2.0), theta_band(2.0 + 1e-12));
        // …while f32-distinguishable thresholds do not.
        assert_ne!(theta_band(2.0), theta_band(2.5));
        assert_ne!(theta_band(0.0), theta_band(1.0));
    }

    #[test]
    fn bounds_sandwich_true_distance_on_line() {
        let t = line_table(50, 5, 1);
        for i in 0..50u32 {
            for j in 0..50u32 {
                let d = (i as f64 - j as f64).abs();
                assert!(t.lower_bound(i, j) <= d + 1e-6);
                assert!(t.upper_bound(i, j) >= d - 1e-6);
            }
        }
    }

    #[test]
    fn on_a_line_one_vp_lower_bound_is_often_exact() {
        // For collinear points on the same side of the VP the bound is exact.
        let mut d = |a: u32, b: u32| (a as f64 - b as f64).abs();
        let t = VantageTable::build_with_vps(10, vec![0], &mut d);
        assert_eq!(t.lower_bound(3, 7), 4.0);
    }

    #[test]
    fn candidates_superset_of_true_neighborhood() {
        let t = line_table(100, 3, 2);
        for i in (0..100u32).step_by(17) {
            let cands = t.candidates(i, 5.0);
            for j in 0..100u32 {
                let d = (i as f64 - j as f64).abs();
                if d <= 5.0 {
                    assert!(cands.contains(&j), "true neighbor {j} of {i} missing");
                }
            }
            assert!(cands.contains(&i));
        }
    }

    #[test]
    fn more_vps_never_grow_candidates() {
        let mut d = |a: u32, b: u32| {
            // 2-D grid metric (L1): decouples coordinates so one VP is weak.
            let (ax, ay) = ((a % 10) as f64, (a / 10) as f64);
            let (bx, by) = ((b % 10) as f64, (b / 10) as f64);
            (ax - bx).abs() + (ay - by).abs()
        };
        let t1 = VantageTable::build_with_vps(100, vec![0], &mut d);
        let t3 = VantageTable::build_with_vps(100, vec![0, 9, 90], &mut d);
        for i in (0..100u32).step_by(13) {
            let c1 = t1.candidates(i, 3.0).len();
            let c3 = t3.candidates(i, 3.0).len();
            assert!(c3 <= c1, "i={i}: {c3} > {c1}");
        }
    }

    #[test]
    fn empty_vp_set_returns_everything() {
        let mut d = |a: u32, b: u32| (a as f64 - b as f64).abs();
        let t = VantageTable::build_with_vps(5, vec![], &mut d);
        assert_eq!(t.candidates(2, 1.0), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn par_build_on_empty_database() {
        // Regression: the flat-index arithmetic used `n.max(1)`, which on an
        // empty database produced a dists/vp_ids length mismatch instead of
        // `|V|` empty rows.
        let t = VantageTable::build_with_vps_par(0, vec![], &|_, _| 0.0);
        assert!(t.is_empty());
        assert_eq!(t.num_vps(), 0);
        assert!(t.candidates(0, 1.0).is_empty());
        let t2 = VantageTable::build_with_vps_par(0, vec![7, 9], &|_, _| 0.0);
        assert_eq!(t2.num_vps(), 2);
        assert_eq!(t2.len(), 0);
        assert_eq!(t2.memory_bytes(), 8);
    }

    #[test]
    fn band_scan_covers_band_pass_near_f32_boundaries() {
        // Coordinates engineered so the band edge `center ± θ` falls within
        // one f32 ULP of stored values: the scan range must still cover
        // everything `passes_all_bands` accepts, or candidate generation
        // would silently drop true neighbors.
        let base = 16_384.0_f64; // f32 ULP here is 2⁻³Q·2¹⁴ = 1/512
        let ulp = (16_384.0_f32.next_up() - 16_384.0_f32) as f64;
        let pos = [0.0, base, base + ulp, base + 2.0 * ulp, base + 1000.0];
        let dist = |a: u32, b: u32| (pos[a as usize] - pos[b as usize]).abs();
        let t = VantageTable::build_with_vps(pos.len(), vec![0], &mut { dist });
        for theta in [ulp, 2.0 * ulp, ulp / 2.0, 1000.0 - ulp] {
            for i in 0..pos.len() as u32 {
                let cands = t.candidates(i, theta);
                for j in 0..pos.len() as u32 {
                    if t.passes_all_bands(i, j, theta) {
                        assert!(
                            cands.contains(&j),
                            "θ={theta}: {j} passes all bands of {i} but was not scanned"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn hint_bounds_sandwich_true_distance_despite_f32_storage() {
        // Large, nearly equal coordinates: the f32 rounding error of each
        // stored distance can exceed the true difference, so an unadjusted
        // |dᵢ − dⱼ| would overshoot d(i, j). The margins must absorb it.
        let pos = [0.0_f64, 1.0e6, 1.0e6 + 0.01, 1.0e6 + 0.5, 2.0e6];
        let dist = |a: u32, b: u32| (pos[a as usize] - pos[b as usize]).abs();
        let t = VantageTable::build_with_vps(pos.len(), vec![0, 4], &mut { dist });
        for i in 0..pos.len() as u32 {
            for j in 0..pos.len() as u32 {
                let d = dist(i, j);
                let (lb, ub) = t.hint_bounds(i, j);
                assert!(lb <= d + 1e-9, "({i},{j}): lb {lb} > d {d}");
                assert!(ub >= d - 1e-9, "({i},{j}): ub {ub} < d {d}");
            }
        }
        let (lb, ub) = t.hint_bounds(0, 4);
        assert!(lb > 0.0 && ub.is_finite());
    }

    #[test]
    fn hint_bounds_empty_vps_are_vacuous() {
        let t = VantageTable::build_with_vps(3, vec![], &mut |a: u32, b: u32| {
            (a as f64 - b as f64).abs()
        });
        assert_eq!(t.hint_bounds(0, 2), (0.0, f64::INFINITY));
    }

    #[test]
    fn memory_accounting_scales() {
        let t1 = line_table(100, 2, 3);
        let t2 = line_table(100, 8, 3);
        assert!(t2.memory_bytes() > t1.memory_bytes());
    }

    #[test]
    fn push_item_matches_full_rebuild() {
        let pos = |i: u32| i as f64 * 1.5;
        let mut d = |a: u32, b: u32| (pos(a) - pos(b)).abs();
        let mut t = VantageTable::build_with_vps(8, vec![0, 5], &mut d);
        // Append items 8 and 9 one at a time …
        for id in 8u32..10 {
            let vp_dists: Vec<f64> = t.vp_ids().to_vec().iter().map(|&v| d(v, id)).collect();
            assert_eq!(t.push_item(&vp_dists), id);
        }
        // … and the result must equal a table built over all 10 from scratch.
        let full = VantageTable::build_with_vps(10, vec![0, 5], &mut d);
        assert_eq!(t.len(), full.len());
        for i in 0..10u32 {
            for j in 0..10u32 {
                assert_eq!(t.lower_bound(i, j), full.lower_bound(i, j));
                assert_eq!(t.upper_bound(i, j), full.upper_bound(i, j));
            }
            assert_eq!(t.candidates(i, 2.0), full.candidates(i, 2.0));
        }
    }

    #[test]
    fn push_item_ties_go_after_equal_coordinates() {
        // Items 1 and 2 are equidistant from the single VP; the appended
        // item 3 shares that distance and must sort after both (stable-sort
        // discipline: ties in ascending-id order).
        let pos = [0.0_f64, 2.0, 2.0];
        let mut d = |a: u32, b: u32| (pos[a as usize] - pos[b as usize]).abs();
        let mut t = VantageTable::build_with_vps(3, vec![0], &mut d);
        t.push_item(&[2.0]);
        let full = VantageTable::build_with_vps(4, vec![0], &mut |a: u32, b: u32| {
            let q = [0.0_f64, 2.0, 2.0, 2.0];
            (q[a as usize] - q[b as usize]).abs()
        });
        assert_eq!(t.candidates(1, 0.5), full.candidates(1, 0.5));
        assert_eq!(t.candidates(3, 0.0), full.candidates(3, 0.0));
    }

    #[test]
    fn serde_round_trip() {
        let t = line_table(20, 3, 4);
        let json = serde_json::to_string(&t).unwrap();
        let back: VantageTable = serde_json::from_str(&json).unwrap();
        assert_eq!(back.num_vps(), t.num_vps());
        assert_eq!(back.candidates(5, 2.0), t.candidates(5, 2.0));
    }
}
