//! Vantage points and vantage orderings (paper Sec 6.2).
//!
//! A [`VantageTable`] is the Lipschitz embedding of a finite metric space on
//! `|V|` randomly chosen vantage points: every item is represented by its
//! distance to each VP. Theorem 4 (`d_v(g, g') > θ ⇒ g' ∉ N(g)`) makes each
//! coordinate a band filter; Theorem 5 makes their intersection `N̂_θ(g)` a
//! superset of the true θ-neighborhood, computable with binary searches and
//! O(|V|) float comparisons per candidate — no edit distances.
//!
//! # Memory layout (structure of arrays)
//!
//! The table keeps three contiguous views of the same `|V| × n` coordinate
//! matrix, each shaped for one hot loop:
//!
//! * `rows` — one item-major slab (`rows[i·|V| + v]`): the per-pair tests
//!   ([`VantageTable::passes_all_bands`], [`VantageTable::hint_bounds`],
//!   the Lipschitz/triangle bounds) compare two contiguous `|V|`-length
//!   slices, an auto-vectorizable zip with no per-VP pointer chasing.
//! * `sorted[v]` — the VP-`v` coordinates in ascending order, aligned with
//!   `orders[v]`: band edges resolve with `partition_point` over one
//!   contiguous `f32` run instead of gathering `dists[id]` through the
//!   permutation on every probe.
//! * `orders[v]` — the item ids sorted by distance to VP `v` (stable: ties
//!   in ascending-id order), scanned to enumerate a band's members.
//!
//! The sort permutation is a pure function of the coordinates (stable
//! argsort), an invariant every mutation path preserves — which is why the
//! binary persistence format stores only the raw columns and rebuilds
//! `orders`/`sorted`/`rows` on load.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{DeError, Deserialize, Serialize, Value};

const EPS: f64 = 1e-6;

/// The single-band test `|dᵢ − dⱼ| ≤ θ` on two *stored* (f32) coordinates,
/// with the shared storage tolerance. The difference is taken in f64, where
/// it is exact for f32 inputs, so every band decision in this module rounds
/// the same way.
#[inline]
fn band_pass(di: f32, dj: f32, theta: f64) -> bool {
    (f64::from(di) - f64::from(dj)).abs() <= theta + EPS
}

/// f32 scan edges of the band `[center − θ − EPS, center + θ + EPS]`, widened
/// by one ULP on each side so truncating the f64 edges to storage precision
/// can never exclude a coordinate that [`band_pass`] accepts.
#[inline]
fn band_edges(center: f32, theta: f64) -> (f32, f32) {
    let lo = ((f64::from(center) - theta - EPS) as f32).next_down();
    let hi = ((f64::from(center) + theta + EPS) as f32).next_up();
    (lo, hi)
}

/// Quantizes a threshold to its f32 storage band — the bit pattern of
/// `θ as f32`, the same precision the table stores coordinates at. Two
/// thresholds in the same band are indistinguishable to the stored
/// coordinates, which makes the band a natural pooling key for *statistics*
/// (e.g. cache promotion frequency). It must never be used to share exact
/// θ-membership results: `N_θ` is an exact-θ predicate.
#[inline]
pub fn theta_band(theta: f64) -> u32 {
    (theta as f32).to_bits()
}

/// The vantage orderings of a database: per-VP distances and sorted orders,
/// held in the SoA layout described at the [module level](self).
#[derive(Debug, Clone)]
pub struct VantageTable {
    n: usize,
    vp_ids: Vec<u32>,
    /// Item-major coordinate slab: `rows[i * num_vps + v]` = d(VP v, item i).
    rows: Vec<f32>,
    /// `sorted[v][k]` = distance from VP `v` to the item `orders[v][k]` —
    /// the VP-`v` coordinates in ascending order.
    sorted: Vec<Vec<f32>>,
    /// `orders[v]` = item ids sorted by distance to VP `v`.
    orders: Vec<Vec<u32>>,
}

impl VantageTable {
    /// Builds a table over items `0..n` with `num_vps` randomly chosen VPs,
    /// using `dist` to compute `d(vp, item)`.
    pub fn build<R: Rng + ?Sized>(
        n: usize,
        num_vps: usize,
        rng: &mut R,
        mut dist: impl FnMut(u32, u32) -> f64,
    ) -> Self {
        let mut ids: Vec<u32> = (0..n as u32).collect();
        ids.shuffle(rng);
        ids.truncate(num_vps.min(n));
        Self::build_with_vps(n, ids, &mut dist)
    }

    /// Builds a table with explicitly chosen vantage points.
    pub fn build_with_vps(
        n: usize,
        vp_ids: Vec<u32>,
        dist: &mut impl FnMut(u32, u32) -> f64,
    ) -> Self {
        let mut dists = Vec::with_capacity(vp_ids.len());
        for &v in &vp_ids {
            dists.push((0..n as u32).map(|i| dist(v, i) as f32).collect());
        }
        Self::from_dists(n, vp_ids, dists)
    }

    /// Builds a table with explicitly chosen vantage points, evaluating the
    /// `|V| × n` distance matrix — the NP-hard bulk of index construction —
    /// across rayon workers.
    ///
    /// Every matrix cell is an independent pure computation and results are
    /// collected in index order, so the table is identical to the sequential
    /// [`VantageTable::build_with_vps`] at any thread count.
    pub fn build_with_vps_par(
        n: usize,
        vp_ids: Vec<u32>,
        dist: &(impl Fn(u32, u32) -> f64 + Sync),
    ) -> Self {
        use rayon::prelude::*;
        let num_vps = vp_ids.len();
        if n == 0 {
            // No items: the matrix is `|V|` empty rows. Guarded explicitly so
            // the flat-index arithmetic below never divides by zero (and so a
            // non-empty `vp_ids` cannot be silently dropped by `chunks`).
            return Self::from_dists(0, vp_ids, vec![Vec::new(); num_vps]);
        }
        let flat: Vec<f32> = (0..num_vps * n)
            .into_par_iter()
            .map(|cell| {
                let (v, i) = (vp_ids[cell / n], (cell % n) as u32);
                dist(v, i) as f32
            })
            .collect();
        let dists = flat.chunks(n).map(<[f32]>::to_vec).collect();
        Self::from_dists(n, vp_ids, dists)
    }

    /// Shared tail of the builders: derives the stable sort orders and the
    /// item-major/sorted slabs from the raw per-VP coordinate columns.
    fn from_dists(n: usize, vp_ids: Vec<u32>, dists: Vec<Vec<f32>>) -> Self {
        let num_vps = vp_ids.len();
        let orders: Vec<Vec<u32>> = dists.iter().map(|d| stable_argsort(n, d)).collect();
        let sorted = dists
            .iter()
            .zip(&orders)
            .map(|(d, ord)| ord.iter().map(|&id| d[id as usize]).collect())
            .collect();
        let mut rows = vec![0.0f32; n * num_vps];
        for (v, d) in dists.iter().enumerate() {
            for (i, &x) in d.iter().enumerate() {
                rows[i * num_vps + v] = x;
            }
        }
        Self {
            n,
            vp_ids,
            rows,
            sorted,
            orders,
        }
    }

    /// Reassembles a table from raw per-VP coordinate columns (`cols[v][i]` =
    /// d(VP v, item i)) — the binary persistence decode path. The sort
    /// orders are *derived* (stable argsort), which is exact because every
    /// construction and mutation path maintains `orders` as precisely that
    /// argsort (see the module docs); nothing else needs to be stored.
    pub fn from_columns(n: usize, vp_ids: Vec<u32>, cols: Vec<Vec<f32>>) -> Result<Self, String> {
        if cols.len() != vp_ids.len() {
            return Err(format!(
                "vantage table has {} vp ids but {} coordinate columns",
                vp_ids.len(),
                cols.len()
            ));
        }
        if let Some(bad) = cols.iter().find(|c| c.len() != n) {
            return Err(format!(
                "vantage column has {} coordinates, table has {n} items",
                bad.len()
            ));
        }
        Ok(Self::from_dists(n, vp_ids, cols))
    }

    /// Reassembles a table from coordinate columns plus externally supplied
    /// sort orders — the cold-start fast path, where a decoder can derive
    /// each order in O(n) (e.g. by counting sort over a value dictionary)
    /// instead of paying a comparison sort per column. Every order is
    /// validated to be an in-range, distance-non-decreasing arrangement of
    /// the column before it is trusted; shape mismatches and violations are
    /// reported as errors, never panics.
    pub fn from_parts(
        n: usize,
        vp_ids: Vec<u32>,
        cols: Vec<Vec<f32>>,
        orders: Vec<Vec<u32>>,
    ) -> Result<Self, String> {
        if cols.len() != vp_ids.len() || orders.len() != vp_ids.len() {
            return Err(format!(
                "vantage table with {} vp ids has {} dist and {} order columns",
                vp_ids.len(),
                cols.len(),
                orders.len()
            ));
        }
        for (v, (d, ord)) in cols.iter().zip(&orders).enumerate() {
            if d.len() != n || ord.len() != n {
                return Err(format!(
                    "vantage column {v} has {} dists / {} order entries, table has {n} items",
                    d.len(),
                    ord.len()
                ));
            }
            let mut prev = f32::NEG_INFINITY;
            for &id in ord {
                let coord = *d
                    .get(id as usize)
                    .ok_or_else(|| format!("order entry {id} out of range 0..{n}"))?;
                if coord < prev {
                    return Err(format!(
                        "vantage order {v} is not sorted by distance at item {id}"
                    ));
                }
                prev = coord;
            }
        }
        Ok(Self::assemble(n, vp_ids, cols, orders))
    }

    /// Wraps pre-assembled SoA slabs directly — the binary decoder's
    /// zero-intermediate path, where the row-major transpose, the sorted
    /// coordinate arrays, and the orders are all produced in the decoder's
    /// single pass over each column. Only shapes are validated; the caller
    /// guarantees the slabs are mutually consistent (it derived every one of
    /// them itself from the same decoded values — never hand this externally
    /// sourced orders).
    pub fn from_raw_soa(
        n: usize,
        vp_ids: Vec<u32>,
        rows: Vec<f32>,
        sorted: Vec<Vec<f32>>,
        orders: Vec<Vec<u32>>,
    ) -> Result<Self, String> {
        let num_vps = vp_ids.len();
        if sorted.len() != num_vps || orders.len() != num_vps {
            return Err(format!(
                "vantage table with {num_vps} vp ids has {} sorted and {} order columns",
                sorted.len(),
                orders.len()
            ));
        }
        if rows.len() != n * num_vps {
            return Err(format!(
                "vantage row slab has {} entries, table needs {n} x {num_vps}",
                rows.len()
            ));
        }
        for (v, (s, ord)) in sorted.iter().zip(&orders).enumerate() {
            if s.len() != n || ord.len() != n {
                return Err(format!(
                    "vantage column {v} has {} sorted / {} order entries, table has {n} items",
                    s.len(),
                    ord.len()
                ));
            }
        }
        Ok(Self {
            n,
            vp_ids,
            rows,
            sorted,
            orders,
        })
    }

    /// Shared tail of the `from_parts*` constructors: builds the sorted
    /// gather and the row-major transpose from already-validated parts.
    fn assemble(n: usize, vp_ids: Vec<u32>, cols: Vec<Vec<f32>>, orders: Vec<Vec<u32>>) -> Self {
        let num_vps = vp_ids.len();
        let mut rows = vec![0.0f32; n * num_vps];
        let mut sorted = Vec::with_capacity(num_vps);
        for (v, (d, ord)) in cols.iter().zip(&orders).enumerate() {
            sorted.push(ord.iter().map(|&id| d[id as usize]).collect());
            for (i, &x) in d.iter().enumerate() {
                rows[i * num_vps + v] = x;
            }
        }
        Self {
            n,
            vp_ids,
            rows,
            sorted,
            orders,
        }
    }

    /// Appends one item to the embedding: `vp_dists[v]` is the distance from
    /// VP index `v` to the new item, whose id becomes the previous
    /// [`VantageTable::len`]. Each sorted order receives the id by binary
    /// insertion *after* any equal coordinates — the new id is the largest,
    /// so the orders stay exactly what a stable full re-sort would produce.
    /// Returns the new item's id.
    ///
    /// # Panics
    /// If `vp_dists.len()` differs from [`VantageTable::num_vps`].
    pub fn push_item(&mut self, vp_dists: &[f64]) -> u32 {
        assert_eq!(
            vp_dists.len(),
            self.num_vps(),
            "push_item needs one distance per vantage point"
        );
        let id = self.n as u32;
        for (v, &d) in vp_dists.iter().enumerate() {
            let d = d as f32;
            self.rows.push(d);
            let at = self.sorted[v].partition_point(|&other| other.total_cmp(&d).is_le());
            self.sorted[v].insert(at, d);
            self.orders[v].insert(at, id);
        }
        self.n += 1;
        id
    }

    /// Number of vantage points.
    pub fn num_vps(&self) -> usize {
        self.vp_ids.len()
    }

    /// Ids of the vantage points.
    pub fn vp_ids(&self) -> &[u32] {
        &self.vp_ids
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the table is empty (no VPs or no items).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Distance from VP index `v` (not id) to item `i`.
    #[inline]
    pub fn vp_dist(&self, v: usize, i: u32) -> f64 {
        self.rows[i as usize * self.num_vps() + v] as f64
    }

    /// The item-major coordinate row of item `i` (one f32 per VP).
    #[inline]
    fn row(&self, i: u32) -> &[f32] {
        let v = self.num_vps();
        &self.rows[i as usize * v..(i as usize + 1) * v]
    }

    /// The raw coordinate column of VP index `v`, in item-id order —
    /// `column(v)[i]` = d(VP v, item i). Gathered from the item-major slab;
    /// used by persistence, not by any hot loop.
    pub fn column(&self, v: usize) -> Vec<f32> {
        let num = self.num_vps();
        (0..self.n).map(|i| self.rows[i * num + v]).collect()
    }

    /// Lipschitz lower bound `max_v |d(v,i) − d(v,j)| ≤ d(i,j)`.
    pub fn lower_bound(&self, i: u32, j: u32) -> f64 {
        self.row(i)
            .iter()
            .zip(self.row(j))
            .map(|(&a, &b)| (a - b).abs() as f64)
            .fold(0.0, f64::max)
    }

    /// Triangle upper bound `min_v (d(v,i) + d(v,j)) ≥ d(i,j)`.
    pub fn upper_bound(&self, i: u32, j: u32) -> f64 {
        self.row(i)
            .iter()
            .zip(self.row(j))
            .map(|(&a, &b)| (a + b) as f64)
            .fold(f64::INFINITY, f64::min)
    }

    /// Whether `d_v(i, j) ≤ θ` for every VP (the Thm 5 candidate test). The
    /// two coordinate rows are contiguous slices, so the loop is a branch-
    /// free zip over `|V|` lanes.
    #[inline]
    pub fn passes_all_bands(&self, i: u32, j: u32, theta: f64) -> bool {
        self.row(i)
            .iter()
            .zip(self.row(j))
            .all(|(&a, &b)| band_pass(a, b, theta))
    }

    /// Index range (into `orders[v]`) of items whose VP-distance lies within
    /// `[d(v,i) − θ, d(v,i) + θ]`. Uses [`band_edges`], whose widened f32
    /// edges guarantee the range covers every item [`band_pass`] accepts.
    /// Binary searches run directly over the contiguous ascending `sorted[v]`
    /// slab — no gather through the permutation.
    fn band_range(&self, v: usize, i: u32, theta: f64) -> (usize, usize) {
        let (lo, hi) = band_edges(self.rows[i as usize * self.num_vps() + v], theta);
        let s = &self.sorted[v];
        let start = s.partition_point(|&d| d < lo);
        let end = s.partition_point(|&d| d <= hi);
        (start, end)
    }

    /// One-pass margin-adjusted metric bounds for the pair `(i, j)`: a
    /// Lipschitz lower bound and triangle upper bound on `d(i, j)` that stay
    /// sound under the f32 storage rounding of the per-VP distances (each
    /// stored coordinate carries relative error ≤ 2⁻²⁴ ≪ the `EPS = 1e-6`
    /// margin applied here, which scales with the coordinate magnitudes —
    /// not with their difference, where cancellation would make a
    /// difference-relative margin unsound). Returns `(0.0, f64::INFINITY)`
    /// when there are no vantage points.
    pub fn hint_bounds(&self, i: u32, j: u32) -> (f64, f64) {
        let mut lb = 0.0_f64;
        let mut ub = f64::INFINITY;
        for (&a, &b) in self.row(i).iter().zip(self.row(j)) {
            let (di, dj) = (f64::from(a), f64::from(b));
            lb = lb.max((di - dj).abs() - EPS * (di + dj));
            ub = ub.min((di + dj) * (1.0 + EPS));
        }
        (lb.max(0.0), ub)
    }

    /// Computes the candidate neighborhood `N̂_θ(i)` (Theorem 5), appending
    /// item ids to `out`. Includes `i` itself. Scans the VP with the smallest
    /// band and verifies every candidate against the remaining VPs.
    pub fn candidates_into(&self, i: u32, theta: f64, out: &mut Vec<u32>) {
        out.clear();
        if self.vp_ids.is_empty() {
            out.extend(0..self.len() as u32);
            return;
        }
        let mut best_v = 0usize;
        let mut best = usize::MAX;
        let mut best_range = (0, 0);
        for v in 0..self.num_vps() {
            let (s, e) = self.band_range(v, i, theta);
            if e - s < best {
                best = e - s;
                best_v = v;
                best_range = (s, e);
            }
        }
        let ord = &self.orders[best_v];
        for &cand in &ord[best_range.0..best_range.1] {
            if self.passes_all_bands(i, cand, theta) {
                out.push(cand);
            }
        }
    }

    /// Allocating variant of [`Self::candidates_into`].
    pub fn candidates(&self, i: u32, theta: f64) -> Vec<u32> {
        let mut v = Vec::new();
        self.candidates_into(i, theta, &mut v);
        v
    }

    /// Approximate heap footprint in bytes (all three SoA views).
    pub fn memory_bytes(&self) -> usize {
        self.vp_ids.len() * 4
            + self.rows.len() * 4
            + self.sorted.iter().map(|s| s.len() * 4).sum::<usize>()
            + self.orders.iter().map(|o| o.len() * 4).sum::<usize>()
    }
}

/// Item ids `0..n` stably sorted by the coordinates in `d` — the canonical
/// order every table construction path produces and every mutation path
/// preserves.
fn stable_argsort(n: usize, d: &[f32]) -> Vec<u32> {
    let mut ord: Vec<u32> = (0..n as u32).collect();
    ord.sort_by(|&a, &b| d[a as usize].total_cmp(&d[b as usize]));
    ord
}

// The JSON representation predates the SoA layout and is kept byte-stable as
// the fallback/migration format: the same `{n, vp_ids, dists, orders}` shape
// the old `Vec<Vec<f32>>`-backed derive produced, with `dists[v][i]` the raw
// coordinate columns. Serialization gathers the columns out of the item-major
// slab; deserialization honors the *stored* orders (defensively validated)
// rather than re-deriving them, so any historical file round-trips
// byte-identically.
impl Serialize for VantageTable {
    fn to_value(&self) -> Value {
        let dists: Vec<Vec<f32>> = (0..self.num_vps()).map(|v| self.column(v)).collect();
        Value::Obj(vec![
            ("n".to_owned(), self.n.to_value()),
            ("vp_ids".to_owned(), self.vp_ids.to_value()),
            ("dists".to_owned(), dists.to_value()),
            ("orders".to_owned(), self.orders.to_value()),
        ])
    }
}

impl Deserialize for VantageTable {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = v
            .as_obj()
            .ok_or_else(|| DeError::expected("object", v.kind()))?;
        let n = usize::from_value(serde::field(obj, "n", "VantageTable")?)?;
        let vp_ids = Vec::<u32>::from_value(serde::field(obj, "vp_ids", "VantageTable")?)?;
        let dists = Vec::<Vec<f32>>::from_value(serde::field(obj, "dists", "VantageTable")?)?;
        let orders = Vec::<Vec<u32>>::from_value(serde::field(obj, "orders", "VantageTable")?)?;
        Self::from_parts(n, vp_ids, dists, orders).map_err(DeError)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// 1-D line metric: items at positions 0, 1, 2, …, n−1.
    fn line_table(n: usize, vps: usize, seed: u64) -> VantageTable {
        let mut rng = SmallRng::seed_from_u64(seed);
        VantageTable::build(n, vps, &mut rng, |a, b| (a as f64 - b as f64).abs())
    }

    #[test]
    fn theta_band_pools_f32_identical_thresholds() {
        // Thresholds indistinguishable at f32 precision share a band…
        assert_eq!(theta_band(2.0), theta_band(2.0 + 1e-12));
        // …while f32-distinguishable thresholds do not.
        assert_ne!(theta_band(2.0), theta_band(2.5));
        assert_ne!(theta_band(0.0), theta_band(1.0));
    }

    #[test]
    fn bounds_sandwich_true_distance_on_line() {
        let t = line_table(50, 5, 1);
        for i in 0..50u32 {
            for j in 0..50u32 {
                let d = (i as f64 - j as f64).abs();
                assert!(t.lower_bound(i, j) <= d + 1e-6);
                assert!(t.upper_bound(i, j) >= d - 1e-6);
            }
        }
    }

    #[test]
    fn on_a_line_one_vp_lower_bound_is_often_exact() {
        // For collinear points on the same side of the VP the bound is exact.
        let mut d = |a: u32, b: u32| (a as f64 - b as f64).abs();
        let t = VantageTable::build_with_vps(10, vec![0], &mut d);
        assert_eq!(t.lower_bound(3, 7), 4.0);
    }

    #[test]
    fn candidates_superset_of_true_neighborhood() {
        let t = line_table(100, 3, 2);
        for i in (0..100u32).step_by(17) {
            let cands = t.candidates(i, 5.0);
            for j in 0..100u32 {
                let d = (i as f64 - j as f64).abs();
                if d <= 5.0 {
                    assert!(cands.contains(&j), "true neighbor {j} of {i} missing");
                }
            }
            assert!(cands.contains(&i));
        }
    }

    #[test]
    fn candidates_equal_pairwise_band_test() {
        // `candidates_into` (best-band scan + all-bands filter) must accept
        // exactly the items `passes_all_bands` accepts pair-by-pair: the
        // π̂ initialization's small-relevant fast path applies the pairwise
        // predicate directly and relies on this equivalence.
        let mut d = |a: u32, b: u32| {
            let (ax, ay) = ((a % 9) as f64, (a / 9) as f64);
            let (bx, by) = ((b % 9) as f64, (b / 9) as f64);
            (ax - bx).abs() + (ay - by).abs()
        };
        let t = VantageTable::build_with_vps(81, vec![0, 8, 72, 40], &mut d);
        for i in (0..81u32).step_by(7) {
            for theta in [0.0, 1.0, 2.5, 6.0] {
                let mut got = t.candidates(i, theta);
                got.sort_unstable();
                let want: Vec<u32> = (0..81u32)
                    .filter(|&c| t.passes_all_bands(i, c, theta))
                    .collect();
                assert_eq!(got, want, "i={i} theta={theta}");
            }
        }
    }

    #[test]
    fn more_vps_never_grow_candidates() {
        let mut d = |a: u32, b: u32| {
            // 2-D grid metric (L1): decouples coordinates so one VP is weak.
            let (ax, ay) = ((a % 10) as f64, (a / 10) as f64);
            let (bx, by) = ((b % 10) as f64, (b / 10) as f64);
            (ax - bx).abs() + (ay - by).abs()
        };
        let t1 = VantageTable::build_with_vps(100, vec![0], &mut d);
        let t3 = VantageTable::build_with_vps(100, vec![0, 9, 90], &mut d);
        for i in (0..100u32).step_by(13) {
            let c1 = t1.candidates(i, 3.0).len();
            let c3 = t3.candidates(i, 3.0).len();
            assert!(c3 <= c1, "i={i}: {c3} > {c1}");
        }
    }

    #[test]
    fn empty_vp_set_returns_everything() {
        let mut d = |a: u32, b: u32| (a as f64 - b as f64).abs();
        let t = VantageTable::build_with_vps(5, vec![], &mut d);
        assert_eq!(t.candidates(2, 1.0), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn par_build_on_empty_database() {
        // Regression: the flat-index arithmetic used `n.max(1)`, which on an
        // empty database produced a dists/vp_ids length mismatch instead of
        // `|V|` empty rows.
        let t = VantageTable::build_with_vps_par(0, vec![], &|_, _| 0.0);
        assert!(t.is_empty());
        assert_eq!(t.num_vps(), 0);
        assert!(t.candidates(0, 1.0).is_empty());
        let t2 = VantageTable::build_with_vps_par(0, vec![7, 9], &|_, _| 0.0);
        assert_eq!(t2.num_vps(), 2);
        assert_eq!(t2.len(), 0);
        assert_eq!(t2.memory_bytes(), 8);
    }

    #[test]
    fn band_scan_covers_band_pass_near_f32_boundaries() {
        // Coordinates engineered so the band edge `center ± θ` falls within
        // one f32 ULP of stored values: the scan range must still cover
        // everything `passes_all_bands` accepts, or candidate generation
        // would silently drop true neighbors.
        let base = 16_384.0_f64; // f32 ULP here is 2⁻³Q·2¹⁴ = 1/512
        let ulp = (16_384.0_f32.next_up() - 16_384.0_f32) as f64;
        let pos = [0.0, base, base + ulp, base + 2.0 * ulp, base + 1000.0];
        let dist = |a: u32, b: u32| (pos[a as usize] - pos[b as usize]).abs();
        let t = VantageTable::build_with_vps(pos.len(), vec![0], &mut { dist });
        for theta in [ulp, 2.0 * ulp, ulp / 2.0, 1000.0 - ulp] {
            for i in 0..pos.len() as u32 {
                let cands = t.candidates(i, theta);
                for j in 0..pos.len() as u32 {
                    if t.passes_all_bands(i, j, theta) {
                        assert!(
                            cands.contains(&j),
                            "θ={theta}: {j} passes all bands of {i} but was not scanned"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn hint_bounds_sandwich_true_distance_despite_f32_storage() {
        // Large, nearly equal coordinates: the f32 rounding error of each
        // stored distance can exceed the true difference, so an unadjusted
        // |dᵢ − dⱼ| would overshoot d(i, j). The margins must absorb it.
        let pos = [0.0_f64, 1.0e6, 1.0e6 + 0.01, 1.0e6 + 0.5, 2.0e6];
        let dist = |a: u32, b: u32| (pos[a as usize] - pos[b as usize]).abs();
        let t = VantageTable::build_with_vps(pos.len(), vec![0, 4], &mut { dist });
        for i in 0..pos.len() as u32 {
            for j in 0..pos.len() as u32 {
                let d = dist(i, j);
                let (lb, ub) = t.hint_bounds(i, j);
                assert!(lb <= d + 1e-9, "({i},{j}): lb {lb} > d {d}");
                assert!(ub >= d - 1e-9, "({i},{j}): ub {ub} < d {d}");
            }
        }
        let (lb, ub) = t.hint_bounds(0, 4);
        assert!(lb > 0.0 && ub.is_finite());
    }

    #[test]
    fn hint_bounds_empty_vps_are_vacuous() {
        let t = VantageTable::build_with_vps(3, vec![], &mut |a: u32, b: u32| {
            (a as f64 - b as f64).abs()
        });
        assert_eq!(t.hint_bounds(0, 2), (0.0, f64::INFINITY));
    }

    #[test]
    fn memory_accounting_scales() {
        let t1 = line_table(100, 2, 3);
        let t2 = line_table(100, 8, 3);
        assert!(t2.memory_bytes() > t1.memory_bytes());
    }

    #[test]
    fn push_item_matches_full_rebuild() {
        let pos = |i: u32| i as f64 * 1.5;
        let mut d = |a: u32, b: u32| (pos(a) - pos(b)).abs();
        let mut t = VantageTable::build_with_vps(8, vec![0, 5], &mut d);
        // Append items 8 and 9 one at a time …
        for id in 8u32..10 {
            let vp_dists: Vec<f64> = t.vp_ids().to_vec().iter().map(|&v| d(v, id)).collect();
            assert_eq!(t.push_item(&vp_dists), id);
        }
        // … and the result must equal a table built over all 10 from scratch.
        let full = VantageTable::build_with_vps(10, vec![0, 5], &mut d);
        assert_eq!(t.len(), full.len());
        for i in 0..10u32 {
            for j in 0..10u32 {
                assert_eq!(t.lower_bound(i, j), full.lower_bound(i, j));
                assert_eq!(t.upper_bound(i, j), full.upper_bound(i, j));
            }
            assert_eq!(t.candidates(i, 2.0), full.candidates(i, 2.0));
        }
    }

    #[test]
    fn push_item_ties_go_after_equal_coordinates() {
        // Items 1 and 2 are equidistant from the single VP; the appended
        // item 3 shares that distance and must sort after both (stable-sort
        // discipline: ties in ascending-id order).
        let pos = [0.0_f64, 2.0, 2.0];
        let mut d = |a: u32, b: u32| (pos[a as usize] - pos[b as usize]).abs();
        let mut t = VantageTable::build_with_vps(3, vec![0], &mut d);
        t.push_item(&[2.0]);
        let full = VantageTable::build_with_vps(4, vec![0], &mut |a: u32, b: u32| {
            let q = [0.0_f64, 2.0, 2.0, 2.0];
            (q[a as usize] - q[b as usize]).abs()
        });
        assert_eq!(t.candidates(1, 0.5), full.candidates(1, 0.5));
        assert_eq!(t.candidates(3, 0.0), full.candidates(3, 0.0));
    }

    #[test]
    fn serde_round_trip() {
        let t = line_table(20, 3, 4);
        let json = serde_json::to_string(&t).unwrap();
        let back: VantageTable = serde_json::from_str(&json).unwrap();
        assert_eq!(back.num_vps(), t.num_vps());
        assert_eq!(back.candidates(5, 2.0), t.candidates(5, 2.0));
        // Schema compatibility: re-serializing reproduces the bytes.
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
    }

    /// The binary decode path: raw columns alone must reassemble the exact
    /// table — orders, sorted slabs, and item-major rows all rederived.
    #[test]
    fn from_columns_reassembles_exactly() {
        let mut t = line_table(30, 4, 9);
        // Mix in appended items so ties exercise the stable-argsort claim.
        t.push_item(&[3.0, 7.0, 1.0, 4.0]);
        t.push_item(&[3.0, 7.0, 1.0, 4.0]);
        let cols: Vec<Vec<f32>> = (0..t.num_vps()).map(|v| t.column(v)).collect();
        let back = VantageTable::from_columns(t.len(), t.vp_ids().to_vec(), cols).unwrap();
        assert_eq!(back.len(), t.len());
        for i in 0..t.len() as u32 {
            assert_eq!(back.candidates(i, 2.0), t.candidates(i, 2.0));
            for j in 0..t.len() as u32 {
                assert_eq!(back.lower_bound(i, j), t.lower_bound(i, j));
                assert_eq!(back.hint_bounds(i, j), t.hint_bounds(i, j));
            }
        }
        // And the JSON forms agree byte-for-byte (same derived orders).
        assert_eq!(
            serde_json::to_string(&back).unwrap(),
            serde_json::to_string(&t).unwrap()
        );
    }

    #[test]
    fn from_columns_rejects_mismatched_shapes() {
        assert!(VantageTable::from_columns(3, vec![0, 1], vec![vec![0.0; 3]]).is_err());
        assert!(VantageTable::from_columns(3, vec![0], vec![vec![0.0; 2]]).is_err());
    }

    /// Corrupt JSON (orders not sorted by distance) is a typed error, not a
    /// silently broken table.
    #[test]
    fn deserialize_rejects_unsorted_orders() {
        let t = VantageTable::build_with_vps(5, vec![0], &mut |a: u32, b: u32| {
            (a as f64 - b as f64).abs()
        });
        let json = serde_json::to_string(&t).unwrap();
        // The identity order [0,1,2,3,4] is ascending on a line from VP 0 —
        // swapping two entries makes it unsorted by distance.
        let broken = json.replacen("[0,1,2", "[1,0,2", 1);
        assert_ne!(broken, json);
        assert!(serde_json::from_str::<VantageTable>(&broken).is_err());
    }
}
