//! Distance-distribution statistics (paper Figs 5(a)–5(e)).

use serde::{Deserialize, Serialize};

/// Summary of a sample of pairwise distances.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistanceDistribution {
    values: Vec<f64>,
}

impl DistanceDistribution {
    /// Builds a distribution from raw samples (sorted internally).
    pub fn new(mut values: Vec<f64>) -> Self {
        values.sort_by(f64::total_cmp);
        Self { values }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Sample mean (`0` for an empty sample).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        if self.values.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        (self.values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / self.values.len() as f64)
            .sqrt()
    }

    /// Largest sample (the metric-space "diameter" estimate).
    pub fn max(&self) -> f64 {
        self.values.last().copied().unwrap_or(0.0)
    }

    /// Smallest sample.
    pub fn min(&self) -> f64 {
        self.values.first().copied().unwrap_or(0.0)
    }

    /// Empirical CDF at `x`: fraction of samples ≤ `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let idx = self.values.partition_point(|&v| v <= x);
        idx as f64 / self.values.len() as f64
    }

    /// `q`-quantile for `q ∈ [0, 1]` (nearest-rank).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((self.values.len() as f64 - 1.0) * q).round() as usize;
        self.values[idx]
    }

    /// Histogram with `bins` equal-width buckets over `[min, max]`.
    ///
    /// Returns `(bucket_upper_edge, count)` pairs.
    pub fn histogram(&self, bins: usize) -> Vec<(f64, usize)> {
        assert!(bins > 0);
        if self.values.is_empty() {
            return vec![];
        }
        let lo = self.min();
        let hi = self.max();
        let width = ((hi - lo) / bins as f64).max(f64::MIN_POSITIVE);
        let mut counts = vec![0usize; bins];
        for &v in &self.values {
            let b = (((v - lo) / width) as usize).min(bins - 1);
            counts[b] += 1;
        }
        counts
            .into_iter()
            .enumerate()
            .map(|(i, c)| (lo + width * (i as f64 + 1.0), c))
            .collect()
    }

    /// Empirical CDF evaluated on an even grid of `points` x-values,
    /// the series plotted in Fig 5(a)–(b).
    pub fn cdf_series(&self, points: usize) -> Vec<(f64, f64)> {
        if self.values.is_empty() || points == 0 {
            return vec![];
        }
        let lo = self.min();
        let hi = self.max();
        (0..=points)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / points as f64;
                (x, self.cdf(x))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist() -> DistanceDistribution {
        DistanceDistribution::new(vec![4.0, 1.0, 3.0, 2.0, 5.0])
    }

    #[test]
    fn mean_and_std() {
        let d = dist();
        assert!((d.mean() - 3.0).abs() < 1e-12);
        assert!((d.std_dev() - 2.0f64.sqrt()).abs() < 1e-12);
        assert_eq!(d.min(), 1.0);
        assert_eq!(d.max(), 5.0);
    }

    #[test]
    fn cdf_steps() {
        let d = dist();
        assert_eq!(d.cdf(0.5), 0.0);
        assert_eq!(d.cdf(1.0), 0.2);
        assert_eq!(d.cdf(3.5), 0.6);
        assert_eq!(d.cdf(5.0), 1.0);
    }

    #[test]
    fn quantiles() {
        let d = dist();
        assert_eq!(d.quantile(0.0), 1.0);
        assert_eq!(d.quantile(0.5), 3.0);
        assert_eq!(d.quantile(1.0), 5.0);
        assert_eq!(d.quantile(2.0), 5.0); // clamped
    }

    #[test]
    fn histogram_covers_everything() {
        let d = dist();
        let h = d.histogram(4);
        assert_eq!(h.len(), 4);
        assert_eq!(h.iter().map(|(_, c)| c).sum::<usize>(), 5);
    }

    #[test]
    fn empty_distribution_is_safe() {
        let d = DistanceDistribution::new(vec![]);
        assert!(d.is_empty());
        assert_eq!(d.mean(), 0.0);
        assert_eq!(d.std_dev(), 0.0);
        assert_eq!(d.cdf(1.0), 0.0);
        assert!(d.histogram(3).is_empty());
        assert!(d.cdf_series(5).is_empty());
    }

    #[test]
    fn cdf_series_monotone() {
        let d = dist();
        let s = d.cdf_series(10);
        assert_eq!(s.len(), 11);
        for w in s.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        assert_eq!(s.last().unwrap().1, 1.0);
    }
}
