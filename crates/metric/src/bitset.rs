//! Fixed-capacity bitsets used for θ-neighborhood and coverage bookkeeping.

use serde::{Deserialize, Serialize};

/// A fixed-capacity bitset over `0..capacity`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bitset {
    words: Vec<u64>,
    capacity: usize,
}

impl Bitset {
    /// Creates an empty bitset able to hold `capacity` bits.
    pub fn new(capacity: usize) -> Self {
        Self {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Creates a bitset from an iterator of indices.
    pub fn from_indices(capacity: usize, it: impl IntoIterator<Item = usize>) -> Self {
        let mut b = Self::new(capacity);
        for i in it {
            b.insert(i);
        }
        b
    }

    /// Capacity in bits.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Sets bit `i`.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        debug_assert!(i < self.capacity);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clears bit `i`.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        debug_assert!(i < self.capacity);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Whether bit `i` is set.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.capacity);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether no bits are set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Clears all bits.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// `self |= other`.
    pub fn union_with(&mut self, other: &Bitset) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// `self &= other`.
    pub fn intersect_with(&mut self, other: &Bitset) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// `self &= !other`.
    pub fn subtract(&mut self, other: &Bitset) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// `|self ∩ other|` without allocating.
    pub fn intersection_count(&self, other: &Bitset) -> usize {
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// `|self \ other|` without allocating.
    pub fn difference_count(&self, other: &Bitset) -> usize {
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & !b).count_ones() as usize)
            .sum()
    }

    /// Number of set bits with index in `lo..hi`.
    pub fn count_range(&self, lo: usize, hi: usize) -> usize {
        let hi = hi.min(self.capacity);
        if lo >= hi {
            return 0;
        }
        let (wl, bl) = (lo / 64, lo % 64);
        let (wh, bh) = (hi / 64, hi % 64);
        if wl == wh {
            // Same word; here 1 ≤ bh ≤ 63, so the shift cannot overflow.
            let mask = (1u64 << bh) - (1u64 << bl);
            return (self.words[wl] & mask).count_ones() as usize;
        }
        let mut c = (self.words[wl] & (!0u64 << bl)).count_ones() as usize;
        for w in wl + 1..wh {
            c += self.words[w].count_ones() as usize;
        }
        if bh > 0 {
            c += (self.words[wh] & ((1u64 << bh) - 1)).count_ones() as usize;
        }
        c
    }

    /// Iterates set bit indices in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.words.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_set_ops() {
        let mut b = Bitset::new(130);
        b.insert(0);
        b.insert(64);
        b.insert(129);
        assert!(b.contains(0) && b.contains(64) && b.contains(129));
        assert!(!b.contains(1));
        assert_eq!(b.count(), 3);
        b.remove(64);
        assert!(!b.contains(64));
        assert_eq!(b.count(), 2);
    }

    #[test]
    fn union_intersect_subtract() {
        let a = Bitset::from_indices(100, [1, 2, 3, 70]);
        let b = Bitset::from_indices(100, [2, 3, 4, 99]);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.count(), 6);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![2, 3]);
        let mut d = a.clone();
        d.subtract(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1, 70]);
    }

    #[test]
    fn counting_helpers() {
        let a = Bitset::from_indices(200, [1, 5, 64, 128, 199]);
        let b = Bitset::from_indices(200, [5, 64, 100]);
        assert_eq!(a.intersection_count(&b), 2);
        assert_eq!(a.difference_count(&b), 3);
    }

    #[test]
    fn count_range_cases() {
        let a = Bitset::from_indices(300, [0, 63, 64, 65, 127, 128, 255, 299]);
        assert_eq!(a.count_range(0, 300), 8);
        assert_eq!(a.count_range(0, 64), 2);
        assert_eq!(a.count_range(64, 128), 3);
        assert_eq!(a.count_range(65, 66), 1);
        assert_eq!(a.count_range(66, 66), 0);
        assert_eq!(a.count_range(200, 1000), 2);
        assert_eq!(a.count_range(1, 63), 0);
    }

    #[test]
    fn count_range_matches_iter_on_random_sets() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(8);
        for _ in 0..50 {
            let n = 257;
            let bits: Vec<usize> = (0..40).map(|_| rng.gen_range(0..n)).collect();
            let b = Bitset::from_indices(n, bits.iter().copied());
            let lo = rng.gen_range(0..n);
            let hi = rng.gen_range(0..=n);
            let want = b.iter().filter(|&i| i >= lo && i < hi).count();
            assert_eq!(b.count_range(lo, hi), want, "lo={lo} hi={hi}");
        }
    }

    #[test]
    fn iter_order_and_empty() {
        let b = Bitset::from_indices(80, [77, 3, 40]);
        assert_eq!(b.iter().collect::<Vec<_>>(), vec![3, 40, 77]);
        let mut b = b;
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.iter().count(), 0);
    }

    #[test]
    fn zero_capacity() {
        let b = Bitset::new(0);
        assert_eq!(b.count(), 0);
        assert!(b.is_empty());
        assert_eq!(b.count_range(0, 0), 0);
    }
}
