//! A metric tree with routing objects and covering radii.
//!
//! This is the index DisC adapts [Zezula et al., "Similarity Search: The
//! Metric Space Approach"]. Bulk-loaded top-down: a node holds a routing
//! object and a covering radius; range queries prune subtrees whose routing
//! ball cannot intersect the query ball (triangle inequality). Unlike the
//! NB-Index it indexes *nearest-neighbor* structure only — no vantage
//! orderings, no θ-neighborhood bounds — which is exactly the gap the paper
//! demonstrates.

use graphrep_ged::DistanceOracle;
use graphrep_graph::GraphId;
use rand::seq::SliceRandom;
use rand::Rng;

#[derive(Debug)]
struct Node {
    routing: GraphId,
    radius: f64,
    children: Vec<u32>,
    /// Leaf entries (bottom nodes only).
    entries: Vec<GraphId>,
}

/// Bulk-loaded metric tree over all graphs of an oracle.
#[derive(Debug)]
pub struct MTree {
    nodes: Vec<Node>,
    len: usize,
}

/// Fan-out / leaf capacity.
const BRANCHING: usize = 8;

impl MTree {
    /// Builds the tree over every graph the oracle holds.
    pub fn build<R: Rng + ?Sized>(oracle: &DistanceOracle, rng: &mut R) -> Self {
        let ids: Vec<GraphId> = (0..oracle.len() as GraphId).collect();
        let mut t = MTree {
            nodes: Vec::new(),
            len: ids.len(),
        };
        if !ids.is_empty() {
            let routing = ids[rng.gen_range(0..ids.len())];
            let dists: Vec<f64> = ids.iter().map(|&g| oracle.distance(routing, g)).collect();
            t.build_node(oracle, routing, ids, dists, rng);
        }
        t
    }

    fn build_node<R: Rng + ?Sized>(
        &mut self,
        oracle: &DistanceOracle,
        routing: GraphId,
        members: Vec<GraphId>,
        routing_dists: Vec<f64>,
        rng: &mut R,
    ) -> u32 {
        let radius = routing_dists.iter().copied().fold(0.0, f64::max);
        let idx = self.nodes.len() as u32;
        self.nodes.push(Node {
            routing,
            radius,
            children: vec![],
            entries: vec![],
        });
        if members.len() <= BRANCHING {
            self.nodes[idx as usize].entries = members;
            return idx;
        }
        // Pick sub-routing objects at random (classic M-tree split policy
        // approximated for bulk load) and assign members to the closest.
        let mut pivots: Vec<GraphId> = members.clone();
        pivots.shuffle(rng);
        pivots.truncate(BRANCHING);
        let mut parts: Vec<(Vec<GraphId>, Vec<f64>)> = vec![(vec![], vec![]); pivots.len()];
        for &g in &members {
            let (mut best, mut best_i) = (f64::INFINITY, 0);
            for (i, &p) in pivots.iter().enumerate() {
                let d = oracle.distance(g, p);
                if d < best {
                    best = d;
                    best_i = i;
                }
            }
            parts[best_i].0.push(g);
            parts[best_i].1.push(best);
        }
        if parts.iter().filter(|p| !p.0.is_empty()).count() <= 1 {
            self.nodes[idx as usize].entries = members;
            return idx;
        }
        let mut children = Vec::new();
        for (i, (part, dists)) in parts.into_iter().enumerate() {
            if part.is_empty() {
                continue;
            }
            children.push(self.build_node(oracle, pivots[i], part, dists, rng));
        }
        self.nodes[idx as usize].children = children;
        idx
    }

    /// Number of indexed graphs.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// All graphs within `theta` of `q` (including `q` itself).
    pub fn range_query(&self, oracle: &DistanceOracle, q: GraphId, theta: f64) -> Vec<GraphId> {
        let mut out = Vec::new();
        if self.nodes.is_empty() {
            return out;
        }
        let mut stack = vec![0u32];
        while let Some(ni) = stack.pop() {
            let node = &self.nodes[ni as usize];
            let d = oracle.distance(q, node.routing);
            if d - node.radius > theta + 1e-9 {
                continue; // the query ball misses the covering ball
            }
            for &e in &node.entries {
                if oracle.within(q, e, theta).is_some() {
                    out.push(e);
                }
            }
            stack.extend(&node.children);
        }
        out.sort_unstable();
        out
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| std::mem::size_of::<Node>() + (n.children.len() + n.entries.len()) * 4)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphrep_datagen::{DatasetKind, DatasetSpec};
    use graphrep_ged::GedConfig;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn range_query_matches_brute_force() {
        let data = DatasetSpec::new(DatasetKind::DudLike, 80, 11).generate();
        let oracle = data.db.oracle(GedConfig::default());
        let mut rng = SmallRng::seed_from_u64(1);
        let tree = MTree::build(&oracle, &mut rng);
        assert_eq!(tree.len(), 80);
        for q in [0u32, 7, 33, 79] {
            let got = tree.range_query(&oracle, q, 4.0);
            let want: Vec<GraphId> = (0..80)
                .filter(|&j| oracle.within(q, j, 4.0).is_some())
                .collect();
            assert_eq!(got, want, "q={q}");
        }
    }

    #[test]
    fn empty_tree() {
        let db = graphrep_core::GraphDatabase::new(vec![], vec![], Default::default());
        let oracle = db.oracle(GedConfig::default());
        let mut rng = SmallRng::seed_from_u64(2);
        let tree = MTree::build(&oracle, &mut rng);
        assert!(tree.is_empty());
        assert!(tree.range_query(&oracle, 0, 5.0).is_empty());
    }

    #[test]
    fn pruning_reduces_leaf_checks() {
        let data = DatasetSpec::new(DatasetKind::AmazonLike, 60, 12).generate();
        let oracle = data.db.oracle(GedConfig::default());
        let mut rng = SmallRng::seed_from_u64(3);
        let tree = MTree::build(&oracle, &mut rng);
        oracle.reset_stats();
        let _ = tree.range_query(&oracle, 0, 2.0);
        // At a tight radius the covering-radius test must prune some leaves:
        // fewer within-calls than graphs.
        let s = oracle.stats();
        assert!(
            s.distance_computations + s.within_rejections + s.cache_hits > 0,
            "query should consult the oracle"
        );
    }
}
