//! Top-k typicality (Hua et al., VLDB'07/VLDBJ'09), paper Sec 9.
//!
//! An object is *typical* if it is close to many other objects: typicality
//! is a kernel density estimate over the metric space. The paper contrasts
//! it with representative power — typicality scores are independent, so two
//! highly typical objects from the same cluster can both enter the answer
//! set, which is exactly the redundancy top-k representative queries remove.
//! Included as a comparator to demonstrate that difference empirically.

use graphrep_ged::DistanceOracle;
use graphrep_graph::GraphId;

/// Result of a typicality computation.
#[derive(Debug, Clone, PartialEq)]
pub struct TypicalityResult {
    /// The k most typical graphs, descending by score.
    pub ids: Vec<GraphId>,
    /// Their typicality scores.
    pub scores: Vec<f64>,
}

/// Gaussian-kernel typicality of each graph in `relevant`:
/// `T(o) = (1/|L_q|) Σ_{o'} exp(−d(o,o')² / 2h²)`.
///
/// Quadratic in `|relevant|` — typicality has no neighborhood structure to
/// exploit, which is part of the paper's point.
pub fn typicality_scores(
    oracle: &DistanceOracle,
    relevant: &[GraphId],
    bandwidth: f64,
) -> Vec<f64> {
    assert!(bandwidth > 0.0, "bandwidth must be positive");
    let inv = 1.0 / (2.0 * bandwidth * bandwidth);
    relevant
        .iter()
        .map(|&g| {
            relevant
                .iter()
                .map(|&o| {
                    let d = oracle.distance(g, o);
                    (-d * d * inv).exp()
                })
                .sum::<f64>()
                / relevant.len().max(1) as f64
        })
        .collect()
}

/// The `k` most typical relevant graphs (ties toward smaller ids).
pub fn topk_typicality(
    oracle: &DistanceOracle,
    relevant: &[GraphId],
    bandwidth: f64,
    k: usize,
) -> TypicalityResult {
    let scores = typicality_scores(oracle, relevant, bandwidth);
    let mut order: Vec<usize> = (0..relevant.len()).collect();
    order.sort_by(|&a, &b| {
        scores[b]
            .total_cmp(&scores[a])
            .then(relevant[a].cmp(&relevant[b]))
    });
    order.truncate(k);
    TypicalityResult {
        ids: order.iter().map(|&i| relevant[i]).collect(),
        scores: order.iter().map(|&i| scores[i]).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphrep_datagen::{DatasetKind, DatasetSpec};
    use graphrep_ged::GedConfig;

    #[test]
    fn cluster_members_are_more_typical_than_outliers() {
        let data = DatasetSpec::new(DatasetKind::DudLike, 100, 61).generate();
        let oracle = data.db.oracle(GedConfig::default());
        let relevant: Vec<GraphId> = (0..100).collect();
        let scores = typicality_scores(&oracle, &relevant, 4.0);
        // The largest family occupies the first slots; the tail is outliers.
        let fam0_avg: f64 = (0..20).map(|i| scores[i]).sum::<f64>() / 20.0;
        let tail_avg: f64 = (90..100).map(|i| scores[i]).sum::<f64>() / 10.0;
        assert!(
            fam0_avg > tail_avg,
            "big-family members should be more typical: {fam0_avg} vs {tail_avg}"
        );
    }

    #[test]
    fn topk_returns_descending_scores() {
        let data = DatasetSpec::new(DatasetKind::DblpLike, 60, 62).generate();
        let oracle = data.db.oracle(GedConfig::default());
        let relevant: Vec<GraphId> = (0..60).collect();
        let r = topk_typicality(&oracle, &relevant, 4.0, 10);
        assert_eq!(r.ids.len(), 10);
        for w in r.scores.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn typicality_answers_are_redundant_vs_greedy() {
        // The paper's argument: typicality picks multiple members of the
        // same dense cluster; the representative greedy does not.
        use graphrep_core::{baseline_greedy, BruteForceProvider};
        let data = DatasetSpec::new(DatasetKind::DudLike, 150, 63).generate();
        let oracle = data.db.oracle(GedConfig::default());
        let relevant: Vec<GraphId> = (0..150).collect();
        let theta = data.default_theta;
        let k = 5;
        let typ = topk_typicality(&oracle, &relevant, theta, k);
        let rep = baseline_greedy(
            &BruteForceProvider::new(&oracle, &relevant),
            &relevant,
            theta,
            k,
        );
        let close_pairs = |ids: &[GraphId]| {
            let mut c = 0;
            for (i, &a) in ids.iter().enumerate() {
                for &b in &ids[i + 1..] {
                    if oracle.within(a, b, theta).is_some() {
                        c += 1;
                    }
                }
            }
            c
        };
        assert!(
            close_pairs(&typ.ids) >= close_pairs(&rep.ids),
            "typicality should be at least as redundant as REP"
        );
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let data = DatasetSpec::new(DatasetKind::DudLike, 5, 64).generate();
        let oracle = data.db.oracle(GedConfig::default());
        let _ = typicality_scores(&oracle, &[0, 1], 0.0);
    }
}
