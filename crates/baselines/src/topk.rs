//! Traditional top-k by feature score (paper Sec 8.4, Fig 7): the
//! no-diversity, no-representativeness strawman.

use graphrep_core::{GraphDatabase, RelevanceQuery};
use graphrep_graph::GraphId;

/// Returns the `k` graphs with the highest feature-space scores, ties broken
/// toward smaller ids.
pub fn traditional_topk(db: &GraphDatabase, query: &RelevanceQuery, k: usize) -> Vec<GraphId> {
    let mut ids: Vec<GraphId> = (0..db.len() as GraphId).collect();
    ids.sort_by(|&a, &b| {
        query
            .score(db, b)
            .total_cmp(&query.score(db, a))
            .then(a.cmp(&b))
    });
    ids.truncate(k);
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphrep_core::Scorer;
    use graphrep_graph::{GraphBuilder, LabelInterner};

    fn db(scores: &[f64]) -> GraphDatabase {
        let graphs = scores
            .iter()
            .map(|_| {
                let mut b = GraphBuilder::new();
                b.add_node(0);
                b.build()
            })
            .collect();
        let features = scores.iter().map(|&s| vec![s]).collect();
        GraphDatabase::new(graphs, features, LabelInterner::new())
    }

    fn query() -> RelevanceQuery {
        RelevanceQuery {
            scorer: Scorer::MeanOfDims(vec![0]),
            threshold: 0.0,
        }
    }

    #[test]
    fn returns_highest_scores_in_order() {
        let db = db(&[0.1, 0.9, 0.5, 0.7]);
        assert_eq!(traditional_topk(&db, &query(), 3), vec![1, 3, 2]);
    }

    #[test]
    fn ties_break_to_smaller_id() {
        let db = db(&[0.5, 0.5, 0.5]);
        assert_eq!(traditional_topk(&db, &query(), 2), vec![0, 1]);
    }

    #[test]
    fn k_larger_than_db() {
        let db = db(&[0.2, 0.8]);
        assert_eq!(traditional_topk(&db, &query(), 10), vec![1, 0]);
    }
}
