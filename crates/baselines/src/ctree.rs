//! A closure-tree-style graph index (He & Singh, ICDE'06).
//!
//! The closure tree clusters graphs hierarchically; each node keeps a
//! *closure* — a structural summary that upper-bounds every member — from
//! which a cheap lower bound on the edit distance between a query graph and
//! any member follows. Our closure keeps per-label maximum node/edge counts
//! and size ranges (a simplification of the original's closure graph; see
//! DESIGN.md §3), which preserves the index's role in the evaluation: prune
//! by lower bound, verify by exact distance.

use graphrep_ged::{CostModel, DistanceOracle};
use graphrep_graph::{Graph, GraphId};
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashMap;

/// Structural summary upper-bounding a set of graphs.
#[derive(Debug, Clone, Default)]
struct Closure {
    /// Max count per node label over members.
    node_label_max: HashMap<u32, u32>,
    /// Max count per edge label over members.
    edge_label_max: HashMap<u32, u32>,
    min_nodes: usize,
    max_nodes: usize,
    min_edges: usize,
    max_edges: usize,
}

impl Closure {
    fn of(graphs: &[&Graph]) -> Self {
        let mut c = Closure {
            min_nodes: usize::MAX,
            min_edges: usize::MAX,
            ..Default::default()
        };
        for g in graphs {
            let mut nl: HashMap<u32, u32> = HashMap::new();
            for &l in g.node_labels() {
                *nl.entry(l).or_default() += 1;
            }
            for (l, cnt) in nl {
                let e = c.node_label_max.entry(l).or_default();
                *e = (*e).max(cnt);
            }
            let mut el: HashMap<u32, u32> = HashMap::new();
            for e in g.edges() {
                *el.entry(e.label).or_default() += 1;
            }
            for (l, cnt) in el {
                let e = c.edge_label_max.entry(l).or_default();
                *e = (*e).max(cnt);
            }
            c.min_nodes = c.min_nodes.min(g.node_count());
            c.max_nodes = c.max_nodes.max(g.node_count());
            c.min_edges = c.min_edges.min(g.edge_count());
            c.max_edges = c.max_edges.max(g.edge_count());
        }
        if c.min_nodes == usize::MAX {
            c.min_nodes = 0;
            c.min_edges = 0;
        }
        c
    }

    /// Lower bound on `d(q, g)` for every member `g` of the closure.
    ///
    /// Sound because (a) every query node whose label exceeds the closure's
    /// per-label capacity must be relabeled or deleted (≥ min(sub, indel)
    /// each), likewise for edges, and (b) node/edge count differences cost
    /// at least one indel each. The max of sound bounds is sound.
    fn lower_bound(&self, q: &Graph, cost: &CostModel) -> f64 {
        let mut node_deficit = 0u32;
        let mut counts: HashMap<u32, u32> = HashMap::new();
        for &l in q.node_labels() {
            *counts.entry(l).or_default() += 1;
        }
        for (l, cnt) in counts {
            let cap = self.node_label_max.get(&l).copied().unwrap_or(0);
            node_deficit += cnt.saturating_sub(cap);
        }
        let mut edge_deficit = 0u32;
        let mut ecounts: HashMap<u32, u32> = HashMap::new();
        for e in q.edges() {
            *ecounts.entry(e.label).or_default() += 1;
        }
        for (l, cnt) in ecounts {
            let cap = self.edge_label_max.get(&l).copied().unwrap_or(0);
            edge_deficit += cnt.saturating_sub(cap);
        }
        let label_lb = node_deficit as f64 * cost.node_sub.min(cost.node_indel)
            + edge_deficit as f64 * cost.edge_sub.min(cost.edge_indel);
        let size_node = if q.node_count() > self.max_nodes {
            (q.node_count() - self.max_nodes) as f64
        } else if q.node_count() < self.min_nodes {
            (self.min_nodes - q.node_count()) as f64
        } else {
            0.0
        };
        let size_edge = if q.edge_count() > self.max_edges {
            (q.edge_count() - self.max_edges) as f64
        } else if q.edge_count() < self.min_edges {
            (self.min_edges - q.edge_count()) as f64
        } else {
            0.0
        };
        let size_lb = size_node * cost.node_indel + size_edge * cost.edge_indel;
        label_lb.max(size_lb)
    }
}

#[derive(Debug)]
struct Node {
    closure: Closure,
    children: Vec<u32>,
    entries: Vec<GraphId>,
}

/// The closure tree.
#[derive(Debug)]
pub struct CTree {
    nodes: Vec<Node>,
    len: usize,
}

const BRANCHING: usize = 8;

impl CTree {
    /// Builds the tree over every graph the oracle holds, clustering by
    /// exact distance to randomly chosen pivots.
    pub fn build<R: Rng + ?Sized>(oracle: &DistanceOracle, rng: &mut R) -> Self {
        let ids: Vec<GraphId> = (0..oracle.len() as GraphId).collect();
        let mut t = CTree {
            nodes: Vec::new(),
            len: ids.len(),
        };
        if !ids.is_empty() {
            t.build_node(oracle, ids, rng);
        }
        t
    }

    fn build_node<R: Rng + ?Sized>(
        &mut self,
        oracle: &DistanceOracle,
        members: Vec<GraphId>,
        rng: &mut R,
    ) -> u32 {
        let graphs: Vec<&Graph> = members
            .iter()
            .map(|&g| &oracle.graphs()[g as usize])
            .collect();
        let closure = Closure::of(&graphs);
        let idx = self.nodes.len() as u32;
        self.nodes.push(Node {
            closure,
            children: vec![],
            entries: vec![],
        });
        if members.len() <= BRANCHING {
            self.nodes[idx as usize].entries = members;
            return idx;
        }
        let mut pivots: Vec<GraphId> = members.clone();
        pivots.shuffle(rng);
        pivots.truncate(BRANCHING);
        let mut parts: Vec<Vec<GraphId>> = vec![vec![]; pivots.len()];
        for &g in &members {
            let mut best = f64::INFINITY;
            let mut best_i = 0;
            for (i, &p) in pivots.iter().enumerate() {
                let d = oracle.distance(g, p);
                if d < best {
                    best = d;
                    best_i = i;
                }
            }
            parts[best_i].push(g);
        }
        if parts.iter().filter(|p| !p.is_empty()).count() <= 1 {
            self.nodes[idx as usize].entries = members;
            return idx;
        }
        let mut children = Vec::new();
        for part in parts {
            if part.is_empty() {
                continue;
            }
            children.push(self.build_node(oracle, part, rng));
        }
        self.nodes[idx as usize].children = children;
        idx
    }

    /// Number of indexed graphs.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// All graphs within `theta` of `q` (including `q` itself).
    pub fn range_query(&self, oracle: &DistanceOracle, q: GraphId, theta: f64) -> Vec<GraphId> {
        let mut out = Vec::new();
        if self.nodes.is_empty() {
            return out;
        }
        let cost = graphrep_ged::CostModel::uniform();
        let qg = &oracle.graphs()[q as usize];
        let mut stack = vec![0u32];
        while let Some(ni) = stack.pop() {
            let node = &self.nodes[ni as usize];
            if node.closure.lower_bound(qg, &cost) > theta + 1e-9 {
                continue;
            }
            for &e in &node.entries {
                if oracle.within(q, e, theta).is_some() {
                    out.push(e);
                }
            }
            stack.extend(&node.children);
        }
        out.sort_unstable();
        out
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| {
                std::mem::size_of::<Node>()
                    + (n.children.len() + n.entries.len()) * 4
                    + (n.closure.node_label_max.len() + n.closure.edge_label_max.len()) * 8
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphrep_datagen::{DatasetKind, DatasetSpec};
    use graphrep_ged::GedConfig;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn closure_lower_bound_is_admissible() {
        let data = DatasetSpec::new(DatasetKind::DudLike, 30, 21).generate();
        let oracle = data.db.oracle(GedConfig::default());
        let cost = CostModel::uniform();
        let members: Vec<&Graph> = (0..10).map(|i| &oracle.graphs()[i]).collect();
        let closure = Closure::of(&members);
        for q in 10..30u32 {
            let lb = closure.lower_bound(&oracle.graphs()[q as usize], &cost);
            for m in 0..10u32 {
                let d = oracle.distance(q, m);
                assert!(lb <= d + 1e-9, "lb {lb} > d({q},{m}) = {d}");
            }
        }
    }

    #[test]
    fn closure_of_member_is_zero_bound() {
        let data = DatasetSpec::new(DatasetKind::DblpLike, 10, 22).generate();
        let g = &data.db.graphs()[0];
        let closure = Closure::of(&[g]);
        assert_eq!(closure.lower_bound(g, &CostModel::uniform()), 0.0);
    }

    #[test]
    fn range_query_matches_brute_force() {
        let data = DatasetSpec::new(DatasetKind::DblpLike, 70, 23).generate();
        let oracle = data.db.oracle(GedConfig::default());
        let mut rng = SmallRng::seed_from_u64(5);
        let tree = CTree::build(&oracle, &mut rng);
        for q in [0u32, 13, 44, 69] {
            let got = tree.range_query(&oracle, q, 4.0);
            let want: Vec<GraphId> = (0..70)
                .filter(|&j| oracle.within(q, j, 4.0).is_some())
                .collect();
            assert_eq!(got, want, "q={q}");
        }
    }

    #[test]
    fn empty_tree() {
        let db = graphrep_core::GraphDatabase::new(vec![], vec![], Default::default());
        let oracle = db.oracle(GedConfig::default());
        let mut rng = SmallRng::seed_from_u64(6);
        let tree = CTree::build(&oracle, &mut rng);
        assert!(tree.is_empty());
        assert!(tree.range_query(&oracle, 0, 3.0).is_empty());
    }
}
