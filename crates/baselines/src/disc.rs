//! Greedy-DisC (Drosou & Pitoura, PVLDB'12), paper Sec 3.1.
//!
//! DisC computes a *covering independent set*: every relevant object must be
//! within θ of some answer object, and answer objects are pairwise more than
//! θ apart. There is no budget — the answer grows with the relevant set,
//! which is precisely the weakness Fig 2(a) and Table 4 demonstrate. We
//! implement the grey-greedy variant: among uncovered ("grey") objects,
//! repeatedly pick the one covering the most still-uncovered objects.

use graphrep_core::NeighborhoodProvider;
use graphrep_graph::GraphId;
use graphrep_metric::Bitset;

/// Result of a DisC run.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscResult {
    /// The covering independent set, in selection order.
    pub ids: Vec<GraphId>,
    /// Relevant objects covered (equals the relevant count on a full run).
    pub covered: usize,
    /// Whether the run stopped early at `stop_at`.
    pub truncated: bool,
}

/// Runs grey-greedy DisC over `relevant` with threshold `theta`.
///
/// `stop_at` truncates the answer for timing comparisons (paper Sec 8.2:
/// "for DisC, we stop the computation as soon as it attains a size of k").
pub fn greedy_disc(
    provider: &impl NeighborhoodProvider,
    relevant: &[GraphId],
    theta: f64,
    stop_at: Option<usize>,
) -> DiscResult {
    let cap = relevant.iter().copied().max().map_or(0, |m| m as usize + 1);
    let neigh: Vec<Bitset> = relevant
        .iter()
        .map(|&g| {
            Bitset::from_indices(
                cap,
                provider.neighborhood(g, theta).iter().map(|&n| n as usize),
            )
        })
        .collect();
    let mut covered = Bitset::new(cap);
    let mut ids = Vec::new();
    let mut truncated = false;
    loop {
        if let Some(limit) = stop_at {
            if ids.len() >= limit {
                truncated = covered.count() < relevant.len();
                break;
            }
        }
        // Grey objects: relevant and not yet covered.
        let mut best: Option<(usize, usize)> = None;
        for (i, &g) in relevant.iter().enumerate() {
            if covered.contains(g as usize) {
                continue;
            }
            let gain = neigh[i].difference_count(&covered);
            match best {
                Some((bg, _)) if bg >= gain => {}
                _ => best = Some((gain, i)),
            }
        }
        let Some((_, bi)) = best else { break };
        ids.push(relevant[bi]);
        covered.union_with(&neigh[bi]);
        covered.insert(relevant[bi] as usize);
    }
    DiscResult {
        ids,
        covered: covered.count(),
        truncated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct LineProvider {
        relevant: Vec<GraphId>,
    }

    impl NeighborhoodProvider for LineProvider {
        fn neighborhood(&self, g: GraphId, theta: f64) -> Vec<GraphId> {
            self.relevant
                .iter()
                .copied()
                .filter(|&r| (r as f64 - g as f64).abs() <= theta)
                .collect()
        }
    }

    #[test]
    fn covers_all_relevant_objects() {
        let relevant: Vec<GraphId> = vec![0, 1, 2, 3, 10, 11, 12, 30];
        let p = LineProvider {
            relevant: relevant.clone(),
        };
        let r = greedy_disc(&p, &relevant, 2.0, None);
        assert_eq!(r.covered, relevant.len());
        assert!(!r.truncated);
        // Answer objects are pairwise > θ apart (independence).
        for (i, &a) in r.ids.iter().enumerate() {
            for &b in &r.ids[i + 1..] {
                assert!((a as f64 - b as f64).abs() > 2.0, "{a} and {b} too close");
            }
        }
    }

    #[test]
    fn outliers_force_linear_growth() {
        // All-isolated relevant objects: DisC must select every one of them
        // (the Fig 2(a) pathology).
        let relevant: Vec<GraphId> = (0..20).map(|i| i * 100).collect();
        let p = LineProvider {
            relevant: relevant.clone(),
        };
        let r = greedy_disc(&p, &relevant, 5.0, None);
        assert_eq!(r.ids.len(), 20);
    }

    #[test]
    fn stop_at_truncates() {
        let relevant: Vec<GraphId> = (0..30).map(|i| i * 100).collect();
        let p = LineProvider {
            relevant: relevant.clone(),
        };
        let r = greedy_disc(&p, &relevant, 5.0, Some(4));
        assert_eq!(r.ids.len(), 4);
        assert!(r.truncated);
    }

    #[test]
    fn empty_relevant() {
        let p = LineProvider { relevant: vec![] };
        let r = greedy_disc(&p, &[], 1.0, None);
        assert!(r.ids.is_empty());
        assert_eq!(r.covered, 0);
    }

    #[test]
    fn picks_heavy_cover_first() {
        let relevant: Vec<GraphId> = vec![0, 1, 2, 3, 4, 50];
        let p = LineProvider {
            relevant: relevant.clone(),
        };
        let r = greedy_disc(&p, &relevant, 2.0, None);
        assert_eq!(r.ids[0], 2, "center of the dense cluster first");
    }
}
