//! The precomputed-distance-matrix comparator (paper Fig 5(i) inset,
//! Fig 6(k)): the best possible query time, bought with quadratic
//! construction cost and storage.

use graphrep_ged::DistanceOracle;
use graphrep_graph::GraphId;
use graphrep_metric::DistanceMatrix;
use std::time::{Duration, Instant};

/// A fully materialized pairwise distance matrix.
#[derive(Debug)]
pub struct MatrixIndex {
    matrix: DistanceMatrix,
    /// Wall time spent computing all pairs.
    pub build_wall: Duration,
    /// Distance-engine calls during the build.
    pub build_calls: u64,
}

impl MatrixIndex {
    /// Computes all `n(n−1)/2` pairwise distances.
    pub fn build(oracle: &DistanceOracle) -> Self {
        let t0 = Instant::now();
        let calls0 = oracle.engine_calls();
        let matrix = DistanceMatrix::build(oracle.len(), |a, b| oracle.distance(a, b));
        Self {
            matrix,
            build_wall: t0.elapsed(),
            build_calls: oracle.engine_calls() - calls0,
        }
    }

    /// The matrix.
    pub fn matrix(&self) -> &DistanceMatrix {
        &self.matrix
    }

    /// All graphs within `theta` of `q` (including `q`).
    pub fn range_query(&self, q: GraphId, theta: f64) -> Vec<GraphId> {
        self.matrix.range_query(q, theta)
    }

    /// Heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.matrix.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphrep_datagen::{DatasetKind, DatasetSpec};
    use graphrep_ged::GedConfig;

    #[test]
    fn matrix_agrees_with_oracle() {
        let data = DatasetSpec::new(DatasetKind::DudLike, 40, 31).generate();
        let oracle = data.db.oracle(GedConfig::default());
        let m = MatrixIndex::build(&oracle);
        for i in (0..40u32).step_by(7) {
            for j in (0..40u32).step_by(11) {
                assert_eq!(m.matrix().get(i, j), oracle.distance(i, j));
            }
        }
        assert_eq!(m.build_calls, 40 * 39 / 2);
    }

    #[test]
    fn range_query_matches_brute_force() {
        let data = DatasetSpec::new(DatasetKind::DblpLike, 30, 32).generate();
        let oracle = data.db.oracle(GedConfig::default());
        let m = MatrixIndex::build(&oracle);
        for q in [0u32, 15, 29] {
            let want: Vec<GraphId> = (0..30)
                .filter(|&j| oracle.within(q, j, 4.0).is_some())
                .collect();
            assert_eq!(m.range_query(q, 4.0), want);
        }
    }
}
