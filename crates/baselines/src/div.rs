//! DIV — diversified top-k with static scores (Qin, Yu & Chang, PVLDB'12),
//! paper Sec 3.2.
//!
//! DIV maximizes the *sum* of static per-object scores subject to the
//! pairwise distance constraint. To target representativeness the paper
//! assigns `score(g) = π(g)` — which DIV then wrongly treats as independent
//! of the rest of the answer set. Both evaluation variants are provided:
//! `DIV(θ)` (original constraint `d > θ`) and `DIV(2θ)` (the stricter
//! `d > 2θ` needed for genuine score independence, Thm 3).
//!
//! The algorithm mirrors the "div-cut" essence: materialize the diversity
//! graph (who conflicts with whom at the constraint radius) from index range
//! queries, then take a greedy maximum-weight independent set.

use graphrep_core::NeighborhoodProvider;
use graphrep_graph::GraphId;
use std::collections::HashSet;

/// Which pairwise constraint DIV enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivVariant {
    /// Original model: answers pairwise more than θ apart.
    Theta,
    /// Score-independence model: answers pairwise more than 2θ apart.
    TwoTheta,
}

/// Result of a DIV run.
#[derive(Debug, Clone, PartialEq)]
pub struct DivResult {
    /// The diversified top-k, in selection order.
    pub ids: Vec<GraphId>,
    /// The static scores `π(g)·|L_q|` (neighborhood sizes) used.
    pub scores: Vec<usize>,
}

/// Runs DIV over `relevant`.
///
/// Scores are the θ-neighborhood sizes (static representative power); the
/// conflict radius is θ or 2θ per `variant`. Ties break toward smaller ids.
pub fn div_topk(
    provider: &impl NeighborhoodProvider,
    relevant: &[GraphId],
    theta: f64,
    k: usize,
    variant: DivVariant,
) -> DivResult {
    // Static scores: |N_θ(g)| — computed once, never updated (the model's
    // defining assumption).
    let neigh_theta: Vec<Vec<GraphId>> = relevant
        .iter()
        .map(|&g| provider.neighborhood(g, theta))
        .collect();
    let scores: Vec<usize> = neigh_theta.iter().map(Vec::len).collect();
    // Diversity graph at the constraint radius.
    let radius = match variant {
        DivVariant::Theta => theta,
        DivVariant::TwoTheta => 2.0 * theta,
    };
    let conflicts: Vec<HashSet<GraphId>> = match variant {
        DivVariant::Theta => neigh_theta
            .iter()
            .map(|n| n.iter().copied().collect())
            .collect(),
        DivVariant::TwoTheta => relevant
            .iter()
            .map(|&g| provider.neighborhood(g, radius).into_iter().collect())
            .collect(),
    };
    // Greedy max-weight independent set (div-cut greedy): highest score
    // first, skip anything conflicting with a chosen answer.
    let mut order: Vec<usize> = (0..relevant.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(scores[i]), relevant[i]));
    let mut chosen: Vec<usize> = Vec::new();
    for i in order {
        if chosen.len() >= k {
            break;
        }
        let g = relevant[i];
        let ok = chosen
            .iter()
            .all(|&c| !conflicts[c].contains(&g) && relevant[c] != g);
        if ok {
            chosen.push(i);
        }
    }
    DivResult {
        ids: chosen.iter().map(|&i| relevant[i]).collect(),
        scores: chosen.iter().map(|&i| scores[i]).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct LineProvider {
        relevant: Vec<GraphId>,
    }

    impl NeighborhoodProvider for LineProvider {
        fn neighborhood(&self, g: GraphId, theta: f64) -> Vec<GraphId> {
            self.relevant
                .iter()
                .copied()
                .filter(|&r| (r as f64 - g as f64).abs() <= theta)
                .collect()
        }
    }

    #[test]
    fn respects_theta_constraint() {
        let relevant: Vec<GraphId> = (0..30).collect();
        let p = LineProvider {
            relevant: relevant.clone(),
        };
        let r = div_topk(&p, &relevant, 3.0, 5, DivVariant::Theta);
        assert_eq!(r.ids.len(), 5);
        for (i, &a) in r.ids.iter().enumerate() {
            for &b in &r.ids[i + 1..] {
                assert!((a as f64 - b as f64).abs() > 3.0);
            }
        }
    }

    #[test]
    fn two_theta_is_stricter() {
        let relevant: Vec<GraphId> = (0..30).collect();
        let p = LineProvider {
            relevant: relevant.clone(),
        };
        let a = div_topk(&p, &relevant, 3.0, 10, DivVariant::Theta);
        let b = div_topk(&p, &relevant, 3.0, 10, DivVariant::TwoTheta);
        for (i, &x) in b.ids.iter().enumerate() {
            for &y in &b.ids[i + 1..] {
                assert!((x as f64 - y as f64).abs() > 6.0);
            }
        }
        // Stricter constraint can only reduce or keep the answer size.
        assert!(b.ids.len() <= a.ids.len());
    }

    #[test]
    fn picks_highest_static_scores() {
        // Dense cluster around 0..6 — its center has the top score.
        let relevant: Vec<GraphId> = vec![0, 1, 2, 3, 4, 5, 6, 40, 80];
        let p = LineProvider {
            relevant: relevant.clone(),
        };
        let r = div_topk(&p, &relevant, 3.0, 3, DivVariant::Theta);
        assert_eq!(r.ids[0], 3, "cluster center has max |N|");
        assert!(r.scores[0] >= r.scores[1]);
    }

    #[test]
    fn empty_input() {
        let p = LineProvider { relevant: vec![] };
        let r = div_topk(&p, &[], 1.0, 5, DivVariant::Theta);
        assert!(r.ids.is_empty());
    }

    #[test]
    fn k_zero() {
        let relevant: Vec<GraphId> = (0..5).collect();
        let p = LineProvider {
            relevant: relevant.clone(),
        };
        let r = div_topk(&p, &relevant, 1.0, 0, DivVariant::Theta);
        assert!(r.ids.is_empty());
    }
}
