//! [`NeighborhoodProvider`] adapters: run the baseline greedy (Alg 1) on top
//! of each comparator index, exactly as the paper's Fig 2(b)/5(i)/6(b)
//! experiments do.

use crate::ctree::CTree;
use crate::matrix::MatrixIndex;
use crate::mtree::MTree;
use graphrep_core::NeighborhoodProvider;
use graphrep_ged::DistanceOracle;
use graphrep_graph::GraphId;
use graphrep_metric::Bitset;

fn filter_relevant(mut hits: Vec<GraphId>, relevant: &Bitset) -> Vec<GraphId> {
    hits.retain(|&g| relevant.contains(g as usize));
    hits
}

/// Builds the relevant-membership mask used by all providers.
pub fn relevant_mask(n: usize, relevant: &[GraphId]) -> Bitset {
    Bitset::from_indices(n, relevant.iter().map(|&g| g as usize))
}

/// θ-neighborhoods via M-tree range queries.
#[derive(Debug)]
pub struct MTreeProvider<'a> {
    /// The index.
    pub tree: &'a MTree,
    /// The distance oracle.
    pub oracle: &'a DistanceOracle,
    /// Relevant membership by graph id.
    pub relevant: Bitset,
}

impl NeighborhoodProvider for MTreeProvider<'_> {
    fn neighborhood(&self, g: GraphId, theta: f64) -> Vec<GraphId> {
        filter_relevant(self.tree.range_query(self.oracle, g, theta), &self.relevant)
    }
}

/// θ-neighborhoods via C-tree range queries.
#[derive(Debug)]
pub struct CTreeProvider<'a> {
    /// The index.
    pub tree: &'a CTree,
    /// The distance oracle.
    pub oracle: &'a DistanceOracle,
    /// Relevant membership by graph id.
    pub relevant: Bitset,
}

impl NeighborhoodProvider for CTreeProvider<'_> {
    fn neighborhood(&self, g: GraphId, theta: f64) -> Vec<GraphId> {
        filter_relevant(self.tree.range_query(self.oracle, g, theta), &self.relevant)
    }
}

/// θ-neighborhoods via the precomputed matrix.
#[derive(Debug)]
pub struct MatrixProvider<'a> {
    /// The index.
    pub matrix: &'a MatrixIndex,
    /// Relevant membership by graph id.
    pub relevant: Bitset,
}

impl NeighborhoodProvider for MatrixProvider<'_> {
    fn neighborhood(&self, g: GraphId, theta: f64) -> Vec<GraphId> {
        filter_relevant(self.matrix.range_query(g, theta), &self.relevant)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphrep_core::{baseline_greedy, BruteForceProvider};
    use graphrep_datagen::{DatasetKind, DatasetSpec};
    use graphrep_ged::GedConfig;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn all_providers_agree_with_brute_force_greedy() {
        let data = DatasetSpec::new(DatasetKind::DudLike, 90, 41).generate();
        let oracle = data.db.oracle(GedConfig::default());
        let relevant = data.default_query().relevant_set(&data.db);
        let theta = data.default_theta;
        let k = 4;

        let reference = baseline_greedy(
            &BruteForceProvider::new(&oracle, &relevant),
            &relevant,
            theta,
            k,
        );

        let mask = relevant_mask(oracle.len(), &relevant);
        let mut rng = SmallRng::seed_from_u64(1);
        let mtree = MTree::build(&oracle, &mut rng);
        let a = baseline_greedy(
            &MTreeProvider {
                tree: &mtree,
                oracle: &oracle,
                relevant: mask.clone(),
            },
            &relevant,
            theta,
            k,
        );
        assert_eq!(a.ids, reference.ids);

        let ctree = CTree::build(&oracle, &mut rng);
        let b = baseline_greedy(
            &CTreeProvider {
                tree: &ctree,
                oracle: &oracle,
                relevant: mask.clone(),
            },
            &relevant,
            theta,
            k,
        );
        assert_eq!(b.ids, reference.ids);

        let matrix = MatrixIndex::build(&oracle);
        let c = baseline_greedy(
            &MatrixProvider {
                matrix: &matrix,
                relevant: mask,
            },
            &relevant,
            theta,
            k,
        );
        assert_eq!(c.ids, reference.ids);
    }
}
