#![warn(missing_docs)]
#![deny(unsafe_code)]
#![deny(missing_debug_implementations)]

//! Comparator systems for the paper's evaluation.
//!
//! Everything the paper benchmarks NB-Index against, re-implemented on the
//! same substrates (`graphrep-ged` distances, `graphrep-core` objective):
//!
//! * [`mtree`] — a metric tree with covering radii (DisC's index \[29\]),
//! * [`ctree`] — a closure-tree-style graph index with label-closure lower
//!   bounds \[12\],
//! * [`matrix`] — the precomputed full distance matrix (best-case runtime,
//!   quadratic cost),
//! * [`disc`] — Greedy-DisC: the covering independent-set model \[9\],
//! * [`div`] — DIV: diversified top-k with static scores \[19\], at both the
//!   θ and 2θ pairwise constraints,
//! * [`topk`] — the traditional score-only top-k of Fig 7,
//! * [`providers`] — [`graphrep_core::NeighborhoodProvider`] adapters so the
//!   baseline greedy (Alg 1) can run over each index.

pub mod ctree;
pub mod disc;
pub mod div;
pub mod matrix;
pub mod mtree;
pub mod providers;
pub mod topk;
pub mod typicality;

pub use ctree::CTree;
pub use disc::greedy_disc;
pub use div::{div_topk, DivVariant};
pub use matrix::MatrixIndex;
pub use mtree::MTree;
pub use providers::{CTreeProvider, MTreeProvider, MatrixProvider};
pub use topk::traditional_topk;
pub use typicality::{topk_typicality, typicality_scores, TypicalityResult};
