//! The streaming differential harness: streamed picks concatenated with the
//! terminal summary must be byte-identical to the blocking `run` answer and
//! to the offline engine — per pool size, per I/O mode (blocking threads vs
//! the epoll reactor), per backend (single-index and sharded), pipelined or
//! not, and across a mid-stream mutation (a session pinned to its snapshot
//! finishes on that snapshot).

use graphrep_datagen::{Dataset, DatasetKind, DatasetSpec};
use graphrep_serve::registry::load_in_memory;
use graphrep_serve::{
    offline_reference, protocol, start, Client, DatasetRegistry, IoMode, LoadMode, LoadSpec,
    Response, ServeConfig, ShardedDataset,
};
use std::collections::HashMap;
use std::net::TcpStream;
use std::time::Duration;

/// Offline `QuerySession::run` fingerprints for an explicit query list.
fn offline_fingerprints(data: Dataset, queries: &[(f64, usize)]) -> HashMap<(u64, usize), String> {
    let ds = load_in_memory("ref", data);
    let session = ds.index_arc().start_session_shared(ds.relevant_for(0.75));
    let mut map = HashMap::new();
    for &(theta, k) in queries {
        map.insert(
            (theta.to_bits(), k),
            format!("{:?}", session.run(theta, k).0),
        );
    }
    map
}

fn dud(size: usize, seed: u64) -> DatasetSpec {
    DatasetSpec::new(DatasetKind::DudLike, size, seed)
}

fn grid(data: &Dataset) -> Vec<(f64, usize)> {
    vec![
        (data.default_theta * 0.8, 2),
        (data.default_theta * 0.8, 4),
        (data.default_theta, 2),
        (data.default_theta, 4),
        (data.default_theta * 1.2, 3),
    ]
}

fn start_single(
    io: IoMode,
    workers: usize,
    name: &str,
    data: Dataset,
) -> graphrep_serve::ServerHandle {
    let mut reg = DatasetRegistry::new();
    reg.insert(load_in_memory(name, data));
    start(
        ServeConfig {
            workers,
            io,
            ..Default::default()
        },
        reg,
    )
    .expect("server start")
}

fn start_sharded(
    io: IoMode,
    workers: usize,
    data: Dataset,
    shards: usize,
) -> graphrep_serve::ServerHandle {
    let mut reg = DatasetRegistry::new();
    reg.insert_sharded(ShardedDataset::in_memory("d", data, shards, 0x5eed));
    start(
        ServeConfig {
            workers,
            io,
            ..Default::default()
        },
        reg,
    )
    .expect("sharded server start")
}

/// The tentpole differential: streamed answers (pick frames + summary) are
/// byte-identical to the blocking wire answer and to offline
/// `QuerySession::run`, at 1, 4, and 8 workers, in both I/O modes.
#[test]
fn streamed_answers_match_blocking_and_offline_at_every_pool_size() {
    let gen = dud(60, 20140622);
    let data = gen.generate();
    let queries = grid(&data);
    let reference = offline_fingerprints(gen.generate(), &queries);

    for io in [IoMode::Blocking, IoMode::Async] {
        for workers in [1usize, 4, 8] {
            let handle = start_single(io, workers, "eq", gen.generate());
            let addr = handle.addr().to_string();

            let mut streaming = Client::connect(&addr).expect("connect streaming");
            let ack = streaming.hello().expect("hello");
            match io {
                IoMode::Async => assert_eq!(ack.version, 2, "async servers grant v2"),
                IoMode::Blocking => assert_eq!(ack.version, 1, "blocking servers stay v1"),
            }
            let mut blocking = Client::connect(&addr).expect("connect blocking");

            let so = streaming.open("eq", 0.75).expect("open streaming");
            let bo = blocking.open("eq", 0.75).expect("open blocking");
            for &(theta, k) in &queries {
                let (picks, streamed) = streaming
                    .run_streaming_answer(so.session, theta, k)
                    .unwrap_or_else(|e| panic!("{io:?} x{workers} θ={theta} k={k}: {e}"));
                let blocked = blocking
                    .run_answer(bo.session, theta, k)
                    .expect("blocking run");
                let offline = reference
                    .get(&(theta.to_bits(), k))
                    .expect("offline reference");
                assert_eq!(
                    &streamed.fingerprint(),
                    offline,
                    "{io:?} x{workers} θ={theta} k={k}: streamed answer diverged from offline"
                );
                assert_eq!(
                    streamed.fingerprint(),
                    blocked.fingerprint(),
                    "{io:?} x{workers} θ={theta} k={k}: streamed vs blocking"
                );
                assert_eq!(picks.len(), streamed.ids.len());
            }
            handle.shutdown();
        }
    }
}

/// Sharded scatter-gather streams through the same seam: streamed picks and
/// summary from a sharded backend are byte-identical to the single-index
/// blocking answer, per pool size, in both I/O modes.
#[test]
fn sharded_streamed_answers_match_single_index() {
    let gen = dud(36, 29);
    let data = gen.generate();
    let queries = grid(&data);

    let single = start_single(IoMode::Blocking, 2, "d", gen.generate());
    let mut sc = Client::connect(&single.addr().to_string()).expect("connect single");
    let so = sc.open("d", 0.75).expect("open single");
    let mut want = Vec::new();
    for &(theta, k) in &queries {
        want.push(
            sc.run_answer(so.session, theta, k)
                .expect("single run")
                .fingerprint(),
        );
    }
    single.shutdown();

    for io in [IoMode::Blocking, IoMode::Async] {
        for workers in [1usize, 4, 8] {
            let handle = start_sharded(io, workers, gen.generate(), 3);
            let mut c = Client::connect(&handle.addr().to_string()).expect("connect sharded");
            c.hello().expect("hello");
            let o = c.open("d", 0.75).expect("open sharded");
            for (i, &(theta, k)) in queries.iter().enumerate() {
                let (picks, body) = c
                    .run_streaming_answer(o.session, theta, k)
                    .unwrap_or_else(|e| panic!("sharded {io:?} x{workers} θ={theta} k={k}: {e}"));
                assert_eq!(
                    body.fingerprint(),
                    want[i],
                    "sharded {io:?} x{workers} θ={theta} k={k}"
                );
                assert!(!picks.is_empty());
                assert_eq!(body.shard_count, 3);
            }
            handle.shutdown();
        }
    }
}

/// Pipelined tagged streams on one connection: many in-flight `RunStream`s
/// complete out of order, yet every stream is internally consistent and
/// every answer matches the offline engine.
#[test]
fn pipelined_streams_are_answered_correctly_out_of_order() {
    let gen = dud(60, 20140622);
    let data = gen.generate();
    let queries = grid(&data);
    let reference = offline_fingerprints(gen.generate(), &queries);

    let handle = start_single(IoMode::Async, 4, "pl", gen.generate());
    let mut c = Client::connect(&handle.addr().to_string()).expect("connect");
    let ack = c.hello().expect("hello");
    assert_eq!(ack.version, 2);
    let o = c.open("pl", 0.75).expect("open");

    // Two full rounds of the grid in flight at once on a single connection.
    let mut batch: Vec<(f64, usize)> = queries.clone();
    batch.extend(queries.iter().copied());
    let runs = c.run_pipelined(o.session, &batch, true).expect("pipeline");
    assert_eq!(runs.len(), batch.len());
    for (i, run) in runs.iter().enumerate() {
        let (theta, k) = batch[i];
        let body = match &run.terminal {
            Response::AnswerEnd(b) => b,
            other => panic!("slot {i} (θ={theta} k={k}): {other:?}"),
        };
        graphrep_serve::verify_stream_consistency(&run.picks, body)
            .unwrap_or_else(|e| panic!("slot {i}: {e}"));
        let offline = reference
            .get(&(theta.to_bits(), k))
            .expect("offline reference");
        assert_eq!(&body.fingerprint(), offline, "slot {i} θ={theta} k={k}");
    }

    // The load harness drives the same path end to end (verifies stream
    // consistency per answer and records time-to-first-pick).
    let load_spec = LoadSpec {
        dataset: "pl".into(),
        connections: 2,
        requests_per_conn: 6,
        thetas: vec![data.default_theta * 0.8, data.default_theta],
        ks: vec![2, 4],
        quantile: 0.75,
        seed: 1,
        skew: 0.0,
        mode: LoadMode::Pipelined { depth: 3 },
    };
    let load_reference = offline_reference(&load_in_memory("pl", gen.generate()), &load_spec);
    let report = graphrep_serve::run_load(&handle.addr().to_string(), &load_spec).expect("load");
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    assert_eq!(report.completed(), 12);
    assert_eq!(report.ttfp_ms.len(), 12, "every streamed run records ttfp");
    let verified =
        graphrep_serve::verify_against_offline(&report, &load_reference).expect("offline verify");
    assert_eq!(verified, 12);
    handle.shutdown();
}

/// A mutation landing mid-stream must not bend an in-flight (or even an
/// already-open) session: sessions pin their snapshot at open, so the
/// stream finishes byte-identically to the pre-mutation offline answer,
/// while the mutation itself is acknowledged with a moved epoch.
#[test]
fn mid_stream_mutation_leaves_pinned_session_on_its_snapshot() {
    for io in [IoMode::Blocking, IoMode::Async] {
        let gen = dud(60, 20140622);
        let data = gen.generate();
        let dims = data.db.dims();

        // Pre-mutation ground truth on a query that takes several picks —
        // a one-pick run has no meaningful "mid-stream".
        let ds = load_in_memory("mut", gen.generate());
        let session = ds.index_arc().start_session_shared(ds.relevant_for(0.75));
        let (theta, k) = grid(&data)
            .into_iter()
            .find(|&(t, k)| session.run(t, k).0.ids.len() >= 2)
            .expect("no grid query streams multiple picks");
        let offline = format!("{:?}", session.run(theta, k).0);

        let handle = start_single(io, 2, "mut", gen.generate());
        let addr = handle.addr().to_string();

        // Raw v1 streaming socket so the test controls frame-by-frame reads.
        let mut stream = TcpStream::connect(&addr).expect("connect raw");
        stream
            .set_read_timeout(Some(Duration::from_millis(100)))
            .expect("timeout");
        protocol::write_frame(
            &mut stream,
            &protocol::Request::Open(protocol::OpenBody {
                dataset: "mut".into(),
                quantile: 0.75,
            }),
        )
        .expect("open frame");
        let session = match read_response(&mut stream) {
            Response::Opened(o) => o.session,
            other => panic!("expected Opened, got {other:?}"),
        };
        protocol::write_frame(
            &mut stream,
            &protocol::Request::RunStream(protocol::RunBody {
                session,
                theta,
                k,
                deadline_ms: None,
            }),
        )
        .expect("run_stream frame");

        // Consume exactly one pick, then mutate from a second connection
        // while the stream is still open.
        let first = read_response(&mut stream);
        assert!(
            matches!(first, Response::Pick(_)),
            "expected a first pick, got {first:?}"
        );
        let mut mutator = Client::connect(&addr).expect("connect mutator");
        let receipt = mutator
            .insert(
                "mut",
                vec![0, 1, 1],
                vec![(0, 1, 0), (1, 2, 1)],
                vec![0.5; dims],
            )
            .expect("mid-stream insert");
        assert!(receipt.epoch >= 1, "insert must move the epoch");

        // Drain the rest of the stream: it must finish on the snapshot the
        // session pinned at open, untouched by the insert.
        let mut picks = vec![first];
        let body = loop {
            match read_response(&mut stream) {
                Response::Pick(p) => picks.push(Response::Pick(p)),
                Response::AnswerEnd(b) => break b,
                other => panic!("mid-stream: {other:?}"),
            }
        };
        assert_eq!(
            body.fingerprint(),
            offline,
            "{io:?}: mutation bent a pinned-epoch stream"
        );
        assert!(picks.len() >= 2, "the run must stream multiple picks");
        handle.shutdown();
    }
}

/// Blocks until one bare `Response` frame arrives (10 s cap).
fn read_response(stream: &mut TcpStream) -> Response {
    for _ in 0..100 {
        match protocol::read_frame::<Response>(stream, Duration::from_secs(10)).expect("frame") {
            protocol::FrameRead::Frame(r) => return r,
            protocol::FrameRead::Closed => panic!("server closed mid-stream"),
            protocol::FrameRead::Idle => {}
        }
    }
    panic!("timed out waiting for a frame");
}
