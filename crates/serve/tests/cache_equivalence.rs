//! Workload-replay differential harness for the serving-layer caches
//! (DESIGN.md §11): the same deterministic skewed workload is replayed
//! against a cache-off server (`capacity: 0`) and a cache-on server at 1,
//! 4, and 8 workers, and every answer must be byte-identical — to the
//! other server, to the offline engine, and across a repeat round that is
//! served almost entirely from the answer cache. A mutation round then
//! proves the epoch boundary: post-mutation answers must match an offline
//! replay of the *mutated* state, never a stale cached one.

use graphrep_core::CacheConfig;
use graphrep_datagen::{Dataset, DatasetKind, DatasetSpec};
use graphrep_serve::protocol::DatasetStats;
use graphrep_serve::registry::load_in_memory;
use graphrep_serve::{
    offline_reference, run_load, verify_against_offline, Client, DatasetRegistry, LoadMode,
    LoadSpec, ServeConfig, ServerHandle,
};

const SEED: u64 = 20140622;

fn dud(size: usize) -> DatasetSpec {
    DatasetSpec::new(DatasetKind::DudLike, size, SEED)
}

fn spec_for(data: &Dataset) -> LoadSpec {
    LoadSpec {
        dataset: "ce".into(),
        connections: 4,
        requests_per_conn: 12,
        thetas: vec![
            data.default_theta * 0.8,
            data.default_theta,
            data.default_theta * 1.2,
        ],
        ks: vec![2, 4],
        quantile: 0.75,
        seed: 7,
        skew: 1.2,
        mode: LoadMode::Blocking,
    }
}

fn start_with_cache(workers: usize, data: Dataset, cache: CacheConfig) -> ServerHandle {
    let mut reg = DatasetRegistry::new();
    reg.insert(load_in_memory("ce", data).with_cache_config(cache));
    graphrep_serve::start(
        ServeConfig {
            workers,
            ..ServeConfig::default()
        },
        reg,
    )
    .expect("server start")
}

fn cache_stats(addr: &str) -> DatasetStats {
    let stats = Client::connect(addr)
        .expect("connect for stats")
        .stats()
        .expect("stats");
    stats
        .datasets
        .into_iter()
        .find(|d| d.name == "ce")
        .expect("dataset row")
}

fn assert_conservation(d: &DatasetStats) {
    for (tier, c) in [
        ("answer_cache", &d.answer_cache),
        ("view_store", &d.view_store),
    ] {
        assert_eq!(c.lookups, c.hits + c.misses, "{tier}: {c:?}");
        assert!(c.evictions <= c.insertions, "{tier}: {c:?}");
    }
}

/// The tentpole criterion: cache-on answers are byte-identical to
/// cache-off and offline answers at every pool size, including a repeat
/// round on the warm cache, whose hits must strictly grow.
#[test]
fn cached_answers_match_uncached_and_offline_at_every_pool_size() {
    let gen = dud(60);
    let spec = spec_for(&gen.generate());
    let reference = offline_reference(&load_in_memory("ce", gen.generate()), &spec);
    let total = spec.connections * spec.requests_per_conn;

    for workers in [1usize, 4, 8] {
        let off = CacheConfig {
            capacity: 0,
            ..CacheConfig::default()
        };
        let handle_off = start_with_cache(workers, gen.generate(), off);
        let report_off = run_load(&handle_off.addr().to_string(), &spec).expect("cache-off load");
        let stats_off = cache_stats(&handle_off.addr().to_string());
        handle_off.shutdown();
        assert!(report_off.errors.is_empty(), "{:?}", report_off.errors);
        assert_eq!(
            verify_against_offline(&report_off, &reference)
                .unwrap_or_else(|e| panic!("cache-off at {workers} workers: {e}")),
            total
        );
        assert_eq!(stats_off.answer_cache.lookups, 0, "{stats_off:?}");
        assert!(!stats_off.cache_enabled, "{stats_off:?}");
        assert!(
            report_off.answers.iter().all(|a| !a.body.cached),
            "cache-off server flagged an answer as cached"
        );

        let handle_on = start_with_cache(workers, gen.generate(), CacheConfig::default());
        let addr_on = handle_on.addr().to_string();
        let report_on = run_load(&addr_on, &spec).expect("cache-on round 1");
        let hits_round1 = cache_stats(&addr_on).answer_cache.hits;
        let report_again = run_load(&addr_on, &spec).expect("cache-on round 2");
        let stats_on = cache_stats(&addr_on);
        handle_on.shutdown();

        assert!(report_on.errors.is_empty(), "{:?}", report_on.errors);
        assert!(report_again.errors.is_empty(), "{:?}", report_again.errors);
        for (label, report) in [("round 1", &report_on), ("round 2", &report_again)] {
            assert_eq!(
                verify_against_offline(report, &reference)
                    .unwrap_or_else(|e| panic!("cache-on {label} at {workers} workers: {e}")),
                total
            );
        }

        // Byte-identical across servers, request by request.
        let fp = |r: &graphrep_serve::LoadReport| -> Vec<String> {
            r.answers.iter().map(|a| a.body.fingerprint()).collect()
        };
        assert_eq!(
            fp(&report_off),
            fp(&report_on),
            "cache-off vs cache-on diverged at {workers} workers"
        );
        assert_eq!(
            fp(&report_on),
            fp(&report_again),
            "warm repeat diverged at {workers} workers"
        );

        assert!(stats_on.cache_enabled, "{stats_on:?}");
        assert_conservation(&stats_on);
        assert!(
            stats_on.answer_cache.hits > hits_round1,
            "repeat round added no hits: {} -> {}",
            hits_round1,
            stats_on.answer_cache.hits
        );
        assert!(
            report_again.answers.iter().any(|a| a.body.cached),
            "warm repeat served nothing from the cache at {workers} workers"
        );
    }
}

/// The epoch boundary over the wire: a remove bumps the epoch and wipes
/// the caches, and every post-mutation answer matches an offline replay of
/// the mutated state — a stale pre-mutation answer would diverge.
#[test]
fn mutation_over_the_wire_never_serves_stale_cached_answers() {
    let gen = dud(60);
    let spec = spec_for(&gen.generate());
    let total = spec.connections * spec.requests_per_conn;
    const VICTIM: u32 = 5;

    let reference_before = offline_reference(&load_in_memory("ce", gen.generate()), &spec);
    let reference_after = {
        let ds = load_in_memory("ce", gen.generate());
        ds.remove_graph(VICTIM).expect("offline remove");
        offline_reference(&ds, &spec)
    };

    let handle = start_with_cache(4, gen.generate(), CacheConfig::default());
    let addr = handle.addr().to_string();

    // Warm round against the pre-mutation state.
    let warm = run_load(&addr, &spec).expect("warm load");
    assert!(warm.errors.is_empty(), "{:?}", warm.errors);
    assert_eq!(
        verify_against_offline(&warm, &reference_before).expect("pre-mutation verify"),
        total
    );
    let before = cache_stats(&addr);

    let receipt = Client::connect(&addr)
        .expect("connect")
        .remove("ce", VICTIM)
        .expect("remove over the wire");
    assert_eq!(receipt.epoch, 1, "remove must bump the epoch");

    // Replay the identical workload: answers must now match the mutated
    // offline state, and the caches must have been wiped at the boundary.
    let after_load = run_load(&addr, &spec).expect("post-mutation load");
    assert!(after_load.errors.is_empty(), "{:?}", after_load.errors);
    assert_eq!(
        verify_against_offline(&after_load, &reference_after).expect("post-mutation verify"),
        total
    );
    let after = cache_stats(&addr);
    handle.shutdown();

    assert!(
        after.answer_cache.invalidated > before.answer_cache.invalidated,
        "mutation must wipe the answer cache: {before:?} -> {after:?}"
    );
    assert_conservation(&after);
    assert!(
        after.answer_cache.hits > before.answer_cache.hits,
        "the post-mutation round must re-warm and hit again: {after:?}"
    );

    // The removed graph can appear in no post-mutation answer.
    for a in &after_load.answers {
        assert!(
            !a.body.ids.contains(&VICTIM),
            "tombstoned graph {VICTIM} served at θ = {}, k = {}",
            a.theta,
            a.k
        );
    }
}

/// Regression: the `stats` endpoint must report cache memory, starting at
/// zero and growing once the view store and answer cache are warm.
#[test]
fn stats_report_cache_memory_that_grows_after_warmup() {
    let gen = dud(40);
    let theta = gen.generate().default_theta;
    let handle = graphrep_serve::start_in_memory(ServeConfig::default(), "ce", gen.generate())
        .expect("start");
    let addr = handle.addr().to_string();

    let cold = cache_stats(&addr);
    assert!(cold.cache_enabled, "caches must default on: {cold:?}");
    assert_eq!(cold.answer_cache.memory_bytes, 0, "{cold:?}");
    assert_eq!(cold.view_store.memory_bytes, 0, "{cold:?}");

    // Two runs at the same θ and different k: the second promotes the
    // θ-neighborhood views (default `promote_after: 2`), both miss the
    // answer cache and are inserted.
    let mut c = Client::connect(&addr).expect("connect");
    let opened = c.open("ce", 0.75).expect("open");
    c.run_answer(opened.session, theta, 3).expect("run k=3");
    c.run_answer(opened.session, theta, 4).expect("run k=4");

    let warm = cache_stats(&addr);
    assert!(
        warm.answer_cache.memory_bytes > 0,
        "answer cache reported no memory after warm-up: {warm:?}"
    );
    assert!(
        warm.view_store.memory_bytes > 0,
        "view store reported no memory after warm-up: {warm:?}"
    );
    assert!(warm.answer_cache.entries >= 2, "{warm:?}");

    // The wire representation carries both tiers for operators to scrape.
    let body = Client::connect(&addr)
        .expect("connect")
        .stats()
        .expect("stats");
    let json = serde_json::to_string(&body).expect("stats serialize");
    assert!(json.contains("view_store"), "{json}");
    assert!(json.contains("answer_cache"), "{json}");
    handle.shutdown();
}
