//! Mutations racing live query traffic (DESIGN.md §10): eight client
//! threads hammer the worker pool with open/run/refine/close while the main
//! thread interleaves inserts and removes over the wire. The checks:
//!
//! * **no lost updates** — every mutation receipt carries the next epoch,
//!   and the final index state reflects every op;
//! * **serializability** — every answer pair a session produced matches the
//!   offline reference at *some* mutation epoch (sessions pin an immutable
//!   snapshot, so both answers of a pair must come from the same epoch);
//! * **counter conservation** — oracle counters carry forward across the
//!   fork/swap each mutation performs, so serving-time deltas never move
//!   backwards.

use graphrep_core::{NbIndex, NbIndexConfig, RelevanceQuery, Scorer};
use graphrep_datagen::{DatasetKind, DatasetSpec};
use graphrep_ged::{DistanceOracle, GedConfig, GedEngine};
use graphrep_graph::{generate::mutate, Graph, GraphId};
use graphrep_serve::protocol::OracleDelta;
use graphrep_serve::registry::load_in_memory;
use graphrep_serve::{start, Client, DatasetRegistry, ServeConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

const QUANTILE: f64 = 0.75;
const BASE: usize = 30;
const SEED: u64 = 909;

fn wire_parts(g: &Graph) -> (Vec<u32>, Vec<(u16, u16, u32)>) {
    let nodes = g.node_labels().to_vec();
    let edges = g.edges().iter().map(|e| (e.u, e.v, e.label)).collect();
    (nodes, edges)
}

/// The offline answer fingerprints for the state after `epoch` mutations,
/// computed from scratch exactly like the server's offline verifier would.
fn reference_pair(
    base: &graphrep_core::GraphDatabase,
    inserts: &[(Graph, Vec<f64>)],
    removes: &[GraphId],
    oracles: &[Arc<DistanceOracle>],
    ladder: &[f64],
    queries: &[(f64, usize)],
    epoch: usize,
) -> Vec<String> {
    // Ops alternate insert, remove, insert, remove, …
    let ins = epoch.div_ceil(2);
    let rem = epoch / 2;
    let mut db = base.clone();
    for (g, f) in &inserts[..ins] {
        db = db.pushed(g.clone(), f.clone());
    }
    let mut live = vec![true; db.len()];
    for &victim in &removes[..rem] {
        live[victim as usize] = false;
    }
    let index = NbIndex::build(
        Arc::clone(&oracles[ins]),
        NbIndexConfig {
            num_vps: 4,
            ladder: ladder.to_vec(),
            ..Default::default()
        },
    );
    // Mirrors `LoadedDataset::relevant_for`: the quantile is taken over the
    // whole database (tombstoned ids included); liveness filtering happens
    // at the session boundary.
    let scorer = Scorer::MeanOfDims((0..db.dims()).collect());
    let mut relevant = RelevanceQuery::top_quantile(&db, scorer, QUANTILE).relevant_set(&db);
    relevant.retain(|&g| live[g as usize]);
    let session = index.start_session(relevant);
    queries
        .iter()
        .map(|&(theta, k)| format!("{:?}", session.run(theta, k).0))
        .collect()
}

#[test]
fn mutations_race_eight_query_threads() {
    let data = DatasetSpec::new(DatasetKind::DudLike, BASE, SEED).generate();
    let theta = data.default_theta;
    let ladder = data.default_ladder.clone();
    let base_db = data.db.clone();
    let queries = [(theta, 3usize), (theta + 1.0, 2usize)];

    // Pre-plan the mutation schedule so the offline replay is exact.
    let mut rng = SmallRng::seed_from_u64(77);
    let inserts: Vec<(Graph, Vec<f64>)> = (0..4)
        .map(|i| {
            let g = mutate(&mut rng, base_db.graph(i), 2, &[0, 1], &[0]);
            (g, base_db.features(i).to_vec())
        })
        .collect();
    let removes: Vec<GraphId> = vec![3, 11, 17, 23];

    // Reference oracles per number-of-inserts, sharing one distance cache
    // via `extended` (distances are deterministic, so caching cannot change
    // any reference answer).
    let mut oracles = vec![Arc::new(DistanceOracle::new(
        base_db.graphs_arc(),
        GedEngine::new(GedConfig::default()),
    ))];
    for (g, _) in &inserts {
        let prev = oracles.last().expect("non-empty");
        oracles.push(Arc::new(prev.extended(g.clone())));
    }

    let mut reg = DatasetRegistry::new();
    reg.insert(load_in_memory("d", data));
    let ds = reg.get("d").expect("registered");
    let handle = start(
        ServeConfig {
            workers: 4,
            ..Default::default()
        },
        reg,
    )
    .expect("server starts");
    let addr = handle.addr().to_string();

    // Eight query threads: open a session (pinning a snapshot), answer the
    // fixed query pair inside it, close, repeat until told to stop.
    let stop = Arc::new(AtomicBool::new(false));
    let mut threads = Vec::new();
    for t in 0..8 {
        let addr = addr.clone();
        let stop = Arc::clone(&stop);
        let h = thread::Builder::new()
            .name(format!("mut-query-{t}"))
            .spawn(move || -> Vec<Vec<String>> {
                let mut client = Client::connect(&addr).expect("connect");
                let mut pairs = Vec::new();
                loop {
                    let done = stop.load(Ordering::Relaxed);
                    let opened = client.open("d", QUANTILE).expect("open");
                    let pair = queries
                        .iter()
                        .map(|&(theta, k)| {
                            client
                                .run_answer(opened.session, theta, k)
                                .expect("run")
                                .fingerprint()
                        })
                        .collect();
                    client.close(opened.session).expect("close");
                    pairs.push(pair);
                    if done {
                        // One final pair after the stop flag guarantees the
                        // post-churn state is observed too.
                        return pairs;
                    }
                }
            })
            .expect("spawn");
        threads.push(h);
    }

    // Interleave the mutations over the wire while the threads run.
    let mut mclient = Client::connect(&addr).expect("connect mutator");
    let warmup = mclient.stats().expect("stats");
    let before = warmup.datasets[0].oracle.clone();
    let mut expected_epoch = 0u64;
    for i in 0..inserts.len() {
        let (g, f) = &inserts[i];
        let (nodes, edges) = wire_parts(g);
        let receipt = mclient
            .insert("d", nodes, edges, f.clone())
            .expect("insert");
        expected_epoch += 1;
        assert_eq!(
            receipt.epoch, expected_epoch,
            "insert receipt must carry the next epoch (no lost updates)"
        );
        assert_eq!(receipt.id as usize, BASE + i);
        thread::sleep(Duration::from_millis(15));

        let receipt = mclient.remove("d", removes[i]).expect("remove");
        expected_epoch += 1;
        assert_eq!(
            receipt.epoch, expected_epoch,
            "remove receipt must carry the next epoch (no lost updates)"
        );
        thread::sleep(Duration::from_millis(15));
    }
    stop.store(true, Ordering::Relaxed);

    let mut all_pairs: Vec<Vec<String>> = Vec::new();
    for h in threads {
        all_pairs.extend(h.join().expect("query thread must not panic"));
    }

    // No lost updates: the final index state reflects every op.
    let final_index = ds.as_single().expect("single-index dataset").index_arc();
    assert_eq!(final_index.epoch(), 8);
    assert_eq!(final_index.tree().len(), BASE + inserts.len());
    assert_eq!(final_index.tree().live_len(), BASE);
    assert_eq!(final_index.tree().tombstones(), removes.len());

    // Serializability: each observed pair must equal the offline reference
    // at some epoch. Sessions pin one snapshot, so a pair mixing two epochs
    // would be unmatchable.
    let references: Vec<Vec<String>> = (0..=8)
        .map(|e| reference_pair(&base_db, &inserts, &removes, &oracles, &ladder, &queries, e))
        .collect();
    assert!(!all_pairs.is_empty());
    for (i, pair) in all_pairs.iter().enumerate() {
        assert!(
            references.contains(pair),
            "pair {i} matches no mutation epoch: {pair:?}"
        );
    }
    // The post-churn epoch must actually have been observed (each thread
    // records one pair after the stop flag, and by then all 8 ops applied).
    assert!(
        all_pairs.contains(&references[8]),
        "final state was never observed"
    );

    // Counter conservation: serving deltas never move backwards across the
    // eight oracle swaps the mutations performed.
    let after = mclient.stats().expect("stats").datasets[0].oracle.clone();
    assert_monotone(&before, &after);
    assert!(
        after.distance_computations + after.cache_hits + after.ub_accepts + after.within_rejections
            > 0,
        "query traffic must have produced oracle activity"
    );

    handle.shutdown();
}

/// Delta monotonicity helper: every counter in `after` must be ≥ `before`.
fn assert_monotone(before: &OracleDelta, after: &OracleDelta) {
    let f = |d: &OracleDelta| {
        [
            d.distance_computations,
            d.within_rejections,
            d.cache_hits,
            d.ub_accepts,
            d.engine_calls,
            d.size_rejects,
            d.label_rejects,
            d.degree_rejects,
            d.vantage_lb_rejects,
            d.vantage_ub_accepts,
        ]
    };
    for (b, a) in f(before).into_iter().zip(f(after)) {
        assert!(
            a >= b,
            "oracle delta moved backwards across a mutation swap: {before:?} -> {after:?}"
        );
    }
}
