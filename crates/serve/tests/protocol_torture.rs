//! Byte-level torture of the v2 framing stack: property-based fuzzing of
//! the incremental [`FrameDecoder`] (frames split at arbitrary read
//! boundaries, garbage, truncation, oversized announcements), plus
//! deterministic wire-level abuse of a live async server — duplicate
//! request ids, mixed-type pipelined bursts, garbage frames, slow-reader
//! backpressure — all of which must surface as typed errors on the right
//! connection, never as a panic, a hang, or a frame on someone else's
//! stream.

use graphrep_datagen::{DatasetKind, DatasetSpec};
use graphrep_serve::registry::load_in_memory;
use graphrep_serve::{
    protocol, start, Client, DatasetRegistry, DecodeError, FrameDecoder, IoMode, Response,
    ServeConfig, TaggedRequest, TaggedResponse,
};
use proptest::prelude::*;
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

// ---------------------------------------------------------------------------
// Decoder fuzzing (no sockets): the FrameDecoder must reassemble any frame
// sequence exactly regardless of how the bytes are chopped up, and must turn
// every malformed input into a typed error without panicking.
// ---------------------------------------------------------------------------

/// Arbitrary UTF-8 payloads, empty strings and astral-plane scalars included.
fn payload() -> impl Strategy<Value = String> {
    collection::vec(0u32..0x11_0000, 0..200)
        .prop_map(|cs| cs.into_iter().filter_map(char::from_u32).collect())
}

/// Length-prefixes `payload` exactly as [`protocol::write_frame`] does.
fn frame_bytes(payload: &str) -> Vec<u8> {
    let mut out = (payload.len() as u32).to_be_bytes().to_vec();
    out.extend_from_slice(payload.as_bytes());
    out
}

/// Drains every complete payload currently decodable.
fn drain(dec: &mut FrameDecoder, into: &mut Vec<String>) -> Result<(), DecodeError> {
    while let Some(p) = dec.next_payload()? {
        into.push(p);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any frame sequence fed in arbitrary-sized chunks — including chunks
    /// that split a length header or straddle a frame boundary — decodes to
    /// exactly the original payloads, leaving nothing buffered.
    #[test]
    fn frames_reassemble_across_arbitrary_read_boundaries(
        payloads in collection::vec(payload(), 1..8),
        cuts in collection::vec(1usize..64, 0..64),
    ) {
        let wire: Vec<u8> = payloads.iter().flat_map(|p| frame_bytes(p)).collect();
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        let mut off = 0;
        for cut in cuts {
            if off >= wire.len() {
                break;
            }
            let end = (off + cut).min(wire.len());
            dec.feed(&wire[off..end]);
            off = end;
            if let Err(e) = drain(&mut dec, &mut got) {
                return Err(TestCaseError::fail(format!("decode error on valid input: {e}")));
            }
        }
        dec.feed(&wire[off..]);
        if let Err(e) = drain(&mut dec, &mut got) {
            return Err(TestCaseError::fail(format!("decode error on valid input: {e}")));
        }
        prop_assert_eq!(&got, &payloads);
        prop_assert_eq!(dec.buffered(), 0);
    }

    /// Arbitrary byte soup must terminate in bounded pulls with either
    /// "need more bytes" or a typed error — never a panic and never a pull
    /// that makes no progress. (`Display` on the error must not panic
    /// either; it ends up in the wire diagnostic.)
    #[test]
    fn garbage_terminates_with_a_typed_error_or_starvation(
        soup in collection::vec(0u8..=255, 0..600),
    ) {
        let mut dec = FrameDecoder::new();
        dec.feed(&soup);
        // Every Ok(Some) consumes >= 4 bytes, so this bound is generous.
        let mut pulls = 0;
        loop {
            pulls += 1;
            prop_assert!(pulls <= soup.len() + 8, "decoder failed to make progress");
            match dec.next_payload() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(e) => {
                    prop_assert!(!e.to_string().is_empty());
                    break;
                }
            }
        }
    }

    /// A header announcing more than [`protocol::MAX_FRAME_BYTES`] is an
    /// `Oversized` error carrying the announced length — the decoder must
    /// refuse before buffering the body.
    #[test]
    fn oversized_announcements_are_refused_up_front(
        extra in 1usize..(u32::MAX as usize - protocol::MAX_FRAME_BYTES),
        junk in collection::vec(0u8..=255, 0..32),
    ) {
        let announced = protocol::MAX_FRAME_BYTES + extra;
        let mut dec = FrameDecoder::new();
        dec.feed(&(announced as u32).to_be_bytes());
        dec.feed(&junk);
        match dec.next_payload() {
            Err(DecodeError::Oversized { announced: a }) => prop_assert_eq!(a, announced),
            other => return Err(TestCaseError::fail(format!(
                "expected Oversized, got {other:?}"
            ))),
        }
    }

    /// A frame whose body is not UTF-8 yields a typed `Utf8` error, and the
    /// frame is consumed before validation: a well-formed frame right behind
    /// it still decodes intact (framing never loses sync on bad payloads).
    #[test]
    fn invalid_utf8_is_consumed_without_desyncing_the_framing(
        tail in collection::vec(0u8..=255, 0..64),
        follow in payload(),
    ) {
        // 0xff is never valid anywhere in a UTF-8 sequence.
        let mut bad = vec![0xffu8];
        bad.extend_from_slice(&tail);
        let mut wire = (bad.len() as u32).to_be_bytes().to_vec();
        wire.extend_from_slice(&bad);
        wire.extend_from_slice(&frame_bytes(&follow));

        let mut dec = FrameDecoder::new();
        dec.feed(&wire);
        prop_assert!(matches!(dec.next_payload(), Err(DecodeError::Utf8 { .. })));
        match dec.next_payload() {
            Ok(Some(p)) => prop_assert_eq!(p, follow),
            other => return Err(TestCaseError::fail(format!(
                "frame after a bad payload must decode, got {other:?}"
            ))),
        }
        prop_assert_eq!(dec.buffered(), 0);
    }

    /// A truncated frame is "need more bytes", not an error: the decoder
    /// reports the partial bytes as buffered and completes the frame the
    /// moment the remainder arrives.
    #[test]
    fn truncated_frames_wait_for_the_remainder(
        body in payload(),
        hold in 1usize..16,
    ) {
        let wire = frame_bytes(&body);
        let hold = hold.min(wire.len() - 1).max(1);
        let split = wire.len() - hold;
        let mut dec = FrameDecoder::new();
        dec.feed(&wire[..split]);
        prop_assert!(matches!(dec.next_payload(), Ok(None)));
        prop_assert_eq!(dec.buffered(), split);
        dec.feed(&wire[split..]);
        match dec.next_payload() {
            Ok(Some(p)) => prop_assert_eq!(p, body),
            other => return Err(TestCaseError::fail(format!(
                "completed frame must decode, got {other:?}"
            ))),
        }
    }
}

// ---------------------------------------------------------------------------
// Wire-level torture against a live async server.
// ---------------------------------------------------------------------------

fn async_server(workers: usize, write_queue_cap: usize) -> graphrep_serve::ServerHandle {
    let data = DatasetSpec::new(DatasetKind::DudLike, 60, 20140622).generate();
    let mut reg = DatasetRegistry::new();
    reg.insert(load_in_memory("t", data));
    start(
        ServeConfig {
            workers,
            io: IoMode::Async,
            write_queue_cap,
            ..Default::default()
        },
        reg,
    )
    .expect("async server start")
}

/// Raw v2 handshake on a bare socket: offer v2 in the old framing, demand
/// the upgrade, return the stream ready for tagged frames.
fn raw_v2(addr: &str) -> TcpStream {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_millis(100)))
        .expect("timeout");
    protocol::write_frame(
        &mut s,
        &protocol::Request::Hello(protocol::HelloBody {
            version: protocol::PROTOCOL_V2,
        }),
    )
    .expect("hello");
    match read_bare(&mut s) {
        Response::HelloAck(a) => assert_eq!(a.version, protocol::PROTOCOL_V2),
        other => panic!("expected HelloAck, got {other:?}"),
    }
    s
}

/// Blocks until one bare `Response` frame arrives (10 s cap).
fn read_bare(stream: &mut TcpStream) -> Response {
    for _ in 0..100 {
        match protocol::read_frame::<Response>(stream, Duration::from_secs(10)).expect("frame") {
            protocol::FrameRead::Frame(r) => return r,
            protocol::FrameRead::Closed => panic!("server closed the connection"),
            protocol::FrameRead::Idle => {}
        }
    }
    panic!("timed out waiting for a frame");
}

/// Blocks until one tagged frame arrives (10 s cap).
fn read_tagged(stream: &mut TcpStream) -> TaggedResponse {
    for _ in 0..100 {
        match protocol::read_frame::<TaggedResponse>(stream, Duration::from_secs(10))
            .expect("tagged frame")
        {
            protocol::FrameRead::Frame(r) => return r,
            protocol::FrameRead::Closed => panic!("server closed the connection"),
            protocol::FrameRead::Idle => {}
        }
    }
    panic!("timed out waiting for a tagged frame");
}

fn tagged(id: u64, req: protocol::Request) -> Vec<u8> {
    protocol::encode_frame(&TaggedRequest { id, req }).expect("encode")
}

fn open_body() -> protocol::Request {
    protocol::Request::Open(protocol::OpenBody {
        dataset: "t".into(),
        quantile: 0.75,
    })
}

fn run_body(session: u64, theta: f64, k: usize) -> protocol::RunBody {
    protocol::RunBody {
        session,
        theta,
        k,
        deadline_ms: None,
    }
}

/// Reusing a live request id is rejected as `bad_request` without touching
/// the original request: the first stream still runs to completion and its
/// answer matches the blocking answer for the same query.
#[test]
fn duplicate_live_request_ids_are_rejected_without_killing_the_original() {
    let handle = async_server(2, 4 << 20);
    let addr = handle.addr().to_string();

    // Ground truth over the ordinary client.
    let mut reference = Client::connect(&addr).expect("connect reference");
    let ro = reference.open("t", 0.75).expect("open reference");
    let theta = {
        // Use a known-good grid point: the dataset's default ladder midpoint.
        let stats = reference.stats().expect("stats");
        assert_eq!(stats.io_mode, "async");
        3.0
    };
    let want = reference
        .run_answer(ro.session, theta, 3)
        .expect("reference run")
        .fingerprint();

    let mut s = raw_v2(&addr);
    s.write_all(&tagged(1, open_body())).expect("open");
    let session = match read_tagged(&mut s) {
        TaggedResponse {
            id: 1,
            resp: Response::Opened(o),
        } => o.session,
        other => panic!("expected Opened for id 1, got {other:?}"),
    };

    // Two streams under ONE id, back to back: the second must be refused
    // while the first is live.
    let mut burst = tagged(7, protocol::Request::RunStream(run_body(session, theta, 3)));
    burst.extend(tagged(
        7,
        protocol::Request::RunStream(run_body(session, theta, 3)),
    ));
    s.write_all(&burst).expect("duplicate burst");

    let mut picks = 0usize;
    let mut answer = None;
    let mut rejection = None;
    while answer.is_none() || rejection.is_none() {
        let t = read_tagged(&mut s);
        assert_eq!(t.id, 7, "no other id is in flight");
        match t.resp {
            Response::Pick(_) => picks += 1,
            Response::AnswerEnd(b) => answer = Some(b),
            Response::Error(e) => {
                assert_eq!(e.code, protocol::codes::BAD_REQUEST);
                assert!(
                    e.message.contains("already in flight"),
                    "unexpected rejection: {}",
                    e.message
                );
                rejection = Some(e);
            }
            other => panic!("unexpected frame: {other:?}"),
        }
    }
    let answer = answer.unwrap();
    assert_eq!(
        answer.fingerprint(),
        want,
        "the original stream was corrupted"
    );
    assert_eq!(picks, answer.ids.len(), "one pick frame per representative");

    // The id is free again after the terminal frame: reusing it now is fine.
    s.write_all(&tagged(7, protocol::Request::Stats))
        .expect("reuse");
    match read_tagged(&mut s) {
        TaggedResponse {
            id: 7,
            resp: Response::Stats(_),
        } => {}
        other => panic!("retired id must be reusable, got {other:?}"),
    }
    handle.shutdown();
}

/// A single burst mixing every request family — streamed runs, blocking
/// runs, inline stats, worker-pool pings — under distinct tags: every
/// response carries the tag of its own request and no stream leaks frames
/// into another.
#[test]
fn mixed_type_pipelined_bursts_keep_every_tag_straight() {
    let handle = async_server(4, 4 << 20);
    let addr = handle.addr().to_string();
    let mut s = raw_v2(&addr);

    s.write_all(&tagged(1, open_body())).expect("open");
    let session = match read_tagged(&mut s) {
        TaggedResponse {
            id: 1,
            resp: Response::Opened(o),
        } => o.session,
        other => panic!("expected Opened, got {other:?}"),
    };

    let mut burst = Vec::new();
    burst.extend(tagged(
        10,
        protocol::Request::RunStream(run_body(session, 3.0, 3)),
    ));
    burst.extend(tagged(
        11,
        protocol::Request::Run(run_body(session, 3.0, 3)),
    ));
    burst.extend(tagged(12, protocol::Request::Stats));
    burst.extend(tagged(
        13,
        protocol::Request::Ping(protocol::PingBody { wait_ms: 5 }),
    ));
    burst.extend(tagged(
        14,
        protocol::Request::RunStream(run_body(session, 2.4, 2)),
    ));
    s.write_all(&burst).expect("burst");

    let mut picks_by_id = std::collections::HashMap::<u64, Vec<protocol::PickBody>>::new();
    let mut terminals = std::collections::HashMap::<u64, Response>::new();
    while terminals.len() < 5 {
        let t = read_tagged(&mut s);
        match t.resp {
            Response::Pick(p) => picks_by_id.entry(t.id).or_default().push(p),
            resp => {
                assert!(
                    terminals.insert(t.id, resp).is_none(),
                    "two terminal frames for id {}",
                    t.id
                );
            }
        }
    }

    // Each tag got the response type its request implies.
    let stream_a = match &terminals[&10] {
        Response::AnswerEnd(b) => b.clone(),
        other => panic!("id 10: {other:?}"),
    };
    let blocking = match &terminals[&11] {
        Response::Answer(b) => b.clone(),
        other => panic!("id 11: {other:?}"),
    };
    assert!(matches!(&terminals[&12], Response::Stats(_)), "id 12");
    assert!(matches!(&terminals[&13], Response::Pong), "id 13");
    let stream_b = match &terminals[&14] {
        Response::AnswerEnd(b) => b.clone(),
        other => panic!("id 14: {other:?}"),
    };

    // Streams only ever carry pick frames for streamed requests, and each
    // stream's picks belong to its own answer.
    assert_eq!(
        picks_by_id
            .keys()
            .copied()
            .collect::<std::collections::BTreeSet<_>>(),
        [10u64, 14].into_iter().collect(),
        "pick frames leaked onto a non-streamed tag"
    );
    assert_eq!(stream_a.fingerprint(), blocking.fingerprint());
    graphrep_serve::verify_stream_consistency(&picks_by_id[&10], &stream_a).expect("stream 10");
    graphrep_serve::verify_stream_consistency(&picks_by_id[&14], &stream_b).expect("stream 14");
    handle.shutdown();
}

/// Garbage on the wire gets exactly one typed diagnostic, then the server
/// closes that connection — and only that connection: a neighbor opened
/// before the garbage keeps working.
#[test]
fn garbage_frames_poison_only_their_own_connection() {
    let handle = async_server(2, 4 << 20);
    let addr = handle.addr().to_string();

    let mut neighbor = Client::connect(&addr).expect("connect neighbor");
    let no = neighbor.open("t", 0.75).expect("open neighbor");

    for (name, garbage) in [
        // A frame whose body is not JSON at all.
        ("non-json body", frame_bytes("hunter2 hunter2 hunter2")),
        // A frame whose body is not UTF-8.
        ("non-utf8 body", {
            let mut w = 5u32.to_be_bytes().to_vec();
            w.extend_from_slice(&[0xff, 0xfe, 0x00, 0x9f, 0x92]);
            w
        }),
        // A header announcing an absurd length.
        ("oversized header", (u32::MAX).to_be_bytes().to_vec()),
    ] {
        let mut s = TcpStream::connect(&addr).expect("connect victim");
        s.set_read_timeout(Some(Duration::from_millis(100)))
            .expect("timeout");
        // Prove the connection works before the poison.
        protocol::write_frame(
            &mut s,
            &protocol::Request::Ping(protocol::PingBody { wait_ms: 0 }),
        )
        .expect("ping");
        assert!(
            matches!(read_bare(&mut s), Response::Pong),
            "{name}: pre-poison ping"
        );

        s.write_all(&garbage)
            .unwrap_or_else(|e| panic!("{name}: write garbage: {e}"));
        match read_bare(&mut s) {
            Response::Error(e) => assert_eq!(
                e.code,
                protocol::codes::BAD_REQUEST,
                "{name}: diagnostic code"
            ),
            other => panic!("{name}: expected a diagnostic, got {other:?}"),
        }
        // After the diagnostic the server closes; EOF must arrive promptly
        // (bounded retries — each read_frame call waits up to its stall cap).
        let mut saw_eof = false;
        for _ in 0..100 {
            match protocol::read_frame::<Response>(&mut s, Duration::from_secs(5)) {
                Ok(protocol::FrameRead::Closed) | Err(_) => {
                    saw_eof = true;
                    break;
                }
                Ok(protocol::FrameRead::Idle) => {}
                Ok(protocol::FrameRead::Frame(f)) => {
                    panic!("{name}: frame after the poison diagnostic: {f:?}")
                }
            }
        }
        assert!(
            saw_eof,
            "{name}: connection must close after the diagnostic"
        );
    }

    // The neighbor never noticed.
    let answer = neighbor
        .run_answer(no.session, 3.0, 2)
        .expect("neighbor run");
    assert!(!answer.ids.is_empty());
    handle.shutdown();
}

/// Old v1 clients — no hello, bare frames, strict FIFO — are served by the
/// async reactor byte-for-byte like before, including streamed runs.
#[test]
fn v1_blocking_clients_are_served_unchanged_by_the_async_server() {
    let handle = async_server(2, 4 << 20);
    let addr = handle.addr().to_string();

    // The stock client never sent Hello, so it speaks v1.
    let mut c = Client::connect(&addr).expect("connect v1");
    let o = c.open("t", 0.75).expect("open");
    let blocking = c.run_answer(o.session, 3.0, 3).expect("run").fingerprint();
    let stats = c.stats().expect("stats");
    assert_eq!(stats.io_mode, "async");

    // Raw v1 FIFO streaming: bare RunStream, bare Pick/AnswerEnd replies.
    let mut s = TcpStream::connect(&addr).expect("connect raw v1");
    s.set_read_timeout(Some(Duration::from_millis(100)))
        .expect("timeout");
    protocol::write_frame(&mut s, &open_body()).expect("open");
    let session = match read_bare(&mut s) {
        Response::Opened(ob) => ob.session,
        other => panic!("expected Opened, got {other:?}"),
    };
    protocol::write_frame(
        &mut s,
        &protocol::Request::RunStream(run_body(session, 3.0, 3)),
    )
    .expect("run_stream");
    let mut picks = 0;
    let body = loop {
        match read_bare(&mut s) {
            Response::Pick(_) => picks += 1,
            Response::AnswerEnd(b) => break b,
            other => panic!("v1 stream: {other:?}"),
        }
    };
    assert_eq!(body.fingerprint(), blocking);
    assert_eq!(picks, body.ids.len());
    handle.shutdown();
}

/// A pipelining peer that stops reading while responses pile up: once the
/// connection's write queue passes its cap, the in-flight streamed run is
/// cancelled as `slow_consumer` instead of buffering without bound — and
/// the connection itself survives to serve the peer once it drains.
#[test]
fn a_stalled_reader_gets_slow_consumer_not_unbounded_buffering() {
    // Tiny write-queue cap, one worker so the stream sits queued behind a
    // slow ping while the stats flood lands.
    let handle = async_server(1, 8 << 10);
    let addr = handle.addr().to_string();
    let mut s = raw_v2(&addr);

    s.write_all(&tagged(1, open_body())).expect("open");
    let session = match read_tagged(&mut s) {
        TaggedResponse {
            id: 1,
            resp: Response::Opened(o),
        } => o.session,
        other => panic!("expected Opened, got {other:?}"),
    };

    // One burst, written while we deliberately do NOT read:
    //   tag 2 — a ping that parks the only worker for 400 ms;
    //   tag 3 — the streamed run, queued behind the ping;
    //   tags 1000.. — a flood of inline-answered stats requests whose
    //   responses (far more than the 8 KiB cap, far more than the kernel's
    //   socket buffers absorb) jam the write queue before the run starts.
    let mut burst = Vec::new();
    burst.extend(tagged(
        2,
        protocol::Request::Ping(protocol::PingBody { wait_ms: 400 }),
    ));
    burst.extend(tagged(
        3,
        protocol::Request::RunStream(run_body(session, 3.0, 4)),
    ));
    let flood = 2000u64;
    for i in 0..flood {
        burst.extend(tagged(1000 + i, protocol::Request::Stats));
    }
    // The server pauses reads once its queue passes the cap, so a blocking
    // write_all could deadlock against our own silence: write what fits.
    s.set_nonblocking(true).expect("nonblocking");
    let mut sent = 0;
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while sent < burst.len() && std::time::Instant::now() < deadline {
        match s.write(&burst[sent..]) {
            Ok(n) => sent += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => panic!("burst write: {e}"),
        }
    }
    s.set_nonblocking(false).expect("blocking again");
    let header = 4 + tagged(2, protocol::Request::Stats).len();
    assert!(
        sent > header * 32,
        "could not deliver enough of the flood to matter ({sent} bytes)"
    );

    // Let the ping expire and the stream slam into the jammed queue.
    std::thread::sleep(Duration::from_millis(600));

    // NOW drain everything. Somewhere in the pile: pong for 2, a terminal
    // for 3 that must be the slow_consumer cancellation, stats for the rest.
    let mut run_terminal = None;
    let mut pong = false;
    while run_terminal.is_none() || !pong {
        let t = read_tagged(&mut s);
        match (t.id, t.resp) {
            (2, Response::Pong) => pong = true,
            (3, resp) => run_terminal = Some(resp),
            (id, Response::Stats(_)) if id >= 1000 => {}
            (id, resp) => panic!("unexpected frame for id {id}: {resp:?}"),
        }
    }
    match run_terminal.unwrap() {
        Response::Error(e) => assert_eq!(
            e.code,
            protocol::codes::SLOW_CONSUMER,
            "stalled-reader stream must die as slow_consumer: {}",
            e.message
        ),
        other => panic!("stalled-reader stream must be cancelled, got {other:?}"),
    }

    // The connection is merely backpressured, not broken: now that we read,
    // it serves fresh requests — including the same query, streamed whole.
    s.write_all(&tagged(
        5000,
        protocol::Request::RunStream(run_body(session, 3.0, 4)),
    ))
    .expect("post-stall run");
    let mut picks = 0;
    let body = loop {
        let t = read_tagged(&mut s);
        match (t.id, t.resp) {
            (5000, Response::Pick(_)) => picks += 1,
            (5000, Response::AnswerEnd(b)) => break b,
            (id, Response::Stats(_)) if id >= 1000 => {} // stragglers
            (id, resp) => panic!("post-stall: id {id}: {resp:?}"),
        }
    };
    assert_eq!(picks, body.ids.len());
    handle.shutdown();
}
