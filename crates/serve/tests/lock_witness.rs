//! Dynamic lock-order witness (DESIGN.md §12): drives a full serve workload
//! — server start, sessions, queries, mutations, stats, shutdown — with the
//! `lock-audit` feature on, then checks the runtime witness against the
//! *static* lock graph extracted by `graphrep-check`:
//!
//! * at least one multi-lock edge must be observed (the harness is not
//!   vacuously green), and
//! * every observed `(held, acquired)` pair must appear in the static graph
//!   — the static analysis over-approximates the dynamic order, never the
//!   reverse. A dynamic edge the analyzer missed is a soundness bug in
//!   `graphrep-check`, not in the serving code.
//!
//! Compiled only under `--features lock-audit`; the default build has no
//! witness to interrogate.

#![cfg(feature = "lock-audit")]

use graphrep_datagen::{DatasetKind, DatasetSpec};
use graphrep_graph::generate::mutate;
use graphrep_lockaudit::witness;
use graphrep_serve::registry::load_in_memory;
use graphrep_serve::{start, Client, DatasetRegistry, ServeConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::BTreeSet;

#[test]
fn observed_lock_order_is_a_subset_of_the_static_graph() {
    // A small dataset keeps the NP-hard mutation path fast while still
    // exercising every lock tier: registry state, oracle shards and hints,
    // view/answer caches, the session map, and the server queue.
    let data = DatasetSpec::new(DatasetKind::DudLike, 24, 11).generate();
    let features = data.db.features(0).to_vec();
    let donor = data.db.graph(0).clone();
    let mut reg = DatasetRegistry::new();
    reg.insert(load_in_memory("w", data));
    let handle = start(
        ServeConfig {
            workers: 3,
            ..ServeConfig::default()
        },
        reg,
    )
    .expect("server starts");
    let addr = handle.addr().to_string();

    let mut client = Client::connect(&addr).expect("client connects");
    let opened = client.open("w", 0.75).expect("session opens");
    for (theta, k) in [(1.5, 3usize), (2.5, 4), (1.5, 3)] {
        let _ = client
            .run(opened.session, theta, k, None)
            .expect("query runs");
    }
    // Mutations drive the deepest chain: the state write guard held across
    // the forked index insert (oracle extension transplants every shard,
    // the vantage sweep takes shard + hints locks, the caches are dropped).
    let mut rng = SmallRng::seed_from_u64(7);
    let inserted = {
        let g = mutate(&mut rng, &donor, 2, &[0, 1], &[0]);
        let nodes = g.node_labels().to_vec();
        let edges = g.edges().iter().map(|e| (e.u, e.v, e.label)).collect();
        client
            .insert("w", nodes, edges, features.clone())
            .expect("insert lands")
    };
    let _ = client.remove("w", inserted.id).expect("remove lands");
    let _ = client.run(opened.session, 2.0, 3, None).expect("rerun");
    let _ = client.stats().expect("stats snapshot");
    client.close(opened.session).expect("session closes");
    client.shutdown().expect("shutdown accepted");
    handle.wait();

    let observed = witness::observed_edges();
    assert!(
        !observed.is_empty(),
        "the workload should observe at least one multi-lock edge"
    );

    let report = graphrep_check::lint_workspace(&graphrep_check::workspace_root())
        .expect("static lint runs");
    let graph = report.lock_graph.expect("workspace lint extracts a graph");
    let static_edges: BTreeSet<(&str, &str)> = graph
        .edges
        .iter()
        .map(|e| (e.from.as_str(), e.to.as_str()))
        .collect();
    let escaped: Vec<_> = observed
        .iter()
        .filter(|&&(f, t)| !static_edges.contains(&(f, t)))
        .collect();
    assert!(
        escaped.is_empty(),
        "dynamic edges missing from the static lock graph: {escaped:?}\n\
         (static analysis must over-approximate the runtime order)"
    );
}
