//! Sharded serving over the wire (DESIGN.md §14): a registry entry backed
//! by a shard [`graphrep_shard::Coordinator`] must answer byte-identically
//! to a single-index server, report per-shard stats, and return mutation
//! receipts carrying the full per-shard epoch vector.

use graphrep_datagen::{DatasetKind, DatasetSpec};
use graphrep_serve::{registry::load_in_memory, Response};
use graphrep_serve::{
    start, Client, DatasetRegistry, ServeConfig, ShardedDataset, ShardedMutationReceipt,
};

fn sharded_server(size: usize, seed: u64, shards: usize) -> graphrep_serve::ServerHandle {
    let data = DatasetSpec::new(DatasetKind::DudLike, size, seed).generate();
    let mut reg = DatasetRegistry::new();
    reg.insert_sharded(ShardedDataset::in_memory("d", data, shards, 0x5eed));
    start(
        ServeConfig {
            workers: 2,
            ..Default::default()
        },
        reg,
    )
    .expect("server start")
}

/// Per-shard counters flow through the `stats` endpoint, and a wire query
/// against the sharded backend reports its scatter-gather profile.
#[test]
fn sharded_stats_and_answers_over_the_wire() {
    let handle = sharded_server(40, 11, 3);
    let mut client = Client::connect(&handle.addr().to_string()).expect("connect");

    let stats = client.stats().expect("stats");
    let ds = &stats.datasets[0];
    assert_eq!(ds.shards.len(), 3, "stats must list one entry per shard");
    assert!(
        ds.index_source.starts_with("sharded x3"),
        "{}",
        ds.index_source
    );
    assert!(!ds.cache_enabled, "sharded datasets bypass the caches");
    let total_live: usize = ds.shards.iter().map(|s| s.live).sum();
    assert_eq!(total_live, 40);
    for s in &ds.shards {
        assert_eq!(s.epoch, 0, "fresh build starts at epoch 0 per shard");
    }

    let open = client.open("d", 0.75).expect("open");
    let answer = match client.run(open.session, 4.0, 5, None).expect("run") {
        Response::Answer(a) => a,
        other => panic!("expected Answer, got {other:?}"),
    };
    assert_eq!(answer.shard_count, 3);
    assert!(answer.picks >= 1);
    assert_eq!(
        answer.picks * 3,
        answer.shards_pruned + answer.shards_touched,
        "every pick accounts for every shard exactly once"
    );
    client.close(open.session).expect("close");
    client.shutdown().expect("shutdown");
    handle.wait();
}

/// The sharded and single-index servers produce byte-identical answer
/// fingerprints for the same dataset and `(θ, k)` grid.
#[test]
fn sharded_server_matches_single_index_server() {
    let make_data = || DatasetSpec::new(DatasetKind::DudLike, 36, 29).generate();

    let mut single_reg = DatasetRegistry::new();
    single_reg.insert(load_in_memory("d", make_data()));
    let single = start(
        ServeConfig {
            workers: 2,
            ..Default::default()
        },
        single_reg,
    )
    .expect("single server");
    let sharded = sharded_server(36, 29, 4);

    let mut sc = Client::connect(&single.addr().to_string()).expect("connect single");
    let mut hc = Client::connect(&sharded.addr().to_string()).expect("connect sharded");
    let so = sc.open("d", 0.75).expect("open single");
    let ho = hc.open("d", 0.75).expect("open sharded");
    for theta in [3.0, 4.0, 5.0] {
        for k in [2usize, 5] {
            let a = match sc.run(so.session, theta, k, None).expect("single run") {
                Response::Answer(a) => a,
                other => panic!("single: {other:?}"),
            };
            let b = match hc.run(ho.session, theta, k, None).expect("sharded run") {
                Response::Answer(b) => b,
                other => panic!("sharded: {other:?}"),
            };
            assert_eq!(
                a.fingerprint(),
                b.fingerprint(),
                "θ={theta} k={k}: sharded answer must be byte-identical"
            );
        }
    }
    sc.shutdown().expect("shutdown single");
    hc.shutdown().expect("shutdown sharded");
    single.wait();
    sharded.wait();
}

/// A ~0 deadline aborts the scatter-gather run with `deadline_exceeded` —
/// sharded sessions poll the same admission-time token as the single-index
/// path — and the session survives: its next run still answers.
#[test]
fn sharded_zero_deadline_aborts_but_session_survives() {
    let handle = sharded_server(40, 11, 3);
    let mut client = Client::connect(&handle.addr().to_string()).expect("connect");

    let open = client.open("d", 0.75).expect("open");
    let resp = client
        .run(open.session, 4.0, 5, Some(0))
        .expect("transport");
    assert_eq!(
        resp.error_code(),
        Some(graphrep_serve::codes::DEADLINE_EXCEEDED),
        "{resp:?}"
    );

    // The aborted session answers normally afterwards, identically to a
    // fresh session over the same (unmutated) epoch vector.
    let after = match client.run(open.session, 4.0, 5, None).expect("rerun") {
        Response::Answer(a) => a,
        other => panic!("expected Answer, got {other:?}"),
    };
    let fresh_open = client.open("d", 0.75).expect("open fresh");
    let fresh = match client
        .run(fresh_open.session, 4.0, 5, None)
        .expect("fresh run")
    {
        Response::Answer(a) => a,
        other => panic!("expected Answer, got {other:?}"),
    };
    assert_eq!(
        after.fingerprint(),
        fresh.fingerprint(),
        "session corrupted by the abort"
    );

    let stats = client.stats().expect("stats");
    let run = stats
        .endpoints
        .iter()
        .find(|e| e.endpoint == "run")
        .expect("run endpoint row");
    assert_eq!(run.deadline_exceeded, 1, "{run:?}");
    assert_eq!(run.ok, 2, "{run:?}");
    client.shutdown().expect("shutdown");
    handle.wait();
}

/// Wire mutations against a sharded dataset route to one owning shard:
/// the receipt's epoch vector moves in exactly one slot per operation.
#[test]
fn sharded_wire_mutations_bump_one_epoch_slot() {
    let handle = sharded_server(30, 7, 3);
    let mut client = Client::connect(&handle.addr().to_string()).expect("connect");

    // Same spec as the server's dataset, regenerated to learn the feature
    // dimensionality the insert must match.
    let dims = DatasetSpec::new(DatasetKind::DudLike, 30, 7)
        .generate()
        .db
        .dims();
    let before = [0u64; 3];
    let r1 = client
        .insert(
            "d",
            vec![0, 1, 1],
            vec![(0, 1, 0), (1, 2, 1)],
            vec![0.5; dims],
        )
        .expect("insert");
    assert_eq!(r1.id, 30);
    assert_eq!(r1.shard_epochs.len(), 3);
    let moved: Vec<usize> = (0..3)
        .filter(|&i| r1.shard_epochs[i] != before[i])
        .collect();
    assert_eq!(moved.len(), 1, "exactly one shard epoch moves per insert");
    assert_eq!(r1.shard_epochs[moved[0]], 1);

    let r2 = client.remove("d", 4).expect("remove");
    let moved2: Vec<usize> = (0..3)
        .filter(|&i| r2.shard_epochs[i] != r1.shard_epochs[i])
        .collect();
    assert_eq!(moved2.len(), 1, "exactly one shard epoch moves per remove");

    // Receipt type round-trips through the public re-export.
    let _: Option<ShardedMutationReceipt> = None;

    client.shutdown().expect("shutdown");
    handle.wait();
}
