//! Connection fault injection against the async reactor: peers that vanish
//! mid-stream, half-open sockets, and storms of misbehaving connections.
//! The invariants, asserted through the `stats` endpoint before and after:
//! every dispatched request is accounted for exactly once (requests ==
//! ok + overloaded + deadline_exceeded + errors), the connection gauge
//! returns to baseline (no leaked slots), the worker queue drains to zero
//! (no leaked workers), and the server keeps serving clean clients
//! throughout.

use graphrep_datagen::{DatasetKind, DatasetSpec};
use graphrep_serve::registry::load_in_memory;
use graphrep_serve::{
    protocol, start, Client, DatasetRegistry, IoMode, Response, ServeConfig, StatsBody,
    TaggedRequest, TaggedResponse,
};
use std::io::Write;
use std::net::{Shutdown, TcpStream};
use std::time::{Duration, Instant};

fn async_server(workers: usize) -> graphrep_serve::ServerHandle {
    let data = DatasetSpec::new(DatasetKind::DudLike, 60, 20140622).generate();
    let mut reg = DatasetRegistry::new();
    reg.insert(load_in_memory("f", data));
    start(
        ServeConfig {
            workers,
            io: IoMode::Async,
            ..Default::default()
        },
        reg,
    )
    .expect("async server start")
}

/// Every dispatched request ended in exactly one of the four outcome
/// buckets — a cancelled or discarded run still gets its terminal observed.
fn assert_conserved(stats: &StatsBody) {
    for ep in &stats.endpoints {
        assert_eq!(
            ep.requests,
            ep.ok + ep.overloaded + ep.deadline_exceeded + ep.errors,
            "endpoint `{}` leaked a request: {ep:?}",
            ep.endpoint
        );
    }
}

fn endpoint<'a>(stats: &'a StatsBody, name: &str) -> &'a graphrep_serve::protocol::EndpointStats {
    stats
        .endpoints
        .iter()
        .find(|e| e.endpoint == name)
        .unwrap_or_else(|| panic!("no `{name}` endpoint in stats"))
}

/// Polls `stats` until `pred` holds or ~10 s pass; returns the last snapshot.
fn await_stats(observer: &mut Client, pred: impl Fn(&StatsBody) -> bool) -> StatsBody {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let s = observer.stats().expect("stats");
        if pred(&s) || Instant::now() > deadline {
            return s;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn tagged(id: u64, req: protocol::Request) -> Vec<u8> {
    protocol::encode_frame(&TaggedRequest { id, req }).expect("encode")
}

/// Raw v2 handshake (mirrors the torture suite's helper).
fn raw_v2(addr: &str) -> TcpStream {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_millis(100)))
        .expect("timeout");
    protocol::write_frame(
        &mut s,
        &protocol::Request::Hello(protocol::HelloBody {
            version: protocol::PROTOCOL_V2,
        }),
    )
    .expect("hello");
    match read_bare(&mut s) {
        Response::HelloAck(a) => assert_eq!(a.version, protocol::PROTOCOL_V2),
        other => panic!("expected HelloAck, got {other:?}"),
    }
    s
}

fn read_bare(stream: &mut TcpStream) -> Response {
    for _ in 0..100 {
        match protocol::read_frame::<Response>(stream, Duration::from_secs(10)).expect("frame") {
            protocol::FrameRead::Frame(r) => return r,
            protocol::FrameRead::Closed => panic!("server closed the connection"),
            protocol::FrameRead::Idle => {}
        }
    }
    panic!("timed out waiting for a frame");
}

fn read_tagged(stream: &mut TcpStream) -> TaggedResponse {
    for _ in 0..100 {
        match protocol::read_frame::<TaggedResponse>(stream, Duration::from_secs(10))
            .expect("tagged frame")
        {
            protocol::FrameRead::Frame(r) => return r,
            protocol::FrameRead::Closed => panic!("server closed the connection"),
            protocol::FrameRead::Idle => {}
        }
    }
    panic!("timed out waiting for a tagged frame");
}

fn run_stream_req(session: u64, theta: f64, k: usize) -> protocol::Request {
    protocol::Request::RunStream(protocol::RunBody {
        session,
        theta,
        k,
        deadline_ms: None,
    })
}

/// A peer that disconnects with a streamed run still in flight: the run is
/// cancelled (its terminal lands in the `errors` bucket — nobody is left to
/// read it), the connection slot is reclaimed, the worker survives to serve
/// the next request, and the orphaned session stays usable from elsewhere.
#[test]
fn mid_stream_disconnect_cancels_the_run_and_reclaims_the_connection() {
    let handle = async_server(1);
    let addr = handle.addr().to_string();
    let mut observer = Client::connect(&addr).expect("connect observer");
    let baseline = observer.stats().expect("baseline stats");
    assert_eq!(
        baseline.connections_open, 1,
        "only the observer is connected"
    );

    let mut victim = raw_v2(&addr);
    victim
        .write_all(&tagged(
            1,
            protocol::Request::Open(protocol::OpenBody {
                dataset: "f".into(),
                quantile: 0.75,
            }),
        ))
        .expect("open");
    let session = match read_tagged(&mut victim) {
        TaggedResponse {
            id: 1,
            resp: Response::Opened(o),
        } => o.session,
        other => panic!("expected Opened, got {other:?}"),
    };

    // Park the only worker, queue the stream behind it, then vanish: the
    // run starts strictly after the teardown and must abort on first pick.
    let mut burst = tagged(
        2,
        protocol::Request::Ping(protocol::PingBody { wait_ms: 300 }),
    );
    burst.extend(tagged(3, run_stream_req(session, 3.0, 4)));
    victim.write_all(&burst).expect("burst");
    drop(victim);

    let settled = await_stats(&mut observer, |s| {
        let rs = endpoint(s, "run_stream");
        s.connections_open == 1 && s.queue_len == 0 && rs.requests == 1 && rs.errors == 1
    });
    assert_eq!(
        settled.connections_open, 1,
        "victim's slot was not reclaimed"
    );
    assert_eq!(settled.queue_len, 0, "work stuck in the queue");
    let rs = endpoint(&settled, "run_stream");
    assert_eq!(
        (rs.requests, rs.errors),
        (1, 1),
        "cancelled run not accounted: {rs:?}"
    );
    assert_conserved(&settled);

    // The single worker is alive (a leaked worker would strand this ping
    // forever on a 1-worker pool), and the orphaned session still answers.
    assert!(observer.ping(0).is_ok(), "worker leaked");
    let answer = observer
        .run_answer(session, 3.0, 2)
        .expect("orphaned session run");
    assert!(!answer.ids.is_empty());
    handle.shutdown();
}

/// A half-open peer (write side shut, read side still open) is torn down
/// promptly: a query connection that can no longer send requests is useless,
/// and keeping it would leak its slot and pin its streamed runs forever.
#[test]
fn half_open_sockets_are_torn_down_not_leaked() {
    let handle = async_server(2);
    let addr = handle.addr().to_string();
    let mut observer = Client::connect(&addr).expect("connect observer");

    let mut s = TcpStream::connect(&addr).expect("connect half-open");
    s.set_read_timeout(Some(Duration::from_millis(200)))
        .expect("timeout");
    protocol::write_frame(
        &mut s,
        &protocol::Request::Ping(protocol::PingBody { wait_ms: 0 }),
    )
    .expect("ping");
    assert!(matches!(read_bare(&mut s), Response::Pong));
    let with_victim = await_stats(&mut observer, |st| st.connections_open == 2);
    assert_eq!(with_victim.connections_open, 2);

    s.shutdown(Shutdown::Write).expect("half-close");

    // The server must notice the EOF and drop the whole connection even
    // though our read side would happily accept more frames.
    let settled = await_stats(&mut observer, |st| st.connections_open == 1);
    assert_eq!(settled.connections_open, 1, "half-open connection leaked");
    let mut eof = false;
    for _ in 0..50 {
        match protocol::read_frame::<Response>(&mut s, Duration::from_secs(5)) {
            Ok(protocol::FrameRead::Closed) | Err(_) => {
                eof = true;
                break;
            }
            Ok(protocol::FrameRead::Idle) => {}
            Ok(protocol::FrameRead::Frame(f)) => panic!("frame on a dead connection: {f:?}"),
        }
    }
    assert!(eof, "server kept its write side open to a half-open peer");
    assert_conserved(&observer.stats().expect("final stats"));
    handle.shutdown();
}

/// A storm of misbehaving connections — silent drops, truncated headers,
/// mid-stream disconnects, poison frames, half-closes — interleaved with
/// clean clients. Afterwards: gauge at baseline, queue empty, every counter
/// conserved, and the server still streams correct answers.
#[test]
fn fault_storm_conserves_counters_and_keeps_serving() {
    let handle = async_server(2);
    let addr = handle.addr().to_string();
    let mut observer = Client::connect(&addr).expect("connect observer");

    // One long-lived clean session the storm must not disturb.
    let clean_session = observer.open("f", 0.75).expect("open clean").session;
    let want = observer
        .run_answer(clean_session, 3.0, 3)
        .expect("clean reference")
        .fingerprint();

    for round in 0..24u64 {
        match round % 6 {
            // Connect and say nothing.
            0 => drop(TcpStream::connect(&addr).expect("connect mute")),
            // Truncated frame header, then gone.
            1 => {
                let mut s = TcpStream::connect(&addr).expect("connect trunc");
                s.write_all(&[0x00, 0x00]).expect("half a header");
                drop(s);
            }
            // Disconnect with a stream in flight, one pick in.
            2 => {
                let mut s = raw_v2(&addr);
                s.write_all(&tagged(
                    1,
                    protocol::Request::Open(protocol::OpenBody {
                        dataset: "f".into(),
                        quantile: 0.75,
                    }),
                ))
                .expect("open");
                let session = match read_tagged(&mut s) {
                    TaggedResponse {
                        resp: Response::Opened(o),
                        ..
                    } => o.session,
                    other => panic!("expected Opened, got {other:?}"),
                };
                s.write_all(&tagged(2, run_stream_req(session, 3.0, 4)))
                    .expect("stream");
                // Read at most one frame, then vanish mid-stream.
                let _ = protocol::read_frame::<TaggedResponse>(&mut s, Duration::from_secs(2));
                drop(s);
            }
            // Poison frame; the server answers with a diagnostic and closes.
            3 => {
                let mut s = TcpStream::connect(&addr).expect("connect poison");
                s.set_read_timeout(Some(Duration::from_millis(100)))
                    .expect("timeout");
                let mut junk = 9u32.to_be_bytes().to_vec();
                junk.extend_from_slice(b"not json!");
                s.write_all(&junk).expect("junk");
                match read_bare(&mut s) {
                    Response::Error(e) => assert_eq!(e.code, protocol::codes::BAD_REQUEST),
                    other => panic!("poison round: {other:?}"),
                }
                drop(s);
            }
            // Half-close after a clean exchange.
            4 => {
                let mut s = TcpStream::connect(&addr).expect("connect half");
                s.set_read_timeout(Some(Duration::from_millis(200)))
                    .expect("timeout");
                protocol::write_frame(
                    &mut s,
                    &protocol::Request::Ping(protocol::PingBody { wait_ms: 0 }),
                )
                .expect("ping");
                assert!(matches!(read_bare(&mut s), Response::Pong));
                s.shutdown(Shutdown::Write).expect("half-close");
                drop(s);
            }
            // A fully clean v1 client, mid-storm.
            _ => {
                let mut c = Client::connect(&addr).expect("connect clean");
                let o = c.open("f", 0.75).expect("open");
                let a = c.run_answer(o.session, 3.0, 3).expect("run");
                assert_eq!(a.fingerprint(), want, "storm corrupted a clean client");
            }
        }
    }

    let settled = await_stats(&mut observer, |s| {
        s.connections_open == 1 && s.queue_len == 0
    });
    assert_eq!(settled.connections_open, 1, "storm leaked connection slots");
    assert_eq!(settled.queue_len, 0, "storm left work queued");
    assert_conserved(&settled);
    // Both workers still serve, and streaming still matches the reference.
    assert!(observer.ping(0).is_ok() && observer.ping(0).is_ok());
    let mut c = Client::connect(&addr).expect("connect verifier");
    c.hello().expect("hello");
    let (picks, body) = c
        .run_streaming_answer(clean_session, 3.0, 3)
        .expect("post-storm stream");
    assert_eq!(body.fingerprint(), want, "post-storm stream diverged");
    assert_eq!(picks.len(), body.ids.len());
    handle.shutdown();
}
