//! Registry-level persistence of mutations: a dir-backed dataset re-persists
//! after every insert/remove (epoch sidecar first), a clean reopen warm-loads
//! the mutated index at the recorded epoch, and a sidecar/index mismatch is
//! detected and answered with a rebuild — never a silently stale snapshot.

use graphrep_datagen::{store, DatasetKind, DatasetSpec};
use graphrep_graph::generate::mutate;
use graphrep_serve::registry::LoadedDataset;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::path::PathBuf;

fn tmpdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("graphrep-mutpersist-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("create temp dir");
    d
}

#[test]
fn mutations_persist_and_reopen_at_the_recorded_epoch() {
    let dir = tmpdir("rt");
    let data = DatasetSpec::new(DatasetKind::DudLike, 24, 4242).generate();
    let theta = data.default_theta;
    store::save(&data, &dir).expect("save dataset");

    // First open: cold build, persisted for the next start.
    let ds = LoadedDataset::open("d", &dir, true).expect("open");
    assert_eq!(ds.index_source(), "built");

    // One insert + one remove, both re-persisted with their epoch.
    let mut rng = SmallRng::seed_from_u64(5);
    let g = mutate(&mut rng, data.db.graph(0), 2, &[0, 1], &[0]);
    let r1 = ds
        .insert_graph(g, data.db.features(0).to_vec())
        .expect("insert");
    assert_eq!((r1.id, r1.epoch), (24, 1));
    let r2 = ds.remove_graph(2).expect("remove");
    assert_eq!(r2.epoch, 2);
    assert_eq!((r2.live, r2.tombstones), (24, 1));
    let want = format!(
        "{:?}",
        ds.index_arc().query(ds.relevant_for(0.75), theta, 3).0
    );
    drop(ds);

    assert_eq!(
        std::fs::read_to_string(dir.join("epoch.txt"))
            .expect("sidecar")
            .trim(),
        "2"
    );

    // Clean reopen: warm load at epoch 2 with liveness intact, answering
    // byte-identically to the pre-restart index.
    let ds = LoadedDataset::open("d", &dir, false).expect("reopen");
    assert_eq!(ds.index_source(), "loaded");
    let index = ds.index_arc();
    assert_eq!(index.epoch(), 2);
    assert_eq!(index.tree().len(), 25);
    assert_eq!(index.tree().live_len(), 24);
    assert!(!index.tree().is_live(2));
    let got = format!("{:?}", index.query(ds.relevant_for(0.75), theta, 3).0);
    assert_eq!(got, want);
    drop(ds);

    // Tamper with the sidecar: the persisted index no longer matches the
    // recorded epoch, so the open must fall back to a rebuild instead of
    // serving the (now unverifiable) snapshot.
    std::fs::write(dir.join("epoch.txt"), "7\n").expect("tamper");
    let ds = LoadedDataset::open("d", &dir, false).expect("reopen after tamper");
    assert!(
        ds.index_source().contains("stale"),
        "expected a stale-fallback source, got {:?}",
        ds.index_source()
    );
    let _ = ds.index_arc().query(ds.relevant_for(0.75), theta, 3);

    let _ = std::fs::remove_dir_all(&dir);
}

/// A JSON-era directory (only `index.json` on disk) still warm-loads, and
/// its first mutation migrates it to the binary format: `index.bin` appears
/// and the next open warm-loads from it at the recorded epoch.
#[test]
fn json_era_directory_warm_loads_and_migrates_to_binary() {
    let dir = tmpdir("jsonmig");
    let data = DatasetSpec::new(DatasetKind::DudLike, 20, 515).generate();
    let theta = data.default_theta;
    store::save(&data, &dir).expect("save dataset");

    // Simulate a pre-binary deployment: persist, then rewrite as JSON-only.
    let ds = LoadedDataset::open("d", &dir, true).expect("first open");
    std::fs::write(dir.join("index.json"), ds.index_arc().save_json()).expect("write json");
    drop(ds);
    std::fs::remove_file(dir.join("index.bin")).expect("drop binary file");

    let ds = LoadedDataset::open("d", &dir, false).expect("json-era open");
    assert_eq!(ds.index_source(), "loaded");
    let want = format!(
        "{:?}",
        ds.index_arc().query(ds.relevant_for(0.75), theta, 3).0
    );

    // First mutation re-persists in the binary format.
    let r = ds.remove_graph(1).expect("remove");
    assert_eq!(r.epoch, 1);
    let mutated = format!(
        "{:?}",
        ds.index_arc().query(ds.relevant_for(0.75), theta, 3).0
    );
    drop(ds);
    assert!(
        dir.join("index.bin").exists(),
        "mutation must write index.bin"
    );

    // Reopen: the stale-epoch index.json is skipped, index.bin warm-loads.
    let ds = LoadedDataset::open("d", &dir, false).expect("reopen");
    assert_eq!(ds.index_source(), "loaded");
    assert_eq!(ds.index_arc().epoch(), 1);
    let got = format!(
        "{:?}",
        ds.index_arc().query(ds.relevant_for(0.75), theta, 3).0
    );
    assert_eq!(got, mutated);
    assert_ne!(want, mutated, "the mutation should be visible in answers");

    let _ = std::fs::remove_dir_all(&dir);
}

/// A corrupt `index.bin` with no JSON fallback is answered by a rebuild
/// whose provenance names the broken file — never a crash or a wrong index.
#[test]
fn corrupt_binary_index_rebuilds_with_provenance() {
    let dir = tmpdir("binrot");
    let data = DatasetSpec::new(DatasetKind::DudLike, 16, 516).generate();
    store::save(&data, &dir).expect("save dataset");

    let ds = LoadedDataset::open("d", &dir, true).expect("first open");
    drop(ds);
    let bin = std::fs::read(dir.join("index.bin")).expect("read bin");
    std::fs::write(dir.join("index.bin"), &bin[..bin.len() / 2]).expect("truncate");

    let ds = LoadedDataset::open("d", &dir, false).expect("open over corrupt bin");
    let source = ds.index_source();
    assert!(
        source.contains("built") && source.contains("index.bin"),
        "expected a rebuild naming the corrupt file, got {source:?}"
    );
    let _ = ds
        .index_arc()
        .query(ds.relevant_for(0.75), data.default_theta, 3);

    let _ = std::fs::remove_dir_all(&dir);
}
