//! The only unsafe in the serving layer: raw `epoll` syscalls and an
//! `RLIMIT_NOFILE` raiser, both thin FFI declarations against the platform
//! libc that std already links. Everything above this module is safe code
//! behind the [`super::poll::Poll`] trait.
//!
//! Linux-only by construction (`epoll` is a Linux API); the reactor refuses
//! to start elsewhere rather than pretending to poll.
#![allow(unsafe_code)]
#![cfg(target_os = "linux")]

use super::poll::{Event, Interest, Poll};
use std::io;
use std::os::raw::c_int;
use std::time::Duration;

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

/// `struct epoll_event`. Packed on x86-64 (the kernel ABI carries it
/// unaligned there); naturally aligned on every other architecture.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
    fn getrlimit(resource: c_int, rlim: *mut Rlimit) -> c_int;
    fn setrlimit(resource: c_int, rlim: *const Rlimit) -> c_int;
}

#[repr(C)]
#[derive(Clone, Copy)]
struct Rlimit {
    rlim_cur: u64,
    rlim_max: u64,
}

const RLIMIT_NOFILE: c_int = 7;

/// Best-effort raise of the open-file-descriptor soft limit toward
/// `target` (capped at the hard limit). Returns the soft limit in effect
/// afterwards — callers sizing connection floods (the ≥2k idle-connection
/// bench) scale to what they actually got.
pub fn raise_nofile_limit(target: u64) -> u64 {
    let mut lim = Rlimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    // SAFETY: getrlimit writes one Rlimit struct through a valid pointer.
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
        return 0;
    }
    if lim.rlim_cur >= target {
        return lim.rlim_cur;
    }
    let want = Rlimit {
        rlim_cur: target.min(lim.rlim_max),
        rlim_max: lim.rlim_max,
    };
    // SAFETY: setrlimit reads one Rlimit struct through a valid pointer.
    if unsafe { setrlimit(RLIMIT_NOFILE, &want) } == 0 {
        want.rlim_cur
    } else {
        lim.rlim_cur
    }
}

fn interest_mask(interest: Interest) -> u32 {
    let mut m = EPOLLRDHUP;
    if interest.readable {
        m |= EPOLLIN;
    }
    if interest.writable {
        m |= EPOLLOUT;
    }
    m
}

/// Level-triggered `epoll` behind the [`Poll`] seam.
#[derive(Debug)]
pub struct EpollPoll {
    epfd: c_int,
}

impl EpollPoll {
    /// Creates a close-on-exec epoll instance.
    pub fn new() -> io::Result<Self> {
        // SAFETY: epoll_create1 takes no pointers; a negative return is an
        // error reported through errno.
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Self { epfd })
    }

    fn ctl(&self, op: c_int, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interest_mask(interest),
            data: token,
        };
        let evp = if op == EPOLL_CTL_DEL {
            std::ptr::null_mut()
        } else {
            &mut ev
        };
        // SAFETY: `evp` is either null (DEL, where the kernel ignores it) or
        // a valid pointer to a live EpollEvent for the duration of the call.
        if unsafe { epoll_ctl(self.epfd, op, fd, evp) } != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }
}

impl Drop for EpollPoll {
    fn drop(&mut self) {
        // SAFETY: closing an owned fd exactly once.
        unsafe { close(self.epfd) };
    }
}

impl Poll for EpollPoll {
    fn register(&mut self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, interest)
    }

    fn modify(&mut self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, interest)
    }

    fn deregister(&mut self, fd: i32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, Interest::default())
    }

    fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        let mut buf = [EpollEvent { events: 0, data: 0 }; 256];
        let timeout_ms: c_int = match timeout {
            None => -1,
            Some(d) => d.as_millis().min(c_int::MAX as u128) as c_int,
        };
        // SAFETY: `buf` is a valid writable array of 256 events; the kernel
        // writes at most `maxevents` entries.
        let n = unsafe { epoll_wait(self.epfd, buf.as_mut_ptr(), buf.len() as c_int, timeout_ms) };
        if n < 0 {
            let e = io::Error::last_os_error();
            // A signal interrupting the wait is a zero-event wakeup, not an
            // error: the caller's loop re-enters wait naturally.
            if e.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(e);
        }
        for ev in buf.iter().take(n as usize) {
            let bits = ev.events;
            out.push(Event {
                token: ev.data,
                readable: bits & EPOLLIN != 0,
                writable: bits & EPOLLOUT != 0,
                hangup: bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
            });
        }
        Ok(n as usize)
    }
}
