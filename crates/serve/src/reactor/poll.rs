//! The readiness-notification seam: a minimal [`Poll`] trait with a real
//! epoll implementation ([`super::sys::EpollPoll`]) and a deterministic
//! scripted [`MockPoll`] for unit tests.
//!
//! The trait is deliberately level-triggered and tiny — register/modify/
//! deregister interest per fd plus one blocking wait — because everything
//! else (slabs, state machines, backpressure) lives above the seam where it
//! can be tested without a kernel.

use std::collections::VecDeque;
use std::io;
use std::time::Duration;

/// One readiness event delivered by [`Poll::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// The fd is (claimed to be) readable. Level-triggered and advisory:
    /// the consumer must tolerate spurious readiness (a read that returns
    /// `WouldBlock` immediately).
    pub readable: bool,
    /// The fd is (claimed to be) writable. Same advisory caveat.
    pub writable: bool,
    /// The peer hung up or the fd errored; the connection should be torn
    /// down after a final drain attempt.
    pub hangup: bool,
}

/// Readiness interest for one registered fd.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Interest {
    /// Wake when readable.
    pub readable: bool,
    /// Wake when writable.
    pub writable: bool,
}

/// A level-triggered readiness selector over raw fds.
///
/// `fd` is an opaque integer key here: the epoll implementation passes it to
/// the kernel, the mock merely records it — which is what lets reactor logic
/// run under tests with fake fds and scripted readiness.
pub trait Poll {
    /// Starts watching `fd` with `interest`; events carry `token`.
    fn register(&mut self, fd: i32, token: u64, interest: Interest) -> io::Result<()>;
    /// Replaces the interest set (and token) of a watched fd.
    fn modify(&mut self, fd: i32, token: u64, interest: Interest) -> io::Result<()>;
    /// Stops watching a fd.
    fn deregister(&mut self, fd: i32) -> io::Result<()>;
    /// Blocks up to `timeout` for events, appending them to `out`. Returns
    /// the number of events delivered; zero means the wait timed out.
    fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize>;
}

/// A recorded interest-table mutation, for asserting registration protocols.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PollOp {
    /// `register(fd, token, interest)`.
    Register(i32, u64, Interest),
    /// `modify(fd, token, interest)`.
    Modify(i32, u64, Interest),
    /// `deregister(fd)`.
    Deregister(i32),
}

/// Deterministic scripted [`Poll`]: each [`MockPoll::wait`] call pops the
/// next scripted batch of events verbatim — including events for tokens
/// that were deregistered in the meantime (the stale-event race a real
/// kernel can produce) and events for fds that will immediately return
/// `WouldBlock` (spurious wakeups). An exhausted script times out forever.
#[derive(Debug, Default)]
pub struct MockPoll {
    script: VecDeque<Vec<Event>>,
    /// Every interest-table mutation, in call order.
    pub ops: Vec<PollOp>,
    /// Current interest per fd (register/modify state; removed on
    /// deregister). Kept as a plain vec so tests can assert exact contents.
    pub table: Vec<(i32, u64, Interest)>,
}

impl MockPoll {
    /// An empty mock with no scripted events.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one batch of events to deliver on a future `wait`.
    pub fn push_batch(&mut self, events: Vec<Event>) {
        self.script.push_back(events);
    }

    /// Number of scripted batches not yet delivered.
    pub fn remaining_batches(&self) -> usize {
        self.script.len()
    }

    /// The recorded interest for `fd`, if still registered.
    pub fn interest_of(&self, fd: i32) -> Option<Interest> {
        self.table
            .iter()
            .find(|(f, _, _)| *f == fd)
            .map(|&(_, _, i)| i)
    }
}

impl Poll for MockPoll {
    fn register(&mut self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
        if self.table.iter().any(|(f, _, _)| *f == fd) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("fd {fd} is already registered"),
            ));
        }
        self.ops.push(PollOp::Register(fd, token, interest));
        self.table.push((fd, token, interest));
        Ok(())
    }

    fn modify(&mut self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
        let Some(entry) = self.table.iter_mut().find(|(f, _, _)| *f == fd) else {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("fd {fd} is not registered"),
            ));
        };
        entry.1 = token;
        entry.2 = interest;
        self.ops.push(PollOp::Modify(fd, token, interest));
        Ok(())
    }

    fn deregister(&mut self, fd: i32) -> io::Result<()> {
        let before = self.table.len();
        self.table.retain(|(f, _, _)| *f != fd);
        if self.table.len() == before {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("fd {fd} is not registered"),
            ));
        }
        self.ops.push(PollOp::Deregister(fd));
        Ok(())
    }

    fn wait(&mut self, out: &mut Vec<Event>, _timeout: Option<Duration>) -> io::Result<usize> {
        match self.script.pop_front() {
            Some(batch) => {
                let n = batch.len();
                out.extend(batch);
                Ok(n)
            }
            None => Ok(0),
        }
    }
}
