//! The event-driven I/O core of the async serve mode: one reactor thread
//! multiplexes every connection over a level-triggered [`poll::Poll`]
//! (epoll in production, a scripted mock in tests), decodes frames
//! incrementally, and hands query work to the existing bounded worker pool.
//! Compute stays threaded; only I/O is readiness-driven.
//!
//! Layering, bottom up:
//!
//! * [`sys`] — the unsafe epoll/rlimit FFI (Linux only);
//! * [`poll`] — the readiness seam: [`poll::Poll`], [`poll::MockPoll`];
//! * [`waker`] — worker→reactor wake channel (socketpair + dirty list);
//! * [`conn`] — per-connection write queue with backpressure and the
//!   transport-agnostic read/write state machine;
//! * this module — the slab of live connections (generation-tagged tokens,
//!   so stale readiness events for recycled slots are ignored), the accept
//!   path, dispatch glue, and graceful drain.

pub mod conn;
pub mod poll;
pub mod sys;
#[cfg(test)]
mod tests;
pub mod waker;

use crate::protocol::{
    self, codes, ErrorBody, HelloAckBody, HelloBody, Request, Response, TaggedRequest,
    TaggedResponse, PROTOCOL_MAX, PROTOCOL_V1,
};
use conn::{ConnFsm, ConnQueue};
use poll::{Event, Interest, Poll};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::Arc;
use std::time::Duration;
use waker::Waker;

/// Token of the wake-channel read end.
pub const WAKE_TOKEN: u64 = u64::MAX;
/// Token of the listening socket.
pub const LISTEN_TOKEN: u64 = u64::MAX - 1;

/// A byte stream the reactor can drive: nonblocking reads/writes plus the
/// raw fd to register. Object-safe so tests can substitute scripted
/// in-memory transports for TCP sockets.
pub trait Transport: Read + Write + Send {
    /// The fd registered with the poller (an opaque key under a mock).
    fn raw_fd(&self) -> i32;
}

impl Transport for TcpStream {
    fn raw_fd(&self) -> i32 {
        self.as_raw_fd()
    }
}

impl Transport for UnixStream {
    fn raw_fd(&self) -> i32 {
        self.as_raw_fd()
    }
}

/// A connection source the reactor polls for accept readiness.
pub trait Acceptor: Send {
    /// The listener fd to register.
    fn raw_fd(&self) -> i32;
    /// Accepts one pending connection, `Ok(None)` when none is waiting.
    fn accept_one(&mut self) -> std::io::Result<Option<Box<dyn Transport>>>;
}

/// Nonblocking TCP accept source.
pub struct TcpAcceptor {
    listener: TcpListener,
}

impl std::fmt::Debug for TcpAcceptor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpAcceptor")
            .field("fd", &self.listener.as_raw_fd())
            .finish()
    }
}

impl TcpAcceptor {
    /// Wraps a bound listener, switching it to nonblocking mode.
    pub fn new(listener: TcpListener) -> std::io::Result<Self> {
        listener.set_nonblocking(true)?;
        Ok(Self { listener })
    }
}

impl Acceptor for TcpAcceptor {
    fn raw_fd(&self) -> i32 {
        self.listener.as_raw_fd()
    }

    fn accept_one(&mut self) -> std::io::Result<Option<Box<dyn Transport>>> {
        match self.listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(true)?;
                let _ = stream.set_nodelay(true);
                Ok(Some(Box::new(stream)))
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }
}

/// The server-side hooks the reactor drives: request dispatch (inline or
/// pooled — the implementation decides and enqueues responses through the
/// connection's [`ConnQueue`]), the drain flag, and connection accounting.
pub trait AsyncDispatch: Send + Sync {
    /// Handles one decoded request from a connection. `tag` is the v2
    /// request id (`None` on v1 connections); every request must eventually
    /// produce exactly one terminal frame through `queue`.
    fn dispatch(&self, req: Request, tag: Option<u64>, queue: &Arc<ConnQueue>);
    /// Whether graceful drain has begun.
    fn shutting_down(&self) -> bool;
    /// A connection was accepted.
    fn conn_opened(&self);
    /// A connection was torn down.
    fn conn_closed(&self);
}

struct ConnEntry {
    transport: Box<dyn Transport>,
    fsm: ConnFsm,
    /// Interest currently registered with the poller, to elide no-op
    /// `modify` calls.
    registered: Interest,
}

struct Slot {
    conn: Option<ConnEntry>,
    gen: u32,
}

/// Connection storage with generation-tagged tokens: a token addresses
/// (slot, generation), so a readiness event that raced a teardown — its
/// token's slot since recycled — resolves to nothing instead of a stranger.
#[derive(Default)]
pub struct Slab {
    slots: Vec<Slot>,
    free: Vec<usize>,
    live: usize,
}

impl std::fmt::Debug for Slab {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Slab")
            .field("slots", &self.slots.len())
            .field("live", &self.live)
            .finish()
    }
}

impl Slab {
    fn token_of(idx: usize, gen: u32) -> u64 {
        ((gen as u64) << 32) | idx as u64
    }

    /// Inserts a connection built from its assigned token.
    fn insert_with(&mut self, make: impl FnOnce(u64) -> ConnEntry) -> u64 {
        let idx = match self.free.pop() {
            Some(i) => i,
            None => {
                self.slots.push(Slot { conn: None, gen: 0 });
                self.slots.len() - 1
            }
        };
        let gen = self.slots[idx].gen;
        let token = Self::token_of(idx, gen);
        self.slots[idx].conn = Some(make(token));
        self.live += 1;
        token
    }

    fn get_mut(&mut self, token: u64) -> Option<&mut ConnEntry> {
        let idx = (token & 0xffff_ffff) as usize;
        let gen = (token >> 32) as u32;
        let slot = self.slots.get_mut(idx)?;
        if slot.gen != gen {
            return None;
        }
        slot.conn.as_mut()
    }

    fn remove(&mut self, token: u64) -> Option<ConnEntry> {
        let idx = (token & 0xffff_ffff) as usize;
        let gen = (token >> 32) as u32;
        let slot = self.slots.get_mut(idx)?;
        if slot.gen != gen {
            return None;
        }
        let conn = slot.conn.take()?;
        // Recycle the slot under a fresh generation; stale tokens go dead.
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(idx);
        self.live -= 1;
        Some(conn)
    }

    /// Tokens of all live connections.
    fn tokens(&self) -> Vec<u64> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.conn.is_some())
            .map(|(i, s)| Self::token_of(i, s.gen))
            .collect()
    }

    /// Number of live connections.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no connection is live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

/// The reactor: owns the poller, the accept source, the wake channel, and
/// every connection. Generic over [`Poll`] so the event loop runs under the
/// scripted [`poll::MockPoll`] in unit tests.
pub struct Reactor<P: Poll> {
    poll: P,
    acceptor: Option<Box<dyn Acceptor>>,
    wake_rx: UnixStream,
    waker: Arc<Waker>,
    dispatch: Arc<dyn AsyncDispatch>,
    conns: Slab,
    write_cap: usize,
}

impl<P: Poll> std::fmt::Debug for Reactor<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reactor")
            .field("conns", &self.conns.len())
            .field("write_cap", &self.write_cap)
            .finish()
    }
}

impl<P: Poll> Reactor<P> {
    /// Builds a reactor and registers the listener and wake channel.
    pub fn new(
        mut poll: P,
        acceptor: Box<dyn Acceptor>,
        waker: Arc<Waker>,
        wake_rx: UnixStream,
        dispatch: Arc<dyn AsyncDispatch>,
        write_cap: usize,
    ) -> std::io::Result<Self> {
        poll.register(
            acceptor.raw_fd(),
            LISTEN_TOKEN,
            Interest {
                readable: true,
                writable: false,
            },
        )?;
        poll.register(
            wake_rx.as_raw_fd(),
            WAKE_TOKEN,
            Interest {
                readable: true,
                writable: false,
            },
        )?;
        Ok(Self {
            poll,
            acceptor: Some(acceptor),
            wake_rx,
            waker,
            dispatch,
            conns: Slab::default(),
            write_cap,
        })
    }

    /// Runs the event loop until graceful drain completes: shutdown flag
    /// up, accept source closed, every connection's in-flight work answered
    /// and flushed, every connection closed.
    pub fn run(mut self) {
        let mut draining = false;
        while !self.turn(&mut draining) {}
    }

    /// One iteration of the event loop — one bounded `wait` (so the
    /// shutdown flag is polled even if no event ever arrives), event
    /// handling, dirty-connection flushes, drain bookkeeping. Returns
    /// `true` once graceful drain completed. Split out of [`Reactor::run`]
    /// so the mock-poll unit tests can single-step the loop.
    fn turn(&mut self, draining: &mut bool) -> bool {
        let mut events: Vec<Event> = Vec::new();
        let _ = self.poll.wait(&mut events, Some(Duration::from_millis(50)));
        for ev in events {
            match ev.token {
                WAKE_TOKEN => Waker::drain_wake_bytes(&mut self.wake_rx),
                LISTEN_TOKEN => self.accept_ready(*draining),
                token => self.conn_event(token, ev),
            }
        }
        for token in self.waker.take_dirty() {
            self.flush_conn(token);
        }
        if self.dispatch.shutting_down() {
            if !*draining {
                *draining = true;
                if let Some(a) = self.acceptor.take() {
                    let _ = self.poll.deregister(a.raw_fd());
                }
            }
            // Close connections with nothing left in flight or queued.
            for token in self.conns.tokens() {
                let done = match self.conns.get_mut(token) {
                    Some(c) => c.fsm.out.drained() && !c.fsm.wants_write(),
                    None => false,
                };
                if done {
                    self.teardown(token);
                }
            }
            if self.conns.is_empty() {
                return true;
            }
        }
        false
    }

    fn accept_ready(&mut self, draining: bool) {
        if draining {
            return;
        }
        loop {
            let accepted = match self.acceptor.as_mut() {
                Some(a) => a.accept_one(),
                None => return,
            };
            match accepted {
                Ok(Some(transport)) => {
                    let waker = Arc::clone(&self.waker);
                    let cap = self.write_cap;
                    let fd = transport.raw_fd();
                    let token = self.conns.insert_with(|token| {
                        let queue = Arc::new(ConnQueue::new(cap, waker, token));
                        ConnEntry {
                            transport,
                            fsm: ConnFsm::new(queue),
                            registered: Interest {
                                readable: true,
                                writable: false,
                            },
                        }
                    });
                    self.dispatch.conn_opened();
                    if self
                        .poll
                        .register(
                            fd,
                            token,
                            Interest {
                                readable: true,
                                writable: false,
                            },
                        )
                        .is_err()
                    {
                        self.teardown(token);
                    }
                }
                Ok(None) => return,
                Err(_) => return,
            }
        }
    }

    fn conn_event(&mut self, token: u64, ev: Event) {
        // Stale-token events (slot recycled since the event was queued)
        // resolve to None and are ignored.
        if self.conns.get_mut(token).is_none() {
            return;
        }
        if ev.readable {
            self.read_ready(token);
        }
        if ev.writable {
            self.flush_conn(token);
        }
        if ev.hangup {
            // Drain any final inbound bytes were already attempted above if
            // readable; the peer is gone either way.
            if let Some(c) = self.conns.get_mut(token) {
                // One last flush attempt delivers what fits, then close.
                let _ = c.fsm.on_writable(&mut c.transport);
                self.teardown(token);
            }
        }
    }

    fn read_ready(&mut self, token: u64) {
        let Some(c) = self.conns.get_mut(token) else {
            return;
        };
        if c.fsm.read_paused || c.fsm.closing {
            return;
        }
        let outcome = c.fsm.on_readable(&mut c.transport);
        let queue = Arc::clone(&c.fsm.out);
        for payload in outcome.payloads {
            self.handle_payload(token, &payload, &queue);
        }
        if let Some(e) = outcome.error {
            // Framing lost sync: one typed diagnostic, then close once it
            // (and everything before it) flushes. Tagged with the sentinel
            // id on v2 connections — the true id is unknowable.
            let (tag, closing) = match self.conns.get_mut(token) {
                Some(c) => {
                    c.fsm.closing = true;
                    ((c.fsm.version > PROTOCOL_V1).then_some(u64::MAX), true)
                }
                None => (None, false),
            };
            if closing {
                let resp = Response::Error(ErrorBody {
                    code: codes::BAD_REQUEST.to_owned(),
                    message: e.to_string(),
                });
                push_response(&queue, tag, &resp);
            }
        }
        if outcome.eof {
            // EOF covers both clean close and half-open peers (write side
            // shut): either way no more requests can arrive, so the
            // connection — and any streamed run feeding it — is torn down.
            self.teardown(token);
            return;
        }
        self.flush_conn(token);
    }

    fn handle_payload(&mut self, token: u64, payload: &str, queue: &Arc<ConnQueue>) {
        let version = match self.conns.get_mut(token) {
            // A poisoned connection processes nothing after the bad frame.
            Some(c) if !c.fsm.closing => c.fsm.version,
            _ => return,
        };
        let (tag, req) = if version > PROTOCOL_V1 {
            match serde_json::from_str::<TaggedRequest>(payload) {
                Ok(t) => (Some(t.id), t.req),
                Err(e) => {
                    self.poison(token, queue, format!("expected a tagged request: {e}"));
                    return;
                }
            }
        } else {
            match serde_json::from_str::<Request>(payload) {
                Ok(r) => (None, r),
                Err(e) => {
                    self.poison(token, queue, format!("bad request frame: {e}"));
                    return;
                }
            }
        };
        // Hello is a framing concern, so the reactor owns it: the ack is
        // sent in the *current* framing, then the connection switches.
        if let Request::Hello(HelloBody { version: want }) = req {
            let granted = want.clamp(PROTOCOL_V1, PROTOCOL_MAX);
            let ack = Response::HelloAck(HelloAckBody {
                version: granted,
                max: PROTOCOL_MAX,
            });
            push_response(queue, tag, &ack);
            if let Some(c) = self.conns.get_mut(token) {
                c.fsm.version = granted;
            }
            return;
        }
        // Duplicate live request ids cannot be answered unambiguously;
        // reject without executing.
        if !queue.note_dispatch(tag) {
            let resp = Response::Error(ErrorBody {
                code: codes::BAD_REQUEST.to_owned(),
                message: format!(
                    "request id {} is already in flight on this connection",
                    tag.unwrap_or(0)
                ),
            });
            push_response(queue, tag, &resp);
            return;
        }
        self.dispatch.dispatch(req, tag, queue);
    }

    /// Marks a connection poisoned after an unparseable frame: one
    /// diagnostic, then close-on-drain. The v1 blocking server does the
    /// same (one best-effort error, then drop).
    fn poison(&mut self, token: u64, queue: &Arc<ConnQueue>, message: String) {
        let tag = match self.conns.get_mut(token) {
            Some(c) => {
                c.fsm.closing = true;
                (c.fsm.version > PROTOCOL_V1).then_some(u64::MAX)
            }
            None => return,
        };
        let resp = Response::Error(ErrorBody {
            code: codes::BAD_REQUEST.to_owned(),
            message,
        });
        push_response(queue, tag, &resp);
    }

    /// Flushes a connection's write queue and re-evaluates its interest
    /// set and read-pause state.
    fn flush_conn(&mut self, token: u64) {
        let Some(c) = self.conns.get_mut(token) else {
            return;
        };
        match c.fsm.on_writable(&mut c.transport) {
            Ok(_drained) => {
                c.fsm.update_read_pause();
                if c.fsm.closing && !c.fsm.wants_write() {
                    self.teardown(token);
                    return;
                }
                self.update_interest(token);
            }
            Err(_) => self.teardown(token),
        }
    }

    fn update_interest(&mut self, token: u64) {
        let Some(c) = self.conns.get_mut(token) else {
            return;
        };
        let want = c.fsm.interest();
        if want != c.registered {
            let fd = c.transport.raw_fd();
            if self.poll.modify(fd, token, want).is_ok() {
                if let Some(c) = self.conns.get_mut(token) {
                    c.registered = want;
                }
            }
        }
    }

    fn teardown(&mut self, token: u64) {
        let Some(c) = self.conns.remove(token) else {
            return;
        };
        // Closing the queue is what aborts any in-flight streamed run
        // feeding this connection: its next pick push fails.
        c.fsm.out.mark_closed();
        let _ = self.poll.deregister(c.transport.raw_fd());
        self.dispatch.conn_closed();
    }

    /// Number of live connections (test hook).
    pub fn connections(&self) -> usize {
        self.conns.len()
    }
}

/// Encodes `resp` (tagged when `tag` is set) into one wire frame.
pub fn encode_response(tag: Option<u64>, resp: &Response) -> Result<Vec<u8>, crate::ServeError> {
    match tag {
        Some(id) => protocol::encode_frame(&TaggedResponse {
            id,
            resp: resp.clone(),
        }),
        None => protocol::encode_frame(resp),
    }
}

/// Enqueues a response that answers no tracked request (hello acks,
/// duplicate-id rejections, poison diagnostics) — the connection's
/// in-flight set is left untouched.
pub fn push_response(queue: &Arc<ConnQueue>, tag: Option<u64>, resp: &Response) {
    if let Ok(frame) = encode_response(tag, resp) {
        queue.push_notice(frame);
    }
}
