//! Worker→reactor wake channel: a nonblocking socketpair plus a dirty-token
//! list. Workers that enqueue outbound frames push the connection's token
//! and write one byte; the reactor wakes from `epoll_wait`, drains the
//! byte(s), and flushes exactly the dirty connections.
//!
//! Built on `UnixStream::pair()` — a safe std API — so the only unsafe in
//! the reactor stays confined to the epoll syscalls themselves.

use graphrep_lockaudit::TrackedMutex;
use std::io::{Read, Write};
use std::os::unix::net::UnixStream;

/// The worker-side half of the wake channel (cheaply cloneable via `Arc`).
pub struct Waker {
    dirty: TrackedMutex<Vec<u64>>,
    tx: UnixStream,
}

impl std::fmt::Debug for Waker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Waker").finish()
    }
}

impl Waker {
    /// Builds the channel; returns the waker and the reactor-side read end
    /// (to be registered for read readiness).
    pub fn new() -> std::io::Result<(Self, UnixStream)> {
        let (tx, rx) = UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        Ok((
            Self {
                dirty: TrackedMutex::new("serve.reactor.Waker.dirty", Vec::new()),
                tx,
            },
            rx,
        ))
    }

    /// Marks `token`'s connection dirty and nudges the reactor. A full pipe
    /// is fine — a wake is already pending and the reactor drains the dirty
    /// list wholesale.
    pub fn wake(&self, token: u64) {
        {
            let mut d = self.dirty.lock();
            d.push(token);
        }
        // Nonblocking write outside the lock; WouldBlock means the reactor
        // already has an unconsumed wake byte.
        let _ = (&self.tx).write(&[1u8]);
    }

    /// Takes the dirty tokens accumulated since the last call (reactor
    /// side). Order preserved, duplicates possible — the reactor's flush is
    /// idempotent.
    pub fn take_dirty(&self) -> Vec<u64> {
        std::mem::take(&mut *self.dirty.lock())
    }

    /// Drains the wake bytes from the read end (reactor side, after a
    /// readable event on it). Not named `drain`: the static lock analysis
    /// resolves bare method calls by unique name, and a collection's
    /// `.drain(..)` anywhere in the workspace would alias into this fn.
    pub fn drain_wake_bytes(rx: &mut UnixStream) {
        let mut buf = [0u8; 256];
        while matches!(rx.read(&mut buf), Ok(n) if n > 0) {}
    }
}
