//! Per-connection state shared between the reactor thread and the worker
//! pool: the outbound write queue with its backpressure rules, the wake
//! channel that lets workers nudge the reactor, and the I/O-agnostic
//! connection state machine driven by readiness events.
//!
//! ## Backpressure rules
//!
//! * A **streamed** frame (a mid-run pick) is refused when the connection's
//!   write queue already holds more than its byte cap — the producer must
//!   abort the run (`slow_consumer`) instead of buffering without bound.
//! * A **terminal** frame (the single response of a request, or the frame
//!   that ends a stream) is always enqueued, even over the cap: every
//!   admitted request ends with exactly one terminal frame, so the overshoot
//!   is bounded by the number of in-flight requests.
//! * While a queue sits over its cap the reactor stops *reading* from that
//!   connection (interest drops to write-only), which converts our queue
//!   pressure into TCP backpressure on a pipelining peer.

use super::waker::Waker;
use crate::protocol::{DecodeError, FrameDecoder, PROTOCOL_V1};
use graphrep_lockaudit::TrackedMutex;
use std::collections::{HashSet, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::sync::Arc;

/// Outcome of offering a streamed (non-terminal) frame to a write queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamSend {
    /// Enqueued; keep streaming.
    Sent,
    /// The connection is gone; abort silently.
    Closed,
    /// The queue is over its byte cap; abort the run as `slow_consumer`.
    OverCap,
}

struct QueueState {
    frames: VecDeque<Vec<u8>>,
    bytes: usize,
    closed: bool,
    /// Tagged request ids dispatched but not yet terminally answered.
    inflight: HashSet<u64>,
    /// Untagged (v1) pooled requests dispatched but not yet answered.
    inflight_untagged: usize,
}

/// The outbound side of one async connection, shared with the worker pool.
pub struct ConnQueue {
    state: TrackedMutex<QueueState>,
    cap: usize,
    waker: Arc<Waker>,
    token: u64,
}

impl std::fmt::Debug for ConnQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConnQueue")
            .field("cap", &self.cap)
            .field("token", &self.token)
            .finish()
    }
}

impl ConnQueue {
    /// A fresh queue for the connection registered under `token`.
    pub fn new(cap: usize, waker: Arc<Waker>, token: u64) -> Self {
        Self {
            state: TrackedMutex::new(
                "serve.reactor.ConnQueue.state",
                QueueState {
                    frames: VecDeque::new(),
                    bytes: 0,
                    closed: false,
                    inflight: HashSet::new(),
                    inflight_untagged: 0,
                },
            ),
            cap,
            waker,
            token,
        }
    }

    /// Records a dispatched request. Returns `false` for a duplicate live
    /// tag — the caller must reject the request instead of executing it
    /// (two live requests with one id would make their responses
    /// indistinguishable).
    pub fn note_dispatch(&self, tag: Option<u64>) -> bool {
        let mut s = self.state.lock();
        match tag {
            Some(id) => s.inflight.insert(id),
            None => {
                s.inflight_untagged += 1;
                true
            }
        }
    }

    /// Offers a streamed (non-terminal) frame, subject to the byte cap.
    pub fn push_stream(&self, frame: Vec<u8>) -> StreamSend {
        let outcome = {
            let mut s = self.state.lock();
            if s.closed {
                StreamSend::Closed
            } else if s.bytes > self.cap {
                StreamSend::OverCap
            } else {
                s.bytes += frame.len();
                s.frames.push_back(frame);
                StreamSend::Sent
            }
        };
        if outcome == StreamSend::Sent {
            self.waker.wake(self.token);
        }
        outcome
    }

    /// Enqueues the terminal frame of request `tag`, retiring it from the
    /// in-flight set. Always succeeds while the connection lives (the cap
    /// does not apply; see the module docs). Returns `false` if the
    /// connection is already gone.
    pub fn push_final(&self, tag: Option<u64>, frame: Vec<u8>) -> bool {
        let enqueued = {
            let mut s = self.state.lock();
            match tag {
                Some(id) => {
                    s.inflight.remove(&id);
                }
                None => s.inflight_untagged = s.inflight_untagged.saturating_sub(1),
            }
            if s.closed {
                false
            } else {
                s.bytes += frame.len();
                s.frames.push_back(frame);
                true
            }
        };
        if enqueued {
            self.waker.wake(self.token);
        }
        enqueued
    }

    /// Enqueues a frame that answers no tracked request (hello acks,
    /// duplicate-id rejections, poison diagnostics): the in-flight set is
    /// left untouched. Returns `false` if the connection is gone.
    pub fn push_notice(&self, frame: Vec<u8>) -> bool {
        let enqueued = {
            let mut s = self.state.lock();
            if s.closed {
                false
            } else {
                s.bytes += frame.len();
                s.frames.push_back(frame);
                true
            }
        };
        if enqueued {
            self.waker.wake(self.token);
        }
        enqueued
    }

    /// Marks the connection dead: pending frames are dropped and every
    /// future push is refused, which is what aborts in-flight streamed runs
    /// whose consumer disconnected.
    pub fn mark_closed(&self) {
        let mut s = self.state.lock();
        s.closed = true;
        s.frames.clear();
        s.bytes = 0;
    }

    /// Pops the next outbound frame (reactor side). The byte counter is NOT
    /// decremented here — a popped frame may sit partially written in the
    /// state machine for a long time, and it must keep counting against the
    /// cap until it is actually on the wire ([`ConnQueue::note_written`]).
    fn pop_frame(&self) -> Option<Vec<u8>> {
        let mut s = self.state.lock();
        s.frames.pop_front()
    }

    /// Credits `n` bytes as flushed to the transport.
    fn note_written(&self, n: usize) {
        let mut s = self.state.lock();
        s.bytes = s.bytes.saturating_sub(n);
    }

    /// Whether any outbound frames are queued.
    pub fn has_frames(&self) -> bool {
        let s = self.state.lock();
        !s.frames.is_empty()
    }

    /// Whether the queue is over its byte cap (the read-pause signal).
    pub fn over_cap(&self) -> bool {
        let s = self.state.lock();
        s.bytes > self.cap
    }

    /// Whether the connection has nothing left to do: no queued frames and
    /// no in-flight requests — the drain condition for graceful shutdown.
    pub fn drained(&self) -> bool {
        let s = self.state.lock();
        s.frames.is_empty() && s.inflight.is_empty() && s.inflight_untagged == 0
    }
}

/// What [`ConnFsm::on_readable`] learned from one readiness-driven read.
#[derive(Debug, Default)]
pub struct ReadOutcome {
    /// Complete frame payloads, in arrival order, as validated UTF-8 JSON.
    pub payloads: Vec<String>,
    /// The peer closed its write side (EOF). Per policy the whole
    /// connection is torn down: a half-open peer that can no longer send
    /// requests has no use for a query connection, and treating EOF as
    /// close is what reclaims its session work promptly.
    pub eof: bool,
    /// Framing lost sync (typed decode error). The connection must send a
    /// best-effort diagnostic and close.
    pub error: Option<DecodeError>,
}

/// The I/O-state half of one connection, owned by the reactor thread.
/// Transport-agnostic: `on_readable`/`on_writable` take any `Read`/`Write`
/// and treat `WouldBlock` as "readiness exhausted", so a spurious wakeup
/// (an event whose read immediately refuses) is a harmless no-op — the unit
/// tests drive this directly with scripted mock streams.
pub struct ConnFsm {
    /// Incremental frame decoder over whatever bytes have arrived.
    pub decoder: FrameDecoder,
    /// The outbound queue shared with workers.
    pub out: Arc<ConnQueue>,
    /// Negotiated protocol version (starts at [`PROTOCOL_V1`]).
    pub version: u32,
    /// A frame partially written to the socket: remaining bytes.
    pending: Option<Vec<u8>>,
    /// Reads are paused while the peer is over its write-queue cap.
    pub read_paused: bool,
    /// No more requests are accepted; close once writes drain.
    pub closing: bool,
}

impl std::fmt::Debug for ConnFsm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConnFsm")
            .field("version", &self.version)
            .field("read_paused", &self.read_paused)
            .field("closing", &self.closing)
            .finish()
    }
}

impl ConnFsm {
    /// A fresh v1 connection writing through `out`.
    pub fn new(out: Arc<ConnQueue>) -> Self {
        Self {
            decoder: FrameDecoder::new(),
            out,
            version: PROTOCOL_V1,
            pending: None,
            read_paused: false,
            closing: false,
        }
    }

    /// Drains the transport's readable bytes into the decoder and returns
    /// every complete frame payload. Stops at `WouldBlock` (readiness
    /// exhausted — including the spurious-wakeup case where the first read
    /// refuses), EOF, or a decode error.
    pub fn on_readable(&mut self, transport: &mut impl Read) -> ReadOutcome {
        let mut out = ReadOutcome::default();
        if self.closing {
            return out;
        }
        let mut buf = [0u8; 64 * 1024];
        loop {
            match transport.read(&mut buf) {
                Ok(0) => {
                    out.eof = true;
                    break;
                }
                Ok(n) => {
                    self.decoder.feed(&buf[..n]);
                    loop {
                        match self.decoder.next_payload() {
                            Ok(Some(payload)) => out.payloads.push(payload),
                            Ok(None) => break,
                            Err(e) => {
                                out.error = Some(e);
                                return out;
                            }
                        }
                    }
                }
                Err(e)
                    if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::Interrupted =>
                {
                    break;
                }
                Err(_) => {
                    // A hard transport error is indistinguishable from a
                    // vanished peer; tear down like an EOF.
                    out.eof = true;
                    break;
                }
            }
        }
        out
    }

    /// Writes queued frames until the transport refuses or the queue is
    /// empty. Returns `Ok(true)` when everything queued so far is on the
    /// wire, `Ok(false)` when the transport would block (keep write
    /// interest), `Err` when the peer is gone.
    pub fn on_writable(&mut self, transport: &mut impl Write) -> std::io::Result<bool> {
        loop {
            let frame = match self.pending.take() {
                Some(f) => f,
                None => match self.out.pop_frame() {
                    Some(f) => f,
                    None => return Ok(true),
                },
            };
            let mut written = 0;
            while written < frame.len() {
                match transport.write(&frame[written..]) {
                    Ok(0) => {
                        return Err(std::io::Error::new(
                            ErrorKind::WriteZero,
                            "peer stopped accepting bytes",
                        ))
                    }
                    Ok(n) => {
                        written += n;
                        self.out.note_written(n);
                    }
                    Err(e)
                        if e.kind() == ErrorKind::WouldBlock
                            || e.kind() == ErrorKind::Interrupted =>
                    {
                        self.pending = Some(frame[written..].to_vec());
                        return Ok(false);
                    }
                    Err(e) => return Err(e),
                }
            }
        }
    }

    /// Whether any outbound bytes are pending (partially written frame or
    /// queued frames).
    pub fn wants_write(&self) -> bool {
        self.pending.is_some() || self.out.has_frames()
    }

    /// The readiness interest this connection currently needs.
    pub fn interest(&self) -> super::poll::Interest {
        super::poll::Interest {
            readable: !self.closing && !self.read_paused,
            writable: self.wants_write(),
        }
    }

    /// Re-evaluates the read-pause state from the queue's cap. Returns
    /// `true` when the interest set may have changed.
    pub fn update_read_pause(&mut self) -> bool {
        let should_pause = self.out.over_cap();
        if should_pause != self.read_paused {
            self.read_paused = should_pause;
            true
        } else {
            false
        }
    }
}
