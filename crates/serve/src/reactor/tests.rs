//! Deterministic unit tests for the reactor event loop: scripted
//! transports and a scripted [`MockPoll`] drive accept, decode, dispatch,
//! backpressure, poison, and teardown paths — spurious wakeups, EAGAIN
//! loops, and registration/deregistration races included — without a single
//! real socket.

use super::conn::StreamSend;
use super::poll::{Event, Interest, MockPoll, PollOp};
use super::waker::Waker;
use super::*;
use crate::protocol::{encode_frame, ErrorBody, FrameDecoder, PingBody, RunBody};
use std::collections::VecDeque;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// One scripted inbound read result.
enum ReadStep {
    /// Deliver these bytes.
    Data(Vec<u8>),
    /// Return EOF (`Ok(0)`).
    Eof,
}

#[derive(Clone)]
struct ScriptedTransport {
    fd: i32,
    reads: Arc<Mutex<VecDeque<ReadStep>>>,
    written: Arc<Mutex<Vec<u8>>>,
    block_writes: Arc<AtomicBool>,
}

impl ScriptedTransport {
    fn new(fd: i32) -> Self {
        Self {
            fd,
            reads: Arc::new(Mutex::new(VecDeque::new())),
            written: Arc::new(Mutex::new(Vec::new())),
            block_writes: Arc::new(AtomicBool::new(false)),
        }
    }

    fn push_read(&self, step: ReadStep) {
        self.reads.lock().unwrap().push_back(step);
    }

    fn written(&self) -> Vec<u8> {
        self.written.lock().unwrap().clone()
    }
}

impl io::Read for ScriptedTransport {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self.reads.lock().unwrap().pop_front() {
            Some(ReadStep::Data(d)) => {
                assert!(d.len() <= buf.len(), "scripted chunk exceeds read buffer");
                buf[..d.len()].copy_from_slice(&d);
                Ok(d.len())
            }
            Some(ReadStep::Eof) => Ok(0),
            None => Err(io::Error::new(io::ErrorKind::WouldBlock, "drained")),
        }
    }
}

impl io::Write for ScriptedTransport {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.block_writes.load(Ordering::SeqCst) {
            return Err(io::Error::new(io::ErrorKind::WouldBlock, "blocked"));
        }
        self.written.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Transport for ScriptedTransport {
    fn raw_fd(&self) -> i32 {
        self.fd
    }
}

const ACCEPT_FD: i32 = 9000;

struct ScriptedAcceptor {
    pending: Arc<Mutex<VecDeque<ScriptedTransport>>>,
}

impl Acceptor for ScriptedAcceptor {
    fn raw_fd(&self) -> i32 {
        ACCEPT_FD
    }

    fn accept_one(&mut self) -> io::Result<Option<Box<dyn Transport>>> {
        Ok(self
            .pending
            .lock()
            .unwrap()
            .pop_front()
            .map(|t| Box::new(t) as Box<dyn Transport>))
    }
}

struct MockDispatch {
    reqs: Mutex<Vec<(Option<u64>, Request)>>,
    queues: Mutex<Vec<Arc<ConnQueue>>>,
    opened: AtomicUsize,
    closed: AtomicUsize,
    shutdown: AtomicBool,
    /// Immediately answer every dispatched request with `Response::Closed`.
    auto_final: AtomicBool,
}

impl MockDispatch {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            reqs: Mutex::new(Vec::new()),
            queues: Mutex::new(Vec::new()),
            opened: AtomicUsize::new(0),
            closed: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            auto_final: AtomicBool::new(false),
        })
    }

    fn reqs(&self) -> Vec<(Option<u64>, Request)> {
        self.reqs.lock().unwrap().clone()
    }

    fn last_queue(&self) -> Arc<ConnQueue> {
        Arc::clone(self.queues.lock().unwrap().last().expect("no dispatch yet"))
    }
}

impl AsyncDispatch for MockDispatch {
    fn dispatch(&self, req: Request, tag: Option<u64>, queue: &Arc<ConnQueue>) {
        self.reqs.lock().unwrap().push((tag, req));
        self.queues.lock().unwrap().push(Arc::clone(queue));
        if self.auto_final.load(Ordering::SeqCst) {
            let frame = encode_response(tag, &Response::Closed).unwrap();
            queue.push_final(tag, frame);
        }
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    fn conn_opened(&self) {
        self.opened.fetch_add(1, Ordering::SeqCst);
    }

    fn conn_closed(&self) {
        self.closed.fetch_add(1, Ordering::SeqCst);
    }
}

struct Rig {
    reactor: Reactor<MockPoll>,
    dispatch: Arc<MockDispatch>,
    pending: Arc<Mutex<VecDeque<ScriptedTransport>>>,
    draining: bool,
}

impl Rig {
    fn new(write_cap: usize) -> Self {
        let (waker, wake_rx) = Waker::new().unwrap();
        let dispatch = MockDispatch::new();
        let pending = Arc::new(Mutex::new(VecDeque::new()));
        let acceptor = ScriptedAcceptor {
            pending: Arc::clone(&pending),
        };
        let reactor = Reactor::new(
            MockPoll::new(),
            Box::new(acceptor),
            Arc::new(waker),
            wake_rx,
            Arc::clone(&dispatch) as Arc<dyn AsyncDispatch>,
            write_cap,
        )
        .unwrap();
        Self {
            reactor,
            dispatch,
            pending,
            draining: false,
        }
    }

    /// Queues a transport on the acceptor and scripts the accept event.
    fn offer_conn(&mut self, t: &ScriptedTransport) {
        self.pending.lock().unwrap().push_back(t.clone());
        self.reactor.poll.push_batch(vec![Event {
            token: LISTEN_TOKEN,
            readable: true,
            writable: false,
            hangup: false,
        }]);
    }

    fn readable(&mut self, token: u64) {
        self.reactor.poll.push_batch(vec![Event {
            token,
            readable: true,
            writable: false,
            hangup: false,
        }]);
    }

    fn writable(&mut self, token: u64) {
        self.reactor.poll.push_batch(vec![Event {
            token,
            readable: false,
            writable: true,
            hangup: false,
        }]);
    }

    fn turn(&mut self) -> bool {
        let mut d = self.draining;
        let done = self.reactor.turn(&mut d);
        self.draining = d;
        done
    }
}

fn frame_of(req: &Request) -> Vec<u8> {
    encode_frame(req).unwrap()
}

fn tagged_frame(id: u64, req: Request) -> Vec<u8> {
    encode_frame(&TaggedRequest { id, req }).unwrap()
}

/// Decodes every complete frame in `bytes` as `T`.
fn decode_all<T: serde::Deserialize>(bytes: &[u8]) -> Vec<T> {
    let mut d = FrameDecoder::new();
    d.feed(bytes);
    let mut out = Vec::new();
    while let Some(msg) = d.next_message::<T>().unwrap() {
        out.push(msg);
    }
    out
}

fn ping() -> Request {
    Request::Ping(PingBody { wait_ms: 0 })
}

fn run_stream() -> Request {
    Request::RunStream(RunBody {
        session: 1,
        theta: 1.0,
        k: 2,
        deadline_ms: None,
    })
}

#[test]
fn accept_registers_and_spurious_wakeup_is_a_noop() {
    let mut rig = Rig::new(1 << 20);
    let t = ScriptedTransport::new(7);
    rig.offer_conn(&t);
    rig.turn();
    assert_eq!(rig.reactor.connections(), 1);
    assert_eq!(rig.dispatch.opened.load(Ordering::SeqCst), 1);
    assert_eq!(
        rig.reactor.poll.interest_of(7),
        Some(Interest {
            readable: true,
            writable: false
        })
    );
    // Spurious wakeup: readiness claimed, but the first read would block.
    rig.readable(0);
    rig.turn();
    assert_eq!(
        rig.reactor.connections(),
        1,
        "spurious wakeup must not kill"
    );
    assert!(rig.dispatch.reqs().is_empty());
    assert_eq!(rig.dispatch.closed.load(Ordering::SeqCst), 0);
}

#[test]
fn eagain_loop_reassembles_frames_split_across_reads() {
    let mut rig = Rig::new(1 << 20);
    rig.dispatch.auto_final.store(true, Ordering::SeqCst);
    let t = ScriptedTransport::new(7);
    rig.offer_conn(&t);
    rig.turn();
    let frame = frame_of(&ping());
    // The frame arrives in three fragments over two readiness events; each
    // burst ends in EAGAIN.
    t.push_read(ReadStep::Data(frame[..2].to_vec()));
    t.push_read(ReadStep::Data(frame[2..5].to_vec()));
    rig.readable(0);
    rig.turn();
    assert!(rig.dispatch.reqs().is_empty(), "frame is still incomplete");
    t.push_read(ReadStep::Data(frame[5..].to_vec()));
    rig.readable(0);
    rig.turn();
    assert_eq!(rig.dispatch.reqs(), vec![(None, ping())]);
    // The auto-reply flushed in the same turn via the dirty list.
    let resp: Vec<Response> = decode_all(&t.written());
    assert_eq!(resp, vec![Response::Closed]);
}

#[test]
fn eof_tears_down_and_aborts_inflight_streams() {
    let mut rig = Rig::new(1 << 20);
    let t = ScriptedTransport::new(7);
    rig.offer_conn(&t);
    rig.turn();
    t.push_read(ReadStep::Data(frame_of(&run_stream())));
    t.push_read(ReadStep::Eof);
    rig.readable(0);
    rig.turn();
    assert_eq!(
        rig.dispatch.reqs().len(),
        1,
        "request before EOF dispatches"
    );
    assert_eq!(rig.reactor.connections(), 0, "EOF closes the connection");
    assert_eq!(rig.dispatch.closed.load(Ordering::SeqCst), 1);
    assert!(rig.reactor.poll.ops.contains(&PollOp::Deregister(7)));
    assert_eq!(rig.reactor.poll.interest_of(7), None);
    // The worker holding the queue now gets refused: the streamed run
    // aborts instead of buffering for a ghost.
    let q = rig.dispatch.last_queue();
    assert_eq!(q.push_stream(vec![1, 2, 3]), StreamSend::Closed);
    assert!(!q.push_final(None, vec![4]));
}

#[test]
fn stale_token_events_after_slot_recycling_hit_nobody() {
    let mut rig = Rig::new(1 << 20);
    let t1 = ScriptedTransport::new(7);
    rig.offer_conn(&t1);
    rig.turn();
    t1.push_read(ReadStep::Eof);
    rig.readable(0);
    rig.turn();
    assert_eq!(rig.reactor.connections(), 0);
    // A second connection recycles slot 0 under generation 1.
    let t2 = ScriptedTransport::new(8);
    rig.offer_conn(&t2);
    rig.turn();
    assert_eq!(rig.reactor.connections(), 1);
    let stale = 0u64; // (gen 0, slot 0) — the dead connection's token
    let live = 1u64 << 32; // (gen 1, slot 0)
                           // Queue data on the live transport, then deliver a stale-token event:
                           // nothing may read it, and a stale hangup must not tear anyone down.
    t2.push_read(ReadStep::Data(frame_of(&ping())));
    rig.readable(stale);
    rig.reactor.poll.push_batch(vec![Event {
        token: stale,
        readable: false,
        writable: false,
        hangup: true,
    }]);
    rig.turn();
    rig.turn();
    assert!(rig.dispatch.reqs().is_empty(), "stale token must not read");
    assert_eq!(rig.reactor.connections(), 1, "stale hangup must not kill");
    rig.readable(live);
    rig.turn();
    assert_eq!(rig.dispatch.reqs(), vec![(None, ping())]);
}

#[test]
fn hello_acks_in_old_framing_then_switches_to_tagged() {
    let mut rig = Rig::new(1 << 20);
    rig.dispatch.auto_final.store(true, Ordering::SeqCst);
    let t = ScriptedTransport::new(7);
    rig.offer_conn(&t);
    rig.turn();
    t.push_read(ReadStep::Data(frame_of(&Request::Hello(HelloBody {
        version: 99,
    }))));
    rig.readable(0);
    rig.turn();
    // The ack itself is a bare v1 frame; the grant is clamped to our max.
    let acks: Vec<Response> = decode_all(&t.written());
    assert_eq!(
        acks,
        vec![Response::HelloAck(HelloAckBody {
            version: PROTOCOL_MAX,
            max: PROTOCOL_MAX,
        })]
    );
    let before = t.written().len();
    t.push_read(ReadStep::Data(tagged_frame(42, ping())));
    rig.readable(0);
    rig.turn();
    assert_eq!(rig.dispatch.reqs(), vec![(Some(42), ping())]);
    let tagged: Vec<TaggedResponse> = decode_all(&t.written()[before..]);
    assert_eq!(
        tagged,
        vec![TaggedResponse {
            id: 42,
            resp: Response::Closed
        }]
    );
}

#[test]
fn duplicate_live_tag_is_rejected_without_retiring_the_original() {
    let mut rig = Rig::new(1 << 20);
    let t = ScriptedTransport::new(7);
    rig.offer_conn(&t);
    rig.turn();
    t.push_read(ReadStep::Data(frame_of(&Request::Hello(HelloBody {
        version: PROTOCOL_MAX,
    }))));
    rig.readable(0);
    rig.turn();
    let after_ack = t.written().len();
    // Two live requests under one id: the second must be refused outright.
    t.push_read(ReadStep::Data(tagged_frame(7, run_stream())));
    t.push_read(ReadStep::Data(tagged_frame(7, run_stream())));
    rig.readable(0);
    rig.turn();
    assert_eq!(rig.dispatch.reqs().len(), 1, "duplicate must not dispatch");
    let q = rig.dispatch.last_queue();
    assert!(!q.drained(), "the original request is still in flight");
    let rejections: Vec<TaggedResponse> = decode_all(&t.written()[after_ack..])
        .into_iter()
        .filter(|tr: &TaggedResponse| matches!(&tr.resp, Response::Error(_)))
        .collect();
    assert_eq!(rejections.len(), 1);
    assert_eq!(rejections[0].id, 7);
    match &rejections[0].resp {
        Response::Error(ErrorBody { code, .. }) => assert_eq!(code, codes::BAD_REQUEST),
        other => panic!("expected an error frame, got {other:?}"),
    }
    // The original completes normally afterwards.
    assert!(q.push_final(
        Some(7),
        encode_response(Some(7), &Response::Closed).unwrap()
    ));
    rig.turn();
    assert!(q.drained());
}

#[test]
fn overfull_write_queue_pauses_reads_until_drained() {
    let mut rig = Rig::new(64);
    let t = ScriptedTransport::new(7);
    rig.offer_conn(&t);
    rig.turn();
    t.push_read(ReadStep::Data(frame_of(&run_stream())));
    rig.readable(0);
    rig.turn();
    let q = rig.dispatch.last_queue();
    // The peer stops reading: writes block, streamed frames pile up.
    t.block_writes.store(true, Ordering::SeqCst);
    assert_eq!(q.push_stream(vec![0u8; 40]), StreamSend::Sent);
    assert_eq!(q.push_stream(vec![0u8; 40]), StreamSend::Sent);
    rig.turn(); // flush attempt blocks; read side must pause
    assert_eq!(
        rig.reactor.poll.interest_of(7),
        Some(Interest {
            readable: false,
            writable: true
        }),
        "over-cap connections drop read interest (TCP backpressure)"
    );
    assert_eq!(
        q.push_stream(vec![0u8; 8]),
        StreamSend::OverCap,
        "producers over the cap must abort as slow_consumer"
    );
    // The peer drains; readiness resumes reads.
    t.block_writes.store(false, Ordering::SeqCst);
    rig.writable(0);
    rig.turn();
    assert_eq!(
        rig.reactor.poll.interest_of(7),
        Some(Interest {
            readable: true,
            writable: false
        })
    );
    assert_eq!(q.push_stream(vec![0u8; 8]), StreamSend::Sent);
}

#[test]
fn poisoned_connection_sends_one_diagnostic_then_closes() {
    let mut rig = Rig::new(1 << 20);
    let t = ScriptedTransport::new(7);
    rig.offer_conn(&t);
    rig.turn();
    // A well-framed payload that is not a request, followed by a valid
    // frame that must NOT be processed (the connection is poisoned).
    let mut garbage = Vec::new();
    garbage.extend_from_slice(&(7u32).to_be_bytes());
    garbage.extend_from_slice(b"{\"x\":1}");
    t.push_read(ReadStep::Data(garbage));
    t.push_read(ReadStep::Data(frame_of(&ping())));
    rig.readable(0);
    rig.turn();
    assert!(
        rig.dispatch.reqs().is_empty(),
        "post-poison frames are dead"
    );
    let frames: Vec<Response> = decode_all(&t.written());
    assert_eq!(frames.len(), 1, "exactly one diagnostic");
    match &frames[0] {
        Response::Error(ErrorBody { code, .. }) => assert_eq!(code, codes::BAD_REQUEST),
        other => panic!("expected an error frame, got {other:?}"),
    }
    assert_eq!(rig.reactor.connections(), 0, "poison closes after flush");
    assert_eq!(rig.dispatch.closed.load(Ordering::SeqCst), 1);
}

#[test]
fn graceful_drain_waits_for_inflight_work_then_exits() {
    let mut rig = Rig::new(1 << 20);
    let t = ScriptedTransport::new(7);
    rig.offer_conn(&t);
    rig.turn();
    t.push_read(ReadStep::Data(frame_of(&ping())));
    rig.readable(0);
    rig.turn();
    let q = rig.dispatch.last_queue();
    rig.dispatch.shutdown.store(true, Ordering::SeqCst);
    assert!(!rig.turn(), "a connection with in-flight work must survive");
    assert!(
        rig.reactor
            .poll
            .ops
            .contains(&PollOp::Deregister(ACCEPT_FD)),
        "drain stops accepting immediately"
    );
    assert_eq!(rig.reactor.connections(), 1);
    // New connections are refused while draining.
    let late = ScriptedTransport::new(8);
    rig.offer_conn(&late);
    assert!(!rig.turn());
    assert_eq!(rig.reactor.connections(), 1, "no accepts while draining");
    // The worker answers; the reply flushes; drain completes.
    assert!(q.push_final(None, encode_response(None, &Response::Closed).unwrap()));
    assert!(rig.turn(), "drained reactor must exit");
    assert_eq!(rig.reactor.connections(), 0);
    let resp: Vec<Response> = decode_all(&t.written());
    assert_eq!(resp, vec![Response::Closed], "the final answer still lands");
}

#[test]
fn register_failure_on_accept_tears_the_connection_down() {
    let mut rig = Rig::new(1 << 20);
    let t1 = ScriptedTransport::new(7);
    rig.offer_conn(&t1);
    rig.turn();
    // Same fd registered twice: MockPoll refuses, mirroring an EEXIST/ENOMEM
    // epoll_ctl failure; the reactor must give up on that connection only.
    let t2 = ScriptedTransport::new(7);
    rig.offer_conn(&t2);
    rig.turn();
    assert_eq!(rig.reactor.connections(), 1);
    assert_eq!(rig.dispatch.opened.load(Ordering::SeqCst), 2);
    assert_eq!(rig.dispatch.closed.load(Ordering::SeqCst), 1);
}

#[test]
fn waker_dirty_list_is_token_deduplicated_per_take() {
    let (waker, mut rx) = Waker::new().unwrap();
    waker.wake(3);
    waker.wake(3);
    waker.wake(9);
    Waker::drain_wake_bytes(&mut rx);
    let mut dirty = waker.take_dirty();
    dirty.sort_unstable();
    dirty.dedup();
    assert_eq!(dirty, vec![3, 9]);
    assert!(waker.take_dirty().is_empty(), "take clears the list");
}
