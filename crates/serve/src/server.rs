//! The TCP server: accept loop, connection handlers, bounded worker pool
//! with admission control, per-request deadlines, and graceful shutdown.
//!
//! Threading model: one thread per connection reads frames and writes
//! responses; query-bearing requests (`open`/`run`/`ping`) are handed to a
//! fixed pool of worker threads through a bounded queue. The pool size caps
//! in-flight query work; the queue caps waiting work — a request that finds
//! the queue full is rejected immediately with `overloaded` rather than
//! admitted into unbounded latency.
//!
//! Deadlines are measured from *admission* (the moment the request enters
//! the queue): a request that waits out its budget in the queue aborts at
//! the first cancellation poll instead of burning a worker, and a running
//! query aborts between best-first-search heap pops via the core's
//! [`CancelToken`]. Either way the client gets `deadline_exceeded` and the
//! session remains fully usable.
//!
//! Graceful shutdown drains: the flag stops admission and the accept loop,
//! workers finish the queued backlog, connection threads deliver the final
//! responses, and every thread is joined before the handle returns.

use crate::metrics::{Endpoint, ServerMetrics};
use crate::protocol::{
    codes, AnswerBody, ErrorBody, FrameRead, HelloAckBody, InsertBody, MutatedBody, OpenBody,
    OpenedBody, PickBody, PingBody, RemoveBody, Request, Response, RunBody, ServeError, StatsBody,
    PROTOCOL_V1,
};
use crate::reactor::conn::{ConnQueue, StreamSend};
use crate::reactor::{self, AsyncDispatch};
use crate::registry::{DatasetEntry, DatasetRegistry};
use crate::sessions::{SessionBackend, SessionManager};
use crate::{protocol, registry};
use graphrep_core::CancelToken;
use graphrep_lockaudit::{TrackedCondvar, TrackedMutex};
use std::collections::VecDeque;
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// How the server performs connection I/O. Query compute is pooled worker
/// threads either way; the mode only decides who moves bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IoMode {
    /// One blocking thread per connection (the classic mode).
    #[default]
    Blocking,
    /// One epoll reactor thread multiplexing every connection
    /// (nonblocking sockets, pipelining, thousands of idle connections).
    Async,
}

impl IoMode {
    /// Wire/CLI name of the mode.
    pub fn name(self) -> &'static str {
        match self {
            IoMode::Blocking => "blocking",
            IoMode::Async => "async",
        }
    }
}

impl std::str::FromStr for IoMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "blocking" => Ok(IoMode::Blocking),
            "async" => Ok(IoMode::Async),
            other => Err(format!("unknown io mode `{other}` (blocking|async)")),
        }
    }
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port (see [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker-pool size — the bound on in-flight query work.
    pub workers: usize,
    /// Admission-control queue capacity: requests beyond the in-flight set
    /// wait here; when full, new requests are rejected as `overloaded`.
    pub max_queue: usize,
    /// Default per-request deadline applied when a `run` request carries
    /// none. `None` means unlimited.
    pub default_deadline_ms: Option<u64>,
    /// Idle TTL after which sessions expire.
    pub idle_session_ttl: Duration,
    /// How long a peer may stall mid-frame before the connection is dropped.
    pub frame_stall: Duration,
    /// Connection I/O mode (see [`IoMode`]).
    pub io: IoMode,
    /// Async mode: per-connection outbound byte cap. A streamed run whose
    /// consumer lets the queue exceed this is cancelled as `slow_consumer`;
    /// reads from the peer pause until the queue drains below it.
    pub write_queue_cap: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        // `GRAPHREP_SERVE_IO=async` flips every default-configured server —
        // including whole test suites — onto the reactor path, so CI runs
        // the same suites in both I/O modes without per-test plumbing.
        // Unset or unrecognized values keep the blocking default.
        let io = std::env::var("GRAPHREP_SERVE_IO")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(IoMode::Blocking);
        Self {
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
            max_queue: 64,
            default_deadline_ms: None,
            idle_session_ttl: Duration::from_secs(900),
            frame_stall: Duration::from_secs(10),
            io,
            write_queue_cap: 4 << 20,
        }
    }
}

enum Work {
    Open(OpenBody),
    Run(RunBody),
    RunStream(RunBody),
    Ping(PingBody),
    Insert(InsertBody),
    Remove(RemoveBody),
}

fn endpoint_of_work(w: &Work) -> Endpoint {
    match w {
        Work::Open(_) => Endpoint::Open,
        Work::Run(_) => Endpoint::Run,
        Work::RunStream(_) => Endpoint::RunStream,
        Work::Ping(_) => Endpoint::Ping,
        Work::Insert(_) => Endpoint::Insert,
        Work::Remove(_) => Endpoint::Remove,
    }
}

/// Where a worker delivers response frames.
enum Reply {
    /// Blocking mode: the connection thread waits on this channel (and, for
    /// streamed runs, forwards every frame until the terminal one).
    Oneshot(mpsc::Sender<Response>),
    /// Async mode: frames are encoded (tagged when the connection
    /// negotiated v2) onto the connection's write queue; the reactor is
    /// woken to flush them.
    Queue {
        queue: Arc<ConnQueue>,
        tag: Option<u64>,
    },
}

impl Reply {
    /// Sends a non-terminal streamed frame, reporting how it went so the
    /// producer can abort a stream nobody is consuming (or consuming too
    /// slowly).
    fn send_stream(&self, resp: Response) -> StreamSend {
        match self {
            Reply::Oneshot(tx) => {
                if tx.send(resp).is_ok() {
                    StreamSend::Sent
                } else {
                    StreamSend::Closed
                }
            }
            Reply::Queue { queue, tag } => match reactor::encode_response(*tag, &resp) {
                Ok(frame) => queue.push_stream(frame),
                Err(_) => StreamSend::Closed,
            },
        }
    }

    /// Delivers the request's terminal frame (always enqueued while the
    /// connection lives; retires the request id on v2 connections).
    fn send_final(&self, resp: Response) {
        match self {
            Reply::Oneshot(tx) => {
                // A vanished receiver means the connection died; nothing to do.
                let _ = tx.send(resp);
            }
            Reply::Queue { queue, tag } => {
                let frame = reactor::encode_response(*tag, &resp).or_else(|_| {
                    reactor::encode_response(
                        *tag,
                        &err(codes::INTERNAL, "response failed to encode"),
                    )
                });
                if let Ok(frame) = frame {
                    queue.push_final(*tag, frame);
                }
            }
        }
    }
}

struct Job {
    work: Work,
    /// Admission time: deadlines and latency are measured from here.
    arrived: Instant,
    reply: Reply,
}

struct Shared {
    cfg: ServeConfig,
    registry: DatasetRegistry,
    sessions: SessionManager,
    metrics: ServerMetrics,
    queue: TrackedMutex<VecDeque<Job>>,
    queue_cv: TrackedCondvar,
    shutdown: AtomicBool,
    started: Instant,
    /// Live connections, both io modes.
    connections_open: AtomicUsize,
}

fn err(code: &str, message: impl Into<String>) -> Response {
    Response::Error(ErrorBody {
        code: code.to_owned(),
        message: message.into(),
    })
}

impl Shared {
    fn shutting_down(&self) -> bool {
        // Relaxed: the flag is an advisory signal polled at loop boundaries;
        // no data is published through it.
        self.shutdown.load(Ordering::Relaxed)
    }

    /// Admission control: rejects when draining or when the queue is full.
    fn submit(&self, job: Job) -> Result<(), &'static str> {
        let mut q = self.queue.lock();
        if self.shutting_down() {
            return Err(codes::SHUTTING_DOWN);
        }
        if q.len() >= self.cfg.max_queue {
            return Err(codes::OVERLOADED);
        }
        q.push_back(job);
        drop(q);
        self.queue_cv.notify_one();
        Ok(())
    }

    fn begin_shutdown(&self) {
        // Relaxed: advisory signal polled at loop boundaries; the queue and
        // its condvar carry the actual work handoff.
        self.shutdown.store(true, Ordering::Relaxed);
        self.queue_cv.notify_all();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = shared.queue.lock();
            loop {
                if let Some(j) = q.pop_front() {
                    break Some(j);
                }
                if shared.shutting_down() {
                    break None;
                }
                // Timed wait so a missed notification can never strand the
                // worker past one tick of the shutdown poll.
                let (guard, _) = shared.queue_cv.wait_timeout(q, Duration::from_millis(50));
                q = guard;
            }
        };
        // Drain semantics: jobs already admitted are executed even after the
        // shutdown flag rises; the worker exits only on an empty queue.
        let Some(job) = job else { return };
        let ep = endpoint_of_work(&job.work);
        let resp = execute(shared, job.work, job.arrived, &job.reply);
        // Queue replies come from the reactor, which never sees response
        // values — the worker is the last to hold one, so it observes the
        // metrics here. Oneshot replies are observed by the connection
        // thread's dispatch (or its streaming loop), as before.
        if matches!(job.reply, Reply::Queue { .. }) {
            shared
                .metrics
                .endpoint(ep)
                .observe(resp.error_code(), job.arrived.elapsed());
        }
        job.reply.send_final(resp);
    }
}

/// Executes one job, streaming intermediate frames through `reply` for
/// [`Work::RunStream`], and returns the terminal response.
fn execute(shared: &Shared, work: Work, arrived: Instant, reply: &Reply) -> Response {
    match work {
        Work::Ping(p) => {
            if p.wait_ms > 0 {
                thread::sleep(Duration::from_millis(p.wait_ms));
            }
            Response::Pong
        }
        Work::Open(o) => open_session(shared, o),
        Work::Run(r) => run_query(shared, r, arrived),
        Work::RunStream(r) => run_stream_query(shared, r, arrived, reply),
        Work::Insert(b) => insert_graph(shared, b),
        Work::Remove(b) => remove_graph(shared, b),
    }
}

/// Rebuilds the wire graph through the safe builder, so malformed input
/// (self loops, duplicate/parallel edges, out-of-range endpoints) surfaces
/// as `bad_request` instead of an invariant-violating graph in the database.
fn graph_from_wire(b: &InsertBody) -> Result<graphrep_graph::Graph, String> {
    let mut builder = graphrep_graph::GraphBuilder::new();
    for &label in &b.nodes {
        builder.add_node(label);
    }
    for e in &b.edges {
        if (e.u as usize) >= b.nodes.len() || (e.v as usize) >= b.nodes.len() {
            return Err(format!(
                "edge ({}, {}) references a node outside 0..{}",
                e.u,
                e.v,
                b.nodes.len()
            ));
        }
        builder
            .add_edge(e.u, e.v, e.label)
            .map_err(|err| format!("edge ({}, {}): {err}", e.u, e.v))?;
    }
    Ok(builder.build())
}

fn insert_graph(shared: &Shared, b: InsertBody) -> Response {
    let Some(entry) = shared.registry.get(&b.dataset) else {
        return err(codes::NOT_FOUND, format!("unknown dataset `{}`", b.dataset));
    };
    if b.nodes.is_empty() {
        return err(codes::BAD_REQUEST, "graph must have at least one node");
    }
    let graph = match graph_from_wire(&b) {
        Ok(g) => g,
        Err(m) => return err(codes::BAD_REQUEST, m),
    };
    let t0 = Instant::now();
    match entry {
        DatasetEntry::Single(ds) => match ds.insert_graph(graph, b.features) {
            Ok(r) => Response::Mutated(MutatedBody {
                id: r.id,
                epoch: r.epoch,
                live: r.live,
                tombstones: r.tombstones,
                rebuilt: r.rebuilt,
                wall_ms: protocol::duration_ms(t0.elapsed()),
                shard_epochs: Vec::new(),
            }),
            Err(e) => err(codes::BAD_REQUEST, e.message),
        },
        DatasetEntry::Sharded(ds) => match ds.insert_graph(graph, b.features) {
            Ok(r) => Response::Mutated(MutatedBody {
                id: r.id,
                epoch: r.epoch,
                live: r.live,
                tombstones: r.tombstones,
                rebuilt: r.rebuilt,
                wall_ms: protocol::duration_ms(t0.elapsed()),
                shard_epochs: r.epochs,
            }),
            Err(e) => err(codes::BAD_REQUEST, e.message),
        },
    }
}

fn remove_graph(shared: &Shared, b: RemoveBody) -> Response {
    let Some(entry) = shared.registry.get(&b.dataset) else {
        return err(codes::NOT_FOUND, format!("unknown dataset `{}`", b.dataset));
    };
    let t0 = Instant::now();
    match entry {
        DatasetEntry::Single(ds) => match ds.remove_graph(b.id) {
            Ok(r) => Response::Mutated(MutatedBody {
                id: r.id,
                epoch: r.epoch,
                live: r.live,
                tombstones: r.tombstones,
                rebuilt: r.rebuilt,
                wall_ms: protocol::duration_ms(t0.elapsed()),
                shard_epochs: Vec::new(),
            }),
            Err(e) => err(codes::BAD_REQUEST, e.message),
        },
        DatasetEntry::Sharded(ds) => match ds.remove_graph(b.id) {
            Ok(r) => Response::Mutated(MutatedBody {
                id: r.id,
                epoch: r.epoch,
                live: r.live,
                tombstones: r.tombstones,
                rebuilt: r.rebuilt,
                wall_ms: protocol::duration_ms(t0.elapsed()),
                shard_epochs: r.epochs,
            }),
            Err(e) => err(codes::BAD_REQUEST, e.message),
        },
    }
}

fn open_session(shared: &Shared, o: OpenBody) -> Response {
    let Some(entry) = shared.registry.get(&o.dataset) else {
        return err(codes::NOT_FOUND, format!("unknown dataset `{}`", o.dataset));
    };
    if !(0.0..=1.0).contains(&o.quantile) {
        return err(codes::BAD_REQUEST, "quantile must be in [0, 1]");
    }
    let t0 = Instant::now();
    let backend = match entry {
        DatasetEntry::Single(ds) => {
            // Through the index so tombstoned ids are filtered from the
            // relevant set.
            let mut session = ds
                .index_arc()
                .start_session_shared(ds.relevant_for(o.quantile));
            if ds.caches().enabled() {
                // Runs on this session serve and materialize θ-neighborhood
                // views; keys carry the pinned snapshot's epoch, so this
                // stays sound even for sessions that outlive later mutations.
                session = session.with_views(ds.caches().views());
            }
            SessionBackend::Single(session)
        }
        // Scatter-gather sessions pin the full per-shard epoch vector; the
        // coordinator drops tombstoned ids under the same admission rule.
        DatasetEntry::Sharded(ds) => SessionBackend::Sharded(ds.open_session(o.quantile)),
    };
    let relevant = backend.relevant_len();
    let id = shared.sessions.insert(o.dataset, backend);
    Response::Opened(OpenedBody {
        session: id,
        relevant,
        init_ms: protocol::duration_ms(t0.elapsed()),
    })
}

fn run_query(shared: &Shared, r: RunBody, arrived: Instant) -> Response {
    if !r.theta.is_finite() || r.theta < 0.0 {
        return err(codes::BAD_REQUEST, "theta must be finite and non-negative");
    }
    let Some(live) = shared.sessions.get(r.session) else {
        return err(
            codes::NOT_FOUND,
            format!(
                "no session {} (unknown, closed, or idle-expired)",
                r.session
            ),
        );
    };
    let deadline_ms = r.deadline_ms.or(shared.cfg.default_deadline_ms);
    let cancel = match deadline_ms {
        // Measured from admission: queue wait spends the same budget.
        Some(ms) => CancelToken::with_deadline(arrived + Duration::from_millis(ms)),
        None => CancelToken::never(),
    };
    let session = match live.backend() {
        SessionBackend::Single(session) => session,
        SessionBackend::Sharded(session) => {
            // Scatter-gather runs poll the same admission-time token at
            // every frontier pop, so a request that expired in the queue
            // stops immediately and a long run cannot hold a pooled worker
            // past its budget — same discipline as the single-index path.
            return match session.run_cancellable(r.theta, r.k, &cancel) {
                Ok((answer, stats)) => {
                    Response::Answer(AnswerBody::from_sharded_run(&answer, &stats))
                }
                Err(_) => err(
                    codes::DEADLINE_EXCEEDED,
                    format!(
                        "deadline of {} ms exceeded; the session remains usable",
                        deadline_ms.unwrap_or(0)
                    ),
                ),
            };
        }
    };
    let caches = shared
        .registry
        .get(live.dataset())
        .and_then(|entry| match entry {
            DatasetEntry::Single(ds) => Some(Arc::clone(ds.caches())),
            DatasetEntry::Sharded(_) => None,
        })
        .filter(|c| c.enabled());
    let result = match &caches {
        Some(c) => session
            .run_cached_cancellable(r.theta, r.k, &cancel, &c.answers())
            .map(|(answer, stats, cached)| {
                let mut body = AnswerBody::from_run(&answer, &stats);
                body.cached = cached;
                body
            }),
        None => session
            .run_cancellable(r.theta, r.k, &cancel)
            .map(|(answer, stats)| AnswerBody::from_run(&answer, &stats)),
    };
    match result {
        Ok(body) => Response::Answer(body),
        Err(_) => err(
            codes::DEADLINE_EXCEEDED,
            format!(
                "deadline of {} ms exceeded; the session remains usable",
                deadline_ms.unwrap_or(0)
            ),
        ),
    }
}

/// Executes a streamed `(θ, k)` run: each accepted pick goes out as its own
/// frame through `reply` the moment CELF (or the shard coordinator) commits
/// it, and the returned terminal response carries the full answer — byte-
/// identical to what the blocking `run` of the same request would produce.
///
/// Streamed runs always execute (the answer cache is bypassed): a cache hit
/// has no pick sequence to stream. They still produce cache-*compatible*
/// answers, but do not populate the cache either — population stays the
/// blocking path's job, keeping cached/uncached accounting honest.
///
/// Abort cases, all terminal:
/// * deadline fired → `deadline_exceeded` (session stays usable);
/// * consumer over its write-queue cap → `slow_consumer` (connection stays
///   open — only the run is cancelled);
/// * consumer gone → an `internal` terminal frame that retires the request
///   id server-side; nobody is left to read it.
fn run_stream_query(shared: &Shared, r: RunBody, arrived: Instant, reply: &Reply) -> Response {
    if !r.theta.is_finite() || r.theta < 0.0 {
        return err(codes::BAD_REQUEST, "theta must be finite and non-negative");
    }
    let Some(live) = shared.sessions.get(r.session) else {
        return err(
            codes::NOT_FOUND,
            format!(
                "no session {} (unknown, closed, or idle-expired)",
                r.session
            ),
        );
    };
    let deadline_ms = r.deadline_ms.or(shared.cfg.default_deadline_ms);
    let cancel = match deadline_ms {
        Some(ms) => CancelToken::with_deadline(arrived + Duration::from_millis(ms)),
        None => CancelToken::never(),
    };
    let mut stream_fail: Option<StreamSend> = None;
    let result = {
        let mut on_pick = |e: graphrep_core::PickEvent| match reply
            .send_stream(Response::Pick(PickBody::from_event(&e)))
        {
            StreamSend::Sent => true,
            outcome => {
                stream_fail = Some(outcome);
                false
            }
        };
        match live.backend() {
            SessionBackend::Single(session) => session
                .run_streaming_cancellable(r.theta, r.k, &cancel, &mut on_pick)
                .map(|(answer, stats)| AnswerBody::from_run(&answer, &stats)),
            SessionBackend::Sharded(session) => session
                .run_streaming_cancellable(r.theta, r.k, &cancel, &mut on_pick)
                .map(|(answer, stats)| AnswerBody::from_sharded_run(&answer, &stats)),
        }
    };
    match (result, stream_fail) {
        (Ok(body), _) => Response::AnswerEnd(body),
        (Err(_), Some(StreamSend::OverCap)) => err(
            codes::SLOW_CONSUMER,
            format!(
                "write queue exceeded {} bytes; the run was cancelled and the session remains usable",
                shared.cfg.write_queue_cap
            ),
        ),
        (Err(_), Some(_)) => err(codes::INTERNAL, "client disconnected mid-stream"),
        (Err(_), None) => err(
            codes::DEADLINE_EXCEEDED,
            format!(
                "deadline of {} ms exceeded; the session remains usable",
                deadline_ms.unwrap_or(0)
            ),
        ),
    }
}

fn stats_body(shared: &Shared) -> StatsBody {
    // Snapshot the queue length in its own statement: all temporaries in a
    // struct literal overlap, and the admission path (which needs this lock)
    // must never wait behind the per-dataset stats walk below.
    let queue_len = shared.queue.lock().len();
    StatsBody {
        uptime_ms: protocol::duration_ms(shared.started.elapsed()),
        workers: shared.cfg.workers.max(1),
        queue_limit: shared.cfg.max_queue,
        queue_len,
        sessions_open: shared.sessions.len(),
        sessions_expired: shared.sessions.expired_total(),
        endpoints: shared.metrics.snapshot(),
        datasets: shared.registry.stats(),
        io_mode: shared.cfg.io.name().to_owned(),
        // Relaxed: monotone-ish gauge for observability only.
        connections_open: shared.connections_open.load(Ordering::Relaxed),
    }
}

fn endpoint_of(req: &Request) -> Endpoint {
    match req {
        Request::Open(_) => Endpoint::Open,
        Request::Run(_) => Endpoint::Run,
        Request::Close(_) => Endpoint::Close,
        Request::Stats => Endpoint::Stats,
        Request::Ping(_) => Endpoint::Ping,
        Request::Insert(_) => Endpoint::Insert,
        Request::Remove(_) => Endpoint::Remove,
        Request::Shutdown => Endpoint::Shutdown,
        Request::RunStream(_) => Endpoint::RunStream,
        Request::Hello(_) => Endpoint::Hello,
    }
}

fn pooled(shared: &Shared, work: Work, arrived: Instant) -> Response {
    let (tx, rx) = mpsc::channel();
    match shared.submit(Job {
        work,
        arrived,
        reply: Reply::Oneshot(tx),
    }) {
        Err(codes::OVERLOADED) => err(
            codes::OVERLOADED,
            format!(
                "queue full ({} waiting, {} in flight); retry later",
                shared.cfg.max_queue,
                shared.cfg.workers.max(1)
            ),
        ),
        Err(_) => err(codes::SHUTTING_DOWN, "server is draining"),
        Ok(()) => match rx.recv() {
            Ok(resp) => resp,
            Err(_) => err(codes::INTERNAL, "worker dropped the reply channel"),
        },
    }
}

/// Full request dispatch: pooled endpoints go through admission control;
/// `close`/`stats`/`shutdown` are served inline on the connection thread so
/// they work even when the pool is saturated (`stats` under overload is
/// exactly when observability matters).
fn dispatch(shared: &Shared, req: Request) -> Response {
    let ep = endpoint_of(&req);
    let arrived = Instant::now();
    let resp = match req {
        Request::Open(b) => pooled(shared, Work::Open(b), arrived),
        Request::Run(b) => pooled(shared, Work::Run(b), arrived),
        Request::Ping(b) => pooled(shared, Work::Ping(b), arrived),
        Request::Insert(b) => pooled(shared, Work::Insert(b), arrived),
        Request::Remove(b) => pooled(shared, Work::Remove(b), arrived),
        Request::Close(c) => {
            if shared.sessions.remove(c.session) {
                Response::Closed
            } else {
                err(codes::NOT_FOUND, format!("no session {}", c.session))
            }
        }
        Request::Stats => Response::Stats(stats_body(shared)),
        Request::Shutdown => {
            shared.begin_shutdown();
            Response::ShutdownAck
        }
        // Blocking connections stay on v1 framing: the ack says so, and old
        // clients that never send Hello are untouched either way.
        Request::Hello(_) => Response::HelloAck(HelloAckBody {
            version: PROTOCOL_V1,
            max: PROTOCOL_V1,
        }),
        // Streamed runs are multi-frame; the connection loop intercepts
        // them before dispatch. Reaching here is a caller bug.
        Request::RunStream(_) => err(
            codes::BAD_REQUEST,
            "run_stream must be handled by the connection layer",
        ),
    };
    shared
        .metrics
        .endpoint(ep)
        .observe(resp.error_code(), arrived.elapsed());
    resp
}

/// Blocking-mode streamed run: submits the job, then forwards every frame
/// the worker produces — picks first, then exactly one terminal frame — to
/// the socket in order. Dropping the receiver on a write failure is what
/// cancels the in-flight run (the worker's next pick send fails).
fn serve_stream_blocking(shared: &Shared, stream: &mut TcpStream, body: RunBody) -> bool {
    let arrived = Instant::now();
    let (tx, rx) = mpsc::channel();
    let submitted = shared.submit(Job {
        work: Work::RunStream(body),
        arrived,
        reply: Reply::Oneshot(tx),
    });
    let terminal = match submitted {
        Err(codes::OVERLOADED) => err(
            codes::OVERLOADED,
            format!(
                "queue full ({} waiting, {} in flight); retry later",
                shared.cfg.max_queue,
                shared.cfg.workers.max(1)
            ),
        ),
        Err(_) => err(codes::SHUTTING_DOWN, "server is draining"),
        Ok(()) => loop {
            match rx.recv() {
                Ok(Response::Pick(p)) => {
                    if protocol::write_frame(stream, &Response::Pick(p)).is_err() {
                        // Receiver drops here; the worker's next send fails
                        // and the run aborts. The connection is done.
                        return false;
                    }
                }
                Ok(terminal) => break terminal,
                Err(_) => break err(codes::INTERNAL, "worker dropped the reply channel"),
            }
        },
    };
    shared
        .metrics
        .endpoint(Endpoint::RunStream)
        .observe(terminal.error_code(), arrived.elapsed());
    protocol::write_frame(stream, &terminal).is_ok()
}

/// Decrements the connection gauge on every exit path of `handle_conn`.
struct ConnGauge<'a>(&'a AtomicUsize);

impl Drop for ConnGauge<'_> {
    fn drop(&mut self) {
        // Relaxed: observability gauge only.
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

fn handle_conn(shared: &Shared, mut stream: TcpStream) {
    // Relaxed: observability gauge only.
    shared.connections_open.fetch_add(1, Ordering::Relaxed);
    let _gauge = ConnGauge(&shared.connections_open);
    let _ = stream.set_nodelay(true);
    // Short read timeout: the loop polls the shutdown flag between frames
    // instead of blocking in `read` forever.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    loop {
        match protocol::read_frame::<Request>(&mut stream, shared.cfg.frame_stall) {
            Ok(FrameRead::Idle) => {
                if shared.shutting_down() {
                    return;
                }
            }
            Ok(FrameRead::Closed) => return,
            Ok(FrameRead::Frame(Request::RunStream(body))) => {
                if !serve_stream_blocking(shared, &mut stream, body) {
                    return;
                }
            }
            Ok(FrameRead::Frame(req)) => {
                let is_shutdown = matches!(req, Request::Shutdown);
                let resp = dispatch(shared, req);
                if protocol::write_frame(&mut stream, &resp).is_err() || is_shutdown {
                    return;
                }
            }
            Err(e) => {
                // One best-effort diagnosis, then drop the connection: after
                // a framing error the stream offset is untrustworthy.
                let _ = protocol::write_frame(&mut stream, &err(codes::BAD_REQUEST, e.message));
                return;
            }
        }
    }
}

/// The reactor-facing face of the server: inline endpoints answered on the
/// reactor thread (cheap, lock-only — the same set the blocking mode
/// answers on connection threads), pooled endpoints submitted through the
/// identical admission control, with responses routed back through the
/// connection's write queue.
impl AsyncDispatch for Shared {
    fn dispatch(&self, req: Request, tag: Option<u64>, queue: &Arc<ConnQueue>) {
        let arrived = Instant::now();
        let ep = endpoint_of(&req);
        let work = match req {
            Request::Open(b) => Work::Open(b),
            Request::Run(b) => Work::Run(b),
            Request::RunStream(b) => Work::RunStream(b),
            Request::Ping(b) => Work::Ping(b),
            Request::Insert(b) => Work::Insert(b),
            Request::Remove(b) => Work::Remove(b),
            inline => {
                let resp = match inline {
                    Request::Close(c) => {
                        if self.sessions.remove(c.session) {
                            Response::Closed
                        } else {
                            err(codes::NOT_FOUND, format!("no session {}", c.session))
                        }
                    }
                    Request::Stats => Response::Stats(stats_body(self)),
                    Request::Shutdown => {
                        self.begin_shutdown();
                        Response::ShutdownAck
                    }
                    // The reactor answers Hello itself; a defensive ack
                    // keeps the connection coherent if one slips through.
                    Request::Hello(h) => Response::HelloAck(HelloAckBody {
                        version: h.version.clamp(PROTOCOL_V1, protocol::PROTOCOL_MAX),
                        max: protocol::PROTOCOL_MAX,
                    }),
                    // All pooled variants were peeled off above.
                    _ => err(codes::INTERNAL, "unroutable request"),
                };
                self.metrics
                    .endpoint(ep)
                    .observe(resp.error_code(), arrived.elapsed());
                Reply::Queue {
                    queue: Arc::clone(queue),
                    tag,
                }
                .send_final(resp);
                return;
            }
        };
        let reply = Reply::Queue {
            queue: Arc::clone(queue),
            tag,
        };
        if let Err(code) = self.submit(Job {
            work,
            arrived,
            reply: Reply::Queue {
                queue: Arc::clone(queue),
                tag,
            },
        }) {
            let resp = match code {
                codes::OVERLOADED => err(
                    codes::OVERLOADED,
                    format!(
                        "queue full ({} waiting, {} in flight); retry later",
                        self.cfg.max_queue,
                        self.cfg.workers.max(1)
                    ),
                ),
                _ => err(codes::SHUTTING_DOWN, "server is draining"),
            };
            self.metrics
                .endpoint(ep)
                .observe(resp.error_code(), arrived.elapsed());
            reply.send_final(resp);
        }
    }

    fn shutting_down(&self) -> bool {
        Shared::shutting_down(self)
    }

    fn conn_opened(&self) {
        // Relaxed: observability gauge only.
        self.connections_open.fetch_add(1, Ordering::Relaxed);
    }

    fn conn_closed(&self) {
        // Relaxed: observability gauge only.
        self.connections_open.fetch_sub(1, Ordering::Relaxed);
    }
}

fn accept_loop(
    shared: &Arc<Shared>,
    listener: TcpListener,
    conns: &TrackedMutex<Vec<JoinHandle<()>>>,
) {
    // Non-blocking accept + sleep keeps the loop responsive to shutdown
    // without needing a wake-up connection.
    let _ = listener.set_nonblocking(true);
    loop {
        if shared.shutting_down() {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                // The listener is non-blocking; the per-connection protocol
                // expects a blocking stream with its own read timeout.
                let _ = stream.set_nonblocking(false);
                let s = Arc::clone(shared);
                let spawned = thread::Builder::new()
                    .name("graphrep-conn".to_owned())
                    .spawn(move || handle_conn(&s, stream));
                if let Ok(h) = spawned {
                    conns.lock().push(h);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(20));
            }
            Err(_) => thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// A running server. Dropping the handle does **not** stop the server; call
/// [`ServerHandle::shutdown`] (or send a wire `Shutdown`) and the handle's
/// join methods to end it cleanly.
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
    conns: Arc<TrackedMutex<Vec<JoinHandle<()>>>>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Initiates graceful shutdown and joins every server thread: queued
    /// work is drained, in-flight responses are delivered, then the pool,
    /// acceptor, and connection threads exit.
    pub fn shutdown(self) {
        self.shared.begin_shutdown();
        self.join_all();
    }

    /// Blocks until the server shuts down (e.g. via a wire `Shutdown`
    /// request), then joins every thread.
    pub fn wait(self) {
        self.join_all();
    }

    fn join_all(self) {
        let _ = self.acceptor.join();
        for w in self.workers {
            let _ = w.join();
        }
        // No new connections can appear once the acceptor has exited. The
        // guard is scoped so no lock is held while joining — connection
        // threads take dataset locks on their way out.
        let handles: Vec<JoinHandle<()>> = {
            let mut conns = self.conns.lock();
            conns.drain(..).collect()
        };
        for h in handles {
            let _ = h.join();
        }
    }
}

/// Starts a server over `registry` with `cfg`, returning once the listener
/// is bound and the worker pool is up.
pub fn start(cfg: ServeConfig, registry: DatasetRegistry) -> Result<ServerHandle, ServeError> {
    let listener = TcpListener::bind(&cfg.addr)
        .map_err(|e| ServeError::new(format!("bind {}: {e}", cfg.addr)))?;
    let addr = listener
        .local_addr()
        .map_err(|e| ServeError::new(format!("local_addr: {e}")))?;
    let shared = Arc::new(Shared {
        sessions: SessionManager::new(cfg.idle_session_ttl),
        metrics: ServerMetrics::new(),
        registry,
        queue: TrackedMutex::new("serve.server.Shared.queue", VecDeque::new()),
        queue_cv: TrackedCondvar::new(),
        shutdown: AtomicBool::new(false),
        started: Instant::now(),
        connections_open: AtomicUsize::new(0),
        cfg,
    });
    let mut workers = Vec::new();
    for i in 0..shared.cfg.workers.max(1) {
        let s = Arc::clone(&shared);
        let h = thread::Builder::new()
            .name(format!("graphrep-worker-{i}"))
            .spawn(move || worker_loop(&s))
            .map_err(|e| ServeError::new(format!("spawning worker {i}: {e}")))?;
        workers.push(h);
    }
    let conns: Arc<TrackedMutex<Vec<JoinHandle<()>>>> = Arc::new(TrackedMutex::new(
        "serve.server.ServerHandle.conns",
        Vec::new(),
    ));
    let acceptor = match shared.cfg.io {
        IoMode::Blocking => {
            let s = Arc::clone(&shared);
            let c = Arc::clone(&conns);
            thread::Builder::new()
                .name("graphrep-accept".to_owned())
                .spawn(move || accept_loop(&s, listener, &c))
                .map_err(|e| ServeError::new(format!("spawning acceptor: {e}")))?
        }
        IoMode::Async => spawn_reactor(Arc::clone(&shared), listener)?,
    };
    Ok(ServerHandle {
        shared,
        addr,
        acceptor,
        workers,
        conns,
    })
}

/// Builds the epoll reactor for async mode and spawns its event-loop
/// thread. Both the acceptor and every connection live on this one thread;
/// [`ServerHandle::join_all`] joins it through the `acceptor` slot.
#[cfg(target_os = "linux")]
fn spawn_reactor(shared: Arc<Shared>, listener: TcpListener) -> Result<JoinHandle<()>, ServeError> {
    let (waker, wake_rx) = crate::reactor::waker::Waker::new()
        .map_err(|e| ServeError::new(format!("wake channel: {e}")))?;
    let waker = Arc::new(waker);
    let acceptor = crate::reactor::TcpAcceptor::new(listener)
        .map_err(|e| ServeError::new(format!("nonblocking listener: {e}")))?;
    let poll = crate::reactor::sys::EpollPoll::new()
        .map_err(|e| ServeError::new(format!("epoll_create1: {e}")))?;
    let write_cap = shared.cfg.write_queue_cap;
    let dispatch: Arc<dyn AsyncDispatch> = shared;
    let reactor = crate::reactor::Reactor::new(
        poll,
        Box::new(acceptor),
        waker,
        wake_rx,
        dispatch,
        write_cap,
    )
    .map_err(|e| ServeError::new(format!("reactor setup: {e}")))?;
    thread::Builder::new()
        .name("graphrep-reactor".to_owned())
        .spawn(move || reactor.run())
        .map_err(|e| ServeError::new(format!("spawning reactor: {e}")))
}

/// Async mode is epoll-backed and therefore Linux-only.
#[cfg(not(target_os = "linux"))]
fn spawn_reactor(
    _shared: Arc<Shared>,
    _listener: TcpListener,
) -> Result<JoinHandle<()>, ServeError> {
    Err(ServeError::new(
        "io mode `async` requires Linux (epoll); use `blocking`",
    ))
}

/// Convenience for tests and benchmarks: builds a registry holding the
/// single in-memory dataset `data` under `name` and starts a server on it.
pub fn start_in_memory(
    cfg: ServeConfig,
    name: &str,
    data: graphrep_datagen::Dataset,
) -> Result<ServerHandle, ServeError> {
    let mut reg = DatasetRegistry::new();
    reg.insert(registry::load_in_memory(name, data));
    start(cfg, reg)
}
