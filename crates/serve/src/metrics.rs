//! Live server metrics: per-endpoint counters and fixed log-bucket latency
//! histograms, all lock-free atomics so the hot path never blocks on the
//! `stats` endpoint.

use crate::protocol::{codes, EndpointStats};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log₂ latency buckets: bucket `b` counts requests that took
/// `[2^b, 2^(b+1))` microseconds, so 40 buckets span sub-microsecond to
/// roughly 12 days — every latency this server can produce.
pub const LATENCY_BUCKETS: usize = 40;

/// A fixed log₂-bucket latency histogram over microseconds.
///
/// Recording is a single relaxed `fetch_add`; reading produces a consistent-
/// enough snapshot for observability (buckets are read one by one, so a
/// concurrent recording may straddle the snapshot — fine for monitoring).
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count())
            .finish()
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

fn bucket_index(us: u64) -> usize {
    // floor(log2(us)) with us clamped to ≥ 1; bucket 0 holds [0, 2) µs.
    let b = 63 - us.max(1).leading_zeros() as usize;
    b.min(LATENCY_BUCKETS - 1)
}

/// Upper bound of bucket `b` in milliseconds.
fn bucket_upper_ms(b: usize) -> f64 {
    (1u128 << (b + 1)) as f64 / 1e3
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Records one observation.
    pub fn record(&self, d: Duration) {
        let us = u64::try_from(d.as_micros()).unwrap_or(u64::MAX);
        // Relaxed: monotone telemetry counter; no ordering with other data.
        self.buckets[bucket_index(us)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        // Relaxed: monotone telemetry counter; no ordering with other data.
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Bucket counts with trailing zero buckets trimmed.
    pub fn snapshot(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .buckets
            .iter()
            // Relaxed: monotone telemetry counter; no ordering with other data.
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        while v.last() == Some(&0) {
            v.pop();
        }
        v
    }

    /// Approximate quantile `p` in `[0, 1]`, reported as the upper bound of
    /// the bucket holding the `p`-th observation. `0.0` when empty.
    pub fn quantile_ms(&self, p: f64) -> f64 {
        let counts = self.snapshot();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let rank = ((p.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_ms(b);
            }
        }
        bucket_upper_ms(counts.len().saturating_sub(1))
    }

    /// Upper bound of the slowest occupied bucket, in milliseconds.
    pub fn max_ms(&self) -> f64 {
        match self.snapshot().len() {
            0 => 0.0,
            n => bucket_upper_ms(n - 1),
        }
    }
}

/// Counters for one protocol endpoint.
#[derive(Debug, Default)]
pub struct EndpointCounters {
    requests: AtomicU64,
    ok: AtomicU64,
    overloaded: AtomicU64,
    deadline_exceeded: AtomicU64,
    errors: AtomicU64,
    latency: LatencyHistogram,
}

impl EndpointCounters {
    /// Records one finished request: its outcome (an error code, or `None`
    /// for success) and its latency from admission to response.
    pub fn observe(&self, error_code: Option<&str>, latency: Duration) {
        // Relaxed: monotone telemetry counters; no ordering with other data.
        self.requests.fetch_add(1, Ordering::Relaxed);
        let cell = match error_code {
            None => &self.ok,
            Some(codes::OVERLOADED) => &self.overloaded,
            Some(codes::DEADLINE_EXCEEDED) => &self.deadline_exceeded,
            Some(_) => &self.errors,
        };
        // Relaxed: monotone telemetry counters; no ordering with other data.
        cell.fetch_add(1, Ordering::Relaxed);
        self.latency.record(latency);
    }

    /// Serializable snapshot for the `stats` endpoint.
    pub fn snapshot(&self, endpoint: &str) -> EndpointStats {
        EndpointStats {
            endpoint: endpoint.to_owned(),
            // Relaxed: monotone telemetry counters; no ordering constraints.
            requests: self.requests.load(Ordering::Relaxed),
            // Relaxed: monotone telemetry counters; no ordering constraints.
            ok: self.ok.load(Ordering::Relaxed),
            // Relaxed: monotone telemetry counters; no ordering constraints.
            overloaded: self.overloaded.load(Ordering::Relaxed),
            // Relaxed: monotone telemetry counters; no ordering constraints.
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            // Relaxed: monotone telemetry counters; no ordering constraints.
            errors: self.errors.load(Ordering::Relaxed),
            p50_ms: self.latency.quantile_ms(0.50),
            p99_ms: self.latency.quantile_ms(0.99),
            max_ms: self.latency.max_ms(),
            latency_buckets: self.latency.snapshot(),
        }
    }
}

/// The protocol endpoints, in stats-report order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `open_session`.
    Open,
    /// `(θ, k)` runs.
    Run,
    /// `close_session`.
    Close,
    /// Metrics snapshots.
    Stats,
    /// Liveness probes.
    Ping,
    /// Graph inserts.
    Insert,
    /// Graph removals.
    Remove,
    /// Shutdown requests.
    Shutdown,
    /// Streamed `(θ, k)` runs (`run_stream`).
    RunStream,
    /// Protocol-version negotiation.
    Hello,
}

/// All endpoints, in stats-report order. New endpoints append so existing
/// stats-row indices stay stable.
pub const ENDPOINTS: [Endpoint; 10] = [
    Endpoint::Open,
    Endpoint::Run,
    Endpoint::Close,
    Endpoint::Stats,
    Endpoint::Ping,
    Endpoint::Insert,
    Endpoint::Remove,
    Endpoint::Shutdown,
    Endpoint::RunStream,
    Endpoint::Hello,
];

impl Endpoint {
    /// Wire name of the endpoint.
    pub fn name(self) -> &'static str {
        match self {
            Endpoint::Open => "open",
            Endpoint::Run => "run",
            Endpoint::Close => "close",
            Endpoint::Stats => "stats",
            Endpoint::Ping => "ping",
            Endpoint::Insert => "insert",
            Endpoint::Remove => "remove",
            Endpoint::Shutdown => "shutdown",
            Endpoint::RunStream => "run_stream",
            Endpoint::Hello => "hello",
        }
    }

    fn index(self) -> usize {
        match self {
            Endpoint::Open => 0,
            Endpoint::Run => 1,
            Endpoint::Close => 2,
            Endpoint::Stats => 3,
            Endpoint::Ping => 4,
            Endpoint::Insert => 5,
            Endpoint::Remove => 6,
            Endpoint::Shutdown => 7,
            Endpoint::RunStream => 8,
            Endpoint::Hello => 9,
        }
    }
}

/// All per-endpoint counters of one server.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    counters: [EndpointCounters; 10],
}

impl ServerMetrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counters of one endpoint.
    pub fn endpoint(&self, e: Endpoint) -> &EndpointCounters {
        &self.counters[e.index()]
    }

    /// Snapshot of every endpoint, in [`ENDPOINTS`] order.
    pub fn snapshot(&self) -> Vec<EndpointStats> {
        ENDPOINTS
            .iter()
            .map(|&e| self.endpoint(e).snapshot(e.name()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), LATENCY_BUCKETS - 1);
    }

    #[test]
    fn histogram_quantiles() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_ms(0.5), 0.0);
        for _ in 0..99 {
            h.record(Duration::from_micros(100)); // bucket 6: [64, 128)
        }
        h.record(Duration::from_millis(100)); // bucket 16
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile_ms(0.5), 0.128);
        assert!(h.quantile_ms(1.0) > 100.0);
        assert!(h.max_ms() > 100.0);
        assert_eq!(h.snapshot().iter().sum::<u64>(), 100);
    }

    #[test]
    fn counters_classify_outcomes() {
        let c = EndpointCounters::default();
        let d = Duration::from_micros(10);
        c.observe(None, d);
        c.observe(None, d);
        c.observe(Some(codes::OVERLOADED), d);
        c.observe(Some(codes::DEADLINE_EXCEEDED), d);
        c.observe(Some(codes::NOT_FOUND), d);
        let s = c.snapshot("run");
        assert_eq!(
            (
                s.requests,
                s.ok,
                s.overloaded,
                s.deadline_exceeded,
                s.errors
            ),
            (5, 2, 1, 1, 1)
        );
        assert_eq!(s.endpoint, "run");
    }

    #[test]
    fn metrics_snapshot_covers_all_endpoints() {
        let m = ServerMetrics::new();
        m.endpoint(Endpoint::Run).observe(None, Duration::ZERO);
        let snap = m.snapshot();
        assert_eq!(snap.len(), ENDPOINTS.len());
        assert_eq!(snap[1].endpoint, "run");
        assert_eq!(snap[1].requests, 1);
        assert_eq!(snap[0].requests, 0);
    }
}
