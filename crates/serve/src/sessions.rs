//! The session manager: paper Sec 7's interactive model as server state.
//!
//! `open_session` runs the initialization phase once (π̂-vectors over the
//! vantage orderings); every subsequent `(θ, k)` run reuses it — the exact
//! workload shape of the paper's interactive θ-refinement, with the session
//! held server-side behind an id. Sessions expire after an idle TTL; expiry
//! is checked opportunistically on access and swept on inserts, so no
//! background reaper thread is needed.

use graphrep_core::QuerySession;
use graphrep_lockaudit::{TrackedMutex, TrackedRwLock};
use graphrep_shard::CoordSession;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The query engine behind one open session: a single shared-index session
/// or a scatter-gather session over a shard coordinator. Both pin their
/// snapshot (index `Arc` / per-shard epoch vector) at open time.
pub enum SessionBackend {
    /// Session over one shared NB-Index.
    Single(QuerySession),
    /// Scatter-gather session over a shard coordinator.
    Sharded(CoordSession),
}

impl std::fmt::Debug for SessionBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionBackend::Single(_) => f
                .debug_struct("SessionBackend::Single")
                .field("relevant", &self.relevant_len())
                .finish(),
            SessionBackend::Sharded(_) => f
                .debug_struct("SessionBackend::Sharded")
                .field("relevant", &self.relevant_len())
                .finish(),
        }
    }
}

impl SessionBackend {
    /// Size of the pinned relevant set `|L_q|`.
    pub fn relevant_len(&self) -> usize {
        match self {
            SessionBackend::Single(s) => s.relevant().len(),
            SessionBackend::Sharded(s) => s.relevant().len(),
        }
    }
}

/// One open session: the query backend plus bookkeeping.
pub struct LiveSession {
    id: u64,
    dataset: String,
    backend: SessionBackend,
    last_used: TrackedMutex<Instant>,
}

impl std::fmt::Debug for LiveSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveSession")
            .field("id", &self.id)
            .field("dataset", &self.dataset)
            .field("relevant", &self.backend.relevant_len())
            .finish()
    }
}

impl LiveSession {
    /// Session id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Name of the dataset this session queries.
    pub fn dataset(&self) -> &str {
        &self.dataset
    }

    /// The underlying query backend. Runs take `&self` on both variants,
    /// so concurrent runs on one session are safe.
    pub fn backend(&self) -> &SessionBackend {
        &self.backend
    }

    fn touch(&self) {
        *self.last_used.lock() = Instant::now();
    }

    fn idle_for(&self, now: Instant) -> Duration {
        now.saturating_duration_since(*self.last_used.lock())
    }
}

/// Concurrent session table with idle expiry.
#[derive(Debug)]
pub struct SessionManager {
    next_id: AtomicU64,
    ttl: Duration,
    expired: AtomicU64,
    map: TrackedRwLock<HashMap<u64, Arc<LiveSession>>>,
}

impl SessionManager {
    /// A manager whose sessions expire after `ttl` of inactivity.
    pub fn new(ttl: Duration) -> Self {
        Self {
            next_id: AtomicU64::new(1),
            ttl,
            expired: AtomicU64::new(0),
            map: TrackedRwLock::new("serve.sessions.SessionManager.map", HashMap::new()),
        }
    }

    /// Registers a session, returning its id. Expired sessions are swept as
    /// a side effect, bounding the table by the live working set.
    pub fn insert(&self, dataset: String, backend: SessionBackend) -> u64 {
        self.sweep();
        // Relaxed: the id only needs uniqueness, not ordering with the map.
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let live = Arc::new(LiveSession {
            id,
            dataset,
            backend,
            last_used: TrackedMutex::new("serve.sessions.LiveSession.last_used", Instant::now()),
        });
        self.map.write().insert(id, live);
        id
    }

    /// Fetches a session and refreshes its idle clock. A session past its
    /// TTL is removed and reported as absent — the caller sees the same
    /// `not_found` an unknown id produces.
    pub fn get(&self, id: u64) -> Option<Arc<LiveSession>> {
        let live = self.map.read().get(&id).cloned()?;
        if live.idle_for(Instant::now()) >= self.ttl {
            if self.map.write().remove(&id).is_some() {
                // Relaxed: monotone telemetry counter; no ordering needed.
                self.expired.fetch_add(1, Ordering::Relaxed);
            }
            return None;
        }
        live.touch();
        Some(live)
    }

    /// Removes a session explicitly. Returns whether it existed.
    pub fn remove(&self, id: u64) -> bool {
        self.map.write().remove(&id).is_some()
    }

    /// Removes every session idle past the TTL, returning how many.
    pub fn sweep(&self) -> usize {
        let now = Instant::now();
        let stale: Vec<u64> = self
            .map
            .read()
            .iter()
            .filter(|(_, s)| s.idle_for(now) >= self.ttl)
            .map(|(&id, _)| id)
            .collect();
        if stale.is_empty() {
            return 0;
        }
        let mut removed = 0;
        let mut map = self.map.write();
        for id in stale {
            // Re-check under the write lock: a concurrent `get` may have
            // touched the session between the scan and now.
            let still_stale = map.get(&id).is_some_and(|s| s.idle_for(now) >= self.ttl);
            if still_stale && map.remove(&id).is_some() {
                removed += 1;
            }
        }
        // Relaxed: monotone telemetry counter; no ordering needed.
        self.expired.fetch_add(removed as u64, Ordering::Relaxed);
        removed
    }

    /// Number of open sessions.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// Whether no sessions are open.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sessions removed by idle expiry since construction.
    pub fn expired_total(&self) -> u64 {
        // Relaxed: monotone telemetry counter; no ordering needed.
        self.expired.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphrep_core::{NbIndex, NbIndexConfig};
    use graphrep_datagen::{DatasetKind, DatasetSpec};
    use graphrep_ged::GedConfig;

    fn tiny_session() -> SessionBackend {
        let data = DatasetSpec::new(DatasetKind::DudLike, 12, 7).generate();
        let oracle = data.db.oracle(GedConfig::default());
        let index = Arc::new(NbIndex::build(oracle, NbIndexConfig::default()));
        SessionBackend::Single(index.start_session_shared(vec![0, 1, 2, 3]))
    }

    #[test]
    fn insert_get_remove() {
        let m = SessionManager::new(Duration::from_secs(60));
        let id = m.insert("d".into(), tiny_session());
        assert_eq!(m.len(), 1);
        let live = m.get(id).expect("session should be live");
        assert_eq!(live.dataset(), "d");
        assert_eq!(live.backend().relevant_len(), 4);
        assert!(m.remove(id));
        assert!(!m.remove(id));
        assert!(m.get(id).is_none());
    }

    #[test]
    fn zero_ttl_expires_immediately() {
        let m = SessionManager::new(Duration::ZERO);
        let id = m.insert("d".into(), tiny_session());
        assert!(m.get(id).is_none(), "TTL 0 must expire on first access");
        assert_eq!(m.len(), 0);
        assert_eq!(m.expired_total(), 1);
    }

    #[test]
    fn sweep_counts_stale_sessions() {
        let m = SessionManager::new(Duration::ZERO);
        let s = tiny_session();
        let _ = m.insert("d".into(), s);
        assert_eq!(m.sweep(), 1);
        assert!(m.is_empty());
    }

    #[test]
    fn ids_are_unique_and_monotone() {
        let m = SessionManager::new(Duration::from_secs(60));
        let a = m.insert("d".into(), tiny_session());
        let b = m.insert("d".into(), tiny_session());
        assert!(b > a);
        assert_eq!(m.len(), 2);
    }
}
