#![warn(missing_docs)]
#![deny(unsafe_code)]
#![deny(missing_debug_implementations)]

//! `graphrep-serve` — the concurrent query-serving layer.
//!
//! Turns the core library's interactive query model (paper Sec 7: one
//! initialization phase, many `(θ, k)` runs) into a long-lived,
//! dependency-free TCP service:
//!
//! * [`registry`] — datasets and NB-Indexes warm-loaded once at startup
//!   ([`graphrep_core::NbIndex::load_json`] when an `index.json` sits next
//!   to the dataset, a fresh build otherwise) and `Arc`-shared everywhere;
//! * [`sessions`] — `open_session` / `run` / `close_session` over the wire
//!   with idle expiry;
//! * [`server`] — a bounded worker pool with admission control (explicit
//!   `overloaded` rejections instead of unbounded queueing), per-request
//!   deadlines enforced cooperatively between search heap pops, live
//!   metrics, and graceful drain-then-exit shutdown;
//! * [`protocol`] — length-prefixed JSON frames (std::net + the vendored
//!   `serde_json`; no external dependencies);
//! * [`client`] — a blocking client plus the deterministic load harness
//!   whose answers are verified byte-identical to offline
//!   [`graphrep_core::QuerySession::run`].

pub mod client;
pub mod metrics;
pub mod protocol;
pub mod reactor;
pub mod registry;
pub mod server;
pub mod sessions;

pub use client::{
    offline_reference, offline_reference_from_dir, run_load, verify_against_offline,
    verify_stream_consistency, Client, LoadAnswer, LoadMode, LoadReport, LoadSpec, StreamedRun,
};
pub use metrics::{Endpoint, EndpointCounters, LatencyHistogram, ServerMetrics};
pub use protocol::{
    codes, AnswerBody, CacheTierStats, DecodeError, FrameDecoder, MutatedBody, PickBody, Request,
    Response, ServeError, StatsBody, TaggedRequest, TaggedResponse, PROTOCOL_MAX, PROTOCOL_V1,
    PROTOCOL_V2,
};
pub use registry::{
    DatasetCaches, DatasetEntry, DatasetRegistry, LoadedDataset, MutationReceipt, ShardedDataset,
    ShardedMutationReceipt,
};
pub use server::{start, start_in_memory, IoMode, ServeConfig, ServerHandle};
pub use sessions::{LiveSession, SessionBackend, SessionManager};
