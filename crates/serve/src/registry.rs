//! The dataset registry: datasets and their NB-Indexes are loaded once at
//! server start and shared (`Arc`) across every connection and worker.
//!
//! Warm start: if `<dir>/index.json` exists it is loaded through the
//! persistence layer — the whole NP-hard build phase is skipped. Otherwise
//! the index is built with the same defaults the CLI uses (so a CLI-built
//! index and a server-built index are interchangeable) and, optionally,
//! written back for the next start.

use crate::protocol::{DatasetStats, OracleDelta, ServeError};
use graphrep_core::{NbIndex, NbIndexConfig, RelevanceQuery, Scorer};
use graphrep_datagen::{store, Dataset};
use graphrep_ged::{DistanceOracle, GedConfig, OracleStats, TierStats};
use graphrep_graph::GraphId;
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

/// Index-build parameters shared by the server and the CLI's implicit path:
/// the library defaults plus the dataset's own threshold ladder.
pub fn default_index_config(data: &Dataset) -> NbIndexConfig {
    NbIndexConfig {
        ladder: data.default_ladder.clone(),
        ..NbIndexConfig::default()
    }
}

/// One warm-loaded dataset: database, shared oracle, shared NB-Index, and
/// the counter baselines for delta reporting.
pub struct LoadedDataset {
    name: String,
    data: Dataset,
    oracle: Arc<DistanceOracle>,
    index: Arc<NbIndex>,
    index_source: String,
    base_oracle: OracleStats,
    base_tiers: TierStats,
    base_engine_calls: u64,
}

impl std::fmt::Debug for LoadedDataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LoadedDataset")
            .field("name", &self.name)
            .field("graphs", &self.data.db.len())
            .field("index_source", &self.index_source)
            .finish()
    }
}

impl LoadedDataset {
    /// Loads the dataset at `dir` and warms its index: `<dir>/index.json`
    /// when present (falling back to a fresh build if it fails to load),
    /// otherwise a build with [`default_index_config`]. With `persist_built`,
    /// a freshly built index is written back to `<dir>/index.json` so the
    /// next start is warm; write failures are ignored (read-only dataset
    /// directories must not prevent serving).
    pub fn open(name: &str, dir: &Path, persist_built: bool) -> Result<Self, ServeError> {
        let data = store::load(dir)
            .map_err(|e| ServeError::new(format!("loading {}: {e}", dir.display())))?;
        let oracle = data.db.oracle(GedConfig::default());
        let index_path = dir.join("index.json");
        let (index, index_source) = match std::fs::read_to_string(&index_path) {
            Ok(json) => match NbIndex::load_json(&json, Arc::clone(&oracle)) {
                Ok(index) => (index, "loaded".to_owned()),
                Err(e) => {
                    let built = NbIndex::build(Arc::clone(&oracle), default_index_config(&data));
                    (built, format!("built (stale index on disk: {e})"))
                }
            },
            Err(_) => {
                let built = NbIndex::build(Arc::clone(&oracle), default_index_config(&data));
                if persist_built {
                    let _ = std::fs::write(&index_path, built.save_json());
                }
                (built, "built".to_owned())
            }
        };
        let base_oracle = oracle.stats();
        let base_tiers = oracle.tier_stats();
        let base_engine_calls = oracle.engine_calls();
        Ok(Self {
            name: name.to_owned(),
            data,
            oracle,
            index: Arc::new(index),
            index_source,
            base_oracle,
            base_tiers,
            base_engine_calls,
        })
    }

    /// Registry name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying dataset.
    pub fn data(&self) -> &Dataset {
        &self.data
    }

    /// A shared handle to the NB-Index.
    pub fn index_arc(&self) -> Arc<NbIndex> {
        Arc::clone(&self.index)
    }

    /// How the index was obtained (`loaded` vs `built`).
    pub fn index_source(&self) -> &str {
        &self.index_source
    }

    /// The default relevance function at `quantile` — identical to the CLI's
    /// (mean of all feature dimensions, top quantile), so server sessions
    /// answer exactly what an offline `query` invocation answers.
    pub fn relevant_for(&self, quantile: f64) -> Vec<GraphId> {
        let scorer = Scorer::MeanOfDims((0..self.data.db.dims().max(1)).collect());
        RelevanceQuery::top_quantile(&self.data.db, scorer, quantile).relevant_set(&self.data.db)
    }

    /// Oracle activity since this dataset was loaded (serving-time deltas:
    /// the warm-load/build work is excluded by the baselines).
    pub fn oracle_delta(&self) -> OracleDelta {
        let s = self.oracle.stats();
        let t = self.oracle.tier_stats();
        OracleDelta {
            distance_computations: s
                .distance_computations
                .saturating_sub(self.base_oracle.distance_computations),
            within_rejections: s
                .within_rejections
                .saturating_sub(self.base_oracle.within_rejections),
            cache_hits: s.cache_hits.saturating_sub(self.base_oracle.cache_hits),
            ub_accepts: s.ub_accepts.saturating_sub(self.base_oracle.ub_accepts),
            engine_calls: self
                .oracle
                .engine_calls()
                .saturating_sub(self.base_engine_calls),
            size_rejects: t.size_rejects.saturating_sub(self.base_tiers.size_rejects),
            label_rejects: t
                .label_rejects
                .saturating_sub(self.base_tiers.label_rejects),
            degree_rejects: t
                .degree_rejects
                .saturating_sub(self.base_tiers.degree_rejects),
            vantage_lb_rejects: t
                .vantage_lb_rejects
                .saturating_sub(self.base_tiers.vantage_lb_rejects),
            vantage_ub_accepts: t
                .vantage_ub_accepts
                .saturating_sub(self.base_tiers.vantage_ub_accepts),
        }
    }

    /// Serializable statistics for the `stats` endpoint.
    pub fn stats(&self) -> DatasetStats {
        DatasetStats {
            name: self.name.clone(),
            graphs: self.data.db.len(),
            index_memory_bytes: self.index.memory_bytes(),
            index_source: self.index_source.clone(),
            oracle: self.oracle_delta(),
        }
    }
}

/// Name → dataset map, immutable once the server starts.
#[derive(Debug, Default)]
pub struct DatasetRegistry {
    map: HashMap<String, Arc<LoadedDataset>>,
}

impl DatasetRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Loads and registers the dataset at `dir` under `name`.
    pub fn load_dir(
        &mut self,
        name: &str,
        dir: &Path,
        persist_built: bool,
    ) -> Result<(), ServeError> {
        let ds = LoadedDataset::open(name, dir, persist_built)?;
        self.map.insert(name.to_owned(), Arc::new(ds));
        Ok(())
    }

    /// Registers an already-loaded dataset (used by in-process tests).
    pub fn insert(&mut self, ds: LoadedDataset) {
        self.map.insert(ds.name.clone(), Arc::new(ds));
    }

    /// Looks a dataset up by name.
    pub fn get(&self, name: &str) -> Option<Arc<LoadedDataset>> {
        self.map.get(name).cloned()
    }

    /// Registered dataset names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.map.keys().cloned().collect();
        v.sort();
        v
    }

    /// Per-dataset statistics, in name order.
    pub fn stats(&self) -> Vec<DatasetStats> {
        self.names()
            .into_iter()
            .filter_map(|n| self.map.get(&n).map(|d| d.stats()))
            .collect()
    }
}

/// Builds a [`LoadedDataset`] from an in-memory dataset (no directory, no
/// persistence) — the shape in-process tests and benchmarks use.
pub fn load_in_memory(name: &str, data: Dataset) -> LoadedDataset {
    let oracle = data.db.oracle(GedConfig::default());
    let index = NbIndex::build(Arc::clone(&oracle), default_index_config(&data));
    let base_oracle = oracle.stats();
    let base_tiers = oracle.tier_stats();
    let base_engine_calls = oracle.engine_calls();
    LoadedDataset {
        name: name.to_owned(),
        data,
        oracle,
        index: Arc::new(index),
        index_source: "built".to_owned(),
        base_oracle,
        base_tiers,
        base_engine_calls,
    }
}
