//! The dataset registry: datasets and their NB-Indexes are loaded once at
//! server start and shared (`Arc`) across every connection and worker.
//!
//! Warm start: if `<dir>/index.bin` (the succinct binary format) or
//! `<dir>/index.json` (the legacy/fallback format) exists it is loaded
//! through the persistence layer — the whole NP-hard build phase is skipped.
//! Otherwise the index is built with the same defaults the CLI uses (so a
//! CLI-built index and a server-built index are interchangeable) and,
//! optionally, written back for the next start. Re-persists after mutations
//! always write `index.bin`, which migrates JSON-era directories to the
//! binary format on their first mutation.
//!
//! Mutations (DESIGN.md §10) go through [`LoadedDataset::insert_graph`] /
//! [`LoadedDataset::remove_graph`]: the current index is forked, the fork is
//! mutated, and the fork is swapped in under a write lock. Sessions opened
//! earlier keep their pinned `Arc<NbIndex>` snapshot, so every query is
//! consistent with one serializable order of the mutations. Dir-backed
//! datasets are re-persisted after each mutation — the epoch sidecar
//! (`epoch.txt`) is written *first*, so a failed or torn index write is
//! detected as an epoch mismatch on the next open instead of silently
//! serving a stale snapshot.

use crate::protocol::{DatasetStats, OracleDelta, ServeError, ShardStats};
use graphrep_core::{
    AnswerCache, CacheConfig, MutationOutcome, NbIndex, NbIndexConfig, RelevanceQuery, Scorer,
    ViewStore,
};
use graphrep_datagen::{store, Dataset};
use graphrep_ged::{GedConfig, OracleStats, TierStats};
use graphrep_graph::{Graph, GraphId};
use graphrep_lockaudit::{TrackedReadGuard, TrackedRwLock};
use graphrep_shard::{CoordConfig, CoordSession, Coordinator, RestoreSource};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Family id recorded for graphs inserted from outside the generator: the
/// generator's sanity checks skip them, and they can never collide with a
/// real family.
pub const EXTERNAL_FAMILY: u32 = u32::MAX;

/// Index-build parameters shared by the server and the CLI's implicit path:
/// the library defaults plus the dataset's own threshold ladder.
pub fn default_index_config(data: &Dataset) -> NbIndexConfig {
    NbIndexConfig {
        ladder: data.default_ladder.clone(),
        ..NbIndexConfig::default()
    }
}

/// Receipt returned by the registry's mutation methods.
#[derive(Debug, Clone, Copy)]
pub struct MutationReceipt {
    /// Affected graph id (the new id for inserts).
    pub id: GraphId,
    /// Mutation epoch after the operation.
    pub epoch: u64,
    /// Live graphs after the operation.
    pub live: usize,
    /// Tombstoned graphs after the operation.
    pub tombstones: usize,
    /// Whether the operation tripped the rebuild policy.
    pub rebuilt: bool,
}

/// The mutable half of a [`LoadedDataset`], swapped atomically under the
/// write lock.
struct DatasetState {
    data: Dataset,
    index: Arc<NbIndex>,
    index_source: String,
}

/// The two cache tiers of one dataset (DESIGN.md §11): the materialized
/// θ-neighborhood [`ViewStore`] and the cross-session [`AnswerCache`].
///
/// Both key every entry on the index's mutation epoch, so correctness never
/// depends on invalidation; [`DatasetCaches::invalidate_all`] is the memory
/// measure the mutation path applies after each fork-mutate-swap. Sessions
/// pinned to the pre-mutation snapshot simply miss afterwards and recompute
/// from their snapshot, byte-identically.
#[derive(Debug)]
pub struct DatasetCaches {
    enabled: bool,
    views: Arc<ViewStore>,
    answers: Arc<AnswerCache>,
}

impl DatasetCaches {
    /// Builds both tiers from one config; `capacity == 0` disables caching
    /// entirely (sessions run the plain uncached path).
    pub fn new(config: CacheConfig) -> Self {
        Self {
            enabled: config.capacity > 0,
            views: Arc::new(ViewStore::new(config)),
            answers: Arc::new(AnswerCache::new(config)),
        }
    }

    /// Whether caching is on for this dataset.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The materialized view store.
    pub fn views(&self) -> Arc<ViewStore> {
        Arc::clone(&self.views)
    }

    /// The answer cache.
    pub fn answers(&self) -> Arc<AnswerCache> {
        Arc::clone(&self.answers)
    }

    /// Drops every entry in both tiers (counters are kept — monotone
    /// history). Returns `(views dropped, answers dropped)`.
    pub fn invalidate_all(&self) -> (u64, u64) {
        (self.views.invalidate_all(), self.answers.invalidate_all())
    }
}

/// One warm-loaded dataset: database, shared NB-Index, and the counter
/// baselines for delta reporting.
pub struct LoadedDataset {
    name: String,
    /// Backing directory for re-persisting after mutations; `None` for
    /// in-memory datasets.
    dir: Option<PathBuf>,
    state: TrackedRwLock<DatasetState>,
    caches: Arc<DatasetCaches>,
    base_oracle: OracleStats,
    base_tiers: TierStats,
    base_engine_calls: u64,
}

impl std::fmt::Debug for LoadedDataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.read();
        f.debug_struct("LoadedDataset")
            .field("name", &self.name)
            .field("graphs", &st.data.db.len())
            .field("epoch", &st.index.epoch())
            .field("index_source", &st.index_source)
            .finish()
    }
}

/// Reads `<dir>/epoch.txt`; absent or unparsable means epoch 0 (pre-mutation
/// datasets have no sidecar).
fn read_epoch_sidecar(dir: &Path) -> u64 {
    std::fs::read_to_string(dir.join("epoch.txt"))
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0)
}

impl LoadedDataset {
    /// Loads the dataset at `dir` and warms its index: `<dir>/index.bin`
    /// when present, then `<dir>/index.json` (the legacy/fallback format),
    /// falling back to a fresh build if neither loads cleanly at the
    /// `epoch.txt` sidecar's mutation epoch — a corrupt or stale file is
    /// answered with a rebuild whose provenance records what was wrong,
    /// never a silently wrong snapshot. With `persist_built`, a freshly
    /// built index is written back to `<dir>/index.bin` so the next start
    /// is warm; write failures are ignored (read-only dataset directories
    /// must not prevent serving).
    pub fn open(name: &str, dir: &Path, persist_built: bool) -> Result<Self, ServeError> {
        let data = store::load(dir)
            .map_err(|e| ServeError::new(format!("loading {}: {e}", dir.display())))?;
        let oracle = data.db.oracle(GedConfig::default());
        let expected_epoch = read_epoch_sidecar(dir);
        let mut load_errors: Vec<String> = Vec::new();
        let mut loaded: Option<NbIndex> = None;
        if let Ok(bytes) = std::fs::read(dir.join("index.bin")) {
            match NbIndex::load_bin_at_epoch(&bytes, Arc::clone(&oracle), expected_epoch) {
                Ok(index) => loaded = Some(index),
                Err(e) => load_errors.push(format!("index.bin: {e}")),
            }
        }
        if loaded.is_none() {
            if let Ok(json) = std::fs::read_to_string(dir.join("index.json")) {
                match NbIndex::load_json_at_epoch(&json, Arc::clone(&oracle), expected_epoch) {
                    Ok(index) => loaded = Some(index),
                    Err(e) => load_errors.push(format!("index.json: {e}")),
                }
            }
        }
        let (index, index_source) = match loaded {
            Some(index) => (index, "loaded".to_owned()),
            None => {
                let built = NbIndex::build(Arc::clone(&oracle), default_index_config(&data));
                if load_errors.is_empty() {
                    if persist_built {
                        let _ = std::fs::write(dir.join("index.bin"), built.save_bin());
                    }
                    (built, "built".to_owned())
                } else {
                    (
                        built,
                        format!("built (stale index on disk: {})", load_errors.join("; ")),
                    )
                }
            }
        };
        let base_oracle = index.oracle().stats();
        let base_tiers = index.oracle().tier_stats();
        let base_engine_calls = index.oracle().engine_calls();
        Ok(Self {
            name: name.to_owned(),
            dir: Some(dir.to_path_buf()),
            state: TrackedRwLock::new(
                "serve.registry.LoadedDataset.state",
                DatasetState {
                    data,
                    index: Arc::new(index),
                    index_source,
                },
            ),
            caches: Arc::new(DatasetCaches::new(CacheConfig::default())),
            base_oracle,
            base_tiers,
            base_engine_calls,
        })
    }

    /// Replaces the cache configuration (consuming builder — call before the
    /// dataset is registered and shared).
    pub fn with_cache_config(mut self, config: CacheConfig) -> Self {
        self.caches = Arc::new(DatasetCaches::new(config));
        self
    }

    /// This dataset's cache tiers.
    pub fn caches(&self) -> &Arc<DatasetCaches> {
        &self.caches
    }

    /// Poison-proof read lock (the tracked wrapper recovers poisoned std
    /// guards): a panicking mutation must not take every future query down
    /// with it — the state is swapped whole, so it is never torn.
    fn read(&self) -> TrackedReadGuard<'_, DatasetState> {
        self.state.read()
    }

    /// Registry name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// A clone-out snapshot of the database (cheap: `Arc`-backed fields).
    pub fn db_snapshot(&self) -> graphrep_core::GraphDatabase {
        self.read().data.db.clone()
    }

    /// The dataset's default threshold θ.
    pub fn default_theta(&self) -> f64 {
        self.read().data.default_theta
    }

    /// A shared handle to the current NB-Index. Sessions pin the handle they
    /// start with; mutations swap in a new one.
    pub fn index_arc(&self) -> Arc<NbIndex> {
        Arc::clone(&self.read().index)
    }

    /// How the index was obtained (`loaded`, `built`, or `mutated (epoch N)`).
    pub fn index_source(&self) -> String {
        self.read().index_source.clone()
    }

    /// The default relevance function at `quantile` — identical to the CLI's
    /// (mean of all feature dimensions, top quantile), so server sessions
    /// answer exactly what an offline `query` invocation answers. Tombstoned
    /// ids are filtered by the session layer.
    pub fn relevant_for(&self, quantile: f64) -> Vec<GraphId> {
        let st = self.read();
        let scorer = Scorer::MeanOfDims((0..st.data.db.dims().max(1)).collect());
        RelevanceQuery::top_quantile(&st.data.db, scorer, quantile).relevant_set(&st.data.db)
    }

    /// Adds `graph` with `features` to the dataset and index (DESIGN.md
    /// §10): fork-mutate-swap, so concurrent sessions keep their snapshot.
    /// Dir-backed datasets are re-persisted (sidecar first; see module docs).
    pub fn insert_graph(
        &self,
        graph: Graph,
        features: Vec<f64>,
    ) -> Result<MutationReceipt, ServeError> {
        let mut st = self.state.write();
        if !st.data.db.is_empty() && features.len() != st.data.db.dims() {
            return Err(ServeError::new(format!(
                "feature vector has {} dims, dataset has {}",
                features.len(),
                st.data.db.dims()
            )));
        }
        let mut index = st.index.fork();
        let (id, outcome) = index
            // graphrep: allow(G008, mutations serialize on the state write lock by design -- the NP-hard insert runs on a private fork while readers keep their pinned Arc snapshot, so only competing mutations and new session opens wait)
            .insert(graph.clone())
            .map_err(|e| ServeError::new(e.to_string()))?;
        st.data.db = st.data.db.pushed(graph, features);
        st.data.family.push(EXTERNAL_FAMILY);
        let receipt = MutationReceipt {
            id,
            epoch: index.epoch(),
            live: index.tree().live_len(),
            tombstones: index.tree().tombstones(),
            rebuilt: outcome == MutationOutcome::Rebuilt,
        };
        st.index_source = format!("mutated (epoch {})", index.epoch());
        st.index = Arc::new(index);
        // Epoch keys already make the old entries unreachable for sessions
        // on the new snapshot; dropping them wholesale reclaims the memory.
        self.caches.invalidate_all();
        self.persist_locked(&st);
        Ok(receipt)
    }

    /// Tombstones graph `id` in the index (DESIGN.md §10). The database keeps
    /// the graph so ids stay aligned with the oracle; sessions opened after
    /// the call will never see it again.
    pub fn remove_graph(&self, id: GraphId) -> Result<MutationReceipt, ServeError> {
        let mut st = self.state.write();
        let mut index = st.index.fork();
        let outcome = index
            // graphrep: allow(G008, same serialization as insert_graph -- the tombstone and any rebuild it trips run on a private fork under the state write lock; readers keep their pinned Arc snapshot)
            .remove(id)
            .map_err(|e| ServeError::new(e.to_string()))?;
        let receipt = MutationReceipt {
            id,
            epoch: index.epoch(),
            live: index.tree().live_len(),
            tombstones: index.tree().tombstones(),
            rebuilt: outcome == MutationOutcome::Rebuilt,
        };
        st.index_source = format!("mutated (epoch {})", index.epoch());
        st.index = Arc::new(index);
        self.caches.invalidate_all();
        self.persist_locked(&st);
        Ok(receipt)
    }

    /// Best-effort re-persist after a mutation. The epoch sidecar goes first:
    /// if any later write fails, the next [`LoadedDataset::open`] sees an
    /// epoch mismatch and rebuilds instead of serving the stale snapshot.
    fn persist_locked(&self, st: &DatasetState) {
        let Some(dir) = &self.dir else { return };
        let _ = std::fs::write(dir.join("epoch.txt"), format!("{}\n", st.index.epoch()));
        let _ = store::save(&st.data, dir);
        // The binary format is the one written going forward; a JSON-era
        // `index.json` left behind now records an older epoch, so the next
        // open skips it (the sidecar guard) and uses this file.
        let _ = std::fs::write(dir.join("index.bin"), st.index.save_bin());
    }

    /// Oracle activity since this dataset was loaded (serving-time deltas:
    /// the warm-load/build work is excluded by the baselines, and mutation-
    /// swapped oracles carry their counters forward, so the baselines stay
    /// comparable across mutations).
    pub fn oracle_delta(&self) -> OracleDelta {
        let oracle = self.read().index.oracle_arc();
        let s = oracle.stats();
        let t = oracle.tier_stats();
        OracleDelta {
            distance_computations: s
                .distance_computations
                .saturating_sub(self.base_oracle.distance_computations),
            within_rejections: s
                .within_rejections
                .saturating_sub(self.base_oracle.within_rejections),
            cache_hits: s.cache_hits.saturating_sub(self.base_oracle.cache_hits),
            ub_accepts: s.ub_accepts.saturating_sub(self.base_oracle.ub_accepts),
            engine_calls: oracle.engine_calls().saturating_sub(self.base_engine_calls),
            size_rejects: t.size_rejects.saturating_sub(self.base_tiers.size_rejects),
            label_rejects: t
                .label_rejects
                .saturating_sub(self.base_tiers.label_rejects),
            degree_rejects: t
                .degree_rejects
                .saturating_sub(self.base_tiers.degree_rejects),
            vantage_lb_rejects: t
                .vantage_lb_rejects
                .saturating_sub(self.base_tiers.vantage_lb_rejects),
            vantage_ub_accepts: t
                .vantage_ub_accepts
                .saturating_sub(self.base_tiers.vantage_ub_accepts),
        }
    }

    /// Serializable statistics for the `stats` endpoint.
    pub fn stats(&self) -> DatasetStats {
        let (graphs, memory, source) = {
            let st = self.read();
            (
                st.data.db.len(),
                st.index.memory_bytes(),
                st.index_source.clone(),
            )
        };
        DatasetStats {
            name: self.name.clone(),
            graphs,
            index_memory_bytes: memory,
            index_source: source,
            oracle: self.oracle_delta(),
            cache_enabled: self.caches.enabled(),
            view_store: self.caches.views.counters().into(),
            answer_cache: self.caches.answers.counters().into(),
            shards: Vec::new(),
        }
    }
}

/// Receipt returned by [`ShardedDataset`] mutations: the single-dataset
/// [`MutationReceipt`] fields plus the full per-shard epoch vector.
#[derive(Debug, Clone)]
pub struct ShardedMutationReceipt {
    /// Affected graph id (the new id for inserts).
    pub id: GraphId,
    /// Owning shard index — the only shard whose epoch moved.
    pub shard: usize,
    /// The owning shard's epoch after the operation.
    pub epoch: u64,
    /// Full per-shard epoch vector after the operation.
    pub epochs: Vec<u64>,
    /// Live graphs across all shards after the operation.
    pub live: usize,
    /// Tombstoned graphs across all shards after the operation.
    pub tombstones: usize,
    /// Whether the owning shard's index tripped its rebuild policy.
    pub rebuilt: bool,
}

/// One dataset served by a shard [`Coordinator`] instead of a single
/// NB-Index (DESIGN.md §14): queries scatter-gather across per-shard
/// indexes, mutations route to the owning shard, and the shard manifest
/// under `<dir>/shards/` is the persistence commit record.
///
/// The coordinator serializes mutations on its own per-shard handle locks;
/// the dataset lock here guards the feature store used for relevance
/// scoring. Inserts hold the dataset lock *across* the routed shard insert
/// (lock order: `data` → shard handle, acyclic — the shard crate never
/// takes serve locks) so the assigned global id and the appended feature
/// row can never interleave with a concurrent insert.
pub struct ShardedDataset {
    name: String,
    /// Backing directory; the coordinator persists under `<dir>/shards/`.
    dir: Option<PathBuf>,
    data: TrackedRwLock<Dataset>,
    coord: Arc<Coordinator>,
    /// How the coordinator came to be (`loaded` or `rebuilt (reason)`).
    source: String,
    base_oracle: OracleStats,
    base_tiers: TierStats,
    base_engine_calls: u64,
    base_shard_calls: Vec<(u64, u64)>,
}

impl std::fmt::Debug for ShardedDataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedDataset")
            .field("name", &self.name)
            .field("shards", &self.coord.shard_count())
            .field("epochs", &self.coord.epochs())
            .finish()
    }
}

/// Sums the per-shard oracle counters of `coord` into workspace-wide totals
/// (plus raw engine calls), for delta reporting against a load baseline.
fn sharded_oracle_totals(coord: &Coordinator) -> (OracleStats, TierStats, u64) {
    let mut stats = OracleStats::default();
    let mut tiers = TierStats::default();
    let mut engine = 0u64;
    for snap in coord.snapshots() {
        let s = snap.oracle_stats();
        stats.distance_computations += s.distance_computations;
        stats.within_rejections += s.within_rejections;
        stats.cache_hits += s.cache_hits;
        stats.ub_accepts += s.ub_accepts;
        let t = snap.oracle_tier_stats();
        tiers.size_rejects += t.size_rejects;
        tiers.label_rejects += t.label_rejects;
        tiers.degree_rejects += t.degree_rejects;
        tiers.vantage_lb_rejects += t.vantage_lb_rejects;
        tiers.vantage_ub_accepts += t.vantage_ub_accepts;
        engine += snap.engine_calls() + snap.foreign_calls();
    }
    (stats, tiers, engine)
}

impl ShardedDataset {
    fn from_parts(
        name: &str,
        dir: Option<PathBuf>,
        data: Dataset,
        coord: Coordinator,
        source: String,
    ) -> Self {
        let (base_oracle, base_tiers, base_engine_calls) = sharded_oracle_totals(&coord);
        let base_shard_calls = coord
            .snapshots()
            .iter()
            .map(|s| (s.engine_calls(), s.foreign_calls()))
            .collect();
        Self {
            name: name.to_owned(),
            dir,
            data: TrackedRwLock::new("serve.registry.ShardedDataset.data", data),
            coord: Arc::new(coord),
            source,
            base_oracle,
            base_tiers,
            base_engine_calls,
            base_shard_calls,
        }
    }

    /// Opens the dataset at `dir` sharded `shards` ways. A persisted shard
    /// manifest under `<dir>/shards/` is loaded at its recorded epochs when
    /// intact *and* its shard count matches; otherwise the coordinator is
    /// rebuilt from the dataset and re-persisted (a torn manifest is
    /// detected, never silently served — same discipline as `epoch.txt`).
    pub fn open(name: &str, dir: &Path, shards: usize, seed: u64) -> Result<Self, ServeError> {
        let data = store::load(dir)
            .map_err(|e| ServeError::new(format!("loading {}: {e}", dir.display())))?;
        let cfg = CoordConfig {
            shards,
            seed,
            ladder: data.default_ladder.clone(),
        };
        let sdir = dir.join("shards");
        let (coord, source) =
            Coordinator::open_or_rebuild(&sdir, &data.db, GedConfig::default(), &cfg).map_err(
                |e| ServeError::new(format!("opening shards at {}: {e:?}", sdir.display())),
            )?;
        let (coord, source) = if coord.shard_count() != shards.clamp(1, data.db.len().max(1)) {
            let rebuilt = Coordinator::build(&data.db, GedConfig::default(), &cfg);
            let _ = rebuilt.save(&sdir);
            (
                rebuilt,
                format!("rebuilt (shard count changed to {shards})"),
            )
        } else {
            let label = match source {
                RestoreSource::Loaded => "loaded".to_owned(),
                RestoreSource::Rebuilt(reason) => format!("rebuilt ({reason})"),
            };
            (coord, label)
        };
        Ok(Self::from_parts(
            name,
            Some(dir.to_path_buf()),
            data,
            coord,
            source,
        ))
    }

    /// Builds a sharded dataset from an in-memory dataset (no persistence)
    /// — the shape in-process tests and benchmarks use.
    pub fn in_memory(name: &str, data: Dataset, shards: usize, seed: u64) -> Self {
        let cfg = CoordConfig {
            shards,
            seed,
            ladder: data.default_ladder.clone(),
        };
        let coord = Coordinator::build(&data.db, GedConfig::default(), &cfg);
        Self::from_parts(name, None, data, coord, "built".to_owned())
    }

    /// Registry name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The scatter-gather coordinator.
    pub fn coordinator(&self) -> &Arc<Coordinator> {
        &self.coord
    }

    /// The dataset's default threshold θ.
    pub fn default_theta(&self) -> f64 {
        self.data.read().default_theta
    }

    /// Same relevance function as [`LoadedDataset::relevant_for`], so a
    /// sharded server answers exactly what the single-index server answers.
    pub fn relevant_for(&self, quantile: f64) -> Vec<GraphId> {
        let data = self.data.read();
        let scorer = Scorer::MeanOfDims((0..data.db.dims().max(1)).collect());
        RelevanceQuery::top_quantile(&data.db, scorer, quantile).relevant_set(&data.db)
    }

    /// Opens a scatter-gather session pinned to the current epoch vector.
    pub fn open_session(&self, quantile: f64) -> CoordSession {
        self.coord.session(self.relevant_for(quantile))
    }

    /// Inserts `graph` with `features`: the coordinator routes it to the
    /// owning shard (bumping only that shard's epoch), and the feature
    /// store follows under the *same* `data` write guard — id assignment
    /// and feature-row append must be atomic, or concurrent inserts could
    /// interleave and permanently misalign db row index vs global id
    /// (mirroring [`LoadedDataset::insert_graph`]'s single-lock discipline).
    pub fn insert_graph(
        &self,
        graph: Graph,
        features: Vec<f64>,
    ) -> Result<ShardedMutationReceipt, ServeError> {
        let receipt = {
            let mut data = self.data.write();
            if !data.db.is_empty() && features.len() != data.db.dims() {
                return Err(ServeError::new(format!(
                    "feature vector has {} dims, dataset has {}",
                    features.len(),
                    data.db.dims()
                )));
            }
            let receipt = self
                .coord
                // graphrep: allow(G008, the data guard must span the routed insert so the feature row lands at exactly the assigned global id -- readers keep their snapshots and only competing mutations of this dataset wait, same serialization as LoadedDataset::insert_graph)
                .insert(graph.clone())
                .map_err(|e| ServeError::new(e.to_string()))?;
            data.db = data.db.pushed(graph, features);
            data.family.push(EXTERNAL_FAMILY);
            receipt
        };
        self.persist();
        Ok(self.receipt(receipt))
    }

    /// Tombstones graph `id` on its owning shard. The feature store keeps
    /// the row so global ids stay aligned, mirroring the single-index path.
    pub fn remove_graph(&self, id: GraphId) -> Result<ShardedMutationReceipt, ServeError> {
        let receipt = self
            .coord
            .remove(id)
            .map_err(|e| ServeError::new(e.to_string()))?;
        self.persist();
        Ok(self.receipt(receipt))
    }

    fn receipt(&self, r: graphrep_shard::CoordReceipt) -> ShardedMutationReceipt {
        ShardedMutationReceipt {
            id: r.id,
            shard: r.shard,
            epoch: r.epochs.get(r.shard).copied().unwrap_or(0),
            live: r.live,
            // From the receipt's own snapshot — re-reading the coordinator
            // here could pair this with a concurrent mutation's live count.
            tombstones: r.len.saturating_sub(r.live),
            rebuilt: r.outcome == MutationOutcome::Rebuilt,
            epochs: r.epochs,
        }
    }

    /// Best-effort re-persist after a mutation: the feature store first,
    /// then every shard payload, then the manifest — last, as the commit
    /// record, so a torn save is detected on the next open.
    fn persist(&self) {
        let Some(dir) = &self.dir else { return };
        {
            let data = self.data.read();
            let _ = store::save(&data, dir);
        }
        let _ = self.coord.save(&dir.join("shards"));
    }

    /// Serializable statistics: aggregate oracle deltas plus the per-shard
    /// breakdown (epochs, engine/foreign calls, index memory).
    pub fn stats(&self) -> DatasetStats {
        let (stats, tiers, engine) = sharded_oracle_totals(&self.coord);
        let shards = self
            .coord
            .overview()
            .into_iter()
            .map(|o| {
                let (base_eng, base_foreign) = self
                    .base_shard_calls
                    .get(o.shard)
                    .copied()
                    .unwrap_or((0, 0));
                ShardStats {
                    shard: o.shard,
                    epoch: o.epoch,
                    live: o.live,
                    len: o.len,
                    engine_calls: o.engine_calls.saturating_sub(base_eng),
                    foreign_calls: o.foreign_calls.saturating_sub(base_foreign),
                    index_memory_bytes: o.index_memory_bytes,
                }
            })
            .collect::<Vec<_>>();
        DatasetStats {
            name: self.name.clone(),
            graphs: self.data.read().db.len(),
            index_memory_bytes: shards.iter().map(|s| s.index_memory_bytes).sum(),
            index_source: format!("sharded x{} ({})", self.coord.shard_count(), self.source),
            oracle: OracleDelta {
                distance_computations: stats
                    .distance_computations
                    .saturating_sub(self.base_oracle.distance_computations),
                within_rejections: stats
                    .within_rejections
                    .saturating_sub(self.base_oracle.within_rejections),
                cache_hits: stats.cache_hits.saturating_sub(self.base_oracle.cache_hits),
                ub_accepts: stats.ub_accepts.saturating_sub(self.base_oracle.ub_accepts),
                engine_calls: engine.saturating_sub(self.base_engine_calls),
                size_rejects: tiers
                    .size_rejects
                    .saturating_sub(self.base_tiers.size_rejects),
                label_rejects: tiers
                    .label_rejects
                    .saturating_sub(self.base_tiers.label_rejects),
                degree_rejects: tiers
                    .degree_rejects
                    .saturating_sub(self.base_tiers.degree_rejects),
                vantage_lb_rejects: tiers
                    .vantage_lb_rejects
                    .saturating_sub(self.base_tiers.vantage_lb_rejects),
                vantage_ub_accepts: tiers
                    .vantage_ub_accepts
                    .saturating_sub(self.base_tiers.vantage_ub_accepts),
            },
            cache_enabled: false,
            view_store: Default::default(),
            answer_cache: Default::default(),
            shards,
        }
    }
}

/// One registry entry: a dataset served by a single NB-Index or by a shard
/// coordinator. Cloning is cheap (`Arc`s).
#[derive(Debug, Clone)]
pub enum DatasetEntry {
    /// Single-index dataset (the default deployment).
    Single(Arc<LoadedDataset>),
    /// Scatter-gather dataset split over shards.
    Sharded(Arc<ShardedDataset>),
}

impl DatasetEntry {
    /// Registry name.
    pub fn name(&self) -> &str {
        match self {
            DatasetEntry::Single(ds) => ds.name(),
            DatasetEntry::Sharded(ds) => ds.name(),
        }
    }

    /// Per-dataset statistics for the `stats` endpoint.
    pub fn stats(&self) -> DatasetStats {
        match self {
            DatasetEntry::Single(ds) => ds.stats(),
            DatasetEntry::Sharded(ds) => ds.stats(),
        }
    }

    /// The single-index dataset behind this entry, if it is not sharded.
    pub fn as_single(&self) -> Option<&Arc<LoadedDataset>> {
        match self {
            DatasetEntry::Single(ds) => Some(ds),
            DatasetEntry::Sharded(_) => None,
        }
    }

    /// The sharded dataset behind this entry, if it is sharded.
    pub fn as_sharded(&self) -> Option<&Arc<ShardedDataset>> {
        match self {
            DatasetEntry::Single(_) => None,
            DatasetEntry::Sharded(ds) => Some(ds),
        }
    }
}

/// Name → dataset map, immutable once the server starts (the datasets
/// themselves mutate internally).
#[derive(Debug, Default)]
pub struct DatasetRegistry {
    map: HashMap<String, DatasetEntry>,
}

impl DatasetRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Loads and registers the dataset at `dir` under `name`, with the
    /// default cache configuration.
    pub fn load_dir(
        &mut self,
        name: &str,
        dir: &Path,
        persist_built: bool,
    ) -> Result<(), ServeError> {
        self.load_dir_with(name, dir, persist_built, CacheConfig::default())
    }

    /// [`DatasetRegistry::load_dir`] with an explicit cache configuration
    /// (the `graphrep serve --cache-capacity/--cache-ttl` path).
    pub fn load_dir_with(
        &mut self,
        name: &str,
        dir: &Path,
        persist_built: bool,
        cache: CacheConfig,
    ) -> Result<(), ServeError> {
        let ds = LoadedDataset::open(name, dir, persist_built)?.with_cache_config(cache);
        self.insert(ds);
        Ok(())
    }

    /// Loads and registers the dataset at `dir` sharded `shards` ways (the
    /// `graphrep serve --shards S` path; see [`ShardedDataset::open`]).
    pub fn load_dir_sharded(
        &mut self,
        name: &str,
        dir: &Path,
        shards: usize,
        seed: u64,
    ) -> Result<(), ServeError> {
        let ds = ShardedDataset::open(name, dir, shards, seed)?;
        self.insert_sharded(ds);
        Ok(())
    }

    /// Registers an already-loaded single-index dataset.
    pub fn insert(&mut self, ds: LoadedDataset) {
        self.map
            .insert(ds.name.clone(), DatasetEntry::Single(Arc::new(ds)));
    }

    /// Registers an already-built sharded dataset.
    pub fn insert_sharded(&mut self, ds: ShardedDataset) {
        self.map
            .insert(ds.name.clone(), DatasetEntry::Sharded(Arc::new(ds)));
    }

    /// Looks a dataset up by name.
    pub fn get(&self, name: &str) -> Option<DatasetEntry> {
        self.map.get(name).cloned()
    }

    /// Registered dataset names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.map.keys().cloned().collect();
        v.sort();
        v
    }

    /// Per-dataset statistics, in name order.
    pub fn stats(&self) -> Vec<DatasetStats> {
        self.names()
            .into_iter()
            .filter_map(|n| self.map.get(&n).map(|d| d.stats()))
            .collect()
    }
}

/// Builds a [`LoadedDataset`] from an in-memory dataset (no directory, no
/// persistence) — the shape in-process tests and benchmarks use.
pub fn load_in_memory(name: &str, data: Dataset) -> LoadedDataset {
    let oracle = data.db.oracle(GedConfig::default());
    let index = NbIndex::build(Arc::clone(&oracle), default_index_config(&data));
    let base_oracle = oracle.stats();
    let base_tiers = oracle.tier_stats();
    let base_engine_calls = oracle.engine_calls();
    LoadedDataset {
        name: name.to_owned(),
        dir: None,
        state: TrackedRwLock::new(
            "serve.registry.LoadedDataset.state",
            DatasetState {
                data,
                index: Arc::new(index),
                index_source: "built".to_owned(),
            },
        ),
        caches: Arc::new(DatasetCaches::new(CacheConfig::default())),
        base_oracle,
        base_tiers,
        base_engine_calls,
    }
}
