//! Client side: a blocking request/response client plus the deterministic
//! load harness (`N` connections × `M` requests on a fixed seed) and its
//! offline verifier — the tool that proves server answers are byte-identical
//! to [`graphrep_core::QuerySession::run`].

use crate::protocol::{
    self, AnswerBody, CloseBody, FrameRead, HelloAckBody, HelloBody, InsertBody, MutatedBody,
    OpenBody, OpenedBody, PickBody, PingBody, RemoveBody, Request, Response, RunBody, ServeError,
    StatsBody, TaggedRequest, TaggedResponse, WireEdge, PROTOCOL_MAX, PROTOCOL_V1, PROTOCOL_V2,
};
use crate::registry::LoadedDataset;
use graphrep_core::AnswerSet;
use std::collections::HashMap;
use std::net::TcpStream;
use std::path::Path;
use std::thread;
use std::time::{Duration, Instant};

/// A blocking protocol client over one TCP connection.
///
/// Fresh connections speak [`PROTOCOL_V1`] (bare frames, strict
/// request/response order). Call [`Client::hello`] to negotiate
/// [`PROTOCOL_V2`]; when the server grants it, every later frame is a
/// tagged envelope and [`Client::run_pipelined`] becomes available.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    /// Upper bound on waiting for any single response.
    reply_timeout: Duration,
    /// Negotiated protocol version.
    version: u32,
    /// Next v2 correlation id.
    next_id: u64,
}

impl Client {
    /// Connects to a server.
    pub fn connect(addr: &str) -> Result<Self, ServeError> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| ServeError::new(format!("connect {addr}: {e}")))?;
        let _ = stream.set_nodelay(true);
        // Short read timeout + a bounded retry loop in `read_response`: a
        // wedged server turns into an error, not a hung client.
        let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
        Ok(Self {
            stream,
            reply_timeout: Duration::from_secs(120),
            version: PROTOCOL_V1,
            next_id: 1,
        })
    }

    /// Replaces the per-response timeout (default two minutes).
    pub fn set_reply_timeout(&mut self, t: Duration) {
        self.reply_timeout = t;
    }

    /// The protocol version this connection speaks right now.
    pub fn version(&self) -> u32 {
        self.version
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Reads one frame of type `T`, retrying short read timeouts until
    /// `deadline`.
    fn read_one<T: serde::Deserialize>(&mut self, deadline: Instant) -> Result<T, ServeError> {
        loop {
            match protocol::read_frame::<T>(&mut self.stream, Duration::from_secs(10))? {
                FrameRead::Frame(msg) => return Ok(msg),
                FrameRead::Closed => {
                    return Err(ServeError::new("server closed the connection mid-request"))
                }
                FrameRead::Idle => {
                    if Instant::now() > deadline {
                        return Err(ServeError::new("timed out waiting for a response"));
                    }
                }
            }
        }
    }

    /// Negotiates the protocol version: offers [`PROTOCOL_MAX`], adopts
    /// whatever the server grants (a blocking-mode server grants v1, so the
    /// connection simply stays on bare frames). Must be the first exchange
    /// on the connection.
    pub fn hello(&mut self) -> Result<HelloAckBody, ServeError> {
        // Sent in the connection's *current* framing — negotiation itself is
        // always a bare v1 exchange.
        protocol::write_frame(
            &mut self.stream,
            &Request::Hello(HelloBody {
                version: PROTOCOL_MAX,
            }),
        )?;
        let deadline = Instant::now() + self.reply_timeout;
        match self.read_one::<Response>(deadline)? {
            Response::HelloAck(ack) => {
                self.version = ack.version;
                Ok(ack)
            }
            other => Err(unexpected("HelloAck", &other)),
        }
    }

    /// Sends one request and waits for its response.
    pub fn request(&mut self, req: &Request) -> Result<Response, ServeError> {
        let deadline = Instant::now() + self.reply_timeout;
        if self.version >= PROTOCOL_V2 {
            let id = self.fresh_id();
            protocol::write_frame(
                &mut self.stream,
                &TaggedRequest {
                    id,
                    req: req.clone(),
                },
            )?;
            let tr = self.read_one::<TaggedResponse>(deadline)?;
            if tr.id != id {
                return Err(ServeError::new(format!(
                    "response for request id {} while awaiting {id}",
                    tr.id
                )));
            }
            return Ok(tr.resp);
        }
        protocol::write_frame(&mut self.stream, req)?;
        self.read_one::<Response>(deadline)
    }

    /// Opens a session on `dataset` with the given relevance quantile.
    pub fn open(&mut self, dataset: &str, quantile: f64) -> Result<OpenedBody, ServeError> {
        match self.request(&Request::Open(OpenBody {
            dataset: dataset.to_owned(),
            quantile,
        }))? {
            Response::Opened(b) => Ok(b),
            other => Err(unexpected("Opened", &other)),
        }
    }

    /// Executes one `(θ, k)` run. Returns the raw [`Response`] so callers
    /// can distinguish answers from `deadline_exceeded`/`overloaded`.
    pub fn run(
        &mut self,
        session: u64,
        theta: f64,
        k: usize,
        deadline_ms: Option<u64>,
    ) -> Result<Response, ServeError> {
        self.request(&Request::Run(RunBody {
            session,
            theta,
            k,
            deadline_ms,
        }))
    }

    /// Like [`Client::run`] but demands a successful answer.
    pub fn run_answer(
        &mut self,
        session: u64,
        theta: f64,
        k: usize,
    ) -> Result<AnswerBody, ServeError> {
        match self.run(session, theta, k, None)? {
            Response::Answer(b) => Ok(b),
            other => Err(unexpected("Answer", &other)),
        }
    }

    /// Executes one `(θ, k)` run with streamed picks: one [`PickBody`] per
    /// representative as the greedy loop accepts it, then the terminal
    /// frame. Works on both protocol versions (v1 interleaves nothing, so
    /// bare streamed frames stay unambiguous).
    pub fn run_streaming(
        &mut self,
        session: u64,
        theta: f64,
        k: usize,
        deadline_ms: Option<u64>,
    ) -> Result<StreamedRun, ServeError> {
        let req = Request::RunStream(RunBody {
            session,
            theta,
            k,
            deadline_ms,
        });
        let t0 = Instant::now();
        let deadline = t0 + self.reply_timeout;
        let mut picks = Vec::new();
        let mut ttfp = None;
        if self.version >= PROTOCOL_V2 {
            let id = self.fresh_id();
            protocol::write_frame(&mut self.stream, &TaggedRequest { id, req })?;
            loop {
                let tr = self.read_one::<TaggedResponse>(deadline)?;
                if tr.id != id {
                    return Err(ServeError::new(format!(
                        "response for request id {} mid-stream of {id}",
                        tr.id
                    )));
                }
                match tr.resp {
                    Response::Pick(p) => {
                        ttfp.get_or_insert_with(|| t0.elapsed());
                        picks.push(p);
                    }
                    terminal => {
                        return Ok(StreamedRun {
                            picks,
                            terminal,
                            ttfp,
                            total: t0.elapsed(),
                        })
                    }
                }
            }
        }
        protocol::write_frame(&mut self.stream, &req)?;
        loop {
            match self.read_one::<Response>(deadline)? {
                Response::Pick(p) => {
                    ttfp.get_or_insert_with(|| t0.elapsed());
                    picks.push(p);
                }
                terminal => {
                    return Ok(StreamedRun {
                        picks,
                        terminal,
                        ttfp,
                        total: t0.elapsed(),
                    })
                }
            }
        }
    }

    /// Like [`Client::run_streaming`] but demands a successful answer and
    /// checks the pick stream is consistent with it (same ids, same order,
    /// same trajectory).
    pub fn run_streaming_answer(
        &mut self,
        session: u64,
        theta: f64,
        k: usize,
    ) -> Result<(Vec<PickBody>, AnswerBody), ServeError> {
        let run = self.run_streaming(session, theta, k, None)?;
        let body = match run.terminal {
            Response::AnswerEnd(b) => b,
            other => return Err(unexpected("AnswerEnd", &other)),
        };
        verify_stream_consistency(&run.picks, &body).map_err(ServeError::new)?;
        Ok((run.picks, body))
    }

    /// Issues every query as its own in-flight tagged request on this one
    /// connection — true wire pipelining — then collects the out-of-order
    /// completions. Requires a negotiated v2 connection ([`Client::hello`]
    /// first); `streamed` selects [`Request::RunStream`] per query instead
    /// of [`Request::Run`]. Results come back indexed like `queries`.
    pub fn run_pipelined(
        &mut self,
        session: u64,
        queries: &[(f64, usize)],
        streamed: bool,
    ) -> Result<Vec<StreamedRun>, ServeError> {
        if self.version < PROTOCOL_V2 {
            return Err(ServeError::new(
                "pipelining needs protocol v2; call hello() against an async-mode server first",
            ));
        }
        let t0 = Instant::now();
        let deadline = t0 + self.reply_timeout;
        let mut by_id: HashMap<u64, usize> = HashMap::new();
        let mut out: Vec<StreamedRun> = Vec::new();
        for &(theta, k) in queries {
            let body = RunBody {
                session,
                theta,
                k,
                deadline_ms: None,
            };
            let req = if streamed {
                Request::RunStream(body)
            } else {
                Request::Run(body)
            };
            let id = self.fresh_id();
            protocol::write_frame(&mut self.stream, &TaggedRequest { id, req })?;
            by_id.insert(id, out.len());
            out.push(StreamedRun {
                picks: Vec::new(),
                terminal: Response::Closed,
                ttfp: None,
                total: Duration::ZERO,
            });
        }
        let mut open = by_id.len();
        while open > 0 {
            let tr = self.read_one::<TaggedResponse>(deadline)?;
            let Some(&slot) = by_id.get(&tr.id) else {
                return Err(ServeError::new(format!(
                    "response for unknown request id {}",
                    tr.id
                )));
            };
            let run = &mut out[slot];
            match tr.resp {
                Response::Pick(p) => {
                    run.ttfp.get_or_insert_with(|| t0.elapsed());
                    run.picks.push(p);
                }
                terminal => {
                    if run.total != Duration::ZERO {
                        return Err(ServeError::new(format!(
                            "two terminal frames for request id {}",
                            tr.id
                        )));
                    }
                    run.terminal = terminal;
                    run.total = t0.elapsed();
                    open -= 1;
                }
            }
        }
        Ok(out)
    }

    /// Closes a session.
    pub fn close(&mut self, session: u64) -> Result<(), ServeError> {
        match self.request(&Request::Close(CloseBody { session }))? {
            Response::Closed => Ok(()),
            other => Err(unexpected("Closed", &other)),
        }
    }

    /// Inserts a graph into `dataset` on the server. `nodes` are raw node
    /// labels (index = node id), `edges` are `(u, v, label)` endpoint
    /// triples, `features` must match the dataset's feature dimensionality.
    pub fn insert(
        &mut self,
        dataset: &str,
        nodes: Vec<u32>,
        edges: Vec<(u16, u16, u32)>,
        features: Vec<f64>,
    ) -> Result<MutatedBody, ServeError> {
        let edges = edges
            .into_iter()
            .map(|(u, v, label)| WireEdge { u, v, label })
            .collect();
        match self.request(&Request::Insert(InsertBody {
            dataset: dataset.to_owned(),
            nodes,
            edges,
            features,
        }))? {
            Response::Mutated(b) => Ok(b),
            other => Err(unexpected("Mutated", &other)),
        }
    }

    /// Tombstones graph `id` in `dataset` on the server.
    pub fn remove(&mut self, dataset: &str, id: u32) -> Result<MutatedBody, ServeError> {
        match self.request(&Request::Remove(RemoveBody {
            dataset: dataset.to_owned(),
            id,
        }))? {
            Response::Mutated(b) => Ok(b),
            other => Err(unexpected("Mutated", &other)),
        }
    }

    /// Fetches the live metrics snapshot.
    pub fn stats(&mut self) -> Result<StatsBody, ServeError> {
        match self.request(&Request::Stats)? {
            Response::Stats(b) => Ok(b),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// Liveness probe; `wait_ms` occupies a worker that long.
    pub fn ping(&mut self, wait_ms: u64) -> Result<Response, ServeError> {
        self.request(&Request::Ping(PingBody { wait_ms }))
    }

    /// Requests graceful shutdown.
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        match self.request(&Request::Shutdown)? {
            Response::ShutdownAck => Ok(()),
            other => Err(unexpected("ShutdownAck", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> ServeError {
    ServeError::new(format!("expected {wanted}, got {got:?}"))
}

/// One streamed (or pipelined) run as observed by the client.
#[derive(Debug, Clone)]
pub struct StreamedRun {
    /// Streamed picks in emission order (empty for a non-streamed
    /// pipelined request).
    pub picks: Vec<PickBody>,
    /// The terminal frame: [`Response::AnswerEnd`] on success (or
    /// [`Response::Answer`] for a non-streamed pipelined request), an error
    /// frame otherwise.
    pub terminal: Response,
    /// Time from issuing the request to the first streamed pick.
    pub ttfp: Option<Duration>,
    /// Time from issuing the request to its terminal frame.
    pub total: Duration,
}

/// Checks that a streamed pick sequence is exactly the prefix view of its
/// terminal answer: same ids in the same order, bit-identical π trajectory,
/// and a final coverage that matches the summary.
pub fn verify_stream_consistency(picks: &[PickBody], body: &AnswerBody) -> Result<(), String> {
    if picks.len() != body.ids.len() {
        return Err(format!(
            "{} streamed picks but the answer has {} ids",
            picks.len(),
            body.ids.len()
        ));
    }
    for (i, p) in picks.iter().enumerate() {
        if p.seq != i {
            return Err(format!("pick {i} carries seq {}", p.seq));
        }
        if p.id != body.ids[i] {
            return Err(format!(
                "pick {i} chose graph {:?} but the answer has {:?}",
                p.id, body.ids[i]
            ));
        }
        if p.pi.to_bits() != body.pi_trajectory[i].to_bits() {
            return Err(format!(
                "pick {i} π = {} but the answer trajectory has {}",
                p.pi, body.pi_trajectory[i]
            ));
        }
        if p.relevant != body.relevant {
            return Err(format!(
                "pick {i} relevant = {} but the answer has {}",
                p.relevant, body.relevant
            ));
        }
    }
    if let Some(last) = picks.last() {
        if last.covered != body.covered {
            return Err(format!(
                "final pick covers {} but the answer covers {}",
                last.covered, body.covered
            ));
        }
    }
    Ok(())
}

/// A deterministic load profile: every `(connection, request)` slot maps to
/// a fixed `(θ, k)` via seed mixing, so two executions of the same spec —
/// or an offline replay — exercise exactly the same queries.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Registry name of the dataset to load-test.
    pub dataset: String,
    /// Concurrent client connections.
    pub connections: usize,
    /// Requests issued per connection.
    pub requests_per_conn: usize,
    /// θ values drawn from per request.
    pub thetas: Vec<f64>,
    /// k values drawn from per request.
    pub ks: Vec<usize>,
    /// Relevance quantile for the per-connection session.
    pub quantile: f64,
    /// Mixing seed.
    pub seed: u64,
    /// Zipf-like skew exponent over the `θ × k` combination grid. `0.0`
    /// (uniform) reproduces the historical schedule byte-exactly; larger
    /// values concentrate traffic on the first combinations — combination
    /// `i` (row-major over `thetas × ks`) is drawn with weight
    /// `1 / (i + 1)^skew`, the shape cache experiments use to model
    /// production key reuse.
    pub skew: f64,
    /// How each connection issues its schedule over the wire.
    pub mode: LoadMode,
}

/// Wire discipline of a load-harness connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LoadMode {
    /// v1 request/response, one in flight — the historical harness.
    #[default]
    Blocking,
    /// One streamed run at a time ([`Request::RunStream`]); picks are
    /// checked against the terminal answer and time-to-first-pick is
    /// recorded. Negotiates v2 when the server offers it, falls back to
    /// bare v1 streaming otherwise.
    Streamed,
    /// `depth` tagged streamed runs in flight per connection (true
    /// pipelining; requires an async-mode server granting v2).
    Pipelined {
        /// In-flight requests per connection (clamped to at least 1).
        depth: usize,
    },
}

/// SplitMix64 finalizer: a cheap, high-quality deterministic mixer.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl LoadSpec {
    /// The fixed `(θ, k)` sequence of connection `conn`. Empty when either
    /// value pool is empty.
    pub fn schedule(&self, conn: usize) -> Vec<(f64, usize)> {
        if self.thetas.is_empty() || self.ks.is_empty() {
            return Vec::new();
        }
        if self.skew > 0.0 {
            return self.schedule_skewed(conn);
        }
        (0..self.requests_per_conn)
            .map(|r| {
                let h = mix(self.seed ^ ((conn as u64) << 32) ^ (r as u64));
                let theta = self.thetas[(h % self.thetas.len().max(1) as u64) as usize];
                let k = self.ks[((h >> 32) % self.ks.len().max(1) as u64) as usize];
                (theta, k)
            })
            .collect()
    }

    /// Skewed schedule: the flattened `θ × k` grid is sampled with Zipf-like
    /// weights `1 / (i + 1)^skew` via an inverse-CDF walk over the same
    /// SplitMix64 stream the uniform path uses — still fully deterministic
    /// in `(seed, conn, request)`.
    fn schedule_skewed(&self, conn: usize) -> Vec<(f64, usize)> {
        let combos: Vec<(f64, usize)> = self
            .thetas
            .iter()
            .flat_map(|&t| self.ks.iter().map(move |&k| (t, k)))
            .collect();
        let weights: Vec<f64> = (0..combos.len())
            .map(|i| 1.0 / ((i + 1) as f64).powf(self.skew))
            .collect();
        let total: f64 = weights.iter().sum();
        (0..self.requests_per_conn)
            .map(|r| {
                let h = mix(self.seed ^ ((conn as u64) << 32) ^ (r as u64));
                let u = (h as f64 / u64::MAX as f64) * total;
                let mut acc = 0.0;
                for (i, w) in weights.iter().enumerate() {
                    acc += w;
                    if u <= acc {
                        return combos[i];
                    }
                }
                // Float-accumulation slack: u can exceed the running sum by
                // an ulp; the last combination is the correct bucket then.
                combos[combos.len() - 1]
            })
            .collect()
    }

    /// Every distinct `(θ, k)` the spec will issue, keyed by `θ.to_bits()`.
    pub fn unique_queries(&self) -> Vec<(f64, usize)> {
        let mut seen: HashMap<(u64, usize), ()> = HashMap::new();
        let mut out = Vec::new();
        for conn in 0..self.connections {
            for (theta, k) in self.schedule(conn) {
                if seen.insert((theta.to_bits(), k), ()).is_none() {
                    out.push((theta, k));
                }
            }
        }
        out
    }
}

/// One successful load-test answer.
#[derive(Debug, Clone)]
pub struct LoadAnswer {
    /// Connection index.
    pub conn: usize,
    /// Request index within the connection.
    pub req: usize,
    /// θ issued.
    pub theta: f64,
    /// k issued.
    pub k: usize,
    /// The server's answer.
    pub body: AnswerBody,
}

/// Aggregate result of a load run.
#[derive(Debug)]
pub struct LoadReport {
    /// Successful answers, ordered by `(conn, req)`.
    pub answers: Vec<LoadAnswer>,
    /// Error descriptions (empty on a clean run).
    pub errors: Vec<String>,
    /// End-to-end wall time of the whole run.
    pub wall: Duration,
    /// Client-observed per-request latencies in milliseconds.
    pub latencies_ms: Vec<f64>,
    /// Client-observed time-to-first-pick in milliseconds (streamed and
    /// pipelined modes only; empty under [`LoadMode::Blocking`]).
    pub ttfp_ms: Vec<f64>,
}

impl LoadReport {
    /// Total requests that produced an answer.
    pub fn completed(&self) -> usize {
        self.answers.len()
    }

    /// Requests per second over the whole run.
    pub fn throughput_rps(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.answers.len() as f64 / secs
        }
    }

    /// Latency quantile `p` in `[0, 1]` (exact over the recorded samples).
    pub fn latency_quantile_ms(&self, p: f64) -> f64 {
        quantile(&self.latencies_ms, p)
    }

    /// Time-to-first-pick quantile `p` in `[0, 1]` over the recorded
    /// samples (0.0 when the mode streamed nothing).
    pub fn ttfp_quantile_ms(&self, p: f64) -> f64 {
        quantile(&self.ttfp_ms, p)
    }
}

fn quantile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut v = samples.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let idx = ((p.clamp(0.0, 1.0) * (v.len() - 1) as f64).round()) as usize;
    v[idx.min(v.len() - 1)]
}

/// Runs the load profile against a live server: each connection opens its
/// own session, issues its schedule, and closes. Answers come back ordered
/// by `(conn, req)` regardless of interleaving, so the report itself is
/// deterministic when the server is.
pub fn run_load(addr: &str, spec: &LoadSpec) -> Result<LoadReport, ServeError> {
    #[derive(Default)]
    struct ConnResult {
        answers: Vec<LoadAnswer>,
        errors: Vec<String>,
        latencies_ms: Vec<f64>,
        ttfp_ms: Vec<f64>,
    }

    /// Records one streamed/pipelined completion into the result.
    fn record_streamed(
        out: &mut ConnResult,
        conn: usize,
        req: usize,
        theta: f64,
        k: usize,
        run: StreamedRun,
    ) {
        let body = match run.terminal {
            Response::AnswerEnd(b) | Response::Answer(b) => b,
            other => {
                out.errors.push(format!("conn {conn} req {req}: {other:?}"));
                return;
            }
        };
        if let Err(e) = verify_stream_consistency(&run.picks, &body) {
            out.errors
                .push(format!("conn {conn} req {req} stream mismatch: {e}"));
            return;
        }
        out.latencies_ms.push(protocol::duration_ms(run.total));
        if let Some(t) = run.ttfp {
            out.ttfp_ms.push(protocol::duration_ms(t));
        }
        out.answers.push(LoadAnswer {
            conn,
            req,
            theta,
            k,
            body,
        });
    }

    let t0 = Instant::now();
    let mut handles = Vec::new();
    for conn in 0..spec.connections {
        let addr = addr.to_owned();
        let spec = spec.clone();
        let spawned = thread::Builder::new()
            .name(format!("graphrep-load-{conn}"))
            .spawn(move || -> ConnResult {
                let mut out = ConnResult::default();
                let mut client = match Client::connect(&addr) {
                    Ok(c) => c,
                    Err(e) => {
                        out.errors.push(format!("conn {conn}: {e}"));
                        return out;
                    }
                };
                if spec.mode != LoadMode::Blocking {
                    if let Err(e) = client.hello() {
                        out.errors.push(format!("conn {conn} hello: {e}"));
                        return out;
                    }
                }
                let opened = match client.open(&spec.dataset, spec.quantile) {
                    Ok(o) => o,
                    Err(e) => {
                        out.errors.push(format!("conn {conn} open: {e}"));
                        return out;
                    }
                };
                let schedule = spec.schedule(conn);
                match spec.mode {
                    LoadMode::Blocking => {
                        for (req, (theta, k)) in schedule.into_iter().enumerate() {
                            let q0 = Instant::now();
                            match client.run(opened.session, theta, k, None) {
                                Ok(Response::Answer(body)) => {
                                    out.latencies_ms.push(protocol::duration_ms(q0.elapsed()));
                                    out.answers.push(LoadAnswer {
                                        conn,
                                        req,
                                        theta,
                                        k,
                                        body,
                                    });
                                }
                                Ok(other) => {
                                    out.errors.push(format!("conn {conn} req {req}: {other:?}"))
                                }
                                Err(e) => out.errors.push(format!("conn {conn} req {req}: {e}")),
                            }
                        }
                    }
                    LoadMode::Streamed => {
                        for (req, (theta, k)) in schedule.into_iter().enumerate() {
                            match client.run_streaming(opened.session, theta, k, None) {
                                Ok(run) => record_streamed(&mut out, conn, req, theta, k, run),
                                Err(e) => out.errors.push(format!("conn {conn} req {req}: {e}")),
                            }
                        }
                    }
                    LoadMode::Pipelined { depth } => {
                        let depth = depth.max(1);
                        let mut req = 0usize;
                        for chunk in schedule.chunks(depth) {
                            match client.run_pipelined(opened.session, chunk, true) {
                                Ok(runs) => {
                                    for (i, run) in runs.into_iter().enumerate() {
                                        let (theta, k) = chunk[i];
                                        record_streamed(&mut out, conn, req + i, theta, k, run);
                                    }
                                }
                                Err(e) => {
                                    out.errors.push(format!("conn {conn} batch at {req}: {e}"));
                                    return out;
                                }
                            }
                            req += chunk.len();
                        }
                    }
                }
                if let Err(e) = client.close(opened.session) {
                    out.errors.push(format!("conn {conn} close: {e}"));
                }
                out
            })
            .map_err(|e| ServeError::new(format!("spawning load thread {conn}: {e}")))?;
        handles.push(spawned);
    }
    let mut answers = Vec::new();
    let mut errors = Vec::new();
    let mut latencies_ms = Vec::new();
    let mut ttfp_ms = Vec::new();
    for h in handles {
        match h.join() {
            Ok(mut r) => {
                answers.append(&mut r.answers);
                errors.append(&mut r.errors);
                latencies_ms.append(&mut r.latencies_ms);
                ttfp_ms.append(&mut r.ttfp_ms);
            }
            Err(_) => errors.push("a load thread panicked".to_owned()),
        }
    }
    answers.sort_by_key(|a| (a.conn, a.req));
    Ok(LoadReport {
        answers,
        errors,
        wall: t0.elapsed(),
        latencies_ms,
        ttfp_ms,
    })
}

/// Computes the offline ground truth for `spec` on an already-loaded
/// dataset: one shared session per quantile, `QuerySession::run` per unique
/// `(θ, k)`. Keys are `(θ.to_bits(), k)`.
pub fn offline_reference(ds: &LoadedDataset, spec: &LoadSpec) -> HashMap<(u64, usize), AnswerSet> {
    let session = ds
        .index_arc()
        .start_session_shared(ds.relevant_for(spec.quantile));
    let mut map = HashMap::new();
    for (theta, k) in spec.unique_queries() {
        let (answer, _) = session.run(theta, k);
        map.insert((theta.to_bits(), k), answer);
    }
    map
}

/// Loads the dataset at `dir` and computes [`offline_reference`] for it.
///
/// A sharded layout (a `<dir>/shards/` manifest) persists liveness inside
/// the per-shard indexes rather than a single `index.bin`, so its
/// tombstones are replayed onto the freshly built reference index first —
/// the ground truth stays a single-index `QuerySession::run`, answering
/// over exactly the live set the scatter-gather server serves.
pub fn offline_reference_from_dir(
    dir: &Path,
    spec: &LoadSpec,
) -> Result<HashMap<(u64, usize), AnswerSet>, ServeError> {
    let ds = LoadedDataset::open(&spec.dataset, dir, false)?;
    let shard_dir = dir.join("shards");
    if !shard_dir.is_dir() {
        return Ok(offline_reference(&ds, spec));
    }
    let coord =
        graphrep_shard::Coordinator::load(&shard_dir, graphrep_ged::GedConfig::default())
            .map_err(|e| ServeError::new(format!("shard layout {}: {e}", shard_dir.display())))?;
    let live: std::collections::HashSet<u32> = coord.live_ids().into_iter().collect();
    let index = ds.index_arc();
    let dead: Vec<u32> = (0..index.tree().len() as u32)
        .filter(|g| index.tree().is_live(*g) && !live.contains(g))
        .collect();
    if dead.is_empty() {
        return Ok(offline_reference(&ds, spec));
    }
    let mut fork = index.fork();
    for g in dead {
        fork.remove(g)
            .map_err(|e| ServeError::new(format!("replaying shard tombstone {g}: {e}")))?;
    }
    let session = std::sync::Arc::new(fork).start_session_shared(ds.relevant_for(spec.quantile));
    let mut map = HashMap::new();
    for (theta, k) in spec.unique_queries() {
        let (answer, _) = session.run(theta, k);
        map.insert((theta.to_bits(), k), answer);
    }
    Ok(map)
}

/// Checks every served answer against the offline ground truth via the
/// byte-level fingerprint. Returns how many answers were verified, or a
/// description of the first mismatch.
pub fn verify_against_offline(
    report: &LoadReport,
    reference: &HashMap<(u64, usize), AnswerSet>,
) -> Result<usize, String> {
    for a in &report.answers {
        let Some(want) = reference.get(&(a.theta.to_bits(), a.k)) else {
            return Err(format!(
                "no offline reference for θ = {}, k = {}",
                a.theta, a.k
            ));
        };
        let got = a.body.fingerprint();
        let want = format!("{want:?}");
        if got != want {
            return Err(format!(
                "conn {} req {} (θ = {}, k = {}): server answered {got} but offline run gives {want}",
                a.conn, a.req, a.theta, a.k
            ));
        }
    }
    Ok(report.answers.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> LoadSpec {
        LoadSpec {
            dataset: "d".into(),
            connections: 3,
            requests_per_conn: 8,
            thetas: vec![3.0, 4.0, 5.0],
            ks: vec![2, 4],
            quantile: 0.75,
            seed: 42,
            skew: 0.0,
            mode: LoadMode::Blocking,
        }
    }

    #[test]
    fn skewed_schedule_is_deterministic_and_concentrated() {
        let mut s = spec();
        s.skew = 1.2;
        s.requests_per_conn = 100;
        assert_eq!(s.schedule(0), s.schedule(0));
        // The head combination must dominate a uniform share (100 / 6 ≈ 17).
        let head = (s.thetas[0], s.ks[0]);
        let head_hits = (0..s.connections)
            .flat_map(|c| s.schedule(c))
            .filter(|&(t, k)| t.to_bits() == head.0.to_bits() && k == head.1)
            .count();
        assert!(
            head_hits > (s.connections * s.requests_per_conn) / s.thetas.len() / s.ks.len(),
            "skew 1.2 must over-sample the head combination, got {head_hits}"
        );
        // Every drawn combination is from the grid, and unique_queries
        // still covers the skewed schedule.
        let uniq = s.unique_queries();
        for conn in 0..s.connections {
            for (theta, k) in s.schedule(conn) {
                assert!(uniq
                    .iter()
                    .any(|&(t, kk)| t.to_bits() == theta.to_bits() && kk == k));
            }
        }
    }

    #[test]
    fn zero_skew_keeps_the_historical_uniform_schedule() {
        // The uniform path must stay byte-exact so existing expectations
        // (and cross-version replay comparisons) hold.
        let s = spec();
        let first: Vec<(u64, usize)> = s
            .schedule(0)
            .into_iter()
            .map(|(t, k)| (t.to_bits(), k))
            .collect();
        let conn = 0u64;
        let h = mix(s.seed ^ conn);
        let want0 = (
            s.thetas[(h % 3) as usize].to_bits(),
            s.ks[((h >> 32) % 2) as usize],
        );
        assert_eq!(first[0], want0);
    }

    #[test]
    fn schedules_are_deterministic_and_seeded() {
        let s = spec();
        assert_eq!(s.schedule(0), s.schedule(0));
        assert_ne!(s.schedule(0), s.schedule(1), "connections must differ");
        let mut other = spec();
        other.seed = 43;
        assert_ne!(s.schedule(0), other.schedule(0), "seed must matter");
    }

    #[test]
    fn unique_queries_covers_the_schedule() {
        let s = spec();
        let uniq = s.unique_queries();
        assert!(!uniq.is_empty());
        assert!(uniq.len() <= s.thetas.len() * s.ks.len());
        for conn in 0..s.connections {
            for (theta, k) in s.schedule(conn) {
                assert!(uniq
                    .iter()
                    .any(|&(t, kk)| t.to_bits() == theta.to_bits() && kk == k));
            }
        }
    }

    #[test]
    fn report_quantiles() {
        let r = LoadReport {
            answers: vec![],
            errors: vec![],
            wall: Duration::from_secs(1),
            latencies_ms: vec![5.0, 1.0, 9.0, 3.0],
            ttfp_ms: vec![2.0, 0.5],
        };
        assert_eq!(r.latency_quantile_ms(0.0), 1.0);
        assert_eq!(r.latency_quantile_ms(1.0), 9.0);
        assert_eq!(r.latency_quantile_ms(0.5), 5.0);
    }
}
