//! Wire protocol: length-prefixed JSON frames over TCP.
//!
//! Every message is one frame: a 4-byte big-endian payload length followed
//! by that many bytes of JSON. Requests and responses are externally tagged
//! enums (`{"Run": {...}}`, `"Pong"`), so a frame is self-describing and the
//! protocol can grow new variants without a version bump. The vendored
//! `serde_json` prints floats via their shortest round-trip representation,
//! which is what makes server answers byte-comparable to offline answers.

use graphrep_core::{AnswerSet, CacheCounters, RunStats};
use graphrep_graph::GraphId;
use serde::{Deserialize, Serialize};
use std::io::{ErrorKind, Read, Write};
use std::time::{Duration, Instant};

/// Hard ceiling on a single frame's JSON payload. A header announcing more
/// than this is treated as a protocol violation, not an allocation request.
pub const MAX_FRAME_BYTES: usize = 16 << 20;

/// Machine-readable error codes carried by [`Response::Error`].
pub mod codes {
    /// Admission control rejected the request: the server queue is full.
    pub const OVERLOADED: &str = "overloaded";
    /// The request's deadline expired before (or while) it executed.
    pub const DEADLINE_EXCEEDED: &str = "deadline_exceeded";
    /// Unknown dataset or unknown/expired session id.
    pub const NOT_FOUND: &str = "not_found";
    /// The request was structurally valid JSON but semantically malformed.
    pub const BAD_REQUEST: &str = "bad_request";
    /// The server is draining and no longer admits new work.
    pub const SHUTTING_DOWN: &str = "shutting_down";
    /// A server-side invariant failed while handling the request.
    pub const INTERNAL: &str = "internal";
    /// A streaming consumer read too slowly: its connection write queue hit
    /// the configured cap and the in-flight run was cancelled.
    pub const SLOW_CONSUMER: &str = "slow_consumer";
}

/// Protocol version 1: the original blocking protocol — untagged frames,
/// strict FIFO request/response pairing, whole answers in one frame.
pub const PROTOCOL_V1: u32 = 1;

/// Protocol version 2: adds [`TaggedRequest`]/[`TaggedResponse`] envelopes
/// (client-chosen request ids, out-of-order completion) and streamed runs
/// ([`Request::RunStream`] → [`Response::Pick`]* [`Response::AnswerEnd`]).
pub const PROTOCOL_V2: u32 = 2;

/// Highest protocol version this build speaks.
pub const PROTOCOL_MAX: u32 = PROTOCOL_V2;

/// One error type for the whole serving layer: framing, I/O, registry
/// loading, and client-side verification failures all surface as a message.
#[derive(Debug)]
pub struct ServeError {
    /// Human-readable description of what failed.
    pub message: String,
}

impl ServeError {
    /// Wraps a message.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        Self::new(format!("io: {e}"))
    }
}

impl From<serde_json::Error> for ServeError {
    fn from(e: serde_json::Error) -> Self {
        Self::new(format!("json: {e}"))
    }
}

/// Body of [`Request::Open`]: start a session on a named dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpenBody {
    /// Registry name of the dataset to query.
    pub dataset: String,
    /// Score quantile defining the relevant set (same default as the CLI).
    pub quantile: f64,
}

/// Body of [`Request::Run`]: one `(θ, k)` run on an open session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunBody {
    /// Session id returned by [`Response::Opened`].
    pub session: u64,
    /// Distance threshold θ.
    pub theta: f64,
    /// Answer-set size k.
    pub k: usize,
    /// Per-request deadline in milliseconds, measured from admission. `None`
    /// falls back to the server's default (which may be unlimited).
    pub deadline_ms: Option<u64>,
}

/// Body of [`Request::Close`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CloseBody {
    /// Session id to discard.
    pub session: u64,
}

/// Body of [`Request::Ping`]: a no-op that occupies a worker for `wait_ms`.
/// Zero-cost liveness probe by default; with a wait it is the load/overload
/// tests' deterministic stand-in for a slow query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PingBody {
    /// Milliseconds the worker sleeps before replying.
    pub wait_ms: u64,
}

/// One wire edge: `(u, v, label)` with raw label ids. The server rebuilds
/// the graph through [`graphrep_graph::GraphBuilder`], so wire input cannot
/// smuggle in a graph violating the structural invariants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireEdge {
    /// One endpoint.
    pub u: u16,
    /// The other endpoint.
    pub v: u16,
    /// Edge label id.
    pub label: u32,
}

/// Body of [`Request::Insert`]: add a graph to a dataset (DESIGN.md §10).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InsertBody {
    /// Registry name of the dataset to mutate.
    pub dataset: String,
    /// Node labels; node `i` gets `nodes[i]`.
    pub nodes: Vec<u32>,
    /// Edges over those nodes.
    pub edges: Vec<WireEdge>,
    /// Feature vector (must match the dataset's dimensionality).
    pub features: Vec<f64>,
}

/// Body of [`Request::Remove`]: tombstone a graph (DESIGN.md §10).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RemoveBody {
    /// Registry name of the dataset to mutate.
    pub dataset: String,
    /// Graph id to remove.
    pub id: GraphId,
}

/// Body of [`Request::Hello`]: protocol-version negotiation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HelloBody {
    /// The highest protocol version the client wants to speak.
    pub version: u32,
}

/// Body of [`Response::HelloAck`]: the negotiated protocol version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HelloAckBody {
    /// The version this connection will speak from the next frame on:
    /// `min(client requested, server max)`.
    pub version: u32,
    /// The highest version the server supports, for diagnostics.
    pub max: u32,
}

/// A client request. `Open`/`Run`/`RunStream`/`Ping`/`Insert`/`Remove` go
/// through the bounded worker pool (and can be rejected by admission
/// control); `Hello`/`Close`/`Stats`/`Shutdown` are answered inline.
///
/// Clients that never send [`Request::Hello`] speak [`PROTOCOL_V1`]: bare
/// `Request` frames answered strictly in order by bare `Response` frames —
/// exactly the pre-v2 wire format, so old blocking clients keep working
/// against new servers byte-for-byte. After a `Hello` negotiating
/// [`PROTOCOL_V2`], every subsequent frame on the connection is a
/// [`TaggedRequest`] / [`TaggedResponse`] envelope.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Start a session (paper Sec 7 initialization phase).
    Open(OpenBody),
    /// Execute one `(θ, k)` search-and-update run.
    Run(RunBody),
    /// Discard a session.
    Close(CloseBody),
    /// Fetch live server metrics.
    Stats,
    /// Liveness probe / synthetic work item.
    Ping(PingBody),
    /// Add a graph to a dataset.
    Insert(InsertBody),
    /// Tombstone a graph in a dataset.
    Remove(RemoveBody),
    /// Begin graceful shutdown: drain queued work, then exit.
    Shutdown,
    /// Negotiate the protocol version (must be the first frame if sent).
    Hello(HelloBody),
    /// Execute one `(θ, k)` run, streaming each accepted pick as its own
    /// [`Response::Pick`] frame before the terminal [`Response::AnswerEnd`].
    RunStream(RunBody),
}

/// A v2 request envelope: a client-chosen id echoed on every response frame
/// the request produces, which is what lets responses complete out of order
/// on a pipelined connection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaggedRequest {
    /// Client-chosen correlation id. Must be unique among the connection's
    /// in-flight requests; reusing a live id is a [`codes::BAD_REQUEST`].
    pub id: u64,
    /// The request proper.
    pub req: Request,
}

/// A v2 response envelope carrying the originating request's id. A streamed
/// run emits many envelopes with the same id (picks, then the terminal
/// answer); every other request emits exactly one.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaggedResponse {
    /// The id of the request this frame answers.
    pub id: u64,
    /// The response proper.
    pub resp: Response,
}

/// Body of [`Response::Opened`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpenedBody {
    /// Session id for subsequent [`Request::Run`]s.
    pub session: u64,
    /// Size of the relevant set `|L_q|`.
    pub relevant: usize,
    /// Wall time of the initialization phase in milliseconds.
    pub init_ms: f64,
}

/// Body of [`Response::Answer`]: an [`AnswerSet`] plus run statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnswerBody {
    /// Chosen graphs, in selection order.
    pub ids: Vec<GraphId>,
    /// Relevant graphs covered by the union of θ-neighborhoods.
    pub covered: usize,
    /// Size of the relevant set.
    pub relevant: usize,
    /// Representative power after each greedy iteration.
    pub pi_trajectory: Vec<f64>,
    /// Edit-distance engine calls made by this run.
    pub distance_calls: u64,
    /// Server-side wall time of the run in milliseconds.
    pub wall_ms: f64,
    /// Whether the answer was served from the cross-session answer cache.
    /// Not part of [`AnswerBody::fingerprint`] — a hit is byte-identical to
    /// the run it memoized; this flag only describes how it was obtained.
    pub cached: bool,
    /// Number of shards the dataset is split over; `0` means the run went
    /// through a single NB-Index (no scatter-gather).
    pub shard_count: usize,
    /// Greedy picks for which the bound aggregation skipped at least the
    /// pruned shards (sharded runs only; see `shards_pruned`).
    pub picks: u64,
    /// Total shard visits the coordinator skipped across all picks because
    /// the shard's aggregated bound could not beat the current best.
    pub shards_pruned: u64,
    /// Total shard visits that did refine candidates (verification work).
    pub shards_touched: u64,
}

impl AnswerBody {
    /// Packs an offline run result for the wire (`cached: false`; the
    /// server's cached path sets the flag on a hit).
    pub fn from_run(answer: &AnswerSet, stats: &RunStats) -> Self {
        Self {
            ids: answer.ids.clone(),
            covered: answer.covered,
            relevant: answer.relevant,
            pi_trajectory: answer.pi_trajectory.clone(),
            distance_calls: stats.distance_calls,
            wall_ms: duration_ms(stats.wall),
            cached: false,
            shard_count: 0,
            picks: 0,
            shards_pruned: 0,
            shards_touched: 0,
        }
    }

    /// Packs a scatter-gather run result for the wire: identical answer
    /// fields, plus the coordinator's per-pick shard pruning statistics.
    pub fn from_sharded_run(answer: &AnswerSet, stats: &graphrep_shard::CoordRunStats) -> Self {
        Self {
            ids: answer.ids.clone(),
            covered: answer.covered,
            relevant: answer.relevant,
            pi_trajectory: answer.pi_trajectory.clone(),
            distance_calls: stats.engine_entries.iter().sum(),
            wall_ms: duration_ms(stats.wall),
            cached: false,
            shard_count: stats.shard_count,
            picks: stats.picks,
            shards_pruned: stats.pruned_shard_picks,
            shards_touched: stats.touched_shard_picks,
        }
    }

    /// Reconstructs the [`AnswerSet`] (dropping the run statistics).
    pub fn answer_set(&self) -> AnswerSet {
        AnswerSet {
            ids: self.ids.clone(),
            covered: self.covered,
            relevant: self.relevant,
            pi_trajectory: self.pi_trajectory.clone(),
        }
    }

    /// Canonical comparison form: the debug rendering of the answer set,
    /// which covers ids, coverage, and the full π trajectory. Two answers
    /// with equal fingerprints are byte-identical results.
    pub fn fingerprint(&self) -> String {
        format!("{:?}", self.answer_set())
    }
}

/// Per-endpoint request counters and latency summary, as served by
/// [`Response::Stats`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EndpointStats {
    /// Endpoint name (`open`, `run`, `close`, `stats`, `ping`, `insert`,
    /// `remove`, `shutdown`).
    pub endpoint: String,
    /// Requests dispatched (including rejected ones).
    pub requests: u64,
    /// Requests answered successfully.
    pub ok: u64,
    /// Requests rejected by admission control.
    pub overloaded: u64,
    /// Requests aborted by their deadline.
    pub deadline_exceeded: u64,
    /// All other error responses.
    pub errors: u64,
    /// Latency median in milliseconds (bucket upper bound).
    pub p50_ms: f64,
    /// Latency 99th percentile in milliseconds (bucket upper bound).
    pub p99_ms: f64,
    /// Upper bound of the slowest occupied latency bucket, in milliseconds.
    pub max_ms: f64,
    /// Request counts per log₂ latency bucket: bucket `b` holds requests
    /// that took `[2^b, 2^(b+1))` microseconds. Trailing zeros trimmed.
    pub latency_buckets: Vec<u64>,
}

/// Distance-oracle counter deltas since server start, per dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OracleDelta {
    /// Engine invocations that produced an exact distance.
    pub distance_computations: u64,
    /// "Outside τ" verdicts (engine or filter tier).
    pub within_rejections: u64,
    /// Requests answered from cache.
    pub cache_hits: u64,
    /// Upper-bound-certified accepts (no engine call).
    pub ub_accepts: u64,
    /// Raw edit-distance engine calls.
    pub engine_calls: u64,
    /// Rejections by the size lower bound.
    pub size_rejects: u64,
    /// Rejections by the label lower bound.
    pub label_rejects: u64,
    /// Rejections by the degree-sequence lower bound.
    pub degree_rejects: u64,
    /// Rejections by the vantage (Lipschitz) lower bound.
    pub vantage_lb_rejects: u64,
    /// Acceptances by the vantage (triangle) upper bound.
    pub vantage_ub_accepts: u64,
}

/// Counters of one cache tier (view store or answer cache), as served by
/// [`Response::Stats`]. Conservation identities hold exactly in every
/// snapshot: `lookups == hits + misses` and `evictions ≤ insertions`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheTierStats {
    /// Lookup requests served (hit or miss).
    pub lookups: u64,
    /// Lookups answered from the store.
    pub hits: u64,
    /// Lookups that found nothing usable.
    pub misses: u64,
    /// Entries written (including replacements).
    pub insertions: u64,
    /// Entries dropped by capacity pressure, TTL expiry, or replacement.
    pub evictions: u64,
    /// Entries dropped by wholesale invalidation (mutation epoch bumps).
    pub invalidated: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Approximate resident bytes of the stored values.
    pub memory_bytes: usize,
}

impl From<CacheCounters> for CacheTierStats {
    fn from(c: CacheCounters) -> Self {
        Self {
            lookups: c.lookups,
            hits: c.hits,
            misses: c.misses,
            insertions: c.insertions,
            evictions: c.evictions,
            invalidated: c.invalidated,
            entries: c.entries,
            memory_bytes: c.memory_bytes,
        }
    }
}

/// One shard of a sharded dataset, as served by [`Response::Stats`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Shard mutation epoch.
    pub epoch: u64,
    /// Live members.
    pub live: usize,
    /// Member slots (live + tombstoned).
    pub len: usize,
    /// Edit-distance engine calls through the shard's own oracle.
    pub engine_calls: u64,
    /// Engine calls served for foreign (cross-shard) probes.
    pub foreign_calls: u64,
    /// Resident bytes of the shard's NB-Index.
    pub index_memory_bytes: usize,
}

/// Per-dataset registry statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Registry name.
    pub name: String,
    /// Number of graphs in the database.
    pub graphs: usize,
    /// Resident NB-Index memory (vantage orderings + tree) in bytes.
    pub index_memory_bytes: usize,
    /// How the index came to be: `loaded` (warm start from disk) or `built`.
    pub index_source: String,
    /// Oracle activity since the server started serving this dataset.
    pub oracle: OracleDelta,
    /// Whether the caching layer is on for this dataset.
    pub cache_enabled: bool,
    /// Materialized θ-neighborhood view-store counters and memory.
    pub view_store: CacheTierStats,
    /// Cross-session answer-cache counters and memory.
    pub answer_cache: CacheTierStats,
    /// Per-shard breakdown for sharded datasets; empty when the dataset is
    /// served by a single NB-Index.
    pub shards: Vec<ShardStats>,
}

/// Body of [`Response::Stats`]: a full observability snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsBody {
    /// Milliseconds since the server started.
    pub uptime_ms: f64,
    /// Worker-pool size (the in-flight bound).
    pub workers: usize,
    /// Admission-control queue capacity.
    pub queue_limit: usize,
    /// Requests currently waiting in the queue.
    pub queue_len: usize,
    /// Sessions currently open.
    pub sessions_open: usize,
    /// Sessions removed by idle expiry since start.
    pub sessions_expired: u64,
    /// Per-endpoint counters and latency histograms.
    pub endpoints: Vec<EndpointStats>,
    /// Per-dataset index and oracle statistics.
    pub datasets: Vec<DatasetStats>,
    /// Connection I/O mode (`blocking` or `async`). Appended after v1; old
    /// clients ignore unknown fields.
    pub io_mode: String,
    /// Connections currently open (accepted and not yet torn down).
    pub connections_open: usize,
}

/// Body of [`Response::Mutated`]: receipt for an applied insert/remove.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MutatedBody {
    /// Affected graph id (the new id for inserts).
    pub id: GraphId,
    /// Dataset mutation epoch after the operation.
    pub epoch: u64,
    /// Live (non-tombstoned) graphs after the operation.
    pub live: usize,
    /// Tombstoned graphs after the operation.
    pub tombstones: usize,
    /// Whether the operation tripped the rebuild policy.
    pub rebuilt: bool,
    /// Server-side wall time of the mutation in milliseconds.
    pub wall_ms: f64,
    /// Full per-shard epoch vector after the mutation (sharded datasets
    /// only; empty for single-index datasets). For sharded datasets the
    /// `epoch` field above is the owning shard's epoch.
    pub shard_epochs: Vec<u64>,
}

/// Body of [`Response::Pick`]: one streamed greedy pick, emitted as
/// CELF/the shard coordinator commits it. The fields mirror one entry of
/// the final answer: `id` is `ids[seq]` and `pi` is `pi_trajectory[seq]`,
/// so concatenating a run's picks reconstructs the answer prefix exactly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PickBody {
    /// Zero-based pick index within the run.
    pub seq: usize,
    /// The representative graph just accepted.
    pub id: GraphId,
    /// Relevant graphs covered after this pick.
    pub covered: usize,
    /// Size of the relevant set `|L_q|`.
    pub relevant: usize,
    /// Coverage ratio π after this pick.
    pub pi: f64,
}

impl PickBody {
    /// Packs a core pick event for the wire.
    pub fn from_event(e: &graphrep_core::PickEvent) -> Self {
        Self {
            seq: e.seq,
            id: e.id,
            covered: e.covered,
            relevant: e.relevant,
            pi: e.pi,
        }
    }
}

/// Body of [`Response::Error`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorBody {
    /// Machine-readable code from [`codes`].
    pub code: String,
    /// Human-readable detail.
    pub message: String,
}

/// A server response. Every request yields exactly one response frame,
/// except [`Request::RunStream`], which yields zero or more
/// [`Response::Pick`] frames followed by exactly one terminal frame
/// ([`Response::AnswerEnd`] on success, [`Response::Error`] otherwise).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Session created.
    Opened(OpenedBody),
    /// Run finished.
    Answer(AnswerBody),
    /// Session discarded.
    Closed,
    /// Metrics snapshot.
    Stats(StatsBody),
    /// Liveness reply.
    Pong,
    /// Mutation applied.
    Mutated(MutatedBody),
    /// Shutdown acknowledged; the server drains and exits.
    ShutdownAck,
    /// The request failed; see the code for why.
    Error(ErrorBody),
    /// Protocol version negotiated.
    HelloAck(HelloAckBody),
    /// One streamed greedy pick of an in-flight [`Request::RunStream`].
    Pick(PickBody),
    /// Terminal frame of a streamed run: the full answer + stats, with a
    /// fingerprint byte-identical to the [`Response::Answer`] the blocking
    /// `Run` of the same `(θ, k)` would have returned.
    AnswerEnd(AnswerBody),
}

impl Response {
    /// The error code if this is an error response.
    pub fn error_code(&self) -> Option<&str> {
        match self {
            Response::Error(e) => Some(&e.code),
            _ => None,
        }
    }
}

/// Converts a [`Duration`] to fractional milliseconds.
pub fn duration_ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Encodes one frame (4-byte big-endian length + JSON payload) into an
/// owned buffer — the form worker threads hand to a connection write queue.
pub fn encode_frame<T: Serialize>(msg: &T) -> Result<Vec<u8>, ServeError> {
    let body = serde_json::to_string(msg)?;
    if body.len() > MAX_FRAME_BYTES {
        return Err(ServeError::new(format!(
            "frame of {} bytes exceeds the {MAX_FRAME_BYTES}-byte limit",
            body.len()
        )));
    }
    let mut frame = Vec::with_capacity(4 + body.len());
    frame.extend_from_slice(&(body.len() as u32).to_be_bytes());
    frame.extend_from_slice(body.as_bytes());
    Ok(frame)
}

/// Writes one frame: 4-byte big-endian length, then the JSON payload.
pub fn write_frame<T: Serialize>(w: &mut impl Write, msg: &T) -> Result<(), ServeError> {
    let body = serde_json::to_string(msg)?;
    if body.len() > MAX_FRAME_BYTES {
        return Err(ServeError::new(format!(
            "frame of {} bytes exceeds the {MAX_FRAME_BYTES}-byte limit",
            body.len()
        )));
    }
    w.write_all(&(body.len() as u32).to_be_bytes())?;
    w.write_all(body.as_bytes())?;
    w.flush()?;
    Ok(())
}

/// Outcome of one [`read_frame`] attempt on a stream that may have a read
/// timeout configured.
#[derive(Debug)]
pub enum FrameRead<T> {
    /// A complete frame arrived.
    Frame(T),
    /// The read timed out before any byte of a new frame arrived. The caller
    /// may poll its shutdown flag and retry.
    Idle,
    /// The peer closed the connection at a frame boundary.
    Closed,
}

enum Fill {
    Done,
    Empty,
    Eof,
}

/// Fills `buf` across read-timeout wakeups. With `idle_ok`, a timeout (or
/// clean close) before the first byte is a non-event; without it — i.e. in
/// the middle of a frame — the peer gets `stall_limit` to produce the rest
/// before the read is declared failed.
fn fill(
    r: &mut impl Read,
    buf: &mut [u8],
    stall_limit: Duration,
    idle_ok: bool,
) -> Result<Fill, ServeError> {
    let mut filled = 0usize;
    let mut stalled_since: Option<Instant> = None;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 && idle_ok {
                    return Ok(Fill::Eof);
                }
                return Err(ServeError::new("peer closed mid-frame"));
            }
            Ok(n) => {
                filled += n;
                stalled_since = None;
            }
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                ) =>
            {
                if filled == 0 && idle_ok {
                    return Ok(Fill::Empty);
                }
                let since = *stalled_since.get_or_insert_with(Instant::now);
                if since.elapsed() > stall_limit {
                    return Err(ServeError::new("peer stalled mid-frame"));
                }
            }
            Err(e) => return Err(e.into()),
        }
    }
    Ok(Fill::Done)
}

/// Reads one frame. On a stream with a read timeout, returns
/// [`FrameRead::Idle`] when no frame has started yet — the hook that keeps
/// connection threads responsive to server shutdown without busy-waiting.
pub fn read_frame<T: Deserialize>(
    r: &mut impl Read,
    stall_limit: Duration,
) -> Result<FrameRead<T>, ServeError> {
    let mut header = [0u8; 4];
    match fill(r, &mut header, stall_limit, true)? {
        Fill::Empty => return Ok(FrameRead::Idle),
        Fill::Eof => return Ok(FrameRead::Closed),
        Fill::Done => {}
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(ServeError::new(format!(
            "peer announced a {len}-byte frame (limit {MAX_FRAME_BYTES})"
        )));
    }
    let mut payload = vec![0u8; len];
    match fill(r, &mut payload, stall_limit, false)? {
        Fill::Done => {}
        // Unreachable: idle_ok is false, so fill only returns Done or Err.
        Fill::Empty | Fill::Eof => return Err(ServeError::new("truncated frame")),
    }
    let text = String::from_utf8(payload)
        .map_err(|e| ServeError::new(format!("frame is not UTF-8: {e}")))?;
    Ok(FrameRead::Frame(serde_json::from_str(&text)?))
}

/// Typed, fatal decode failures of the incremental [`FrameDecoder`]. Every
/// variant poisons the stream: framing has lost sync, so the only safe
/// recovery is closing the connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// A frame header announced more than [`MAX_FRAME_BYTES`].
    Oversized {
        /// The announced payload length.
        announced: usize,
    },
    /// A complete payload was not valid UTF-8.
    Utf8 {
        /// Decoder detail.
        detail: String,
    },
    /// A complete payload was not valid JSON for the expected type.
    Json {
        /// Parser detail.
        detail: String,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Oversized { announced } => write!(
                f,
                "peer announced a {announced}-byte frame (limit {MAX_FRAME_BYTES})"
            ),
            DecodeError::Utf8 { detail } => write!(f, "frame is not UTF-8: {detail}"),
            DecodeError::Json { detail } => write!(f, "frame is not valid JSON: {detail}"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl From<DecodeError> for ServeError {
    fn from(e: DecodeError) -> Self {
        ServeError::new(e.to_string())
    }
}

/// Incremental frame decoder for readiness-driven (non-blocking) reads:
/// [`FrameDecoder::feed`] accepts whatever bytes the socket produced —
/// including partial headers and payloads split at arbitrary boundaries —
/// and [`FrameDecoder::next_payload`] yields complete frames as they become
/// available. Malformed input surfaces as a typed [`DecodeError`]; the
/// decoder itself never panics and never reads past a frame boundary, so a
/// well-formed frame following a complete frame is always decoded intact.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by returned frames. Compacted
    /// opportunistically so the buffer does not grow without bound.
    start: usize,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes read from the transport.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Compact before growing: everything before `start` is dead.
        if self.start > 0 && (self.start >= self.buf.len() || self.start > 64 * 1024) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet returned as frames (partial frame data).
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Returns the next complete frame's payload as validated UTF-8, `None`
    /// when more bytes are needed. Errors are fatal for the stream.
    pub fn next_payload(&mut self) -> Result<Option<String>, DecodeError> {
        let avail = &self.buf[self.start..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([avail[0], avail[1], avail[2], avail[3]]) as usize;
        if len > MAX_FRAME_BYTES {
            return Err(DecodeError::Oversized { announced: len });
        }
        if avail.len() < 4 + len {
            return Ok(None);
        }
        let payload = avail[4..4 + len].to_vec();
        // Consume the frame before validating the payload: the framing layer
        // stays in sync even when the payload itself is garbage.
        self.start += 4 + len;
        match String::from_utf8(payload) {
            Ok(text) => Ok(Some(text)),
            Err(e) => Err(DecodeError::Utf8 {
                detail: e.to_string(),
            }),
        }
    }

    /// Decodes the next complete frame into `T`, `None` when more bytes are
    /// needed.
    pub fn next_message<T: Deserialize>(&mut self) -> Result<Option<T>, DecodeError> {
        match self.next_payload()? {
            None => Ok(None),
            Some(text) => match serde_json::from_str(&text) {
                Ok(v) => Ok(Some(v)),
                Err(e) => Err(DecodeError::Json {
                    detail: e.to_string(),
                }),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(msg: &T) -> T {
        let mut buf = Vec::new();
        write_frame(&mut buf, msg).unwrap();
        match read_frame::<T>(&mut buf.as_slice(), Duration::from_secs(1)).unwrap() {
            FrameRead::Frame(t) => t,
            other => panic!("expected a frame, got {other:?}"),
        }
    }

    #[test]
    fn request_frames_round_trip() {
        for req in [
            Request::Open(OpenBody {
                dataset: "dud".into(),
                quantile: 0.75,
            }),
            Request::Run(RunBody {
                session: 7,
                theta: 3.5,
                k: 4,
                deadline_ms: Some(250),
            }),
            Request::Close(CloseBody { session: 7 }),
            Request::Stats,
            Request::Ping(PingBody { wait_ms: 0 }),
            Request::Shutdown,
        ] {
            assert_eq!(round_trip(&req), req);
        }
    }

    #[test]
    fn answer_body_preserves_float_trajectories() {
        let body = AnswerBody {
            ids: vec![3, 1, 9],
            covered: 17,
            relevant: 23,
            pi_trajectory: vec![0.1, 1.0 / 3.0, 0.7391304347826086],
            distance_calls: 42,
            wall_ms: 1.25,
            cached: false,
            shard_count: 0,
            picks: 0,
            shards_pruned: 0,
            shards_touched: 0,
        };
        let back = round_trip(&Response::Answer(body.clone()));
        match back {
            Response::Answer(b) => {
                assert_eq!(b, body);
                assert_eq!(b.fingerprint(), body.fingerprint());
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    /// The `cached` flag is transport metadata: it survives the wire but
    /// never changes the answer fingerprint, so cache-on and cache-off
    /// replays compare equal.
    #[test]
    fn cached_flag_round_trips_outside_the_fingerprint() {
        let mut body = AnswerBody {
            ids: vec![2, 4],
            covered: 9,
            relevant: 12,
            pi_trajectory: vec![0.5, 0.75],
            distance_calls: 0,
            wall_ms: 0.01,
            cached: false,
            shard_count: 0,
            picks: 0,
            shards_pruned: 0,
            shards_touched: 0,
        };
        let fp = body.fingerprint();
        body.cached = true;
        match round_trip(&Response::Answer(body.clone())) {
            Response::Answer(b) => {
                assert!(b.cached);
                assert_eq!(b.fingerprint(), fp);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn closed_at_frame_boundary() {
        let empty: &[u8] = &[];
        match read_frame::<Request>(&mut { empty }, Duration::from_secs(1)).unwrap() {
            FrameRead::Closed => {}
            other => panic!("expected Closed, got {other:?}"),
        }
    }

    #[test]
    fn oversized_header_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        let err = read_frame::<Request>(&mut buf.as_slice(), Duration::from_secs(1)).unwrap_err();
        assert!(err.message.contains("limit"), "{err}");
    }

    #[test]
    fn truncated_payload_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Request::Stats).unwrap();
        buf.truncate(buf.len() - 1);
        assert!(read_frame::<Request>(&mut buf.as_slice(), Duration::from_secs(1)).is_err());
    }

    #[test]
    fn mutation_frames_round_trip() {
        for req in [
            Request::Insert(InsertBody {
                dataset: "dud".into(),
                nodes: vec![0, 1, 1],
                edges: vec![
                    WireEdge {
                        u: 0,
                        v: 1,
                        label: 0,
                    },
                    WireEdge {
                        u: 1,
                        v: 2,
                        label: 1,
                    },
                ],
                features: vec![1.5, 2.0],
            }),
            Request::Remove(RemoveBody {
                dataset: "dud".into(),
                id: 17,
            }),
        ] {
            assert_eq!(round_trip(&req), req);
        }
        let resp = Response::Mutated(MutatedBody {
            id: 41,
            epoch: 9,
            live: 40,
            tombstones: 2,
            rebuilt: false,
            wall_ms: 0.75,
            shard_epochs: vec![3, 6],
        });
        assert_eq!(round_trip(&resp), resp);
    }

    /// A truncated header (fewer than 4 bytes, then EOF) must be a typed
    /// error, not a hang or a panic.
    #[test]
    fn truncated_header_is_an_error() {
        let partial: &[u8] = &[0, 0];
        let err = read_frame::<Request>(&mut { partial }, Duration::from_secs(1)).unwrap_err();
        assert!(err.message.contains("closed mid-frame"), "{err}");
    }

    /// Any announced length above [`MAX_FRAME_BYTES`] is rejected from the
    /// header alone — no allocation of attacker-controlled size happens.
    #[test]
    fn length_just_over_cap_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&((MAX_FRAME_BYTES as u32) + 1).to_be_bytes());
        buf.extend_from_slice(&[0u8; 16]);
        let err = read_frame::<Request>(&mut buf.as_slice(), Duration::from_secs(1)).unwrap_err();
        assert!(err.message.contains("limit"), "{err}");
    }

    /// A zero-length frame is a syntactically valid header whose empty
    /// payload fails JSON parsing — typed error, no panic.
    #[test]
    fn zero_length_frame_is_an_error() {
        let buf = 0u32.to_be_bytes();
        assert!(read_frame::<Request>(&mut buf.as_slice(), Duration::from_secs(1)).is_err());
    }

    /// Non-UTF-8 payload bytes surface as the UTF-8 error, not a panic.
    #[test]
    fn non_utf8_payload_is_an_error() {
        let payload = [0xff, 0xfe, 0x80, 0x81];
        let mut buf = Vec::new();
        buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        buf.extend_from_slice(&payload);
        let err = read_frame::<Request>(&mut buf.as_slice(), Duration::from_secs(1)).unwrap_err();
        assert!(err.message.contains("UTF-8"), "{err}");
    }

    /// Well-formed UTF-8 that is not valid JSON (or not a known variant)
    /// surfaces as a JSON error.
    #[test]
    fn garbage_json_payload_is_an_error() {
        for payload in ["{\"Nonsense\":1}", "]][[", "", "42"] {
            let mut buf = Vec::new();
            buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
            buf.extend_from_slice(payload.as_bytes());
            assert!(
                read_frame::<Request>(&mut buf.as_slice(), Duration::from_secs(1)).is_err(),
                "payload {payload:?} must be rejected"
            );
        }
    }
}
