//! Differential correctness of the sharded deployment (DESIGN.md §14): for
//! every dataset kind, every (θ, k) in the standard grid, and every shard
//! count S ∈ {1, 2, 4, 8}, the coordinator's scatter-gather answer must be
//! **byte-identical** (`format!("{answer:?}")`) to the single-NbIndex
//! reference over the same live state — including after interleaved
//! insert/remove scripts (three fixed seeds plus proptest interleavings).
//! Under `--features invariant-audit` the per-shard index stacks run their
//! π̂/Thm audits inside every one of these runs.

use graphrep_core::{NbIndex, NbIndexConfig};
use graphrep_datagen::{DatasetKind, DatasetSpec};
use graphrep_ged::{DistanceOracle, GedConfig, GedEngine};
use graphrep_graph::{generate::mutate, Graph, GraphId};
use graphrep_shard::{CoordConfig, Coordinator};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn index_config(ladder: &[f64]) -> NbIndexConfig {
    NbIndexConfig {
        num_vps: 4,
        ladder: ladder.to_vec(),
        ..Default::default()
    }
}

fn coord_config(shards: usize, ladder: &[f64]) -> CoordConfig {
    CoordConfig {
        shards,
        seed: 0xC0FFEE,
        ladder: ladder.to_vec(),
    }
}

/// The standard (θ, k) grid: two ladder rungs, the dataset default θ, and
/// one off-ladder θ, crossed with four k values.
fn theta_grid(ladder: &[f64], default_theta: f64) -> Vec<f64> {
    vec![
        ladder[1],
        ladder[ladder.len() / 2],
        default_theta,
        default_theta * 0.9 + 0.3,
    ]
}

const K_GRID: [usize; 4] = [1, 2, 5, 10];

/// Static grid: every kind × S × (θ, k), no mutations.
#[test]
fn grid_matches_single_index_reference() {
    for kind in [
        DatasetKind::DudLike,
        DatasetKind::DblpLike,
        DatasetKind::AmazonLike,
    ] {
        let data = DatasetSpec::new(kind, 32, 11).generate();
        let oracle = data.db.oracle(GedConfig::default());
        let reference = NbIndex::build(oracle, index_config(&data.default_ladder));
        let relevant = data.default_query().relevant_set(&data.db);
        let ref_session = reference.start_session(relevant.clone());
        for shards in SHARD_COUNTS {
            let coord = Coordinator::build(
                &data.db,
                GedConfig::default(),
                &coord_config(shards, &data.default_ladder),
            );
            let session = coord.session(relevant.clone());
            for &theta in &theta_grid(&data.default_ladder, data.default_theta) {
                for k in K_GRID {
                    let (want, _) = ref_session.run(theta, k);
                    let (got, _) = session.run(theta, k);
                    assert_eq!(
                        format!("{got:?}"),
                        format!("{want:?}"),
                        "{} diverged at S = {shards}, θ = {theta}, k = {k}",
                        kind.name()
                    );
                }
            }
        }
    }
}

/// Pairs a sharded coordinator with the single-index model of the same
/// mutation history; checkpoints must agree byte for byte at every epoch.
struct Harness {
    coord: Coordinator,
    reference: NbIndex,
    graphs: Vec<Graph>,
    live: Vec<bool>,
    ladder: Vec<f64>,
    default_theta: f64,
    ops: usize,
}

impl Harness {
    fn new(kind: DatasetKind, size: usize, shards: usize, seed: u64) -> Self {
        let data = DatasetSpec::new(kind, size, seed).generate();
        let oracle = data.db.oracle(GedConfig::default());
        let reference = NbIndex::build(oracle, index_config(&data.default_ladder));
        let coord = Coordinator::build(
            &data.db,
            GedConfig::default(),
            &coord_config(shards, &data.default_ladder),
        );
        Harness {
            coord,
            reference,
            graphs: data.db.graphs().to_vec(),
            live: vec![true; data.db.len()],
            ladder: data.default_ladder.clone(),
            default_theta: data.default_theta,
            ops: 0,
        }
    }

    fn live_ids(&self) -> Vec<GraphId> {
        (0..self.graphs.len() as GraphId)
            .filter(|&g| self.live[g as usize])
            .collect()
    }

    fn insert(&mut self, rng: &mut SmallRng) {
        let ids = self.live_ids();
        let src = ids[rng.gen_range(0..ids.len())] as usize;
        let edits = 1 + rng.gen_range(0..3);
        let g = mutate(rng, &self.graphs[src], edits, &[0, 1], &[0]);
        let (ref_id, _) = self.reference.insert(g.clone()).expect("reference insert");
        let receipt = self.coord.insert(g.clone()).expect("sharded insert");
        assert_eq!(
            receipt.id, ref_id,
            "coordinator must assign the same global id as the single index"
        );
        self.graphs.push(g);
        self.live.push(true);
        self.ops += 1;
    }

    fn remove(&mut self, rng: &mut SmallRng) {
        let ids = self.live_ids();
        if ids.len() <= 6 {
            return;
        }
        let victim = ids[rng.gen_range(0..ids.len())];
        self.reference.remove(victim).expect("reference remove");
        let receipt = self.coord.remove(victim).expect("sharded remove");
        assert_eq!(receipt.id, victim);
        self.live[victim as usize] = false;
        self.ops += 1;
    }

    fn checkpoint(&mut self, rng: &mut SmallRng) {
        let live = self.live_ids();
        let want_session = self.reference.start_session(live.clone());
        let got_session = self.coord.session(live);
        for _ in 0..2 {
            let slot = rng.gen_range(0..self.ladder.len());
            let theta = if rng.gen_bool(0.5) {
                self.ladder[slot]
            } else {
                self.ladder[slot] * 0.9 + 0.3
            };
            let k = 1 + rng.gen_range(0..5);
            let (want, _) = want_session.run(theta, k);
            let (got, _) = got_session.run(theta, k);
            assert_eq!(
                format!("{got:?}"),
                format!("{want:?}"),
                "divergence after {} ops at θ = {theta}, k = {k}",
                self.ops
            );
            self.ops += 1;
        }
        // The dataset's default θ is the workload centerpiece; pin it too.
        let (want, _) = want_session.run(self.default_theta, 4);
        let (got, _) = got_session.run(self.default_theta, 4);
        assert_eq!(format!("{got:?}"), format!("{want:?}"));
    }

    fn run_script(&mut self, script: &[u8], rng: &mut SmallRng) {
        for &op in script {
            match op % 5 {
                0 | 1 => self.insert(rng),
                2 | 3 => self.remove(rng),
                _ => self.checkpoint(rng),
            }
        }
        self.checkpoint(rng);
    }
}

/// Interleaved mutations under three fixed seeds, across shard counts and
/// dataset kinds (rotated so each seed exercises a different pairing).
#[test]
fn mutation_scripts_three_seeds() {
    let kinds = [
        DatasetKind::DudLike,
        DatasetKind::DblpLike,
        DatasetKind::AmazonLike,
    ];
    for (i, seed) in [7301u64, 7302, 7303].into_iter().enumerate() {
        let mut rng = SmallRng::seed_from_u64(seed);
        let shards = SHARD_COUNTS[1 + i % 3];
        let mut h = Harness::new(kinds[i % 3], 28, shards, seed);
        let script: Vec<u8> = (0..24).map(|_| rng.gen()).collect();
        h.run_script(&script, &mut rng);
        assert!(h.ops >= 20, "seed {seed}: expected ≥ 20 ops, ran {}", h.ops);
    }
}

/// Sharded queries must agree with a plain oracle-backed single index even
/// when the reference is built over an *independent* oracle (no shared
/// caches anywhere): byte-identity is a property of the metric, not of any
/// shared distance state.
#[test]
fn independent_reference_oracle_agrees() {
    let data = DatasetSpec::new(DatasetKind::DudLike, 24, 3).generate();
    let fresh = Arc::new(DistanceOracle::new(
        Arc::new(data.db.graphs().to_vec()),
        GedEngine::new(GedConfig::default()),
    ));
    let reference = NbIndex::build(fresh, index_config(&data.default_ladder));
    let coord = Coordinator::build(
        &data.db,
        GedConfig::default(),
        &coord_config(4, &data.default_ladder),
    );
    let relevant = data.default_query().relevant_set(&data.db);
    let (want, _) = reference
        .start_session(relevant.clone())
        .run(data.default_theta, 5);
    let (got, _) = coord.session(relevant).run(data.default_theta, 5);
    assert_eq!(format!("{got:?}"), format!("{want:?}"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Randomized interleavings over random shard counts: any script must
    /// keep the coordinator byte-identical to the single-index reference at
    /// every checkpoint.
    #[test]
    fn random_scripts_match_reference(
        seed in 0u64..10_000,
        shards_ix in 0usize..4,
        script in collection::vec(0u8..255, 8..16),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut h = Harness::new(
            DatasetKind::DudLike,
            22,
            SHARD_COUNTS[shards_ix],
            seed ^ 0x5A5A,
        );
        h.run_script(&script, &mut rng);
    }
}
